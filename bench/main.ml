(* Benchmark and reproduction harness.

   Two jobs in one executable:

   1. regenerate the paper's evaluation artifacts (Table 1 and
      Table 2), printing the same rows the paper reports.  By default
      the expensive ChangeVolume-combination model-checking cells use
      the paper's own "structured testing" fallback (budgeted
      depth-first search, sound lower bounds printed as "> x"); set
      RANAV_FULL=1 for the exhaustive runs (minutes to hours).

   2. time the building blocks with bechamel (one test group per
      table plus engine/substrate ablations), because regenerating a
      table is only trustworthy if its cost is measured and repeatable.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Ita_core
module R = Ita_casestudy.Radionav
module Reach = Ita_mc.Reach
module Dbm = Ita_dbm.Dbm
module Bound = Ita_dbm.Bound

let full = Sys.getenv_opt "RANAV_FULL" <> None

(* ------------------------------------------------------------------ *)
(* Table reproduction                                                  *)
(* ------------------------------------------------------------------ *)

let probe_budget = 60_000

let cell_cache : (string * R.column, Analyze.result) Hashtbl.t =
  Hashtbl.create 32

let cell (row : R.row) column =
  match Hashtbl.find_opt cell_cache (row.R.label, column) with
  | Some r -> r
  | None ->
      let sys = R.system row.R.combo column in
      (* what explodes is measuring the radio-station scenario itself
         under jitter/bursts (and anything pno/sp in the ChangeVolume
         combination); measuring the sporadic AddressLookup stays cheap
         even in the pj/bur columns *)
      let expensive =
        (row.R.combo = R.Cv_tmc && column <> R.Po)
        || ((column = R.Pj || column = R.Bur) && row.R.requirement = "TMC")
      in
      let probe ~budget =
        (* climb from the known-exact po value (or the uncontended
           time) in coarse steps: each success is a sound lower
           bound *)
        let start =
          match row.R.requirement with
          | "TMC" when row.R.combo = R.Cv_tmc -> 350_000
          | "TMC" -> 172_106
          | _ -> 14_080
        in
        Analyze.Structured_testing
          {
            order = Reach.Dfs;
            budget = Reach.states budget;
            start;
            (* finer steps where the answers sit a few ms above the
               uncontended time *)
            step = (if row.R.requirement = "TMC" then 25_000 else 5_000);
          }
      in
      let method_ =
        if expensive && not full then probe ~budget:probe_budget
        else if
          (column = R.Pj || column = R.Bur) && row.R.requirement = "TMC"
        then
          (* even "full" mode keeps the paper's df fallback here: these
             state spaces defeated UPPAAL too (Table 1's "> x (df)") *)
          probe ~budget:(8 * probe_budget)
        else Analyze.Exhaustive
      in
      let r =
        Analyze.wcrt ~method_ sys ~scenario:row.R.scenario
          ~requirement:row.R.requirement
      in
      Hashtbl.replace cell_cache (row.R.label, column) r;
      r

let print_table1 () =
  Format.printf
    "@.== Table 1: Uppaal-style WCRT analysis (ms) =====================@.";
  Format.printf "   (paper's values for po / pno in brackets)@.";
  Format.printf "%-34s %10s %10s %10s %10s %10s@." "Requirement" "po" "pno"
    "sp" "pj" "bur";
  List.iter
    (fun (row : R.row) ->
      Format.printf "%-34s" row.R.label;
      List.iter
        (fun column ->
          let r = cell row column in
          Format.printf " %10s"
            (Format.asprintf "%a" Analyze.pp_outcome r.Analyze.outcome))
        [ R.Po; R.Pno; R.Sp; R.Pj; R.Bur ];
      (match (row.R.paper_po, row.R.paper_pno) with
      | Some po, Some pno -> Format.printf "   [%.3f / %.3f]" po pno
      | _ -> ());
      Format.printf "@.")
    R.table1_rows

let print_table2 () =
  Format.printf
    "@.== Table 2: comparison with other techniques (ms, pno) ==========@.";
  Format.printf "%-34s %10s %10s %10s %10s %10s@." "Requirement" "mc(po)"
    "mc(pno)" "sim" "symta" "mpa";
  List.iter
    (fun (row : R.row) ->
      let mc col =
        Format.asprintf "%a" Analyze.pp_outcome (cell row col).Analyze.outcome
      in
      let sys = R.system row.R.combo R.Pno in
      let sim =
        Format.asprintf "%a" Units.pp_ms
          (Ita_sim.Engine.max_response ~runs:5 ~horizon_us:30_000_000 sys
             ~scenario:row.R.scenario ~requirement:row.R.requirement)
      in
      let symta =
        try
          let t = Ita_symta.Sysanalysis.analyze sys in
          Format.asprintf "%a" Units.pp_ms
            (Ita_symta.Sysanalysis.wcrt t sys ~scenario:row.R.scenario
               ~requirement:row.R.requirement)
        with _ -> "diverged"
      in
      let mpa =
        try
          let t = Ita_rtc.Gpc.analyze sys in
          Format.asprintf "%a" Units.pp_ms
            (Ita_rtc.Gpc.wcrt t sys ~scenario:row.R.scenario
               ~requirement:row.R.requirement)
        with _ -> "diverged"
      in
      Format.printf "%-34s %10s %10s %10s %10s %10s@." row.R.label (mc R.Po)
        (mc R.Pno) sim symta mpa)
    R.table1_rows

(* ------------------------------------------------------------------ *)
(* Design-space sweep: jobs/sec, parallel speedup, cache behaviour     *)
(* ------------------------------------------------------------------ *)

module Dse = Ita_dse

let print_dse_sweep () =
  Format.printf
    "@.== Design-space sweep (lib/dse) =================================@.";
  let space = Dse.Spaces.radionav () in
  let techniques = Dse.Job.[ Mc; Sim; Symta; Rtc ] in
  (* a short sim budget keeps the sweep itself benchmark-sized *)
  let budget =
    { Dse.Job.default_budget with sim_runs = 2; sim_horizon_us = 5_000_000 }
  in
  let sweep ?jobs ?cache () =
    Dse.Explore.run ?jobs ?cache ~budget ~timeout_s:120.0 space ~techniques
      ~scenario:"HandleTMC" ~requirement:"TMC"
  in
  let serial = sweep ~jobs:1 () in
  let cores = Dse.Pool.default_jobs () in
  let par = sweep ~jobs:cores () in
  let jps (r : Dse.Explore.report) =
    float_of_int r.Dse.Explore.executed /. r.Dse.Explore.wall_s
  in
  let n = List.length (Dse.Space.candidates space) in
  Format.printf "space %s: %d candidates x %d techniques = %d jobs@."
    space.Dse.Space.space_name n (List.length techniques)
    (n * List.length techniques);
  Format.printf "%-20s %9s %10s@." "" "wall(s)" "jobs/s";
  Format.printf "%-20s %9.2f %10.2f@." "jobs=1"
    serial.Dse.Explore.wall_s (jps serial);
  Format.printf "%-20s %9.2f %10.2f@."
    (Printf.sprintf "jobs=%d (cores)" cores)
    par.Dse.Explore.wall_s (jps par);
  Format.printf "parallel speedup: %.2fx on %d core(s)@."
    (serial.Dse.Explore.wall_s /. par.Dse.Explore.wall_s)
    cores;
  (* cache behaviour: one cold pass populates a throwaway dir, the
     warm pass must answer entirely from it *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ita-dse-bench-%d" (Unix.getpid ()))
  in
  let cache = Dse.Cache.create ~dir in
  let cold = sweep ~jobs:cores ~cache () in
  let warm = sweep ~jobs:cores ~cache () in
  Format.printf "cache: cold pass %d misses, warm pass %d hits in %.3fs@."
    cold.Dse.Explore.cache_misses warm.Dse.Explore.cache_hits
    warm.Dse.Explore.wall_s;
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat dir f))
       (Sys.readdir dir);
     Unix.rmdir dir
   with _ -> ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro/meso benchmarks                                      *)
(* ------------------------------------------------------------------ *)

(* Table 1's engine: one representative exhaustive cell. *)
let bench_table1_cell =
  Test.make ~name:"table1/mc-cell-al-po"
    (Staged.stage (fun () ->
         let sys = R.system R.Al_tmc R.Po in
         ignore (Analyze.wcrt sys ~scenario:"HandleTMC" ~requirement:"TMC")))

(* Table 2's other engines. *)
let bench_table2_symta =
  Test.make ~name:"table2/symta"
    (Staged.stage (fun () ->
         let sys = R.system R.Al_tmc R.Pno in
         ignore (Ita_symta.Sysanalysis.analyze sys)))

let bench_table2_mpa =
  Test.make ~name:"table2/mpa"
    (Staged.stage (fun () ->
         let sys = R.system R.Al_tmc R.Pno in
         ignore (Ita_rtc.Gpc.analyze sys)))

let bench_table2_sim =
  Test.make ~name:"table2/sim-1s"
    (Staged.stage (fun () ->
         let sys = R.system R.Al_tmc R.Pno in
         ignore (Ita_sim.Engine.run ~seed:1 ~horizon_us:1_000_000 sys)))

(* Ablation A: search orders on the same reachability problem. *)
let bench_order order name =
  Test.make ~name:("ablation/order-" ^ name)
    (Staged.stage (fun () ->
         let sys = R.system R.Al_tmc R.Po in
         let s = Sysmodel.scenario sys "HandleTMC" in
         let req = Scenario.requirement s "TMC" in
         let gen = Gen.generate ~measure:("HandleTMC", req) sys in
         let obs = Option.get gen.Gen.observer in
         ignore
           (Ita_mc.Wcrt.sup ~order gen.Gen.net ~at:obs.Gen.seen
              ~clock:obs.Gen.obs_clock)))

(* Ablation B: substrate micro-benchmarks. *)
let bench_dbm_pipeline =
  Test.make ~name:"dbm/up-constrain-reset-subset"
    (Staged.stage (fun () ->
         let z = Dbm.zero 10 in
         Dbm.up z;
         for i = 1 to 10 do
           Dbm.constrain z i 0 (Bound.le (1000 * i))
         done;
         let z' = Dbm.copy z in
         Dbm.reset z' 3 0;
         Dbm.up z';
         ignore (Dbm.subset z z')))

let bench_gen =
  Test.make ~name:"gen/network-generation"
    (Staged.stage (fun () ->
         let sys = R.system R.Cv_tmc R.Bur in
         let s = Sysmodel.scenario sys "HandleTMC" in
         let req = Scenario.requirement s "TMC" in
         ignore (Gen.generate ~measure:("HandleTMC", req) sys)))

let benchmarks =
  [
    bench_table1_cell;
    bench_table2_symta;
    bench_table2_mpa;
    bench_table2_sim;
    bench_order Reach.Bfs "bfs";
    bench_order Reach.Dfs "dfs";
    bench_order (Reach.Random_dfs 7) "rdfs";
    bench_dbm_pipeline;
    bench_gen;
  ]

let run_benchmarks () =
  let ols =
    Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ()
  in
  Format.printf "@.== Benchmarks (monotonic clock, ns per run) =====================@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          match Bechamel.Analyze.one ols instance raw with
          | ols_result -> (
              match Bechamel.Analyze.OLS.estimates ols_result with
              | Some [ est ] -> Format.printf "%-36s %14.0f@." name est
              | Some _ | None -> Format.printf "%-36s (no estimate)@." name)
          | exception _ -> Format.printf "%-36s (failed)@." name)
        results)
    benchmarks

let () =
  print_table1 ();
  print_table2 ();
  print_dse_sweep ();
  run_benchmarks ()
