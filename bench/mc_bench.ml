(* Zone-engine benchmark: ExtraM vs Extra+LU vs LuSim, machine-readable.

   Runs the WCRT sup-query on the tractable radio-navigation cells
   (the paper's case study; the periodic-with-offset column is the
   acceptance gate) and a full exploration of a synthetic token-ring
   scaling family, under all abstractions, and writes BENCH_mc.json
   with explored/stored/transitions/elapsed per cell per abstraction.

   The abstractions must report identical WCRT results on every
   cell — Extra+LU only wins over ExtraM by exploring fewer symbolic
   states, and LuSim (unextrapolated zones pruned with the a<|LU
   simulation) must never explore more than Extra+LU in aggregate,
   strictly less on the sporadic family where simulation subsumes
   zones that differ only above the L/U constants.

   Each cell additionally carries a reduction-off run (Extra+LU with
   the active-clock reduction disabled) and a flow-off run (Extra+LU
   with the builder's static extrapolation bounds instead of the
   dataflow-refined ones): both knobs must preserve every result
   verbatim and never explore more states than their off position.

   Query cells (everything driven by a sup-query: radionav and the
   station family) also carry a sliced run (Extra+LU with the
   query-directed CoiMerge reduction on) against their slicing-off
   baselines: results must match verbatim, the aggregate
   slice_explored_ratio must stay <= 1.0, and the station family —
   a measured server with a quasi-equal clock pair plus sporadic
   clients outside the query cone — must show a strict win.

   Run with: dune exec bench/mc_bench.exe            (full suite)
             BENCH_QUICK=1 dune exec bench/mc_bench.exe   (CI smoke)
   Optional argv.(1): output path (default BENCH_mc.json). *)

open Ita_core
open Ita_ta
module R = Ita_casestudy.Radionav
module Reach = Ita_mc.Reach
module Wcrt = Ita_mc.Wcrt

let quick = Sys.getenv_opt "BENCH_QUICK" <> None

type run = {
  explored : int;
  stored : int;
  transitions : int;
  elapsed : float;
  result : string;  (* WCRT value or verdict fingerprint *)
}

let run_of_stats (s : Reach.stats) result =
  {
    explored = s.Reach.explored;
    stored = s.Reach.stored;
    transitions = s.Reach.transitions;
    elapsed = s.Reach.elapsed;
    result;
  }

type par_run = {
  par_domains : int;
  par_steals : int;
  par : run;
}

type slice_run = {
  sliced : run;  (* Extra+LU with ~slicing:CoiMerge *)
  clocks_before : int;  (* DBM dimension (incl. the reference clock) *)
  clocks_after : int;  (* same, on the sliced network *)
}

type cert_run = {
  cert_states : int;  (* antichain entries in the certificate *)
  cert_check_ms : float;  (* independent checker wall-clock *)
  cert_explore_s : float;  (* the producing exploration's wall-clock *)
  cert_ok : bool;  (* the checker accepted the certificate *)
}

(* Certificate column: re-run the Extra+LU sup-query with snapshot
   capture, emit the certificate and time the independent checker.
   Only sup-query cells carry it — raw explorations have no verdict to
   certify. *)
let certify_sup net ~at ~clock =
  let module Cert = Ita_cert.Cert in
  let module Cert_emit = Ita_mc.Cert_emit in
  let snap = ref Option.None in
  match
    Wcrt.sup ~abstraction:Reach.ExtraLU ~domains:1 ~slicing:Reach.Off
      ~snap:(fun s -> snap := Some s)
      net ~at ~clock
  with
  | Wcrt.Sup { value; kind; stats } ->
      let kind =
        match kind with
        | Wcrt.Attained -> Cert.Attained
        | Wcrt.Approached -> Cert.Approached
      in
      let qc =
        Cert_emit.of_snapshot ~index:0
          ~verdict:(Cert.Sup { clock; value; kind })
          (Option.get !snap)
      in
      let goal = Cert_emit.goal_of_query at in
      let t0 = Unix.gettimeofday () in
      let r = Cert.check net ~goal qc in
      Some
        {
          cert_states = List.length qc.Cert.entries;
          cert_check_ms = (Unix.gettimeofday () -. t0) *. 1000.;
          cert_explore_s = stats.Reach.elapsed;
          cert_ok = (match r with Ok _ -> true | Error _ -> false);
        }
  | Wcrt.Goal_unreachable _ | Wcrt.Sup_budget_exhausted _
  | Wcrt.Sup_unbounded _ ->
      Option.None

type cell = {
  name : string;
  kind : string;
  extram : run;
  extralu : run;
  lusim : run;  (* a<|LU simulation subsumption, unextrapolated zones *)
  extralu_nored : run;  (* Extra+LU with ~reduction:None *)
  extralu_noflow : run;  (* Extra+LU with ~bounds:Static *)
  slice : slice_run option;
      (* Extra+LU re-run with query-directed slicing on; only for
         cells driven by a sup-query — the raw-exploration synthetic
         cells have no query to slice against *)
  parallel : par_run option;
      (* Extra+LU re-run on the parallel engine; only computed on
         multi-core hosts and only for cells big enough to amortize
         the domain-spawn overhead, so the speedup column never
         reports noise *)
  cert : cert_run option;
      (* certificate emission + independent check; sup-query cells
         only *)
}

(* every baseline column is pinned to the sequential engine so the
   explored counts stay comparable across machines and TAMC_DOMAINS
   settings; the parallel engine gets its own gated column *)
let bench_par_domains =
  (* BENCH_PAR_DOMAINS forces the worker count (>= 2) or disables the
     column (0 or 1); unset, multi-core hosts get min(4, cores) *)
  match Sys.getenv_opt "BENCH_PAR_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 2 -> Some n
      | Some _ | None -> None)
  | None ->
      let cores = Domain.recommended_domain_count () in
      if cores >= 2 then Some (min 4 cores) else None

let par_min_seq_elapsed = 0.5
(* seconds of sequential Extra+LU work below which the parallel rerun
   is skipped: the ~10 s cv/ChangeVolume cells are the ones meant to
   scale with cores *)

(* ------------------------------------------------------------------ *)
(* Radio-navigation cells: the paper's WCRT sup-queries               *)
(* ------------------------------------------------------------------ *)

let radionav_cell (row : R.row) column =
  let sys = R.system row.R.combo column in
  let s = Sysmodel.scenario sys row.R.scenario in
  let req = Scenario.requirement s row.R.requirement in
  let gen = Gen.generate ~measure:(row.R.scenario, req) sys in
  let obs = Option.get gen.Gen.observer in
  (* every baseline column is pinned to ~slicing:Off so the explored
     counts measure the abstraction knobs alone; the sliced column is
     the only run with the reduction on *)
  let sup_stats ?(domains = 1) ?reduction ?bounds ?(slicing = Reach.Off)
      abstraction =
    match
      Wcrt.sup ~abstraction ~domains ?reduction ?bounds ~slicing gen.Gen.net
        ~at:obs.Gen.seen ~clock:obs.Gen.obs_clock
    with
    | Wcrt.Sup { value; stats; _ } ->
        (run_of_stats stats (Printf.sprintf "wcrt=%d" value), stats)
    | Wcrt.Goal_unreachable stats -> (run_of_stats stats "unreachable", stats)
    | Wcrt.Sup_budget_exhausted { stats; _ } ->
        (run_of_stats stats "budget", stats)
    | Wcrt.Sup_unbounded { stats; _ } -> (run_of_stats stats "unbounded", stats)
  in
  let sup ?reduction ?bounds ?slicing abstraction =
    fst (sup_stats ?reduction ?bounds ?slicing abstraction)
  in
  let name =
    Printf.sprintf "%s/%s/%s [%s]"
      (match row.R.combo with R.Cv_tmc -> "cv" | R.Al_tmc -> "al")
      row.R.scenario row.R.requirement (R.column_name column)
  in
  let extralu = sup Reach.ExtraLU in
  let slice =
    let _, snet, _ =
      Reach.slice_query Reach.CoiMerge
        ~extra_clocks:[ obs.Gen.obs_clock ]
        gen.Gen.net obs.Gen.seen
    in
    Some
      {
        sliced = sup ~slicing:Reach.CoiMerge Reach.ExtraLU;
        clocks_before = Array.length gen.Gen.net.Network.clock_names;
        clocks_after = Array.length snet.Network.clock_names;
      }
  in
  let parallel =
    match bench_par_domains with
    | Some d when extralu.elapsed >= par_min_seq_elapsed ->
        let run, stats = sup_stats ~domains:d Reach.ExtraLU in
        Some { par_domains = d; par_steals = stats.Reach.steals; par = run }
    | Some _ | None -> None
  in
  {
    name;
    kind = "radionav";
    extram = sup Reach.ExtraM;
    extralu;
    lusim = sup Reach.LuSim;
    extralu_nored = sup ~reduction:Reach.None Reach.ExtraLU;
    extralu_noflow = sup ~bounds:Reach.Static Reach.ExtraLU;
    slice;
    parallel;
    cert = certify_sup gen.Gen.net ~at:obs.Gen.seen ~clock:obs.Gen.obs_clock;
  }

let radionav_cells () =
  (* the cheap cells only: everything in the po column, plus the
     AddressLookup-combination pno/sp columns in the full suite *)
  let cells =
    List.map (fun row -> (row, R.Po)) R.table1_rows
    @
    if quick then []
    else
      List.filter_map
        (fun (row : R.row) ->
          if row.R.combo = R.Al_tmc then Some (row, R.Pno) else None)
        R.table1_rows
  in
  List.map (fun (row, col) -> radionav_cell row col) cells

(* ------------------------------------------------------------------ *)
(* Synthetic scaling family: a periodic pacer plus n sporadic clients.
   Each client clock only appears in a lower-bound guard
   ([x_i >= s_i] on its own re-arm loop), so its U constant is 0 and
   Extra+LU immediately forgets how large it has grown — the classic
   LU win on minimum-separation (sporadic) event models, which
   classical ExtraM cannot merge.

   The separation [s_i] is a never-written configuration variable
   declared with generous headroom ([0, 4*S_i], initialized to S_i) —
   the idiom of a tunable architecture parameter.  The builder's static
   scan must take the guard bound's worst case over the declared range
   (L(x_i) = 4*S_i); the dataflow analysis proves s_i is the constant
   S_i, so the flow-refined L is 4x tighter and Extra+LU merges
   correspondingly more states.  This is the flow-bounds column's
   guaranteed strict win.                                              *)
(* ------------------------------------------------------------------ *)

let sporadic_family n =
  let b = Network.Builder.create () in
  let p = Network.Builder.clock b "p" in
  let clocks =
    Array.init n (fun i -> Network.Builder.clock b (Printf.sprintf "x%d" i))
  in
  let period = 4 in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"Pacer"
       ~locations:
         [
           {
             Automaton.loc_name = "P";
             invariant = Guard.clock_le p period;
             kind = Automaton.Normal;
           };
         ]
       ~edges:
         [
           {
             Automaton.src = 0;
             guard = Guard.clock_eq p period;
             sync = Automaton.NoSync;
             update = Update.reset p;
             dst = 0;
           };
         ]
       ~initial:0);
  for i = 0 to n - 1 do
    let x = clocks.(i) in
    let sep = 3 + (2 * i) in
    let sv =
      Network.Builder.int_var b
        (Printf.sprintf "s%d" i)
        ~lo:0 ~hi:(4 * sep) ~init:sep
    in
    Network.Builder.add_automaton b
      (Automaton.make
         ~name:(Printf.sprintf "C%d" i)
         ~locations:
           [
             {
               Automaton.loc_name = "L";
               invariant = Guard.tt;
               kind = Automaton.Normal;
             };
           ]
         ~edges:
           [
             {
               Automaton.src = 0;
               guard = Guard.clock_rel x Guard.Ge (Expr.Var sv);
               sync = Automaton.NoSync;
               update = Update.reset x;
               dst = 0;
             };
           ]
         ~initial:0)
  done;
  Network.Builder.build b

let sporadic_cell n =
  let net = sporadic_family n in
  let explore_stats ?(domains = 1) ?reduction ?bounds abstraction =
    match
      Reach.explore ~abstraction ~domains ?reduction ?bounds net
        ~on_store:(fun _ -> ())
    with
    | `Complete stats -> (run_of_stats stats "complete", stats)
    | `Budget_exhausted stats -> (run_of_stats stats "budget", stats)
  in
  let explore ?reduction ?bounds abstraction =
    fst (explore_stats ?reduction ?bounds abstraction)
  in
  let extralu = explore Reach.ExtraLU in
  let parallel =
    match bench_par_domains with
    | Some d when extralu.elapsed >= par_min_seq_elapsed ->
        let run, stats = explore_stats ~domains:d Reach.ExtraLU in
        Some { par_domains = d; par_steals = stats.Reach.steals; par = run }
    | Some _ | None -> None
  in
  {
    name = Printf.sprintf "sporadic %d" n;
    kind = "synthetic";
    extram = explore Reach.ExtraM;
    extralu;
    lusim = explore Reach.LuSim;
    extralu_nored = explore ~reduction:Reach.None Reach.ExtraLU;
    extralu_noflow = explore ~bounds:Reach.Static Reach.ExtraLU;
    slice = Option.None;
    parallel;
    cert = Option.None;
  }

let ring_cells () =
  List.map sporadic_cell (if quick then [ 3 ] else [ 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Station family: the slicing column's guaranteed strict win.  A
   measured server whose service window is tracked by a quasi-equal
   clock pair (y and y2, always reset together — the paper's
   measuring-automaton idiom duplicated per requirement), plus n
   sporadic clients that never synchronize with it and share none of
   its clocks or variables.  The sup-query over the server's response
   clock sees the clients multiply the interleaving for no reason:
   CoiMerge removes all n clients (cone) and merges y2 into y
   (quasi-equality), so both slice_explored_ratio and
   slice_clocks_ratio are strictly below 1 here.                       *)
(* ------------------------------------------------------------------ *)

let station_family n =
  let b = Network.Builder.create () in
  let y = Network.Builder.clock b "y" in
  let y2 = Network.Builder.clock b "y2" in
  let clocks =
    Array.init n (fun i -> Network.Builder.clock b (Printf.sprintf "x%d" i))
  in
  let loc ?(kind = Automaton.Normal) ?(invariant = Guard.tt) loc_name =
    { Automaton.loc_name; invariant; kind }
  in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"Station"
       ~locations:
         [
           loc "Idle";
           loc "Busy" ~invariant:(Guard.clock_le y 10);
           (* committed: the sup is read at entry, not after an
              arbitrary dwell, so the cell reports a finite WCRT *)
           loc "Done" ~kind:Automaton.Committed;
         ]
       ~edges:
         [
           {
             Automaton.src = 0;
             guard = Guard.tt;
             sync = Automaton.NoSync;
             update = Update.reset y @ Update.reset y2;
             dst = 1;
           };
           {
             Automaton.src = 1;
             guard = Guard.conj (Guard.clock_ge y 5) (Guard.clock_ge y2 5);
             sync = Automaton.NoSync;
             update = [];
             dst = 2;
           };
           {
             Automaton.src = 2;
             guard = Guard.tt;
             sync = Automaton.NoSync;
             update = [];
             dst = 0;
           };
         ]
       ~initial:0);
  for i = 0 to n - 1 do
    let x = clocks.(i) in
    let sep = 3 + (2 * i) in
    Network.Builder.add_automaton b
      (Automaton.make
         ~name:(Printf.sprintf "C%d" i)
         ~locations:[ loc "L" ]
         ~edges:
           [
             {
               Automaton.src = 0;
               guard = Guard.clock_ge x sep;
               sync = Automaton.NoSync;
               update = Update.reset x;
               dst = 0;
             };
           ]
         ~initial:0)
  done;
  Network.Builder.build b

let station_cell n =
  let net = station_family n in
  let at = Ita_mc.Query.at net ~comp:"Station" ~loc:"Done" in
  let clock = 1 (* y *) in
  let sup_stats ?reduction ?bounds ?(slicing = Reach.Off) abstraction =
    match
      Wcrt.sup ~abstraction ~domains:1 ?reduction ?bounds ~slicing net ~at
        ~clock
    with
    | Wcrt.Sup { value; stats; _ } ->
        (run_of_stats stats (Printf.sprintf "wcrt=%d" value), stats)
    | Wcrt.Goal_unreachable stats -> (run_of_stats stats "unreachable", stats)
    | Wcrt.Sup_budget_exhausted { stats; _ } ->
        (run_of_stats stats "budget", stats)
    | Wcrt.Sup_unbounded { stats; _ } -> (run_of_stats stats "unbounded", stats)
  in
  let sup ?reduction ?bounds ?slicing abstraction =
    fst (sup_stats ?reduction ?bounds ?slicing abstraction)
  in
  let slice =
    let _, snet, _ =
      Reach.slice_query Reach.CoiMerge ~extra_clocks:[ clock ] net at
    in
    Some
      {
        sliced = sup ~slicing:Reach.CoiMerge Reach.ExtraLU;
        clocks_before = Array.length net.Network.clock_names;
        clocks_after = Array.length snet.Network.clock_names;
      }
  in
  {
    name = Printf.sprintf "station %d" n;
    kind = "station";
    extram = sup Reach.ExtraM;
    extralu = sup Reach.ExtraLU;
    lusim = sup Reach.LuSim;
    extralu_nored = sup ~reduction:Reach.None Reach.ExtraLU;
    extralu_noflow = sup ~bounds:Reach.Static Reach.ExtraLU;
    slice;
    parallel = Option.None;
    cert = certify_sup net ~at ~clock;
  }

let station_cells () =
  List.map station_cell (if quick then [ 3 ] else [ 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* JSON output (by hand; the repo carries no JSON dependency)          *)
(* ------------------------------------------------------------------ *)

let json_run buf r =
  Buffer.add_string buf
    (Printf.sprintf
       {|{"explored": %d, "stored": %d, "transitions": %d, "elapsed_s": %.4f, "result": %S}|}
       r.explored r.stored r.transitions r.elapsed r.result)

let json_cell buf c =
  let ratio =
    if c.extram.explored = 0 then 1.0
    else float_of_int c.extralu.explored /. float_of_int c.extram.explored
  in
  let red_ratio =
    if c.extralu_nored.explored = 0 then 1.0
    else
      float_of_int c.extralu.explored /. float_of_int c.extralu_nored.explored
  in
  let flow_ratio =
    if c.extralu_noflow.explored = 0 then 1.0
    else
      float_of_int c.extralu.explored /. float_of_int c.extralu_noflow.explored
  in
  let lusim_ratio =
    if c.extralu.explored = 0 then 1.0
    else float_of_int c.lusim.explored /. float_of_int c.extralu.explored
  in
  Buffer.add_string buf
    (Printf.sprintf
       {|    {"name": %S, "kind": %S, "results_match": %b, "explored_ratio": %.4f, "lusim_results_match": %b, "lusim_explored_ratio": %.4f, "reduction_results_match": %b, "reduction_explored_ratio": %.4f, "flow_results_match": %b, "flow_bounds_explored_ratio": %.4f, |}
       c.name c.kind
       (c.extram.result = c.extralu.result)
       ratio
       (c.extralu.result = c.lusim.result)
       lusim_ratio
       (c.extralu.result = c.extralu_nored.result)
       red_ratio
       (c.extralu.result = c.extralu_noflow.result)
       flow_ratio);
  (match c.slice with
  | None ->
      Buffer.add_string buf
        {|"slice_results_match": null, "slice_explored_ratio": null, "slice_clocks_ratio": null, |}
  | Some sr ->
      Buffer.add_string buf
        (Printf.sprintf
           {|"slice_results_match": %b, "slice_explored_ratio": %.4f, "slice_clocks_ratio": %.4f, "sliced": |}
           (c.extralu.result = sr.sliced.result)
           (if c.extralu.explored = 0 then 1.0
            else
              float_of_int sr.sliced.explored
              /. float_of_int c.extralu.explored)
           (float_of_int sr.clocks_after /. float_of_int sr.clocks_before));
      json_run buf sr.sliced;
      Buffer.add_string buf ", ");
  (match c.cert with
  | None ->
      Buffer.add_string buf
        {|"cert_check_ms": null, "cert_states": null, "cert_ok": null, |}
  | Some cr ->
      Buffer.add_string buf
        (Printf.sprintf
           {|"cert_check_ms": %.2f, "cert_states": %d, "cert_ok": %b, |}
           cr.cert_check_ms cr.cert_states cr.cert_ok));
  (match c.parallel with
  | None ->
      Buffer.add_string buf
        {|"par_domains": null, "par_speedup": null, "par_results_match": null, |}
  | Some p ->
      Buffer.add_string buf
        (Printf.sprintf
           {|"par_domains": %d, "par_speedup": %.4f, "par_results_match": %b, "par_steals": %d, "par": |}
           p.par_domains
           (if p.par.elapsed > 0. then c.extralu.elapsed /. p.par.elapsed
            else 1.0)
           (c.extralu.result = p.par.result)
           p.par_steals);
      json_run buf p.par;
      Buffer.add_string buf ", ");
  Buffer.add_string buf {|"extram": |};
  json_run buf c.extram;
  Buffer.add_string buf {|, "extralu": |};
  json_run buf c.extralu;
  Buffer.add_string buf {|, "lusim": |};
  json_run buf c.lusim;
  Buffer.add_string buf {|, "extralu_no_reduction": |};
  json_run buf c.extralu_nored;
  Buffer.add_string buf {|, "extralu_no_flow": |};
  json_run buf c.extralu_noflow;
  Buffer.add_string buf "}"

(* the producing commit, so a checked-in BENCH_mc.json is attributable;
   null outside a git checkout *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_mc.json" in
  let cells = radionav_cells () @ ring_cells () @ station_cells () in
  let mismatches =
    List.filter (fun c -> c.extram.result <> c.extralu.result) cells
  in
  let lusim_mismatches =
    List.filter (fun c -> c.extralu.result <> c.lusim.result) cells
  in
  let red_mismatches =
    List.filter (fun c -> c.extralu.result <> c.extralu_nored.result) cells
  in
  let red_regressions =
    List.filter (fun c -> c.extralu.explored > c.extralu_nored.explored) cells
  in
  let flow_mismatches =
    List.filter (fun c -> c.extralu.result <> c.extralu_noflow.result) cells
  in
  let flow_regressions =
    List.filter (fun c -> c.extralu.explored > c.extralu_noflow.explored) cells
  in
  let slice_mismatches =
    List.filter
      (fun c ->
        match c.slice with
        | Some sr -> c.extralu.result <> sr.sliced.result
        | None -> false)
      cells
  in
  let par_mismatches =
    List.filter
      (fun c ->
        match c.parallel with
        | Some p -> c.extralu.result <> p.par.result
        | None -> false)
      cells
  in
  List.iter
    (fun c ->
      Printf.printf
        "%-40s extram %7d  extralu %7d  lusim %7d  no-red %7d  no-flow %7d  \
         ratio %.3f  lusim-ratio %.3f  [%s]\n\
         %!"
        c.name c.extram.explored c.extralu.explored c.lusim.explored
        c.extralu_nored.explored c.extralu_noflow.explored
        (if c.extram.explored = 0 then 1.0
         else float_of_int c.extralu.explored /. float_of_int c.extram.explored)
        (if c.extralu.explored = 0 then 1.0
         else float_of_int c.lusim.explored /. float_of_int c.extralu.explored)
        (if c.extram.result = c.extralu.result && c.extralu.result = c.lusim.result
         then c.extram.result
         else
           Printf.sprintf "MISMATCH %s vs %s vs %s" c.extram.result
             c.extralu.result c.lusim.result);
      (match c.slice with
      | None -> ()
      | Some sr ->
          Printf.printf
            "%-40s sliced %7d  clocks %d -> %d  slice-ratio %.3f  [%s]\n%!" ""
            sr.sliced.explored sr.clocks_before sr.clocks_after
            (if c.extralu.explored = 0 then 1.0
             else
               float_of_int sr.sliced.explored
               /. float_of_int c.extralu.explored)
            (if sr.sliced.result = c.extralu.result then "match"
             else
               Printf.sprintf "MISMATCH %s vs %s" c.extralu.result
                 sr.sliced.result));
      (match c.cert with
      | None -> ()
      | Some cr ->
          Printf.printf
            "%-40s cert %5d states  check %.1f ms  explore %.1f ms  [%s]\n%!"
            "" cr.cert_states cr.cert_check_ms (cr.cert_explore_s *. 1000.)
            (if cr.cert_ok then "certified" else "REJECTED"));
      match c.parallel with
      | None -> ()
      | Some p ->
          Printf.printf
            "%-40s par x%d  %.2fs -> %.2fs  speedup %.2f  steals %d  [%s]\n%!"
            "" p.par_domains c.extralu.elapsed p.par.elapsed
            (if p.par.elapsed > 0. then c.extralu.elapsed /. p.par.elapsed
             else 1.0)
            p.par_steals
            (if p.par.result = c.extralu.result then "match"
             else
               Printf.sprintf "MISMATCH %s vs %s" c.extralu.result p.par.result))
    cells;
  (match bench_par_domains with
  | None ->
      Printf.printf
        "parallel column skipped: single-core host (speedup would be noise)\n%!"
  | Some d ->
      Printf.printf "parallel column: %d domains on eligible cells\n%!" d);
  let po_cells = List.filter (fun c -> c.kind = "radionav") cells in
  let total l f = List.fold_left (fun a c -> a + f c) 0 l in
  let ratio_of l =
    let m = total l (fun c -> c.extram.explored) in
    let lu = total l (fun c -> c.extralu.explored) in
    if m = 0 then 1.0 else float_of_int lu /. float_of_int m
  in
  let po_ratio = ratio_of po_cells in
  Printf.printf "radionav explored ratio (extralu / extram): %.3f\n%!" po_ratio;
  let red_ratio =
    let off = total cells (fun c -> c.extralu_nored.explored) in
    let on = total cells (fun c -> c.extralu.explored) in
    if off = 0 then 1.0 else float_of_int on /. float_of_int off
  in
  Printf.printf "reduction explored ratio (active / none): %.3f\n%!" red_ratio;
  let flow_ratio =
    let off = total cells (fun c -> c.extralu_noflow.explored) in
    let on = total cells (fun c -> c.extralu.explored) in
    if off = 0 then 1.0 else float_of_int on /. float_of_int off
  in
  Printf.printf "flow-bounds explored ratio (flow / static): %.3f\n%!"
    flow_ratio;
  let lusim_ratio_of l =
    let lu = total l (fun c -> c.extralu.explored) in
    let ls = total l (fun c -> c.lusim.explored) in
    if lu = 0 then 1.0 else float_of_int ls /. float_of_int lu
  in
  let lusim_ratio = lusim_ratio_of cells in
  let sporadic_cells = List.filter (fun c -> c.kind = "synthetic") cells in
  let lusim_sporadic_ratio = lusim_ratio_of sporadic_cells in
  Printf.printf "lusim explored ratio (lusim / extralu): %.3f\n%!" lusim_ratio;
  Printf.printf "lusim sporadic explored ratio: %.3f\n%!" lusim_sporadic_ratio;
  let slice_cells = List.filter (fun c -> c.slice <> Option.None) cells in
  let slice_ratio_of l =
    let off = total l (fun c -> c.extralu.explored) in
    let on =
      total l (fun c ->
          match c.slice with Some sr -> sr.sliced.explored | None -> 0)
    in
    if off = 0 then 1.0 else float_of_int on /. float_of_int off
  in
  let slice_ratio = slice_ratio_of slice_cells in
  let station_cells' = List.filter (fun c -> c.kind = "station") cells in
  let station_slice_ratio = slice_ratio_of station_cells' in
  let slice_clocks_ratio =
    let before =
      total slice_cells (fun c ->
          match c.slice with Some sr -> sr.clocks_before | None -> 0)
    in
    let after =
      total slice_cells (fun c ->
          match c.slice with Some sr -> sr.clocks_after | None -> 0)
    in
    if before = 0 then 1.0 else float_of_int after /. float_of_int before
  in
  Printf.printf "slice explored ratio (coimerge / off): %.3f\n%!" slice_ratio;
  Printf.printf "slice station explored ratio: %.3f\n%!" station_slice_ratio;
  Printf.printf "slice clocks ratio (coimerge / off): %.3f\n%!"
    slice_clocks_ratio;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "suite": "mc-zone-engine", "quick": %b,|} quick);
  Buffer.add_string buf "\n";
  (* detected host core count, so null par_domains columns (single-core
     runners skip the parallel rerun) are attributable from the JSON
     alone *)
  Buffer.add_string buf
    (Printf.sprintf {|  "host_cores": %d,|}
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf "\n";
  (* the certificate format the cert_* columns were produced under, so
     a checked-in BENCH_mc.json names the schema it measured *)
  Buffer.add_string buf
    (Printf.sprintf {|  "cert_format_version": %d,|} Ita_cert.Cert.version);
  Buffer.add_string buf "\n";
  (* the producing commit, alongside host_cores, so the numbers are
     attributable from the JSON alone *)
  Buffer.add_string buf
    (match git_commit () with
    | Some h -> Printf.sprintf {|  "git_commit": %S,|} h
    | None -> {|  "git_commit": null,|});
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "radionav_explored_ratio": %.4f,|} po_ratio);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "lusim_explored_ratio": %.4f,|} lusim_ratio);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf
       {|  "lusim_sporadic_explored_ratio": %.4f,|}
       lusim_sporadic_ratio);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "reduction_explored_ratio": %.4f,|} red_ratio);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "flow_bounds_explored_ratio": %.4f,|} flow_ratio);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "slice_explored_ratio": %.4f,|} slice_ratio);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf
       {|  "slice_station_explored_ratio": %.4f,|}
       station_slice_ratio);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf {|  "slice_clocks_ratio": %.4f,|} slice_clocks_ratio);
  Buffer.add_string buf "\n  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf ",\n";
      json_cell buf c)
    cells;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if mismatches <> [] then begin
    Printf.eprintf "ERROR: %d cells disagree between abstractions\n"
      (List.length mismatches);
    exit 1
  end;
  if lusim_mismatches <> [] then begin
    Printf.eprintf
      "ERROR: %d cells disagree between Extra+LU and LuSim\n"
      (List.length lusim_mismatches);
    exit 1
  end;
  if lusim_ratio > 1.0 then begin
    Printf.eprintf
      "ERROR: LuSim explored MORE states than Extra+LU in aggregate \
       (ratio %.4f)\n"
      lusim_ratio;
    exit 1
  end;
  if sporadic_cells <> [] && lusim_sporadic_ratio >= 1.0 then begin
    Printf.eprintf
      "ERROR: LuSim shows no strict win on the sporadic family \
       (ratio %.4f)\n"
      lusim_sporadic_ratio;
    exit 1
  end;
  if red_mismatches <> [] then begin
    Printf.eprintf
      "ERROR: %d cells disagree between reduction on and off\n"
      (List.length red_mismatches);
    exit 1
  end;
  if red_regressions <> [] then begin
    Printf.eprintf
      "ERROR: %d cells explore MORE states with the reduction on\n"
      (List.length red_regressions);
    exit 1
  end;
  if flow_mismatches <> [] then begin
    Printf.eprintf
      "ERROR: %d cells disagree between flow-refined and static bounds\n"
      (List.length flow_mismatches);
    exit 1
  end;
  if flow_regressions <> [] then begin
    Printf.eprintf
      "ERROR: %d cells explore MORE states with flow-refined bounds\n"
      (List.length flow_regressions);
    exit 1
  end;
  if par_mismatches <> [] then begin
    Printf.eprintf
      "ERROR: %d cells disagree between the sequential and parallel engines\n"
      (List.length par_mismatches);
    exit 1
  end;
  if slice_mismatches <> [] then begin
    Printf.eprintf
      "ERROR: %d cells disagree between slicing on and off\n"
      (List.length slice_mismatches);
    exit 1
  end;
  if slice_ratio > 1.0 then begin
    Printf.eprintf
      "ERROR: slicing explored MORE states than the unsliced baseline in \
       aggregate (ratio %.4f)\n"
      slice_ratio;
    exit 1
  end;
  if station_cells' <> [] && station_slice_ratio >= 1.0 then begin
    Printf.eprintf
      "ERROR: slicing shows no strict win on the station family \
       (ratio %.4f)\n"
      station_slice_ratio;
    exit 1
  end;
  let cert_rejections =
    List.filter
      (fun c -> match c.cert with Some cr -> not cr.cert_ok | None -> false)
      cells
  in
  if cert_rejections <> [] then begin
    Printf.eprintf "ERROR: %d cells had their certificate REJECTED\n"
      (List.length cert_rejections);
    exit 1
  end;
  (* certification must stay within 5x the producing exploration's
     wall-clock per cell; sub-50ms explorations are floored so timer
     noise on trivial cells cannot trip the gate *)
  let cert_blowups =
    List.filter
      (fun c ->
        match c.cert with
        | Some cr ->
            cr.cert_check_ms > 5. *. Float.max (cr.cert_explore_s *. 1000.) 50.
        | None -> false)
      cells
  in
  if cert_blowups <> [] then begin
    List.iter
      (fun c ->
        match c.cert with
        | Some cr ->
            Printf.eprintf "  %s: check %.1f ms vs explore %.1f ms\n" c.name
              cr.cert_check_ms (cr.cert_explore_s *. 1000.)
        | None -> ())
      cert_blowups;
    Printf.eprintf
      "ERROR: %d cells exceeded 5x exploration time in certification\n"
      (List.length cert_blowups);
    exit 1
  end
