open Ita_ta

(* ------------------------------------------------------------------ *)
(* Generic fixpoint solver                                             *)
(* ------------------------------------------------------------------ *)

(* Round-based chaotic iteration over int-indexed nodes in a join
   semilattice, with optional threshold widening: once a node's value
   has changed [widen_after] times, further growth goes through [widen]
   (which should jump to a coarse bound) so tall lattices converge in a
   bounded number of sweeps.  Both analyses below — the forward interval
   propagation and the backward L/U clock-bound resolution — are
   instances. *)
module Fixpoint = struct
  type 'a t = {
    values : 'a array;
    equal : 'a -> 'a -> bool;
    join : 'a -> 'a -> 'a;
    widen : ('a -> 'a -> 'a) option;
    widen_after : int;
    hits : int array;
    mutable dirty : bool;
  }

  let create ~n ~bottom ~equal ~join ?widen ?(widen_after = 8) () =
    {
      values = Array.make n bottom;
      equal;
      join;
      widen;
      widen_after;
      hits = Array.make n 0;
      dirty = false;
    }

  let get s i = s.values.(i)

  (* external state (outside the node array) changed: keep sweeping *)
  let touch s = s.dirty <- true

  let update s i v =
    let old = s.values.(i) in
    let j = s.join old v in
    let j =
      match s.widen with
      | Some w when s.hits.(i) >= s.widen_after && not (s.equal j old) ->
          w old j
      | _ -> j
    in
    if not (s.equal j old) then begin
      s.values.(i) <- j;
      s.hits.(i) <- s.hits.(i) + 1;
      s.dirty <- true
    end

  let solve s sweep =
    let continue = ref true in
    while !continue do
      s.dirty <- false;
      sweep ();
      if not s.dirty then continue := false
    done
end

(* ------------------------------------------------------------------ *)
(* Interval environments                                               *)
(* ------------------------------------------------------------------ *)

(* A per-location abstract environment maps every variable to an
   interval; [None] stands for "no reachable valuation" (bottom).

   Concurrency is handled by an interference split: a variable is
   {e stable} for component [i] iff no other component ever assigns it
   — only then is the per-location interval meaningful.  Everything
   else is read through the flow-insensitive global range [G(v)]: the
   hull of the initial value and every value ever assigned anywhere
   (clamped to the declared range, which is sound because the runtime
   raises [Update.Out_of_range] beyond it).  Stored environments keep
   unstable entries pinned at the declared range so joins converge;
   reads go through {!merged}. *)

type tri = T | F | U

type dead_reason =
  | Unreachable_source  (** no reachable valuation enters the source *)
  | Unsat_guard  (** guard unsatisfiable under the source intervals *)
  | No_partner  (** sync with no co-enabled partner edge *)

type edge_status = Live | Dead of dead_reason

type race = {
  race_chan : Channel.id;
  race_writer : int * int;  (** sender (comp, edge) *)
  race_other : int * int;  (** receiver (comp, edge) *)
  race_var : Expr.var;
}

type t = {
  net : Network.t;
  stable : bool array array;  (** [stable.(comp).(var)] *)
  global : (int * int) array;  (** [G(v)] *)
  loc_env : (int * int) array option array array;
      (** normalized per-location envs; [None] = flow-unreachable *)
  status : edge_status array array;  (** [status.(comp).(edge)] *)
  trivial_data : bool array array;
      (** data guard <> True yet always satisfied at the source *)
  races : race list;
}

let reachable fa comp loc = fa.loc_env.(comp).(loc) <> None
let global_ranges fa = fa.global
let stable_var fa comp v = fa.stable.(comp).(v)
let edge_status fa comp edge = fa.status.(comp).(edge)
let guard_data_trivial fa comp edge = fa.trivial_data.(comp).(edge)
let races fa = fa.races

(* merged view: stable vars from the location, the rest from G *)
let merged_of ~stable ~global env =
  Array.mapi (fun v iv -> if stable.(v) then iv else global.(v)) env

let env_at fa comp loc =
  Option.map
    (merged_of ~stable:fa.stable.(comp) ~global:fa.global)
    fa.loc_env.(comp).(loc)

(* ---- three-valued evaluation over intervals ---- *)

let tri_not = function T -> F | F -> T | U -> U

let rec eval3 env (b : Expr.bexp) =
  match b with
  | Expr.True -> T
  | Expr.False -> F
  | Expr.And (a, b) -> (
      match (eval3 env a, eval3 env b) with
      | F, _ | _, F -> F
      | T, T -> T
      | _ -> U)
  | Expr.Or (a, b) -> (
      match (eval3 env a, eval3 env b) with
      | T, _ | _, T -> T
      | F, F -> F
      | _ -> U)
  | Expr.Not a -> tri_not (eval3 env a)
  | Expr.Cmp (op, a, b) -> (
      let la, ha = Expr.interval env a and lb, hb = Expr.interval env b in
      match op with
      | Expr.Eq -> if ha < lb || hb < la then F else if la = ha && lb = hb && la = lb then T else U
      | Expr.Ne -> tri_not (if ha < lb || hb < la then F else if la = ha && lb = hb && la = lb then T else U)
      | Expr.Lt -> if ha < lb then T else if la >= hb then F else U
      | Expr.Le -> if ha <= lb then T else if la > hb then F else U
      | Expr.Gt -> if la > hb then T else if ha <= lb then F else U
      | Expr.Ge -> if la >= hb then T else if ha < lb then F else U)

(* ---- guard refinement ---- *)

(* Tighten [env] by the conjuncts of a data guard of shape [v ~ e] /
   [e ~ v]; returns [None] when the guard is definitely unsatisfiable
   under [env] (a refined interval empties, or three-valued evaluation
   says [F]).  Disjunctions and negations refine nothing but still
   participate in the [eval3] satisfiability probe. *)
let refine env (b : Expr.bexp) =
  if eval3 env b = F then None
  else begin
    let env = Array.copy env in
    let ok = ref true in
    let clamp v lo hi =
      let l, h = env.(v) in
      let l' = max l lo and h' = min h hi in
      if l' <= h' then env.(v) <- (l', h') else ok := false
    in
    let apply_cmp cmp v lo hi =
      match cmp with
      | Expr.Eq -> clamp v lo hi
      | Expr.Le -> clamp v min_int hi
      | Expr.Lt -> clamp v min_int (if hi = min_int then hi else hi - 1)
      | Expr.Ge -> clamp v lo max_int
      | Expr.Gt -> clamp v (if lo = max_int then lo else lo + 1) max_int
      | Expr.Ne -> ()
    in
    let flip = function
      | Expr.Lt -> Expr.Gt
      | Expr.Le -> Expr.Ge
      | Expr.Gt -> Expr.Lt
      | Expr.Ge -> Expr.Le
      | (Expr.Eq | Expr.Ne) as c -> c
    in
    let rec go = function
      | Expr.And (a, b) ->
          go a;
          go b
      | Expr.Cmp (cmp, Expr.Var v, e) ->
          let lo, hi = Expr.interval env e in
          apply_cmp cmp v lo hi
      | Expr.Cmp (cmp, e, Expr.Var v) ->
          let lo, hi = Expr.interval env e in
          apply_cmp (flip cmp) v lo hi
      | _ -> ()
    in
    go b;
    if !ok then Some env else None
  end

(* Definite clock-guard contradiction under [env]: a lower-bound atom
   whose smallest possible constant exceeds the largest possible
   constant of an upper-bound atom on the same clock (over real-valued
   clocks, so strictness only matters at equality), or an upper bound
   that is certainly negative.  Invariants are not consulted — this is
   a guard-local test. *)
let clock_guard_unsat env (g : Guard.t) =
  let unsat = ref false in
  List.iter
    (fun (a : Guard.atom) ->
      let _, hi = Expr.interval env a.Guard.bound in
      match a.Guard.rel with
      | Guard.Le | Guard.Eq -> if hi < 0 then unsat := true
      | Guard.Lt -> if hi <= 0 then unsat := true
      | Guard.Ge | Guard.Gt -> ())
    g.Guard.clocks;
  List.iter
    (fun (l : Guard.atom) ->
      match l.Guard.rel with
      | Guard.Ge | Guard.Gt | Guard.Eq ->
          let llo, _ = Expr.interval env l.Guard.bound in
          List.iter
            (fun (u : Guard.atom) ->
              if u.Guard.clock = l.Guard.clock then
                match u.Guard.rel with
                | Guard.Le | Guard.Lt | Guard.Eq ->
                    let _, uhi = Expr.interval env u.Guard.bound in
                    let strict =
                      l.Guard.rel = Guard.Gt || u.Guard.rel = Guard.Lt
                    in
                    if llo > uhi || (strict && llo >= uhi) then unsat := true
                | Guard.Ge | Guard.Gt -> ())
            g.Guard.clocks
      | Guard.Le | Guard.Lt -> ())
    g.Guard.clocks;
  !unsat

(* ------------------------------------------------------------------ *)
(* The forward interval analysis                                       *)
(* ------------------------------------------------------------------ *)

let written_vars (u : Update.t) =
  List.filter_map
    (function Update.Set_var (v, _) -> Some v | Update.Reset_clock _ -> None)
    u

let analyze (net : Network.t) =
  let nc = Array.length net.Network.automata in
  let nv = Array.length net.Network.var_names in
  let declared = net.Network.var_ranges in
  (* interference: which components assign which variables *)
  let writes = Array.make_matrix nc nv false in
  Array.iteri
    (fun i (a : Automaton.t) ->
      Array.iter
        (fun (e : Automaton.edge) ->
          List.iter (fun v -> writes.(i).(v) <- true)
            (written_vars e.Automaton.update))
        a.Automaton.edges)
    net.Network.automata;
  let stable =
    Array.init nc (fun i ->
        Array.init nv (fun v ->
            let rec others j =
              j < nc && ((j <> i && writes.(j).(v)) || others (j + 1))
            in
            not (others 0)))
  in
  (* node flattening: one node per (component, location) *)
  let offsets = Array.make nc 0 in
  let total = ref 0 in
  Array.iteri
    (fun i (a : Automaton.t) ->
      offsets.(i) <- !total;
      total := !total + Array.length a.Automaton.locations)
    net.Network.automata;
  let node i l = offsets.(i) + l in
  let widen_env old j =
    match (old, j) with
    | None, x | x, None -> x
    | Some o, Some jn ->
        Some
          (Array.mapi
             (fun v (jl, jh) ->
               let ol, oh = o.(v) in
               let dl, dh = declared.(v) in
               ((if jl < ol then dl else jl), (if jh > oh then dh else jh)))
             jn)
  in
  let join_env a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b ->
        Some
          (Array.mapi
             (fun v (la, ha) ->
               let lb, hb = b.(v) in
               (min la lb, max ha hb))
             a)
  in
  let solver =
    Fixpoint.create ~n:!total ~bottom:None ~equal:( = ) ~join:join_env
      ~widen:widen_env ()
  in
  (* the flow-insensitive global range, with its own widening counters *)
  let global = Array.copy net.Network.var_init |> Array.map (fun v -> (v, v)) in
  let g_hits = Array.make nv 0 in
  let g_update v (lo, hi) =
    let dl, dh = declared.(v) in
    let lo = max lo dl and hi = min hi dh in
    if lo <= hi then begin
      let gl, gh = global.(v) in
      let nl = min gl lo and nh = max gh hi in
      let nl, nh =
        if g_hits.(v) >= 8 then
          ((if nl < gl then dl else nl), (if nh > gh then dh else nh))
        else (nl, nh)
      in
      if (nl, nh) <> global.(v) then begin
        global.(v) <- (nl, nh);
        g_hits.(v) <- g_hits.(v) + 1;
        Fixpoint.touch solver
      end
    end
  in
  let merged i env = merged_of ~stable:stable.(i) ~global env in
  let normalize i env =
    Array.mapi (fun v iv -> if stable.(i).(v) then iv else declared.(v)) env
  in
  (* sequential update transfer: [read] supplies the evaluation
     environment (already refined as appropriate for the caller);
     assigned values feed G and, clamped, the running environment.
     Returns [None] when an assignment definitely escapes its declared
     range — the runtime would raise, so nothing propagates. *)
  let apply_updates read (u : Update.t) =
    let cur = Array.copy read in
    let ok = ref true in
    List.iter
      (fun (asg : Update.assign) ->
        if !ok then
          match asg with
          | Update.Reset_clock _ -> ()
          | Update.Set_var (v, rhs) ->
              let lo, hi = Expr.interval cur rhs in
              g_update v (lo, hi);
              let dl, dh = declared.(v) in
              let lo = max lo dl and hi = min hi dh in
              if lo <= hi then cur.(v) <- (lo, hi) else ok := false)
      u;
    if !ok then Some cur else None
  in
  (* receiver updates run after the sender's, so unstable reads must go
     through G rather than the guard-refined snapshot *)
  let recv_read j refined =
    Array.mapi (fun v iv -> if stable.(j).(v) then iv else global.(v)) refined
  in
  let edge i ei = Automaton.edge net.Network.automata.(i) ei in
  (* sync edge tables *)
  let nch = Array.length net.Network.channels in
  let senders = Array.make nch [] and receivers = Array.make nch [] in
  Array.iteri
    (fun i (a : Automaton.t) ->
      Array.iteri
        (fun ei (e : Automaton.edge) ->
          match e.Automaton.sync with
          | Automaton.NoSync -> ()
          | Automaton.Send c -> senders.(c) <- (i, ei) :: senders.(c)
          | Automaton.Recv c -> receivers.(c) <- (i, ei) :: receivers.(c))
        a.Automaton.edges)
    net.Network.automata;
  let src_env i ei =
    match Fixpoint.get solver (node i (edge i ei).Automaton.src) with
    | None -> None
    | Some env -> Some (merged i env)
  in
  (* joint source environment of a co-enabled candidate pair: stable
     vars from their respective locations, the rest from G *)
  let pair_env i envi j envj =
    Array.init nv (fun v ->
        if stable.(i).(v) then envi.(v)
        else if stable.(j).(v) then envj.(v)
        else global.(v))
  in
  let refine_guard env (g : Guard.t) =
    match refine env g.Guard.data with
    | None -> None
    | Some env -> if clock_guard_unsat env g then None else Some env
  in
  let propagate i dst env = Fixpoint.update solver (node i dst) (Some (normalize i env)) in
  (* one co-enabled sender/receiver pair: refine by both guards, then
     run the sender's update first (matching [Semantics.fire]) *)
  let pair_transfer (i, se) (j, re) =
    match (src_env i se, src_env j re) with
    | Some envi, Some envj -> (
        let es = edge i se and er = edge j re in
        let env = pair_env i envi j envj in
        match refine_guard env es.Automaton.guard with
        | None -> false
        | Some env -> (
            match refine_guard env er.Automaton.guard with
            | None -> false
            | Some env ->
                (match apply_updates env es.Automaton.update with
                | Some post -> propagate i es.Automaton.dst post
                | None -> ());
                (match apply_updates (recv_read j env) er.Automaton.update with
                | Some post -> propagate j er.Automaton.dst post
                | None -> ());
                true))
    | _ -> false
  in
  let sweep () =
    (* initial states *)
    Array.iteri
      (fun i (a : Automaton.t) ->
        let init =
          Array.init nv (fun v ->
              if stable.(i).(v) then
                (net.Network.var_init.(v), net.Network.var_init.(v))
              else declared.(v))
        in
        Fixpoint.update solver (node i a.Automaton.initial) (Some init))
      net.Network.automata;
    (* internal edges *)
    Array.iteri
      (fun i (a : Automaton.t) ->
        Array.iter
          (fun (e : Automaton.edge) ->
            if e.Automaton.sync = Automaton.NoSync then
              match Fixpoint.get solver (node i e.Automaton.src) with
              | None -> ()
              | Some env -> (
                  match refine_guard (merged i env) e.Automaton.guard with
                  | None -> ()
                  | Some env -> (
                      match apply_updates env e.Automaton.update with
                      | Some post -> propagate i e.Automaton.dst post
                      | None -> ())))
          a.Automaton.edges)
      net.Network.automata;
    (* synchronizations *)
    Array.iteri
      (fun c (ch : Channel.t) ->
        (* broadcast senders fire without receivers *)
        if ch.Channel.kind = Channel.Broadcast then
          List.iter
            (fun (i, se) ->
              match src_env i se with
              | None -> ()
              | Some env -> (
                  let e = edge i se in
                  match refine_guard env e.Automaton.guard with
                  | None -> ()
                  | Some env -> (
                      match apply_updates env e.Automaton.update with
                      | Some post -> propagate i e.Automaton.dst post
                      | None -> ())))
            senders.(c);
        List.iter
          (fun (i, se) ->
            List.iter
              (fun (j, re) -> if j <> i then ignore (pair_transfer (i, se) (j, re)))
              receivers.(c))
          senders.(c))
      net.Network.channels
  in
  Fixpoint.solve solver sweep;
  (* ---- final edge classification ---- *)
  let loc_env =
    Array.init nc (fun i ->
        let nl = Array.length net.Network.automata.(i).Automaton.locations in
        Array.init nl (fun l -> Fixpoint.get solver (node i l)))
  in
  let co_enabled (i, se) (j, re) =
    match (src_env i se, src_env j re) with
    | Some envi, Some envj -> (
        let env = pair_env i envi j envj in
        match refine_guard env (edge i se).Automaton.guard with
        | None -> false
        | Some env -> refine_guard env (edge j re).Automaton.guard <> None)
    | _ -> false
  in
  let structural_partners c i = function
    | `Send -> List.exists (fun (j, _) -> j <> i) receivers.(c)
    | `Recv -> List.exists (fun (j, _) -> j <> i) senders.(c)
  in
  let live_partner c i ei = function
    | `Send -> List.exists (fun (j, re) -> j <> i && co_enabled (i, ei) (j, re)) receivers.(c)
    | `Recv -> List.exists (fun (j, se) -> j <> i && co_enabled (j, se) (i, ei)) senders.(c)
  in
  let status =
    Array.mapi
      (fun i (a : Automaton.t) ->
        Array.mapi
          (fun ei (e : Automaton.edge) ->
            if loc_env.(i).(e.Automaton.src) = None then
              Dead Unreachable_source
            else
              match src_env i ei with
              | None -> Dead Unreachable_source
              | Some env -> (
                  match refine_guard env e.Automaton.guard with
                  | None -> Dead Unsat_guard
                  | Some _ -> (
                      match e.Automaton.sync with
                      | Automaton.NoSync -> Live
                      | Automaton.Send c
                        when net.Network.channels.(c).Channel.kind
                             = Channel.Broadcast ->
                          Live
                      | Automaton.Send c ->
                          (* only flag edges whose channel does have
                             structural partners: a partnerless channel
                             is the channel-peer pass's finding *)
                          if
                            structural_partners c i `Send
                            && not (live_partner c i ei `Send)
                          then Dead No_partner
                          else Live
                      | Automaton.Recv c ->
                          if
                            structural_partners c i `Recv
                            && not (live_partner c i ei `Recv)
                          then Dead No_partner
                          else Live)))
          a.Automaton.edges)
      net.Network.automata
  in
  let trivial_data =
    Array.mapi
      (fun i (a : Automaton.t) ->
        Array.mapi
          (fun ei (e : Automaton.edge) ->
            status.(i).(ei) = Live
            && e.Automaton.guard.Guard.data <> Expr.True
            &&
            match src_env i ei with
            | None -> false
            | Some env -> eval3 env e.Automaton.guard.Guard.data = T)
          a.Automaton.edges)
      net.Network.automata
  in
  (* shared-variable write-write races on co-enabled synchronizing
     edges: the receiver's assignment silently overwrites the
     sender's (participants update in sender-first order) *)
  let races = ref [] in
  Array.iteri
    (fun c (_ch : Channel.t) ->
      List.iter
        (fun (i, se) ->
          List.iter
            (fun (j, re) ->
              if
                j <> i
                && status.(i).(se) = Live
                && status.(j).(re) = Live
                && co_enabled (i, se) (j, re)
              then begin
                let ws = written_vars (edge i se).Automaton.update in
                let wr = written_vars (edge j re).Automaton.update in
                List.iter
                  (fun v ->
                    if List.mem v ws then
                      races :=
                        {
                          race_chan = c;
                          race_writer = (i, se);
                          race_other = (j, re);
                          race_var = v;
                        }
                        :: !races)
                  (List.sort_uniq compare wr)
              end)
            receivers.(c))
        senders.(c))
    net.Network.channels;
  {
    net;
    stable;
    global;
    loc_env;
    status;
    trivial_data;
    races = List.rev !races;
  }

(* ------------------------------------------------------------------ *)
(* The backward L/U clock-bound fixpoint                               *)
(* ------------------------------------------------------------------ *)

(* Per-location L/U constants recomputed over the {e live} part of the
   control-flow graph with guard/reset constants evaluated under the
   flow-refined intervals — the second instantiation of {!Fixpoint}.
   The result is pointwise-min'ed against the builder's one-shot
   analysis, so bounds can only tighten; [lbase]/[ubase] floors (query
   constants) are untouched.  Components whose location-resolved table
   would exceed the builder's size cap keep their existing rows. *)

let refine_lu fa (net : Network.t) =
  let n_clocks = Array.length net.Network.clock_names in
  let lu_of i (a : Automaton.t) =
    let nl = Array.length a.Automaton.locations in
    if nl * n_clocks > 65536 then Option.None
    else begin
      let reach l = fa.loc_env.(i).(l) <> None in
      (* per-edge constants under the refined source environment,
         computed once: (guard atoms as (clock, rel, c)), reset
         magnitudes, reset clock set *)
      let edge_consts =
        Array.mapi
          (fun ei (e : Automaton.edge) ->
            if fa.status.(i).(ei) <> Live then Option.None
            else
              match env_at fa i e.Automaton.src with
              | Option.None -> Option.None
              | Some env ->
                  let env =
                    match refine env e.Automaton.guard.Guard.data with
                    | Some env -> env
                    | Option.None -> env
                  in
                  (* a receiver's update runs after the sender's: read
                     unstable vars through G, not the refined snapshot *)
                  let read =
                    match e.Automaton.sync with
                    | Automaton.Recv _ ->
                        Array.mapi
                          (fun v iv ->
                            if fa.stable.(i).(v) then iv else fa.global.(v))
                          env
                    | Automaton.NoSync | Automaton.Send _ -> Array.copy env
                  in
                  let atoms =
                    List.map
                      (fun (at : Guard.atom) ->
                        let lo, hi = Expr.interval env at.Guard.bound in
                        (at.Guard.clock, at.Guard.rel, max (abs lo) (abs hi)))
                      e.Automaton.guard.Guard.clocks
                  in
                  let mags = ref [] and resets = ref [] in
                  List.iter
                    (fun (asg : Update.assign) ->
                      match asg with
                      | Update.Reset_clock (x, rhs) ->
                          let lo, hi = Expr.interval read rhs in
                          mags := (x, max (abs lo) (abs hi)) :: !mags;
                          resets := x :: !resets
                      | Update.Set_var (v, rhs) ->
                          let lo, hi = Expr.interval read rhs in
                          let dl, dh = net.Network.var_ranges.(v) in
                          let lo = max lo dl and hi = min hi dh in
                          if lo <= hi then read.(v) <- (lo, hi))
                    e.Automaton.update;
                  Some (atoms, !mags, !resets))
          a.Automaton.edges
      in
      let inv_consts =
        Array.mapi
          (fun l (loc : Automaton.location) ->
            if not (reach l) then []
            else
              match env_at fa i l with
              | Option.None -> []
              | Some env ->
                  List.map
                    (fun (at : Guard.atom) ->
                      let lo, hi = Expr.interval env at.Guard.bound in
                      (at.Guard.clock, at.Guard.rel, max (abs lo) (abs hi)))
                    loc.Automaton.invariant.Guard.clocks)
          a.Automaton.locations
      in
      (* value per location: L row ++ U row *)
      let solver =
        Fixpoint.create ~n:nl
          ~bottom:(Array.make (2 * n_clocks) 0)
          ~equal:( = )
          ~join:(fun a b -> Array.mapi (fun k c -> max c b.(k)) a)
          ()
      in
      (* chaotic per-location update (backward: sources absorb their
         successors' rows) *)
      let sweep () =
        for l = nl - 1 downto 0 do
          if reach l then begin
            let row = Array.copy (Fixpoint.get solver l) in
            let bump_l x c = if c > row.(x) then row.(x) <- c in
            let bump_u x c =
              if c > row.(n_clocks + x) then row.(n_clocks + x) <- c
            in
            let scan (x, rel, c) =
              match rel with
              | Guard.Ge | Guard.Gt -> bump_l x c
              | Guard.Le | Guard.Lt -> bump_u x c
              | Guard.Eq ->
                  bump_l x c;
                  bump_u x c
            in
            List.iter scan inv_consts.(l);
            List.iter
              (fun ei ->
                match edge_consts.(ei) with
                | Option.None -> ()
                | Some (atoms, mags, resets) ->
                    List.iter scan atoms;
                    List.iter
                      (fun (x, c) ->
                        bump_l x c;
                        bump_u x c)
                      mags;
                    let dst =
                      Fixpoint.get solver (Automaton.edge a ei).Automaton.dst
                    in
                    for x = 1 to n_clocks - 1 do
                      if not (List.mem x resets) then begin
                        bump_l x dst.(x);
                        bump_u x dst.(n_clocks + x)
                      end
                    done)
              (Automaton.out_edges a l);
            Fixpoint.update solver l row
          end
        done
      in
      Fixpoint.solve solver sweep;
      let l_rows =
        Array.init nl (fun l ->
            let row = Fixpoint.get solver l in
            Array.init n_clocks (fun x -> min net.Network.lloc.(i).(l).(x) row.(x)))
      in
      let u_rows =
        Array.init nl (fun l ->
            let row = Fixpoint.get solver l in
            Array.init n_clocks (fun x ->
                min net.Network.uloc.(i).(l).(x) row.(n_clocks + x)))
      in
      Some (l_rows, u_rows)
    end
  in
  let lu = Array.mapi lu_of net.Network.automata in
  let lloc =
    Array.mapi
      (fun i rows ->
        match rows with Some (l, _) -> l | Option.None -> net.Network.lloc.(i))
      lu
  in
  let uloc =
    Array.mapi
      (fun i rows ->
        match rows with Some (_, u) -> u | Option.None -> net.Network.uloc.(i))
      lu
  in
  { net with Network.lloc; uloc }

let refine_network net = refine_lu (analyze net) net

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_interval ppf (lo, hi) =
  if lo = hi then Format.fprintf ppf "%d" lo
  else Format.fprintf ppf "[%d, %d]" lo hi

let pp ?resolve fa ppf () =
  let net = fa.net in
  let pos site =
    match resolve with
    | Some f -> ( match f site with Some p -> p ^ ": " | None -> "")
    | None -> ""
  in
  Array.iteri
    (fun i (a : Automaton.t) ->
      Format.fprintf ppf "%s%s@."
        (pos (`Automaton i))
        a.Automaton.name;
      Array.iteri
        (fun l (loc : Automaton.location) ->
          Format.fprintf ppf "%s  %s: " (pos (`Location (i, l))) loc.Automaton.loc_name;
          (match env_at fa i l with
          | None -> Format.fprintf ppf "unreachable"
          | Some env ->
              if Array.length env = 0 then Format.fprintf ppf "reachable"
              else begin
                let first = ref true in
                Array.iteri
                  (fun v iv ->
                    if !first then first := false
                    else Format.fprintf ppf ", ";
                    Format.fprintf ppf "%s in %a" net.Network.var_names.(v)
                      pp_interval iv)
                  env
              end);
          Format.fprintf ppf "@.")
        a.Automaton.locations)
    net.Network.automata;
  if Array.length net.Network.var_names > 0 then begin
    Format.fprintf ppf "global ranges:@.";
    Array.iteri
      (fun v iv ->
        let dl, dh = net.Network.var_ranges.(v) in
        Format.fprintf ppf "  %s in %a (declared [%d, %d])@."
          net.Network.var_names.(v) pp_interval iv dl dh)
      fa.global
  end
