(** Well-formedness diagnostics over a network of timed automata.

    [run] executes every pass and returns the findings sorted by
    severity.  The passes are static — no zone graph is built — so they
    are cheap enough to run on every design-space candidate before the
    checker.  Since the dataflow engine ({!Flow}) landed, a subset is
    {e semantic}: powered by the per-location interval fixpoint rather
    than a syntactic scan.  The passes:

    - [unused-clock]: a clock no guard or invariant ever tests;
    - [never-reset-clock]: a clock that is tested but never reset
      (measures absolute time; often intentional, hence [Info]);
    - [dead-var]: an integer variable that is never read;
    - [range-overflow]: an update whose interval enclosure — under the
      flow analysis's per-location environment at the edge source,
      refined by the edge's own guard — can leave the variable's
      declared range (would raise [Update.Out_of_range] at exploration
      time), or a clock reset that can be negative;
    - [unreachable-location]: no edge path from the initial location;
    - [invariant-misuse]: lower-bound or equality invariants, and data
      predicates in invariants (ignored by the symbolic semantics);
    - [urgent-clock-guard]: clock guards on urgent-channel edges or
      broadcast receivers (rejected by {!Network.Builder.build} — only
      networks built with [~validate:false] can reach this pass);
    - [channel-peer]: binary channels with senders but no receivers (or
      vice versa), channels never used, binary channels whose only
      sender/receiver pairs live in one component.  A broadcast channel
      with senders and no receivers is silent: that is the paper's
      [hurry!] greediness idiom;
    - [committed-cycle]: a cycle entirely through committed locations —
      the checker can livelock on zero-time discrete steps;
    - [zeno-cycle]: a structural cycle that resets no clock which is
      also bounded from below on the cycle, so runs may converge in
      time.  Downgraded to [Info] when the cycle synchronizes (the
      pacing may come from the partner, invisible per-component);
    - [dead-edge] (semantic): an edge whose guard is unsatisfiable
      under the inferred intervals, a synchronizing edge no partner is
      ever co-enabled with, or a syntactically reachable location no
      valuation flows into (reported once at the location; its
      outgoing edges are suppressed as cascade noise);
    - [always-true-guard] (semantic, [Hint]): a non-trivial data guard
      that evaluates to true at every reachable valuation;
    - [sync-write-race] (semantic): sender and receiver of a
      co-enabled synchronization pair both assign the same shared
      variable — participants update sender-first, so the receiver's
      value silently wins;
    - [outside-query-cone] (semantic, [Hint]): a component outside the
      backward cone of influence of the observed query ({!Slice}) —
      it cannot block, force or retime anything the observed
      components, clocks or variables depend on, so the checker
      removes it.  Only emitted when [observed_comps] is given;
    - [merged-query-clock]: an observed clock that quasi-equal clock
      merging ([Slice.CoiMerge]) folds into another clock with the
      identical constant-reset pattern on every edge.  The verdict is
      still correct — queries are rewritten onto the representative —
      but pinning the clock ({!Network.bump_clock_bound}) is the way
      to keep it a distinct zone dimension.  Only emitted when
      [observed_clocks] is given and the clock is not pinned. *)

open Ita_ta

val run :
  ?observed_comps:int list ->
  ?observed_clocks:Guard.clock list ->
  ?observed_vars:Expr.var list ->
  Network.t ->
  Diagnostic.t list
(** [observed_clocks] / [observed_vars] are referenced from outside the
    model (reachability queries, WCRT sup measurements) and are exempt
    from the unused/never-reset/dead passes, as are clocks already
    pinned by {!Network.bump_clock_bound}.  [observed_comps] are the
    components a query watches; when given, the [outside-query-cone]
    pass reports components the slicer would remove for that query. *)

val output_order :
  ?pos:(Diagnostic.site -> (int * int) option) ->
  Diagnostic.t list ->
  Diagnostic.t list
(** Deterministic print order: positioned findings first by
    (line, col), the rest in component-major site order, ties broken
    by the stable pass id. *)

val pp_report :
  ?resolve:(Diagnostic.site -> string option) ->
  ?pos:(Diagnostic.site -> (int * int) option) ->
  Network.t ->
  Format.formatter ->
  Diagnostic.t list ->
  unit
(** One finding per line (in {!output_order}) followed by an
    [N errors, N warnings, N info, N hints] summary line. *)

val to_json :
  ?resolve:(Diagnostic.site -> string option) ->
  ?pos:(Diagnostic.site -> (int * int) option) ->
  Network.t ->
  Diagnostic.t list ->
  string
(** Machine-readable report:
    [{"findings": [{"severity", "pass", "site", "position"?,
    "message", "fix"?}, ...], "summary": {...}}], findings in
    {!output_order}. *)
