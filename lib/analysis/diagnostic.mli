(** Structured findings of the static analyzer.

    A diagnostic names the pass that produced it, a severity, the
    precise model site it anchors to (clock, variable, channel,
    automaton, location or edge) and a human message with an optional
    suggested fix.  Sites are index-based so that a caller holding
    richer information — the [.ta] elaborator keeps source positions —
    can resolve them to [file:line:col] through the [resolve] hook of
    {!pp}. *)

open Ita_ta

type severity = Hint | Info | Warning | Error

type site =
  | Network_site
  | Clock_site of Guard.clock
  | Var_site of Expr.var
  | Channel_site of Channel.id
  | Automaton_site of int
  | Location_site of { comp : int; loc : int }
  | Edge_site of { comp : int; edge : int }

(** One lint pass; {!Lint.run} runs them all. *)
type pass =
  | Unused_clock  (** clock never tested by any guard or invariant *)
  | Never_reset_clock  (** clock tested but reset on no edge *)
  | Dead_var  (** integer variable never read *)
  | Range_overflow  (** update can leave a declared variable range *)
  | Unreachable_location  (** no edge path from the initial location *)
  | Invariant_misuse  (** lower-bound / equality / data invariants *)
  | Urgent_clock_guard  (** clock guard on an urgent or broadcast sync *)
  | Channel_peer  (** sends without receivers and the like *)
  | Committed_cycle  (** discrete livelock through committed locations *)
  | Zeno_cycle  (** cycle resetting no clock, crossing no lower bound *)
  | Dead_edge  (** edge can never fire under the interval analysis *)
  | Trivial_guard  (** non-trivial data guard that always evaluates true *)
  | Sync_write_race  (** write-write collision on a co-enabled sync pair *)
  | Outside_cone
      (** component outside the backward cone of influence of the
          observed query — it can neither block, force nor retime
          anything the query can see ({!Slice}); only emitted when
          {!Lint.run} is given [observed_comps] *)
  | Merged_query_clock
      (** a clock the query observes that quasi-equal merging
          ([CoiMerge]) folds into another clock with the identical
          reset pattern; only emitted when {!Lint.run} is given
          [observed_clocks] and the clock is not pinned *)

type t = {
  pass : pass;
  severity : severity;
  site : site;
  message : string;
  fix : string option;
}

val pass_name : pass -> string
(** Kebab-case, as printed inside the [severity[pass-name]] tag. *)

val pass_id : pass -> int
(** Stable numeric id; the deterministic output order ties on it. *)

val severity_name : severity -> string

val compare_severity : severity -> severity -> int
(** [Hint < Info < Warning < Error]. *)

val worst : t list -> severity option
(** The highest severity present; [None] on a clean report. *)

val count : severity -> t list -> int

val by_pass : pass -> t list -> t list

val sort : t list -> t list
(** Stable order: severity descending, then site (component-major). *)

val site_key : site -> int * int * int * int
(** Component-major site order, for callers composing their own
    deterministic output orders. *)

val pp_site : Network.t -> Format.formatter -> site -> unit
(** ["BUS"], ["BUS.claim"], ["BUS: claim -> run"], ["clock x"], ... *)

val pp :
  ?resolve:(site -> string option) ->
  Network.t ->
  Format.formatter ->
  t ->
  unit
(** [error[urgent-clock-guard] BUS: claim -> run: ...message...
    (fix: ...)], prefixed by [resolve site] (e.g. [model.ta:12:3:])
    when the hook produces a position. *)
