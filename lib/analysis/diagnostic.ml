open Ita_ta

type severity = Hint | Info | Warning | Error

type site =
  | Network_site
  | Clock_site of Guard.clock
  | Var_site of Expr.var
  | Channel_site of Channel.id
  | Automaton_site of int
  | Location_site of { comp : int; loc : int }
  | Edge_site of { comp : int; edge : int }

type pass =
  | Unused_clock
  | Never_reset_clock
  | Dead_var
  | Range_overflow
  | Unreachable_location
  | Invariant_misuse
  | Urgent_clock_guard
  | Channel_peer
  | Committed_cycle
  | Zeno_cycle
  | Dead_edge
  | Trivial_guard
  | Sync_write_race
  | Outside_cone
  | Merged_query_clock

type t = {
  pass : pass;
  severity : severity;
  site : site;
  message : string;
  fix : string option;
}

let pass_name = function
  | Unused_clock -> "unused-clock"
  | Never_reset_clock -> "never-reset-clock"
  | Dead_var -> "dead-var"
  | Range_overflow -> "range-overflow"
  | Unreachable_location -> "unreachable-location"
  | Invariant_misuse -> "invariant-misuse"
  | Urgent_clock_guard -> "urgent-clock-guard"
  | Channel_peer -> "channel-peer"
  | Committed_cycle -> "committed-cycle"
  | Zeno_cycle -> "zeno-cycle"
  | Dead_edge -> "dead-edge"
  | Trivial_guard -> "always-true-guard"
  | Sync_write_race -> "sync-write-race"
  | Outside_cone -> "outside-query-cone"
  | Merged_query_clock -> "merged-query-clock"

(* stable numeric pass id, part of the deterministic output order *)
let pass_id = function
  | Unused_clock -> 0
  | Never_reset_clock -> 1
  | Dead_var -> 2
  | Range_overflow -> 3
  | Unreachable_location -> 4
  | Invariant_misuse -> 5
  | Urgent_clock_guard -> 6
  | Channel_peer -> 7
  | Committed_cycle -> 8
  | Zeno_cycle -> 9
  | Dead_edge -> 10
  | Trivial_guard -> 11
  | Sync_write_race -> 12
  | Outside_cone -> 13
  | Merged_query_clock -> 14

let severity_name = function
  | Hint -> "hint"
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Hint -> 0 | Info -> 1 | Warning -> 2 | Error -> 3
let compare_severity a b = compare (severity_rank a) (severity_rank b)

let worst = function
  | [] -> None
  | ds ->
      Some
        (List.fold_left
           (fun acc d ->
             if compare_severity d.severity acc > 0 then d.severity else acc)
           Hint ds)

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let by_pass p ds = List.filter (fun d -> d.pass = p) ds

(* Component-major order so a report reads top to bottom through the
   model; the leading tag groups network-level findings first. *)
let site_key = function
  | Network_site -> (0, 0, 0, 0)
  | Clock_site x -> (1, x, 0, 0)
  | Var_site v -> (2, v, 0, 0)
  | Channel_site c -> (3, c, 0, 0)
  | Automaton_site i -> (4, i, 0, 0)
  | Location_site { comp; loc } -> (5, comp, 0, loc)
  | Edge_site { comp; edge } -> (5, comp, 1, edge)

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare_severity b.severity a.severity in
      if c <> 0 then c else compare (site_key a.site) (site_key b.site))
    ds

let pp_site (net : Network.t) ppf = function
  | Network_site -> Format.fprintf ppf "network"
  | Clock_site x -> Format.fprintf ppf "clock %s" net.Network.clock_names.(x)
  | Var_site v -> Format.fprintf ppf "var %s" net.Network.var_names.(v)
  | Channel_site c ->
      Format.fprintf ppf "chan %s" net.Network.channels.(c).Channel.name
  | Automaton_site i ->
      Format.fprintf ppf "%s" net.Network.automata.(i).Automaton.name
  | Location_site { comp; loc } ->
      let a = net.Network.automata.(comp) in
      Format.fprintf ppf "%s.%s" a.Automaton.name
        (Automaton.location a loc).Automaton.loc_name
  | Edge_site { comp; edge } ->
      let a = net.Network.automata.(comp) in
      let e = Automaton.edge a edge in
      Format.fprintf ppf "%s: %s -> %s" a.Automaton.name
        (Automaton.location a e.Automaton.src).Automaton.loc_name
        (Automaton.location a e.Automaton.dst).Automaton.loc_name

let pp ?resolve (net : Network.t) ppf d =
  (match resolve with
  | Some f -> (
      match f d.site with
      | Some pos -> Format.fprintf ppf "%s: " pos
      | None -> ())
  | None -> ());
  Format.fprintf ppf "%s[%s] %a: %s"
    (severity_name d.severity)
    (pass_name d.pass) (pp_site net) d.site d.message;
  match d.fix with
  | Some f -> Format.fprintf ppf " (fix: %s)" f
  | None -> ()
