open Ita_ta
module D = Diagnostic

type mode = Off | Coi | CoiMerge

type goal = {
  g_comps : int list;
  g_clocks : Guard.clock list;
  g_vars : Expr.var list;
}

type t = {
  original : Network.t;
  net : Network.t;
  mode : mode;
  identity : bool;
  comp_map : int option array;
  comp_unmap : int array;
  edge_maps : int option array array;
  edge_unmaps : int array array;
  clock_map : int option array;
  clock_unmap : int array;
  var_map : int option array;
  var_unmap : int array;
  removed_comps : int list;
  removed_clocks : int list;
  removed_vars : int list;
  merged : (Guard.clock * Guard.clock) list;
  dropped_edges : (int * int) list;
}

let existsi p arr =
  let n = Array.length arr in
  let rec go i = i < n && (p i arr.(i) || go (i + 1)) in
  go 0

(* A reset expression whose evaluation can neither raise (division) nor
   go negative (the runtime asserts non-negative resets); only such
   resets may be dropped together with their clock. *)
let rec div_free = function
  | Expr.Int _ | Expr.Var _ -> true
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) ->
      div_free a && div_free b
  | Expr.Div _ -> false
  | Expr.Neg a -> div_free a
  | Expr.Ite (c, a, b) -> bdiv_free c && div_free a && div_free b

and bdiv_free = function
  | Expr.True | Expr.False -> true
  | Expr.Cmp (_, a, b) -> div_free a && div_free b
  | Expr.And (a, b) | Expr.Or (a, b) -> bdiv_free a && bdiv_free b
  | Expr.Not a -> bdiv_free a

let safe_reset ranges rhs = div_free rhs && fst (Expr.interval ranges rhs) >= 0

(* ---- index rewriting over a (clock_map, var_map) pair ---- *)

let rewrite_clock clock_map x =
  match clock_map.(x) with
  | Some x' -> x'
  | None -> invalid_arg "Slice: guard mentions a removed clock"

let rewrite_var var_map v =
  match var_map.(v) with
  | Some v' -> v'
  | None -> invalid_arg "Slice: expression mentions a removed variable"

let rec rewrite_iexp var_map = function
  | Expr.Int _ as e -> e
  | Expr.Var v -> Expr.Var (rewrite_var var_map v)
  | Expr.Add (a, b) -> Expr.Add (rewrite_iexp var_map a, rewrite_iexp var_map b)
  | Expr.Sub (a, b) -> Expr.Sub (rewrite_iexp var_map a, rewrite_iexp var_map b)
  | Expr.Mul (a, b) -> Expr.Mul (rewrite_iexp var_map a, rewrite_iexp var_map b)
  | Expr.Div (a, b) -> Expr.Div (rewrite_iexp var_map a, rewrite_iexp var_map b)
  | Expr.Neg a -> Expr.Neg (rewrite_iexp var_map a)
  | Expr.Ite (c, a, b) ->
      Expr.Ite
        (rewrite_bexp var_map c, rewrite_iexp var_map a, rewrite_iexp var_map b)

and rewrite_bexp var_map = function
  | (Expr.True | Expr.False) as b -> b
  | Expr.Cmp (op, a, b) ->
      Expr.Cmp (op, rewrite_iexp var_map a, rewrite_iexp var_map b)
  | Expr.And (a, b) -> Expr.And (rewrite_bexp var_map a, rewrite_bexp var_map b)
  | Expr.Or (a, b) -> Expr.Or (rewrite_bexp var_map a, rewrite_bexp var_map b)
  | Expr.Not a -> Expr.Not (rewrite_bexp var_map a)

let rewrite_guard clock_map var_map (g : Guard.t) =
  {
    Guard.clocks =
      List.map
        (fun (at : Guard.atom) ->
          {
            at with
            Guard.clock = rewrite_clock clock_map at.Guard.clock;
            bound = rewrite_iexp var_map at.Guard.bound;
          })
        g.Guard.clocks;
    data = rewrite_bexp var_map g.Guard.data;
  }

(* ---- identity slice (Off mode, or nothing to remove) ---- *)

let identity_slice mode (net : Network.t) =
  let nc = Array.length net.Network.automata in
  let ncl = Array.length net.Network.clock_names in
  let nv = Array.length net.Network.var_names in
  {
    original = net;
    net;
    mode;
    identity = true;
    comp_map = Array.init nc (fun i -> Some i);
    comp_unmap = Array.init nc Fun.id;
    edge_maps =
      Array.map
        (fun (a : Automaton.t) ->
          Array.init (Array.length a.Automaton.edges) (fun i -> Some i))
        net.Network.automata;
    edge_unmaps =
      Array.map
        (fun (a : Automaton.t) ->
          Array.init (Array.length a.Automaton.edges) Fun.id)
        net.Network.automata;
    clock_map = Array.init ncl (fun i -> Some i);
    clock_unmap = Array.init ncl Fun.id;
    var_map = Array.init nv (fun i -> Some i);
    var_unmap = Array.init nv Fun.id;
    removed_comps = [];
    removed_clocks = [];
    removed_vars = [];
    merged = [];
    dropped_edges = [];
  }

let make ?(mode = CoiMerge) ?fa (net : Network.t) (goal : goal) =
  if mode = Off then identity_slice mode net
  else begin
    let nc = Array.length net.Network.automata in
    let ncl = Array.length net.Network.clock_names in
    let nv = Array.length net.Network.var_names in
    let auto ci = net.Network.automata.(ci) in
    let fa = match fa with Some fa -> fa | None -> Flow.analyze net in
    let live ci ei = Flow.edge_status fa ci ei = Flow.Live in
    let reachable ci li = Flow.reachable fa ci li in
    let keep = Array.make nc false in
    let rel_clock = Array.make ncl false in
    let read_var = Array.make nv false in
    rel_clock.(0) <- true;
    List.iter
      (fun ci ->
        if ci < 0 || ci >= nc then invalid_arg "Slice.make: component index";
        keep.(ci) <- true)
      goal.g_comps;
    List.iter
      (fun x ->
        if x < 0 || x >= ncl then invalid_arg "Slice.make: clock index";
        rel_clock.(x) <- true)
      goal.g_clocks;
    Array.iteri (fun x p -> if p then rel_clock.(x) <- true) net.Network.pinned;
    List.iter
      (fun v ->
        if v < 0 || v >= nv then invalid_arg "Slice.make: variable index";
        read_var.(v) <- true)
      goal.g_vars;
    (* Components that can constrain delay or firing anywhere the flow
       analysis reaches are unconditionally part of every cone: a
       non-Normal location kind, any non-trivial invariant, or a live
       edge on an urgent channel. *)
    for ci = 0 to nc - 1 do
      let a = auto ci in
      let constrains_loc li (l : Automaton.location) =
        reachable ci li
        && (l.Automaton.kind <> Automaton.Normal
           || not (Guard.is_trivial l.Automaton.invariant))
      in
      let urgent_edge ei (e : Automaton.edge) =
        live ci ei
        &&
        match e.Automaton.sync with
        | Automaton.NoSync -> false
        | Automaton.Send c | Automaton.Recv c ->
            net.Network.channels.(c).Channel.urgent
      in
      if
        existsi constrains_loc a.Automaton.locations
        || existsi urgent_edge a.Automaton.edges
      then keep.(ci) <- true
    done;
    let has_live_sync cj c role =
      existsi
        (fun ei (e : Automaton.edge) ->
          live cj ei
          &&
          match (e.Automaton.sync, role) with
          | Automaton.Send c', `Send -> c' = c
          | Automaton.Recv c', `Recv -> c' = c
          | _ -> false)
        (auto cj).Automaton.edges
    in
    let kept_partner_has c role ci =
      let rec any cj =
        cj < nc
        && ((cj <> ci && keep.(cj) && has_live_sync cj c role) || any (cj + 1))
      in
      any 0
    in
    (* Backward-cone fixpoint.  Forward direction: everything the kept
       components read (on live edges and flow-reachable invariants)
       becomes relevant.  Backward direction: components writing a
       relevant variable, resetting a relevant clock, or standing as a
       synchronization peer of a kept live edge are pulled in. *)
    let changed = ref true in
    while !changed do
      changed := false;
      let mark_clock x =
        if not rel_clock.(x) then begin
          rel_clock.(x) <- true;
          changed := true
        end
      in
      let mark_var v =
        if not read_var.(v) then begin
          read_var.(v) <- true;
          changed := true
        end
      in
      let mark_guard (g : Guard.t) =
        List.iter
          (fun (at : Guard.atom) ->
            mark_clock at.Guard.clock;
            List.iter mark_var (Expr.ivars at.Guard.bound))
          g.Guard.clocks;
        List.iter mark_var (Expr.bvars g.Guard.data)
      in
      for ci = 0 to nc - 1 do
        if keep.(ci) then begin
          let a = auto ci in
          Array.iteri
            (fun li (l : Automaton.location) ->
              if reachable ci li then mark_guard l.Automaton.invariant)
            a.Automaton.locations;
          Array.iteri
            (fun ei (e : Automaton.edge) ->
              if live ci ei then begin
                mark_guard e.Automaton.guard;
                List.iter
                  (function
                    | Update.Set_var (_, rhs) ->
                        List.iter mark_var (Expr.ivars rhs)
                    | Update.Reset_clock (x, rhs) ->
                        (* a reset whose value could raise or go
                           negative cannot be dropped: keep the clock *)
                        if not (safe_reset net.Network.var_ranges rhs) then
                          mark_clock x;
                        if rel_clock.(x) then
                          List.iter mark_var (Expr.ivars rhs))
                  e.Automaton.update
              end)
            a.Automaton.edges
        end
      done;
      for ci = 0 to nc - 1 do
        if not keep.(ci) then begin
          let pulls ei (e : Automaton.edge) =
            live ci ei
            && (List.exists
                  (function
                    | Update.Set_var (v, _) -> read_var.(v)
                    | Update.Reset_clock (x, _) -> rel_clock.(x))
                  e.Automaton.update
               ||
               match e.Automaton.sync with
               | Automaton.NoSync -> false
               | Automaton.Send c ->
                   (* any sender a kept receiver may wait for *)
                   kept_partner_has c `Recv ci
               | Automaton.Recv c -> (
                   match net.Network.channels.(c).Channel.kind with
                   | Channel.Broadcast -> false
                   (* a broadcast receiver never blocks its sender *)
                   | Channel.Binary -> kept_partner_has c `Send ci))
          in
          if existsi pulls (auto ci).Automaton.edges then begin
            keep.(ci) <- true;
            changed := true
          end
        end
      done
    done;
    (* Variables of the sliced network: everything the cone reads plus
       everything the kept components write — kept updates are carried
       over verbatim, so their targets must stay addressable. *)
    let kept_var = Array.copy read_var in
    for ci = 0 to nc - 1 do
      if keep.(ci) then
        Array.iteri
          (fun ei (e : Automaton.edge) ->
            if live ci ei then
              List.iter
                (function
                  | Update.Set_var (v, _) -> kept_var.(v) <- true
                  | Update.Reset_clock _ -> ())
                e.Automaton.update)
          (auto ci).Automaton.edges
    done;
    (* Quasi-equal clock detection (CoiMerge): group the kept, unpinned
       clocks by their reset signature over every kept live edge — the
       Int constant reset there, or nothing.  Clocks sharing a
       signature are equal in every reachable valuation (all start at
       0), so each class collapses onto its smallest member. *)
    let merged_into = Array.make ncl (-1) in
    if mode = CoiMerge then begin
      let candidate = Array.make ncl false in
      for x = 1 to ncl - 1 do
        candidate.(x) <- rel_clock.(x) && not net.Network.pinned.(x)
      done;
      let signature = Array.make ncl [] in
      for ci = 0 to nc - 1 do
        if keep.(ci) then
          Array.iteri
            (fun ei (e : Automaton.edge) ->
              if live ci ei then begin
                let consts = Hashtbl.create 4 in
                List.iter
                  (function
                    | Update.Reset_clock (x, Expr.Int c) when c >= 0 ->
                        Hashtbl.replace consts x c
                    | Update.Reset_clock (x, _) -> candidate.(x) <- false
                    | Update.Set_var _ -> ())
                  e.Automaton.update;
                for x = 1 to ncl - 1 do
                  if candidate.(x) then
                    signature.(x) <- Hashtbl.find_opt consts x :: signature.(x)
                done
              end)
            (auto ci).Automaton.edges
      done;
      let groups = Hashtbl.create 8 in
      for x = 1 to ncl - 1 do
        if candidate.(x) then
          match Hashtbl.find_opt groups signature.(x) with
          | None -> Hashtbl.add groups signature.(x) x
          | Some r -> merged_into.(x) <- r
      done
    end;
    let dropped_edges = ref [] in
    for ci = nc - 1 downto 0 do
      if keep.(ci) then
        for ei = Array.length (auto ci).Automaton.edges - 1 downto 0 do
          if not (live ci ei) then dropped_edges := (ci, ei) :: !dropped_edges
        done
    done;
    let dropped_edges = !dropped_edges in
    let untouched_invariants =
      let ok ci =
        existsi
          (fun li (l : Automaton.location) ->
            (not (reachable ci li))
            && not (Guard.is_trivial l.Automaton.invariant))
          (auto ci).Automaton.locations
        |> not
      in
      let rec all ci = ci >= nc || ((not keep.(ci)) || ok ci) && all (ci + 1) in
      all 0
    in
    let identity =
      Array.for_all Fun.id keep
      && Array.for_all Fun.id rel_clock
      && Array.for_all Fun.id kept_var
      && Array.for_all (fun r -> r < 0) merged_into
      && dropped_edges = [] && untouched_invariants
    in
    if identity then identity_slice mode net
    else begin
      (* ---- rebuild the reduced network ---- *)
      let b = Network.Builder.create () in
      let clock_map = Array.make ncl None in
      clock_map.(0) <- Some 0;
      for x = 1 to ncl - 1 do
        if rel_clock.(x) && merged_into.(x) < 0 then
          clock_map.(x) <-
            Some (Network.Builder.clock b net.Network.clock_names.(x))
      done;
      for x = 1 to ncl - 1 do
        if merged_into.(x) >= 0 then clock_map.(x) <- clock_map.(merged_into.(x))
      done;
      let var_map = Array.make nv None in
      for v = 0 to nv - 1 do
        if kept_var.(v) then begin
          let lo, hi = net.Network.var_ranges.(v) in
          var_map.(v) <-
            Some
              (Network.Builder.int_var b net.Network.var_names.(v) ~lo ~hi
                 ~init:net.Network.var_init.(v))
        end
      done;
      Array.iter
        (fun (ch : Channel.t) ->
          ignore
            (Network.Builder.channel b ch.Channel.name ch.Channel.kind
               ~urgent:ch.Channel.urgent))
        net.Network.channels;
      let mguard = rewrite_guard clock_map var_map in
      let comp_map = Array.make nc None in
      let edge_maps = Array.make nc [||] in
      let kept_count = ref 0 in
      for ci = 0 to nc - 1 do
        if keep.(ci) then begin
          let a = auto ci in
          let locations =
            Array.to_list
              (Array.mapi
                 (fun li (l : Automaton.location) ->
                   if reachable ci li then
                     { l with Automaton.invariant = mguard l.Automaton.invariant }
                   else { l with Automaton.invariant = Guard.tt })
                 a.Automaton.locations)
          in
          let emap = Array.make (Array.length a.Automaton.edges) None in
          let edges = ref [] and nedges = ref 0 in
          Array.iteri
            (fun ei (e : Automaton.edge) ->
              if live ci ei then begin
                let update =
                  List.filter_map
                    (function
                      | Update.Reset_clock (x, rhs) -> (
                          match clock_map.(x) with
                          | None -> None (* removed: reset value is safe *)
                          | Some x' ->
                              if merged_into.(x) >= 0 then
                                (* the representative's reset on this
                                   same edge carries the class *)
                                None
                              else
                                Some
                                  (Update.Reset_clock
                                     (x', rewrite_iexp var_map rhs)))
                      | Update.Set_var (v, rhs) ->
                          Some
                            (Update.Set_var
                               ( rewrite_var var_map v,
                                 rewrite_iexp var_map rhs )))
                    e.Automaton.update
                in
                emap.(ei) <- Some !nedges;
                incr nedges;
                edges :=
                  { e with Automaton.guard = mguard e.Automaton.guard; update }
                  :: !edges
              end)
            a.Automaton.edges;
          Network.Builder.add_automaton b
            (Automaton.make ~name:a.Automaton.name ~locations
               ~edges:(List.rev !edges) ~initial:a.Automaton.initial);
          comp_map.(ci) <- Some !kept_count;
          incr kept_count;
          edge_maps.(ci) <- emap
        end
      done;
      let net' = Network.Builder.build ~validate:false b in
      (* clocks the caller had pinned stay pinned in the sliced net *)
      let net' =
        let acc = ref net' in
        for x = 1 to ncl - 1 do
          if net.Network.pinned.(x) then
            match clock_map.(x) with
            | Some x' when x' > 0 ->
                acc := Network.bump_clock_bound !acc x' 0
            | _ -> ()
        done;
        !acc
      in
      let comp_unmap = Array.make !kept_count 0 in
      Array.iteri
        (fun ci m -> match m with Some ci' -> comp_unmap.(ci') <- ci | None -> ())
        comp_map;
      let edge_unmaps =
        Array.map
          (fun ci' ->
            let emap = edge_maps.(comp_unmap.(ci')) in
            let n =
              Array.fold_left
                (fun acc m -> match m with Some _ -> acc + 1 | None -> acc)
                0 emap
            in
            let inv = Array.make n 0 in
            Array.iteri
              (fun ei m -> match m with Some ei' -> inv.(ei') <- ei | None -> ())
              emap;
            inv)
          (Array.init !kept_count Fun.id)
      in
      let ncl' = Array.length net'.Network.clock_names in
      let clock_unmap = Array.make ncl' 0 in
      for x = 0 to ncl - 1 do
        match clock_map.(x) with
        | Some x' when merged_into.(x) < 0 -> clock_unmap.(x') <- x
        | _ -> ()
      done;
      let nv' = Array.length net'.Network.var_names in
      let var_unmap = Array.make nv' 0 in
      Array.iteri
        (fun v m -> match m with Some v' -> var_unmap.(v') <- v | None -> ())
        var_map;
      let removed_comps = ref [] and removed_clocks = ref [] in
      let removed_vars = ref [] and merged = ref [] in
      for ci = nc - 1 downto 0 do
        if not keep.(ci) then removed_comps := ci :: !removed_comps
      done;
      for x = ncl - 1 downto 1 do
        if not rel_clock.(x) then removed_clocks := x :: !removed_clocks;
        if merged_into.(x) >= 0 then merged := (x, merged_into.(x)) :: !merged
      done;
      for v = nv - 1 downto 0 do
        if not kept_var.(v) then removed_vars := v :: !removed_vars
      done;
      {
        original = net;
        net = net';
        mode;
        identity = false;
        comp_map;
        comp_unmap;
        edge_maps;
        edge_unmaps;
        clock_map;
        clock_unmap;
        var_map;
        var_unmap;
        removed_comps = !removed_comps;
        removed_clocks = !removed_clocks;
        removed_vars = !removed_vars;
        merged = !merged;
        dropped_edges;
      }
    end
  end

(* ---- index translation ---- *)

let map_comp t ci = if t.identity then Some ci else t.comp_map.(ci)
let map_clock t x = if t.identity then Some x else t.clock_map.(x)
let map_var t v = if t.identity then Some v else t.var_map.(v)

let map_guard t g =
  if t.identity then g else rewrite_guard t.clock_map t.var_map g

let unmap_state t (st : Semantics.state) =
  if t.identity then st
  else
    {
      Semantics.locs =
        Array.mapi
          (fun ci m ->
            match m with
            | Some ci' -> st.Semantics.locs.(ci')
            | None -> t.original.Network.automata.(ci).Automaton.initial)
          t.comp_map;
      env =
        Array.mapi
          (fun v m ->
            match m with
            | Some v' -> st.Semantics.env.(v')
            | None -> t.original.Network.var_init.(v))
          t.var_map;
    }

let unmap_label t (l : Semantics.label) =
  if t.identity then l
  else
    let comp ci' = t.comp_unmap.(ci') in
    let edge ci' ei' = t.edge_unmaps.(ci').(ei') in
    match l with
    | Semantics.Internal { comp = c; edge = e } ->
        Semantics.Internal { comp = comp c; edge = edge c e }
    | Semantics.Sync { chan; sender = sc, se; receivers } ->
        Semantics.Sync
          {
            chan;
            sender = (comp sc, edge sc se);
            receivers = List.map (fun (rc, re) -> (comp rc, edge rc re)) receivers;
          }

let unmap_zone t (z : Semantics.Dbm.t) =
  if t.identity then z
  else begin
    let n = Array.length t.original.Network.clock_names - 1 in
    let z' = Semantics.Dbm.universal n in
    for i = 0 to n do
      for j = 0 to n do
        if i <> j then
          match (t.clock_map.(i), t.clock_map.(j)) with
          | Some i', Some j' ->
              Semantics.Dbm.constrain z' i j (Semantics.Dbm.get z i' j')
          | _ -> ()
      done
    done;
    z'
  end

(* ---- report ---- *)

let pp_report ?resolve ppf t =
  let orig = t.original in
  let pos site =
    match resolve with
    | Some f -> ( match f site with Some p -> p ^ ": " | None -> "")
    | None -> ""
  in
  if t.identity then
    Format.fprintf ppf
      "nothing to remove: every component, clock and variable is in the \
       query cone@."
  else begin
    List.iter
      (fun ci ->
        Format.fprintf ppf
          "%sremove component %s: it cannot influence the query cone@."
          (pos (D.Automaton_site ci))
          orig.Network.automata.(ci).Automaton.name)
      t.removed_comps;
    List.iter
      (fun x ->
        Format.fprintf ppf
          "%sremove clock %s: never tested by the cone (DBM dimension -1)@."
          (pos (D.Clock_site x))
          orig.Network.clock_names.(x))
      t.removed_clocks;
    List.iter
      (fun v ->
        Format.fprintf ppf
          "%sremove variable %s: never read by the cone (packed key shrinks)@."
          (pos (D.Var_site v))
          orig.Network.var_names.(v))
      t.removed_vars;
    List.iter
      (fun (m, r) ->
        Format.fprintf ppf
          "%smerge clock %s into %s: quasi-equal (always reset together, \
           to the same constants)@."
          (pos (D.Clock_site m))
          orig.Network.clock_names.(m) orig.Network.clock_names.(r))
      t.merged;
    List.iter
      (fun (ci, ei) ->
        Format.fprintf ppf "%sdrop dead edge %s #%d@."
          (pos (D.Edge_site { comp = ci; edge = ei }))
          orig.Network.automata.(ci).Automaton.name ei)
      t.dropped_edges;
    Format.fprintf ppf
      "kept %d/%d components, %d/%d clocks, %d/%d variables@."
      (Array.length t.net.Network.automata)
      (Array.length orig.Network.automata)
      (Network.n_clocks t.net) (Network.n_clocks orig)
      (Array.length t.net.Network.var_names)
      (Array.length orig.Network.var_names)
  end
