(** Abstract-interpretation dataflow engine over timed-automata
    networks.

    A generic round-based fixpoint solver ({!Fixpoint}) instantiated
    twice:

    - a forward {e interval} analysis over the bounded integer
      variables, per (component, location), with guard refinement and
      cross-process propagation across channel synchronizations
      ({!analyze});
    - a backward per-location {e L/U clock-bound} analysis over the
      live part of the control-flow graph, with guard/reset constants
      evaluated under the refined intervals ({!refine_lu}).

    Concurrency is sound by construction: a variable written by more
    than one component is never tracked flow-sensitively — reads go
    through the flow-insensitive global range {!global_ranges}, the
    hull of the initial value and every assigned value anywhere
    (clamped to the declared range, which [Update.set_checked]
    enforces at runtime). *)

open Ita_ta

(** Generic join-semilattice fixpoint solver over int-indexed nodes,
    with optional threshold widening for termination on tall
    lattices. *)
module Fixpoint : sig
  type 'a t

  val create :
    n:int ->
    bottom:'a ->
    equal:('a -> 'a -> bool) ->
    join:('a -> 'a -> 'a) ->
    ?widen:('a -> 'a -> 'a) ->
    ?widen_after:int ->
    unit ->
    'a t
  (** [widen old joined] is applied instead of plain join once a node
      has changed [widen_after] times (default 8). *)

  val get : 'a t -> int -> 'a

  val update : 'a t -> int -> 'a -> unit
  (** Join [v] into node [i]; marks the solver dirty on growth. *)

  val touch : 'a t -> unit
  (** Record that solver-external state grew, forcing another sweep. *)

  val solve : 'a t -> (unit -> unit) -> unit
  (** [solve s sweep] runs [sweep] until a whole pass leaves every
      node (and all touched external state) unchanged. *)
end

type tri = T | F | U  (** three-valued truth *)

type dead_reason =
  | Unreachable_source  (** no reachable valuation enters the source *)
  | Unsat_guard  (** guard unsatisfiable under the source intervals *)
  | No_partner  (** sync with no co-enabled partner edge *)

type edge_status = Live | Dead of dead_reason

type race = {
  race_chan : Channel.id;
  race_writer : int * int;  (** sender (component, edge index) *)
  race_other : int * int;  (** receiver (component, edge index) *)
  race_var : Expr.var;
}
(** A shared-variable write-write collision on a co-enabled
    synchronizing edge pair: participants update sender-first, so the
    receiver's assignment silently wins. *)

type t

val analyze : Network.t -> t
(** Run the interval fixpoint to completion. *)

val reachable : t -> int -> int -> bool
(** [reachable fa comp loc] — does any abstract valuation reach
    [loc]?  Over-approximate: [false] is definite. *)

val env_at : t -> int -> int -> (int * int) array option
(** Merged per-variable interval at [(comp, loc)]: flow-sensitive for
    variables only [comp] writes, the global range otherwise.  [None]
    iff the location is flow-unreachable. *)

val global_ranges : t -> (int * int) array
(** Flow-insensitive hull of initial + all assigned values per
    variable, clamped to the declared range.  Never wider than the
    declared range, and exact ([init, init]) for never-written
    variables. *)

val stable_var : t -> int -> Expr.var -> bool
(** [true] iff no component other than [comp] ever assigns the
    variable, i.e. its per-location interval is flow-sensitive. *)

val edge_status : t -> int -> int -> edge_status

val guard_data_trivial : t -> int -> int -> bool
(** The edge is live, its data guard is syntactically non-[True], yet
    it evaluates to true under every reachable source valuation. *)

val races : t -> race list

val eval3 : (int * int) array -> Expr.bexp -> tri
(** Three-valued evaluation of a boolean expression under interval
    bounds. *)

val refine : (int * int) array -> Expr.bexp -> (int * int) array option
(** Tighten intervals by the conjuncts of a data guard; [None] when
    the guard is definitely unsatisfiable. *)

val clock_guard_unsat : (int * int) array -> Guard.t -> bool
(** Definite clock-guard contradiction (e.g. [x >= 5 && x <= 3] after
    interval evaluation of the bounds) — empties the zone under any
    extrapolation. *)

val refine_lu : t -> Network.t -> Network.t
(** Recompute per-location L/U clock bounds over the live CFG with
    flow-refined constants and return the network with tightened
    [lloc]/[uloc] tables (pointwise min against the builder's
    analysis; [lbase]/[ubase] floors untouched).  Oversized components
    (the builder's shared-row fallback) keep their rows. *)

val refine_network : Network.t -> Network.t
(** [refine_lu (analyze net) net]. *)

val pp :
  ?resolve:
    ([ `Automaton of int | `Location of int * int ] -> string option) ->
  t ->
  Format.formatter ->
  unit ->
  unit
(** Render per-location intervals (with optional source positions) and
    the global ranges. *)
