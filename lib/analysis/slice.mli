(** Query-directed model reduction: backward cone-of-influence slicing
    plus quasi-equal clock merging.

    A single query (a reachability goal or a WCRT sup-query) observes a
    handful of components, clocks and variables; architecture-level
    models routinely carry much more.  This pass runs between
    elaboration and exploration and shrinks the network along every
    axis the engine pays for:

    - {e components} that provably cannot affect the verdict are
      dropped from the product (smaller location vectors, fewer
      interleavings);
    - {e variables} only those components touch are dropped from the
      packed passed-list key;
    - {e clocks} nobody relevant tests are dropped from the DBM
      dimension, and quasi-equal clocks — always reset together, to
      the same constants, hence always equal — are merged into one
      representative ([CoiMerge] only);
    - {e dead edges} of the kept components (proved unfirable by the
      {!Flow} interval analysis) are dropped, and the invariants of
      flow-unreachable locations are cleared.

    Soundness of component removal.  A component is kept when any of
    the following holds, closed under fixpoint: it appears in the
    goal; it can constrain time or firing anywhere the flow analysis
    reaches (a non-[Normal] location kind, a non-trivial invariant, or
    a live edge on an urgent channel); it writes a variable the kept
    cone reads; it resets a clock the kept cone tests; or it is a
    synchronization peer a kept component needs (the opposite role of
    a kept live edge on a binary channel, or a live broadcast sender
    with a kept live receiver).  A removed component therefore never
    blocks, forces or retimes anything the kept components do, and
    never writes anything they read: projecting any original run onto
    the kept components yields a run of the sliced network and vice
    versa, so verdicts, witnesses' kept projections, and clock suprema
    over goal states are {e byte-identical}.  (Removed broadcast
    receivers do move in original runs; their state is invisible to
    the kept cone.)

    The one caveat is runtime modeling errors: a removed component's
    dropped guards and updates are no longer {e evaluated}, so a model
    that would have raised [Division_by_zero] or [Update.Out_of_range]
    inside the removed part no longer does.  The lint passes
    ([range-overflow] in particular) cover that ground statically.

    Quasi-equal merging.  Two kept clocks are merged when neither is
    pinned and every live edge of the kept cone resets both to the
    same integer constant or neither (clocks all start at [0]), so
    [x = y] is a network invariant and replacing [y] by [x] in every
    guard and invariant preserves the timed semantics exactly. *)

open Ita_ta

type mode = Off | Coi | CoiMerge
    (** [Off] — identity (the differential-testing oracle).  [Coi] —
        cone-of-influence slicing only.  [CoiMerge] (the default
        everywhere) — slicing plus quasi-equal clock merging. *)

type goal = {
  g_comps : int list;  (** components the query observes *)
  g_clocks : Guard.clock list;  (** clocks the query tests or measures *)
  g_vars : Expr.var list;  (** variables the query reads *)
}
(** The observation seed of the backward cone.  Goal components are
    always kept; goal clocks and variables are always part of the
    sliced network, though a goal clock may end up {e merged} into a
    representative — translate indices through {!map_clock}. *)

type t = {
  original : Network.t;
  net : Network.t;  (** the reduced network the engine should explore *)
  mode : mode;
  identity : bool;
      (** nothing was removed or merged; [net == original] and every
          map is the identity *)
  comp_map : int option array;  (** original component -> sliced, [None] = removed *)
  comp_unmap : int array;  (** sliced component -> original *)
  edge_maps : int option array array;
      (** [edge_maps.(ci).(ei)]: original edge -> sliced edge of kept
          component [ci] ([None] = dead edge dropped); empty array for
          removed components *)
  edge_unmaps : int array array;  (** sliced (comp, edge) -> original edge *)
  clock_map : int option array;
      (** original clock -> sliced; merged clocks map to their
          representative's sliced index; index [0] maps to [0] *)
  clock_unmap : int array;  (** sliced clock -> original representative *)
  var_map : int option array;
  var_unmap : int array;
  removed_comps : int list;  (** ascending original indices *)
  removed_clocks : int list;  (** dropped entirely (merged-away not listed) *)
  removed_vars : int list;
  merged : (Guard.clock * Guard.clock) list;
      (** [(member, representative)] original indices, member <> repr *)
  dropped_edges : (int * int) list;
      (** dead [(comp, edge)] pairs dropped from kept components *)
}

val make : ?mode:mode -> ?fa:Flow.t -> Network.t -> goal -> t
(** Compute the slice.  [?fa] reuses an existing flow analysis of the
    {e same} network (the lint driver already has one); otherwise one
    is run here.  The rebuilt network is produced with the builder's
    validation off, so slicing never rejects a network the caller
    already accepted; no new urgent/broadcast clock guards can be
    introduced by the rewrite.  When nothing is removed, dropped or
    merged the original network is returned unchanged ([identity]). *)

val map_comp : t -> int -> int option
val map_clock : t -> Guard.clock -> Guard.clock option
val map_var : t -> Expr.var -> Expr.var option

val map_guard : t -> Guard.t -> Guard.t
(** Rewrite a guard over original indices into sliced indices.
    @raise Invalid_argument when it mentions a removed clock or
    variable (a goal seeded with the guard's clocks and variables
    never does). *)

val unmap_state : t -> Semantics.state -> Semantics.state
(** Lift a sliced discrete state back to original index space: removed
    components are shown at their initial location and removed
    variables at their initial value (a removed component is never
    forced to move except as a broadcast receiver, so this is a valid
    completion; see the module header). *)

val unmap_label : t -> Semantics.label -> Semantics.label
(** Re-index a transition label; receiver lists only mention kept
    components. *)

val unmap_zone : t -> Semantics.Dbm.t -> Semantics.Dbm.t
(** Lift a zone over the sliced clocks back to the original dimension:
    kept entries are copied through the map, merged members come out
    equal to their representative, removed clocks are unconstrained
    ([>= 0]). *)

val pp_report :
  ?resolve:(Diagnostic.site -> string option) ->
  Format.formatter ->
  t ->
  unit
(** Human-readable removal/merge report — one line per removed
    component (with [file:line:col] provenance when [resolve] yields
    one), removed clock, removed variable, merged pair and dropped
    dead edge, followed by a kept/total summary. *)
