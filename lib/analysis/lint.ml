open Ita_ta
module D = Diagnostic

let mk ?fix pass severity site message : D.t =
  { D.pass; severity; site; message; fix }

let sprintf = Printf.sprintf

(* ---- shared syntactic accessors ---- *)

let atom_clocks (g : Guard.t) =
  List.map (fun (a : Guard.atom) -> a.Guard.clock) g.Guard.clocks

let reset_clocks (u : Update.t) =
  List.filter_map
    (function
      | Update.Reset_clock (x, _) -> Some x
      | Update.Set_var _ -> None)
    u

(* Every guard in the network, invariants included, with its site. *)
let iter_guards (net : Network.t) f =
  Array.iteri
    (fun ci (a : Automaton.t) ->
      Array.iteri
        (fun li (l : Automaton.location) ->
          f (D.Location_site { comp = ci; loc = li }) l.Automaton.invariant)
        a.Automaton.locations;
      Array.iteri
        (fun ei (e : Automaton.edge) ->
          f (D.Edge_site { comp = ci; edge = ei }) e.Automaton.guard)
        a.Automaton.edges)
    net.Network.automata

let iter_edges (net : Network.t) f =
  Array.iteri
    (fun ci (a : Automaton.t) ->
      Array.iteri (fun ei e -> f ci ei a e) a.Automaton.edges)
    net.Network.automata

(* ---- unused-clock / never-reset-clock ---- *)

let clock_passes ~observed (net : Network.t) =
  let n = Array.length net.Network.clock_names in
  let tested = Array.make n false and reset = Array.make n false in
  iter_guards net (fun _ g ->
      List.iter (fun x -> tested.(x) <- true) (atom_clocks g));
  iter_edges net (fun _ _ _ (e : Automaton.edge) ->
      List.iter (fun x -> reset.(x) <- true) (reset_clocks e.Automaton.update));
  let out = ref [] in
  for x = n - 1 downto 1 do
    if not (observed.(x) || net.Network.pinned.(x)) then
      if not tested.(x) then
        out :=
          mk ~fix:"remove the clock declaration" D.Unused_clock D.Warning
            (D.Clock_site x)
            (sprintf "clock %s is never tested by any guard or invariant%s"
               net.Network.clock_names.(x)
               (if reset.(x) then " (it is only reset)" else ""))
          :: !out
      else if not reset.(x) then
        out :=
          mk D.Never_reset_clock D.Info (D.Clock_site x)
            (sprintf
               "clock %s is tested but never reset: it measures absolute time"
               net.Network.clock_names.(x))
          :: !out
  done;
  !out

(* ---- dead-var ---- *)

let var_pass ~observed (net : Network.t) =
  let n = Array.length net.Network.var_names in
  let read = Array.make n false and written = Array.make n false in
  let guard_reads (g : Guard.t) =
    Expr.bvars g.Guard.data
    @ List.concat_map
        (fun (a : Guard.atom) -> Expr.ivars a.Guard.bound)
        g.Guard.clocks
  in
  iter_guards net (fun _ g ->
      List.iter (fun v -> read.(v) <- true) (guard_reads g));
  iter_edges net (fun _ _ _ (e : Automaton.edge) ->
      List.iter
        (function
          | Update.Reset_clock (_, rhs) ->
              List.iter (fun v -> read.(v) <- true) (Expr.ivars rhs)
          | Update.Set_var (v, rhs) ->
              written.(v) <- true;
              List.iter (fun w -> read.(w) <- true) (Expr.ivars rhs))
        e.Automaton.update);
  let out = ref [] in
  for v = n - 1 downto 0 do
    if (not observed.(v)) && not read.(v) then
      out :=
        mk ~fix:"remove the variable or its updates" D.Dead_var D.Warning
          (D.Var_site v)
          (sprintf "variable %s is never read%s" net.Network.var_names.(v)
             (if written.(v) then " (only written)" else " nor written"))
        :: !out
  done;
  !out

(* ---- range-overflow ---- *)

(* Flow-powered: updates are checked against the interval analysis's
   per-location environment at the edge source, refined by the edge's
   own data guard — strictly tighter than the old declared-range scan,
   so guarded counter updates like [n < MAX -> n = n + 1] and
   protocol-invariant updates both stay silent.  Edges the analysis
   proves dead never run their updates and are skipped (the dead-edge
   pass owns them). *)
let range_pass fa (net : Network.t) =
  let out = ref [] in
  iter_edges net (fun ci ei _a (e : Automaton.edge) ->
      if Flow.edge_status fa ci ei = Flow.Live then begin
      let site = D.Edge_site { comp = ci; edge = ei } in
      let env = Option.get (Flow.env_at fa ci e.Automaton.src) in
      let env =
        match Flow.refine env e.Automaton.guard.Guard.data with
        | Some env -> env
        | None -> env
      in
      (* a receiver's update runs after its sender's, which may have
         rewritten shared variables since the guard held: read those
         through the global range instead of the refined snapshot *)
      let ranges =
        match e.Automaton.sync with
        | Automaton.Recv _ ->
            Array.mapi
              (fun v iv ->
                if Flow.stable_var fa ci v then iv
                else (Flow.global_ranges fa).(v))
              env
        | Automaton.NoSync | Automaton.Send _ -> Array.copy env
      in
      List.iter
        (function
          | Update.Reset_clock (x, rhs) ->
              let lo, hi = Expr.interval ranges rhs in
              if hi < 0 then
                out :=
                  mk
                    ~fix:"guard the edge so the reset value stays non-negative"
                    D.Range_overflow D.Error site
                    (sprintf
                       "clock %s is always reset to a negative value \
                        ([%d, %d])"
                       net.Network.clock_names.(x) lo hi)
                  :: !out
              else if lo < 0 then
                out :=
                  mk
                    ~fix:"guard the edge so the reset value stays non-negative"
                    D.Range_overflow D.Info site
                    (sprintf
                       "clock %s may be reset to a negative value (down to %d)"
                       net.Network.clock_names.(x) lo)
                  :: !out
          | Update.Set_var (v, rhs) ->
              let lo, hi = Expr.interval ranges rhs in
              let dlo, dhi = net.Network.var_ranges.(v) in
              (* definite overflow (no valuation stays in range) is an
                 error; possible overflow is only Info — the interval
                 enclosure cannot see cross-component protocol
                 invariants like the generator's bounded queues, and
                 the checker's own Out_of_range exception still guards
                 the real runs *)
              if hi < dlo || lo > dhi then
                out :=
                  mk ~fix:"strengthen the guard or widen the declared range"
                    D.Range_overflow D.Error site
                    (sprintf
                       "update always sets %s to [%d, %d], outside its \
                        declared range [%d, %d]"
                       net.Network.var_names.(v) lo hi dlo dhi)
                  :: !out
              else if lo < dlo || hi > dhi then
                out :=
                  mk ~fix:"strengthen the guard or widen the declared range"
                    D.Range_overflow D.Info site
                    (sprintf
                       "update can set %s to [%d, %d], beyond its declared \
                        range [%d, %d]"
                       net.Network.var_names.(v) lo hi dlo dhi)
                  :: !out;
              (* later assignments in the same sequential update read
                 this value; clamp to the declared range (the runtime
                 would have raised otherwise) *)
              let lo' = max lo dlo and hi' = min hi dhi in
              if lo' <= hi' then ranges.(v) <- (lo', hi'))
        e.Automaton.update
      end);
  !out

(* ---- unreachable-location ---- *)

(* locations with an edge path from the initial location *)
let syntactic_reach (a : Automaton.t) =
  let nl = Array.length a.Automaton.locations in
  let seen = Array.make nl false in
  let rec visit l =
    if not seen.(l) then begin
      seen.(l) <- true;
      List.iter
        (fun ei -> visit (Automaton.edge a ei).Automaton.dst)
        (Automaton.out_edges a l)
    end
  in
  visit a.Automaton.initial;
  seen

let unreachable_pass (net : Network.t) =
  let out = ref [] in
  Array.iteri
    (fun ci (a : Automaton.t) ->
      let nl = Array.length a.Automaton.locations in
      let seen = syntactic_reach a in
      for l = 0 to nl - 1 do
        if not seen.(l) then
          out :=
            mk ~fix:"remove the location or add an edge reaching it"
              D.Unreachable_location D.Warning
              (D.Location_site { comp = ci; loc = l })
              "no edge path from the initial location reaches this location"
            :: !out
      done)
    net.Network.automata;
  !out

(* ---- invariant-misuse ---- *)

let invariant_pass (net : Network.t) =
  let out = ref [] in
  Array.iteri
    (fun ci (a : Automaton.t) ->
      Array.iteri
        (fun li (l : Automaton.location) ->
          let site = D.Location_site { comp = ci; loc = li } in
          let inv = l.Automaton.invariant in
          List.iter
            (fun (at : Guard.atom) ->
              match at.Guard.rel with
              | Guard.Ge | Guard.Gt ->
                  out :=
                    mk
                      ~fix:
                        "move the lower bound onto the guards of the edges \
                         entering or leaving the location"
                      D.Invariant_misuse D.Error site
                      (sprintf
                         "invariant puts a lower bound on clock %s: entering \
                          with a smaller value deadlocks instantly"
                         net.Network.clock_names.(at.Guard.clock))
                    :: !out
              | Guard.Eq ->
                  out :=
                    mk
                      ~fix:
                        "use an upper-bound invariant plus a lower-bound \
                         guard on the outgoing edges"
                      D.Invariant_misuse D.Warning site
                      (sprintf
                         "equality invariant on clock %s forbids any delay \
                          in this location"
                         net.Network.clock_names.(at.Guard.clock))
                    :: !out
              | Guard.Lt | Guard.Le -> ())
            inv.Guard.clocks;
          if inv.Guard.data <> Expr.True then
            out :=
              mk ~fix:"encode the data constraint in edge guards instead"
                D.Invariant_misuse D.Warning site
                "data predicate in an invariant is ignored by the symbolic \
                 semantics"
              :: !out)
        a.Automaton.locations)
    net.Network.automata;
  !out

(* ---- urgent-clock-guard ---- *)

(* Mirrors the [Network.Builder.build] validation as diagnostics; only
   networks built with [~validate:false] can still carry these. *)
let urgent_pass (net : Network.t) =
  let out = ref [] in
  iter_edges net (fun ci ei _a (e : Automaton.edge) ->
      let site = D.Edge_site { comp = ci; edge = ei } in
      let has_clock_guard = e.Automaton.guard.Guard.clocks <> [] in
      match e.Automaton.sync with
      | Automaton.NoSync -> ()
      | (Automaton.Send c | Automaton.Recv c) when has_clock_guard ->
          let ch = net.Network.channels.(c) in
          if ch.Channel.urgent then
            out :=
              mk
                ~fix:
                  "move the timing constraint into a location invariant or \
                   a preceding non-urgent edge"
                D.Urgent_clock_guard D.Error site
                (sprintf
                   "clock guard on urgent channel %s: urgency decides from \
                    data guards only, so the clock constraint is unsound"
                   ch.Channel.name)
              :: !out
          else if
            ch.Channel.kind = Channel.Broadcast && e.Automaton.sync = Recv c
          then
            out :=
              mk ~fix:"receive unconditionally and test the clock afterwards"
                D.Urgent_clock_guard D.Error site
                (sprintf
                   "clock guard on broadcast receiver %s: receiver sets \
                    would depend on the zone"
                   ch.Channel.name)
              :: !out
      | Automaton.Send _ | Automaton.Recv _ -> ());
  !out

(* ---- channel-peer ---- *)

let channel_pass (net : Network.t) =
  let nch = Array.length net.Network.channels in
  let senders = Array.make nch [] and receivers = Array.make nch [] in
  iter_edges net (fun ci _ei _a (e : Automaton.edge) ->
      match e.Automaton.sync with
      | Automaton.NoSync -> ()
      | Automaton.Send c -> senders.(c) <- ci :: senders.(c)
      | Automaton.Recv c -> receivers.(c) <- ci :: receivers.(c));
  let out = ref [] in
  Array.iteri
    (fun c (ch : Channel.t) ->
      let site = D.Channel_site c in
      match (ch.Channel.kind, senders.(c), receivers.(c)) with
      | _, [], [] ->
          out :=
            mk ~fix:"remove the channel declaration" D.Channel_peer D.Warning
              site
              (sprintf "channel %s is declared but never used" ch.Channel.name)
            :: !out
      | Channel.Binary, _ :: _, [] ->
          out :=
            mk ~fix:"add a receiving edge or make the channel broadcast"
              D.Channel_peer D.Error site
              (sprintf
                 "binary channel %s is sent but never received: senders \
                  block forever"
                 ch.Channel.name)
            :: !out
      | Channel.Binary, [], _ :: _ ->
          out :=
            mk ~fix:"add a sending edge" D.Channel_peer D.Error site
              (sprintf
                 "binary channel %s is received but never sent: receivers \
                  block forever"
                 ch.Channel.name)
            :: !out
      | Channel.Binary, s, r ->
          if not (List.exists (fun i -> List.exists (fun j -> i <> j) r) s)
          then
            out :=
              mk ~fix:"move the sender or the receiver to another component"
                D.Channel_peer D.Error site
                (sprintf
                   "every sender and receiver of binary channel %s lives in \
                    one component, which cannot synchronize with itself"
                   ch.Channel.name)
              :: !out
      (* broadcast with senders and no receivers: the paper's hurry!
         greediness idiom — intentionally silent *)
      | Channel.Broadcast, _ :: _, [] -> ()
      | Channel.Broadcast, [], _ :: _ ->
          out :=
            mk ~fix:"add a sending edge" D.Channel_peer D.Warning site
              (sprintf
                 "broadcast channel %s is received but never sent"
                 ch.Channel.name)
            :: !out
      | Channel.Broadcast, _, _ -> ())
    net.Network.channels;
  !out

(* ---- cycle machinery (committed-cycle, zeno-cycle) ---- *)

(* Tarjan over the locations of one automaton, restricted to the edges
   [keep] accepts.  Returns each SCC that actually contains a cycle
   (more than one member, or a self-loop) as
   [(members, edge indices with both endpoints inside)]. *)
let cyclic_sccs (a : Automaton.t) ~keep =
  let nl = Array.length a.Automaton.locations in
  let index = Array.make nl (-1) and low = Array.make nl 0 in
  let on_stack = Array.make nl false in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let succ l =
    List.filter_map
      (fun ei ->
        let e = Automaton.edge a ei in
        if keep ei e then Some (ei, e.Automaton.dst) else None)
      (Automaton.out_edges a l)
  in
  let rec strong l =
    index.(l) <- !counter;
    low.(l) <- !counter;
    incr counter;
    stack := l :: !stack;
    on_stack.(l) <- true;
    List.iter
      (fun (_, d) ->
        if index.(d) < 0 then begin
          strong d;
          if low.(d) < low.(l) then low.(l) <- low.(d)
        end
        else if on_stack.(d) && index.(d) < low.(l) then low.(l) <- index.(d))
      (succ l);
    if low.(l) = index.(l) then begin
      let rec pop acc =
        match !stack with
        | x :: rest ->
            stack := rest;
            on_stack.(x) <- false;
            if x = l then x :: acc else pop (x :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  for l = 0 to nl - 1 do
    if index.(l) < 0 then strong l
  done;
  List.filter_map
    (fun members ->
      let in_scc x = List.mem x members in
      let edges =
        List.concat_map
          (fun l ->
            List.filter_map
              (fun (ei, d) -> if in_scc d then Some ei else None)
              (succ l))
          members
      in
      let cyclic = match members with [ _ ] -> edges <> [] | _ -> true in
      if cyclic then Some (members, edges) else None)
    !sccs

let pp_members (a : Automaton.t) members =
  String.concat ", "
    (List.map
       (fun l -> (Automaton.location a l).Automaton.loc_name)
       members)

let committed_pass (net : Network.t) =
  let out = ref [] in
  Array.iteri
    (fun ci (a : Automaton.t) ->
      let committed l =
        (Automaton.location a l).Automaton.kind = Automaton.Committed
      in
      let keep _ (e : Automaton.edge) =
        committed e.Automaton.src && committed e.Automaton.dst
      in
      List.iter
        (fun (members, _) ->
          out :=
            mk ~fix:"break the cycle with a normal or urgent location"
              D.Committed_cycle D.Warning
              (D.Location_site { comp = ci; loc = List.hd members })
              (sprintf
                 "cycle through committed locations only (%s): the checker \
                  can livelock on zero-time discrete steps"
                 (pp_members a members))
            :: !out)
        (cyclic_sccs a ~keep))
    net.Network.automata;
  !out

let zeno_pass (net : Network.t) =
  let out = ref [] in
  Array.iteri
    (fun ci (a : Automaton.t) ->
      let committed l =
        (Automaton.location a l).Automaton.kind = Automaton.Committed
      in
      List.iter
        (fun (members, edges) ->
          (* all-committed cycles are the committed-cycle pass's job *)
          if not (List.for_all committed members) then begin
            let resets =
              List.concat_map
                (fun ei -> reset_clocks (Automaton.edge a ei).Automaton.update)
                edges
            in
            (* a clock bounded from below on the cycle forces >= 1 time
               unit per iteration ([x > c] already forces positive
               delay at c = 0) *)
            let lower_bounded x =
              List.exists
                (fun ei ->
                  List.exists
                    (fun (at : Guard.atom) ->
                      at.Guard.clock = x
                      &&
                      let lo, _ =
                        Expr.interval net.Network.var_ranges at.Guard.bound
                      in
                      match at.Guard.rel with
                      | Guard.Ge | Guard.Eq -> lo >= 1
                      | Guard.Gt -> lo >= 0
                      | Guard.Lt | Guard.Le -> false)
                    (Automaton.edge a ei).Automaton.guard.Guard.clocks)
                edges
            in
            if not (List.exists lower_bounded resets) then begin
              let synced =
                List.exists
                  (fun ei ->
                    (Automaton.edge a ei).Automaton.sync <> Automaton.NoSync)
                  edges
              in
              out :=
                mk
                  ~fix:
                    "reset a clock on the cycle and guard one of its edges \
                     with a positive lower bound on that clock"
                  D.Zeno_cycle
                  (if synced then D.Info else D.Warning)
                  (D.Location_site { comp = ci; loc = List.hd members })
                  (sprintf
                     "cycle (%s) resets no clock that the cycle also bounds \
                      from below: runs may converge in time%s"
                     (pp_members a members)
                     (if synced then
                        " (may be paced by a synchronization partner)"
                      else ""))
                :: !out
            end
          end)
        (cyclic_sccs a ~keep:(fun _ _ -> true)))
    net.Network.automata;
  !out

(* ---- dead-edge (semantic, flow-powered) ---- *)

let dead_edge_pass fa (net : Network.t) =
  let out = ref [] in
  (* a location edge paths reach but no variable valuation does: report
     once here rather than on each of its outgoing edges (their
     [Unreachable_source] status is cascade noise) *)
  Array.iteri
    (fun ci (a : Automaton.t) ->
      let seen = syntactic_reach a in
      Array.iteri
        (fun l _ ->
          if seen.(l) && not (Flow.reachable fa ci l) then
            out :=
              mk ~fix:"remove the location or fix the guards leading to it"
                D.Dead_edge D.Warning
                (D.Location_site { comp = ci; loc = l })
                "edge paths reach this location, but the interval analysis \
                 proves no variable valuation does: every incoming edge is \
                 dead"
              :: !out)
        a.Automaton.locations)
    net.Network.automata;
  iter_edges net (fun ci ei _a (e : Automaton.edge) ->
      let site = D.Edge_site { comp = ci; edge = ei } in
      match Flow.edge_status fa ci ei with
      | Flow.Live | Flow.Dead Flow.Unreachable_source -> ()
      | Flow.Dead Flow.Unsat_guard ->
          out :=
            mk ~fix:"remove the edge or repair its guard" D.Dead_edge
              D.Warning site
              "guard is unsatisfiable under the inferred variable intervals: \
               the edge can never fire"
            :: !out
      | Flow.Dead Flow.No_partner ->
          let c =
            match e.Automaton.sync with
            | Automaton.Send c | Automaton.Recv c -> c
            | Automaton.NoSync -> assert false
          in
          out :=
            mk ~fix:"align the partner guards or remove the edge" D.Dead_edge
              D.Warning site
              (sprintf
                 "no partner edge on channel %s is ever co-enabled with this \
                  one: the synchronization can never fire"
                 net.Network.channels.(c).Channel.name)
            :: !out);
  !out

(* ---- always-true-guard (semantic, flow-powered) ---- *)

let trivial_guard_pass fa (net : Network.t) =
  let out = ref [] in
  iter_edges net (fun ci ei _a (_e : Automaton.edge) ->
      if Flow.guard_data_trivial fa ci ei then
        out :=
          mk ~fix:"drop the data guard" D.Trivial_guard D.Hint
            (D.Edge_site { comp = ci; edge = ei })
            "data guard evaluates to true at every reachable valuation: it \
             never restricts the edge"
          :: !out);
  !out

(* ---- sync-write-race (semantic, flow-powered) ---- *)

let race_pass fa (net : Network.t) =
  List.map
    (fun (r : Flow.race) ->
      let si, _se = r.Flow.race_writer and ri, re = r.Flow.race_other in
      mk ~fix:"write the variable on one side of the synchronization only"
        D.Sync_write_race D.Warning
        (D.Edge_site { comp = ri; edge = re })
        (sprintf
           "both sides of a synchronization on channel %s write %s; \
            participants update sender-first, so this receiver's assignment \
            silently overwrites %s's"
           net.Network.channels.(r.Flow.race_chan).Channel.name
           net.Network.var_names.(r.Flow.race_var)
           net.Network.automata.(si).Automaton.name))
    (List.sort_uniq compare (Flow.races fa))

(* ---- outside-query-cone (semantic, slice-powered) ---- *)

(* Only meaningful when the caller names observed components: without a
   query there is no cone.  Merging is irrelevant to the removal set,
   so the cheaper [Coi] mode is enough. *)
let cone_pass fa ~observed_comps ~observed_clocks ~observed_vars
    (net : Network.t) =
  if observed_comps = [] then []
  else
    let goal =
      {
        Slice.g_comps = observed_comps;
        g_clocks = observed_clocks;
        g_vars = observed_vars;
      }
    in
    let sl = Slice.make ~mode:Slice.Coi ~fa net goal in
    List.map
      (fun ci ->
        mk
          ~fix:
            "drop the component from this analysis run, or connect it to \
             the query through a synchronization, shared variable or clock"
          D.Outside_cone D.Hint (D.Automaton_site ci)
          "component is outside the query's cone of influence: it cannot \
           block, force or retime anything the observed components, clocks \
           or variables depend on")
      sl.Slice.removed_comps

(* ---- merged-query-clock (syntactic mirror of Slice's CoiMerge) ---- *)

(* Groups the unpinned clocks by their constant-reset signature over
   every edge, exactly as {!Slice.make} does under [CoiMerge] — except
   over the whole network rather than the kept live edges, so equal
   signatures here imply equal signatures on any cone (a sound
   under-approximation: the pass only fires when merging definitely
   folds the clock).  A query clock that is a non-representative class
   member is answered through the representative; correct, but worth a
   warning because pinning the clock is the documented way to keep it
   distinct. *)
let merge_pass ~observed (net : Network.t) =
  let ncl = Array.length net.Network.clock_names in
  if not (Array.exists Fun.id observed) then []
  else begin
    let candidate = Array.make ncl false in
    for x = 1 to ncl - 1 do
      candidate.(x) <- not net.Network.pinned.(x)
    done;
    let signature = Array.make ncl [] in
    iter_edges net (fun _ci _ei _a (e : Automaton.edge) ->
        let consts = Hashtbl.create 4 in
        List.iter
          (function
            | Update.Reset_clock (x, Expr.Int c) when c >= 0 ->
                Hashtbl.replace consts x c
            | Update.Reset_clock (x, _) -> candidate.(x) <- false
            | Update.Set_var _ -> ())
          e.Automaton.update;
        for x = 1 to ncl - 1 do
          if candidate.(x) then
            signature.(x) <- Hashtbl.find_opt consts x :: signature.(x)
        done);
    let groups = Hashtbl.create 8 in
    let out = ref [] in
    for x = 1 to ncl - 1 do
      if candidate.(x) then
        match Hashtbl.find_opt groups signature.(x) with
        | None -> Hashtbl.add groups signature.(x) x
        | Some r ->
            if observed.(x) then
              out :=
                mk
                  ~fix:
                    "pin the clock (bump its clock bound) or disable merging \
                     (slicing mode coi or off)"
                  D.Merged_query_clock D.Warning (D.Clock_site x)
                  (sprintf
                     "the query observes clock %s, but quasi-equal merging \
                      folds it into %s (identical reset pattern on every \
                      edge): verdicts are answered through the representative"
                     net.Network.clock_names.(x)
                     net.Network.clock_names.(r))
                :: !out
    done;
    List.rev !out
  end

(* ---- driver ---- *)

let run ?(observed_comps = []) ?(observed_clocks = []) ?(observed_vars = [])
    (net : Network.t) =
  let obs_c = Array.make (Array.length net.Network.clock_names) false in
  List.iter (fun x -> obs_c.(x) <- true) observed_clocks;
  let obs_v = Array.make (Array.length net.Network.var_names) false in
  List.iter (fun v -> obs_v.(v) <- true) observed_vars;
  let fa = Flow.analyze net in
  D.sort
    (List.concat
       [
         clock_passes ~observed:obs_c net;
         var_pass ~observed:obs_v net;
         range_pass fa net;
         unreachable_pass net;
         invariant_pass net;
         urgent_pass net;
         channel_pass net;
         committed_pass net;
         zeno_pass net;
         dead_edge_pass fa net;
         trivial_guard_pass fa net;
         race_pass fa net;
         cone_pass fa ~observed_comps ~observed_clocks ~observed_vars net;
         merge_pass ~observed:obs_c net;
       ])

(* Deterministic output order: findings with a source position first by
   (line, col), the rest in component-major site order, ties broken by
   the stable pass id — so lint output and [--fail-on] behavior never
   depend on pass scheduling. *)
let output_order ?pos findings =
  let key (d : D.t) =
    match (match pos with Some f -> f d.D.site | None -> None) with
    | Some (line, col) -> (1, line, col, D.site_key d.D.site, D.pass_id d.D.pass)
    | None -> (0, 0, 0, D.site_key d.D.site, D.pass_id d.D.pass)
  in
  List.stable_sort (fun a b -> compare (key a) (key b)) findings

let pp_report ?resolve ?pos net ppf findings =
  let findings = output_order ?pos findings in
  List.iter
    (fun d -> Format.fprintf ppf "%a@." (D.pp ?resolve net) d)
    findings;
  let e = D.count D.Error findings
  and w = D.count D.Warning findings
  and i = D.count D.Info findings
  and h = D.count D.Hint findings in
  Format.fprintf ppf "%d error%s, %d warning%s, %d info, %d hint%s@." e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    i h
    (if h = 1 then "" else "s")

let to_json ?resolve ?pos (net : Network.t) findings =
  let findings = output_order ?pos findings in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"findings\": [";
  List.iteri
    (fun i (d : D.t) ->
      Buffer.add_string buf (if i > 0 then ",\n    " else "\n    ");
      let site = Format.asprintf "%a" (D.pp_site net) d.D.site in
      Buffer.add_string buf
        (Printf.sprintf {|{"severity": %S, "pass": %S, "site": %S|}
           (D.severity_name d.D.severity)
           (D.pass_name d.D.pass) site);
      (match Option.bind resolve (fun f -> f d.D.site) with
      | Some p -> Buffer.add_string buf (Printf.sprintf {|, "position": %S|} p)
      | None -> ());
      Buffer.add_string buf (Printf.sprintf {|, "message": %S|} d.D.message);
      (match d.D.fix with
      | Some f -> Buffer.add_string buf (Printf.sprintf {|, "fix": %S|} f)
      | None -> ());
      Buffer.add_string buf "}")
    findings;
  Buffer.add_string buf
    (if findings = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf
    (Printf.sprintf
       {|  "summary": {"errors": %d, "warnings": %d, "info": %d, "hints": %d}|}
       (D.count D.Error findings)
       (D.count D.Warning findings)
       (D.count D.Info findings)
       (D.count D.Hint findings));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
