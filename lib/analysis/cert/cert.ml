(* Verdict certificates: emission-side data model, versioned on-disk
   format, and the independent checker.

   A certificate for an unreachable / sup verdict is the explorer's
   final passed-list antichain translated back to the original
   pre-slicing model: per discrete state the unextrapolated (and
   un-reduced: inactive clocks freed) zones plus the per-state LU
   vectors the engine pruned with.  The checker re-derives every
   obligation with the naive {!Reference} semantics — plain DBM
   successor computation, [Dbm.le_lu] as the only shared primitive —
   so a bug anywhere in the optimizing pipeline (flow refinement,
   slicing, interning, packed keys, sharded exploration, LuSim
   subsumption) cannot survive certification unless the independent
   replay reproduces it.

   Soundness is self-contained: [check] accepts only certificates that
   prove their verdict for the given network and goal, regardless of
   who produced them.  The mask-isolation validations exist exactly for
   this — a certificate may declare components/clocks/variables outside
   the certified cone, and the checker first proves the declaration
   harmless (frozen components cannot write, synchronize into, or be
   read by the cone) before trusting it. *)

open Ita_ta
module Dbm = Ita_dbm.Dbm

let version = 1

type goal = { comp_locs : (int * int) list; guard : Guard.t }
type sup_kind = Attained | Approached

type verdict =
  | Unreachable
  | Sup of { clock : Guard.clock; value : int; kind : sup_kind }
  | Reachable of Semantics.label list

type entry = {
  st : Semantics.state;
  l : int array;
  u : int array;
  zones : Dbm.t list;
}

type query_cert = {
  index : int;
  verdict : verdict;
  frozen_comps : int list;
  removed_clocks : int list;
  frozen_vars : int list;
  merged : (int * int) list;
  entries : entry list;
}

type t = { fingerprint : int; queries : query_cert list }

type obligation =
  | Format
  | Fingerprint
  | Mask
  | Initiation
  | Consecution
  | Judgment
  | Witness

type failure = { obligation : obligation; message : string }

type stats = { checked_states : int; checked_zones : int }

let obligation_name = function
  | Format -> "format"
  | Fingerprint -> "fingerprint"
  | Mask -> "mask"
  | Initiation -> "initiation"
  | Consecution -> "consecution"
  | Judgment -> "judgment"
  | Witness -> "witness"

(* Stable exit codes for [tamc certify]; 1/2 stay free for usage and
   I/O errors, as in the other subcommands. *)
let exit_code = function
  | Format -> 3
  | Fingerprint -> 4
  | Mask -> 5
  | Initiation -> 6
  | Consecution -> 7
  | Judgment -> 8
  | Witness -> 9

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)
(* ------------------------------------------------------------------ *)

(* Ties a certificate to the model it certifies.  The pretty-printed
   network is a full structural rendering, so any edit to guards,
   updates, invariants or topology changes the fingerprint; the counts
   guard against printer collisions. *)
let fingerprint (net : Network.t) =
  let s = Format.asprintf "%a" Pretty.pp_network net in
  Hashtbl.hash
    ( s,
      String.length s,
      Array.length net.Network.automata,
      Array.length net.Network.clock_names,
      Array.length net.Network.var_names )
  land max_int

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let bpf = Printf.bprintf

let write_ints buf tag xs =
  bpf buf "%s %d" tag (List.length xs);
  List.iter (fun x -> bpf buf " %d" x) xs;
  bpf buf "\n"

let write_label buf = function
  | Semantics.Internal { comp; edge } -> bpf buf "step internal %d %d\n" comp edge
  | Semantics.Sync { chan; sender = si, se; receivers } ->
      bpf buf "step sync %d %d %d %d" chan si se (List.length receivers);
      List.iter (fun (ri, re) -> bpf buf " %d %d" ri re) receivers;
      bpf buf "\n"

let write_query buf (q : query_cert) =
  bpf buf "begin-query %d\n" q.index;
  (match q.verdict with
  | Unreachable -> bpf buf "verdict unreachable\n"
  | Sup { clock; value; kind } ->
      bpf buf "verdict sup %d %d %s\n" clock value
        (match kind with Attained -> "attained" | Approached -> "approached")
  | Reachable labels ->
      bpf buf "verdict reachable %d\n" (List.length labels);
      List.iter (write_label buf) labels);
  write_ints buf "mask-comps" q.frozen_comps;
  write_ints buf "mask-clocks" q.removed_clocks;
  write_ints buf "mask-vars" q.frozen_vars;
  write_ints buf "merged"
    (List.concat_map (fun (m, r) -> [ m; r ]) q.merged);
  bpf buf "states %d\n" (List.length q.entries);
  List.iter
    (fun e ->
      let locs = Array.to_list e.st.Semantics.locs in
      let env = Array.to_list e.st.Semantics.env in
      bpf buf "state %d" (List.length locs);
      List.iter (fun x -> bpf buf " %d" x) locs;
      bpf buf " %d" (List.length env);
      List.iter (fun x -> bpf buf " %d" x) env;
      bpf buf "\n";
      write_ints buf "lu"
        (Array.to_list e.l @ Array.to_list e.u);
      bpf buf "zones %d\n" (List.length e.zones);
      List.iter
        (fun z ->
          let dim, m = Dbm.to_encoded z in
          bpf buf "zone %d" dim;
          Array.iter (fun x -> bpf buf " %d" x) m;
          bpf buf "\n")
        e.zones)
    q.entries;
  bpf buf "end-query\n"

let to_string (t : t) =
  let buf = Buffer.create 4096 in
  bpf buf "tamc-cert %d\n" version;
  bpf buf "fingerprint %d\n" t.fingerprint;
  bpf buf "queries %d\n" (List.length t.queries);
  List.iter (write_query buf) t.queries;
  bpf buf "end\n";
  Buffer.contents buf

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

exception Parse of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let parse (s : string) : (t, failure) result =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
    |> Array.of_list
  in
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length lines then parse_error "unexpected end of file"
    else begin
      let l = lines.(!pos) in
      incr pos;
      String.split_on_char ' ' (String.trim l)
      |> List.filter (fun t -> t <> "")
    end
  in
  let int_of tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> parse_error "expected an integer, got %S" tok
  in
  let ints = List.map int_of in
  let tagged tag =
    match next () with
    | t :: rest when t = tag -> rest
    | t :: _ -> parse_error "expected %S, got %S" tag t
    | [] -> parse_error "expected %S, got an empty line" tag
  in
  let counted tag =
    match tagged tag with
    | n :: rest ->
        let n = int_of n in
        let rest = ints rest in
        if List.length rest <> n then
          parse_error "%s: expected %d values, got %d" tag n (List.length rest);
        rest
    | [] -> parse_error "%s: missing count" tag
  in
  let parse_label = function
    | [ "internal"; c; e ] ->
        Semantics.Internal { comp = int_of c; edge = int_of e }
    | "sync" :: chan :: si :: se :: n :: rest ->
        let n = int_of n in
        let rest = ints rest in
        if List.length rest <> 2 * n then
          parse_error "sync step: expected %d receiver pairs" n;
        let rec pairs = function
          | [] -> []
          | a :: b :: tl -> (a, b) :: pairs tl
          | _ -> parse_error "sync step: odd receiver list"
        in
        Semantics.Sync
          {
            chan = int_of chan;
            sender = (int_of si, int_of se);
            receivers = pairs rest;
          }
    | _ -> parse_error "malformed witness step"
  in
  let parse_entry () =
    match tagged "state" with
    | nlocs :: rest ->
        let nlocs = int_of nlocs in
        let rest = ints rest in
        if List.length rest < nlocs + 1 then parse_error "state: short line";
        let locs = Array.of_list (List.filteri (fun i _ -> i < nlocs) rest) in
        let rest = List.filteri (fun i _ -> i >= nlocs) rest in
        let nvars, env =
          match rest with
          | nvars :: env -> (nvars, Array.of_list env)
          | [] -> parse_error "state: missing variable count"
        in
        if Array.length env <> nvars then
          parse_error "state: expected %d variables, got %d" nvars
            (Array.length env);
        let lu = counted "lu" in
        let nlu = List.length lu in
        if nlu mod 2 <> 0 then parse_error "lu: odd vector length";
        let half = nlu / 2 in
        let lu = Array.of_list lu in
        let l = Array.sub lu 0 half and u = Array.sub lu half half in
        let nz =
          match tagged "zones" with
          | [ n ] -> int_of n
          | _ -> parse_error "zones: malformed count"
        in
        let zones =
          List.init nz (fun _ ->
              match tagged "zone" with
              | dim :: rest ->
                  let dim = int_of dim in
                  let m = Array.of_list (ints rest) in
                  if Array.length m <> dim * dim then
                    parse_error "zone: expected %d entries, got %d" (dim * dim)
                      (Array.length m);
                  Dbm.of_encoded dim m
              | [] -> parse_error "zone: empty line")
        in
        { st = { Semantics.locs; env }; l; u; zones }
    | [] -> parse_error "state: empty line"
  in
  let parse_query () =
    let index =
      match tagged "begin-query" with
      | [ i ] -> int_of i
      | _ -> parse_error "begin-query: malformed"
    in
    let verdict =
      match tagged "verdict" with
      | [ "unreachable" ] -> Unreachable
      | [ "sup"; clock; value; kind ] ->
          Sup
            {
              clock = int_of clock;
              value = int_of value;
              kind =
                (match kind with
                | "attained" -> Attained
                | "approached" -> Approached
                | k -> parse_error "unknown sup kind %S" k);
            }
      | [ "reachable"; n ] ->
          let n = int_of n in
          Reachable (List.init n (fun _ -> parse_label (tagged "step")))
      | _ -> parse_error "malformed verdict"
    in
    let frozen_comps = counted "mask-comps" in
    let removed_clocks = counted "mask-clocks" in
    let frozen_vars = counted "mask-vars" in
    let merged_flat = counted "merged" in
    if List.length merged_flat mod 2 <> 0 then
      parse_error "merged: odd pair list";
    let rec pairs = function
      | [] -> []
      | a :: b :: tl -> (a, b) :: pairs tl
      | _ -> assert false
    in
    let merged = pairs merged_flat in
    let n_entries =
      match tagged "states" with
      | [ n ] -> int_of n
      | _ -> parse_error "states: malformed count"
    in
    let entries = List.init n_entries (fun _ -> parse_entry ()) in
    (match next () with
    | [ "end-query" ] -> ()
    | _ -> parse_error "expected end-query");
    { index; verdict; frozen_comps; removed_clocks; frozen_vars; merged; entries }
  in
  match
    let v =
      match tagged "tamc-cert" with
      | [ v ] -> int_of v
      | _ -> parse_error "malformed header"
    in
    if v <> version then
      parse_error "unsupported certificate version %d (checker speaks %d)" v
        version;
    let fp =
      match tagged "fingerprint" with
      | [ f ] -> int_of f
      | _ -> parse_error "malformed fingerprint"
    in
    let nq =
      match tagged "queries" with
      | [ n ] -> int_of n
      | _ -> parse_error "malformed query count"
    in
    let queries = List.init nq (fun _ -> parse_query ()) in
    (match next () with
    | [ "end" ] -> ()
    | _ -> parse_error "expected end");
    { fingerprint = fp; queries }
  with
  | t -> Ok t
  | exception Parse msg -> Error { obligation = Format; message = msg }
  | exception Invalid_argument msg ->
      Error { obligation = Format; message = msg }

let load path : (t, failure) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error { obligation = Format; message = msg }

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

exception Fail of failure

let fail obligation fmt =
  Format.kasprintf (fun message -> raise (Fail { obligation; message })) fmt

let mask_of_query (net : Network.t) (q : query_cert) : Reference.mask =
  let nc = Array.length net.Network.automata in
  let ncl = Array.length net.Network.clock_names in
  let nv = Array.length net.Network.var_names in
  let mask = Reference.no_mask net in
  let set tag arr n i =
    if i < 0 || i >= n then fail Format "%s index %d out of range" tag i;
    arr.(i) <- true
  in
  List.iter (set "mask component" mask.Reference.frozen_comps nc) q.frozen_comps;
  List.iter (set "mask clock" mask.Reference.removed_clocks ncl) q.removed_clocks;
  List.iter (set "mask variable" mask.Reference.frozen_vars nv) q.frozen_vars;
  if mask.Reference.removed_clocks.(0) then
    fail Format "the reference clock cannot be removed";
  mask

(* Environment canonicalization: frozen variables are invisible to the
   certified cone (read isolation is validated below), so states are
   matched with them pinned at their initial values. *)
let canon_env (net : Network.t) (mask : Reference.mask) env =
  let env = Array.copy env in
  Array.iteri
    (fun v frozen -> if frozen then env.(v) <- net.Network.var_init.(v))
    mask.Reference.frozen_vars;
  env

(* ---- mask isolation: prove the declared mask harmless ---- *)

(* Locations of [a] reachable from its initial location over its own
   edges, ignoring guards — a sound over-approximation of where the
   component can ever be inside the full product. *)
let bfs_locs (a : Automaton.t) =
  let n = Array.length a.Automaton.locations in
  let seen = Array.make n false in
  let rec go l =
    if not seen.(l) then begin
      seen.(l) <- true;
      List.iter
        (fun ei -> go (Automaton.edge a ei).Automaton.dst)
        (Automaton.out_edges a l)
    end
  in
  go a.Automaton.initial;
  seen

let validate_mask (net : Network.t) (mask : Reference.mask) =
  let nc = Array.length net.Network.automata in
  let frozen i = mask.Reference.frozen_comps.(i) in
  let removed x = mask.Reference.removed_clocks.(x) in
  let fvar v = mask.Reference.frozen_vars.(v) in
  let comp_name i = net.Network.automata.(i).Automaton.name in
  (* (1) write and synchronization isolation of frozen components *)
  let unmasked_has_sync c role =
    let rec go i =
      i < nc
      && (((not (frozen i))
          && Array.exists
               (fun (e : Automaton.edge) ->
                 match (e.Automaton.sync, role) with
                 | Automaton.Send c', `Send -> c' = c
                 | Automaton.Recv c', `Recv -> c' = c
                 | _ -> false)
               net.Network.automata.(i).Automaton.edges)
         || go (i + 1))
    in
    go 0
  in
  for i = 0 to nc - 1 do
    if frozen i then begin
      let a = net.Network.automata.(i) in
      let reach = bfs_locs a in
      Array.iteri
        (fun _ei (e : Automaton.edge) ->
          if reach.(e.Automaton.src) then begin
            List.iter
              (function
                | Update.Set_var (v, _) ->
                    if not (fvar v) then
                      fail Mask
                        "frozen component %s can write unmasked variable %s"
                        (comp_name i) net.Network.var_names.(v)
                | Update.Reset_clock (x, _) ->
                    if not (removed x) then
                      fail Mask
                        "frozen component %s can reset unmasked clock %s"
                        (comp_name i) net.Network.clock_names.(x))
              e.Automaton.update;
            match e.Automaton.sync with
            | Automaton.NoSync -> ()
            | Automaton.Send c ->
                if unmasked_has_sync c `Recv then
                  fail Mask
                    "frozen component %s can send on %s, which unmasked \
                     components receive"
                    (comp_name i) net.Network.channels.(c).Channel.name
            | Automaton.Recv c -> (
                match net.Network.channels.(c).Channel.kind with
                | Channel.Broadcast -> ()
                  (* a broadcast receiver never blocks nor moves its
                     sender; its own moves are covered by write
                     isolation *)
                | Channel.Binary ->
                    if unmasked_has_sync c `Send then
                      fail Mask
                        "frozen component %s can complete binary %s for \
                         unmasked senders"
                        (comp_name i) net.Network.channels.(c).Channel.name)
          end)
        a.Automaton.edges
    end
  done;
  (* (2) read isolation: the certified cone never reads frozen
     variables, and invariants never test removed clocks *)
  let check_no_frozen what vars =
    List.iter
      (fun v ->
        if fvar v then
          fail Mask "%s reads frozen variable %s" what net.Network.var_names.(v))
      vars
  in
  let check_guard what ~invariant (g : Guard.t) =
    check_no_frozen what (Expr.bvars g.Guard.data);
    List.iter
      (fun (at : Guard.atom) ->
        check_no_frozen what (Expr.ivars at.Guard.bound);
        if invariant && removed at.Guard.clock then
          fail Mask "%s tests removed clock %s" what
            net.Network.clock_names.(at.Guard.clock))
      g.Guard.clocks
  in
  for i = 0 to nc - 1 do
    if not (frozen i) then begin
      let a = net.Network.automata.(i) in
      Array.iter
        (fun (l : Automaton.location) ->
          check_guard
            (Printf.sprintf "invariant of %s.%s" (comp_name i)
               l.Automaton.loc_name)
            ~invariant:true l.Automaton.invariant)
        a.Automaton.locations;
      Array.iter
        (fun (e : Automaton.edge) ->
          let what = Printf.sprintf "an edge of %s" (comp_name i) in
          check_guard what ~invariant:false e.Automaton.guard;
          List.iter
            (function
              | Update.Set_var (v, rhs) ->
                  if not (fvar v) then check_no_frozen what (Expr.ivars rhs)
              | Update.Reset_clock (x, rhs) ->
                  if not (removed x) then check_no_frozen what (Expr.ivars rhs))
            e.Automaton.update)
        a.Automaton.edges
    end
  done

let validate_goal (net : Network.t) (mask : Reference.mask) (goal : goal) =
  List.iter
    (fun (i, l) ->
      if i < 0 || i >= Array.length net.Network.automata then
        fail Format "goal component %d out of range" i;
      if l < 0 || l >= Array.length net.Network.automata.(i).Automaton.locations
      then fail Format "goal location %d out of range" l;
      if mask.Reference.frozen_comps.(i) then
        fail Mask "goal watches frozen component %s"
          net.Network.automata.(i).Automaton.name)
    goal.comp_locs;
  List.iter
    (fun v ->
      if mask.Reference.frozen_vars.(v) then
        fail Mask "goal reads frozen variable %s" net.Network.var_names.(v))
    (Expr.bvars goal.guard.Guard.data);
  List.iter
    (fun (at : Guard.atom) ->
      if mask.Reference.removed_clocks.(at.Guard.clock) then
        fail Mask "goal tests removed clock %s"
          net.Network.clock_names.(at.Guard.clock);
      List.iter
        (fun v ->
          if mask.Reference.frozen_vars.(v) then
            fail Mask "goal reads frozen variable %s" net.Network.var_names.(v))
        (Expr.ivars at.Guard.bound))
    goal.guard.Guard.clocks

(* ---- structural validation of the stored antichain ---- *)

let validate_entries (net : Network.t) (mask : Reference.mask) entries =
  let nc = Array.length net.Network.automata in
  let ncl = Array.length net.Network.clock_names in
  let nv = Array.length net.Network.var_names in
  let seen = Hashtbl.create (List.length entries * 2) in
  List.iteri
    (fun k (e : entry) ->
      let where = Printf.sprintf "state #%d" k in
      if Array.length e.st.Semantics.locs <> nc then
        fail Format "%s: expected %d locations" where nc;
      if Array.length e.st.Semantics.env <> nv then
        fail Format "%s: expected %d variables" where nv;
      Array.iteri
        (fun i l ->
          let a = net.Network.automata.(i) in
          if l < 0 || l >= Array.length a.Automaton.locations then
            fail Format "%s: location %d out of range for %s" where l
              a.Automaton.name;
          if mask.Reference.frozen_comps.(i) && l <> a.Automaton.initial then
            fail Mask "%s: frozen component %s away from its initial location"
              where a.Automaton.name)
        e.st.Semantics.locs;
      Array.iteri
        (fun v x ->
          if mask.Reference.frozen_vars.(v) && x <> net.Network.var_init.(v)
          then
            fail Mask "%s: frozen variable %s away from its initial value"
              where net.Network.var_names.(v))
        e.st.Semantics.env;
      if Array.length e.l <> ncl || Array.length e.u <> ncl then
        fail Format "%s: LU vectors must have %d entries" where ncl;
      if e.l.(0) <> 0 || e.u.(0) <> 0 then
        fail Format "%s: LU vectors must be 0 at the reference clock" where;
      for x = 1 to ncl - 1 do
        if mask.Reference.removed_clocks.(x) then begin
          if e.l.(x) <> -1 || e.u.(x) <> -1 then
            fail Mask "%s: removed clock %s must carry -1 LU entries" where
              net.Network.clock_names.(x)
        end
        else if e.l.(x) < 0 || e.u.(x) < 0 then
          fail Format "%s: negative LU entry for kept clock %s" where
            net.Network.clock_names.(x)
      done;
      if e.zones = [] then fail Format "%s: no zones" where;
      List.iter
        (fun z ->
          if Dbm.dim z <> ncl then
            fail Format "%s: zone dimension %d, expected %d" where (Dbm.dim z)
              ncl;
          if Dbm.is_empty z then fail Format "%s: empty stored zone" where;
          let zf = Dbm.copy z in
          for x = 1 to ncl - 1 do
            if mask.Reference.removed_clocks.(x) then Dbm.free zf x
          done;
          if not (Dbm.equal z zf) then
            fail Mask "%s: a stored zone constrains a removed clock" where)
        e.zones;
      let key =
        (e.st.Semantics.locs, canon_env net mask e.st.Semantics.env)
      in
      if Hashtbl.mem seen key then
        fail Format "%s: duplicate discrete state" where;
      Hashtbl.add seen key k)
    entries;
  seen

(* ---- the three obligations ---- *)

(* [dominated] checks the guard/invariant constant-domination condition
   of LU simulation: every lower-bound comparison against [c] needs
   [l.(x) >= c], every upper-bound one [u.(x) >= c].  Removed clocks
   are exempt (the whole certificate lives in the quotient that ignores
   them; goal and invariants were validated not to test them). *)
let dominated (mask : Reference.mask) env (e : entry) what obligation
    (g : Guard.t) =
  List.iter
    (fun (at : Guard.atom) ->
      let x = at.Guard.clock in
      if not mask.Reference.removed_clocks.(x) then begin
        let c = Expr.eval env at.Guard.bound in
        let need_l =
          match at.Guard.rel with
          | Guard.Ge | Guard.Gt | Guard.Eq -> true
          | Guard.Le | Guard.Lt -> false
        and need_u =
          match at.Guard.rel with
          | Guard.Le | Guard.Lt | Guard.Eq -> true
          | Guard.Ge | Guard.Gt -> false
        in
        if need_l && e.l.(x) < c then
          fail obligation
            "%s compares clock %d against %d, above the certified L bound %d"
            what x c e.l.(x);
        if need_u && e.u.(x) < c then
          fail obligation
            "%s compares clock %d against %d, above the certified U bound %d"
            what x c e.u.(x)
      end)
    g.Guard.clocks

let covered_by (e : entry) z = List.exists (fun w -> Dbm.le_lu e.l e.u z w) e.zones

let check_consecution (net : Network.t) (mask : Reference.mask) entries index =
  let zone_count = ref 0 in
  let earr = Array.of_list entries in
  let lookup st =
    let key = (st.Semantics.locs, canon_env net mask st.Semantics.env) in
    match Hashtbl.find_opt index key with
    | Some k -> earr.(k)
    | None -> raise Not_found
  in
  List.iteri
    (fun k (e : entry) ->
      let st = e.st in
      (* (I) invariant domination: the per-state vectors absorb every
         invariant constant, so LU coverage cannot forget an invariant
         a covered valuation is subject to *)
      Array.iteri
        (fun i l ->
          if not mask.Reference.frozen_comps.(i) then
            let a = net.Network.automata.(i) in
            dominated mask st.Semantics.env e
              (Printf.sprintf "state #%d: invariant of %s" k a.Automaton.name)
              Consecution (Automaton.location a l).Automaton.invariant)
        st.Semantics.locs;
      (* (a) delay coverage: when the unmasked components permit delay,
         the exact time elapse of every stored zone stays covered *)
      if Reference.delay_allowed net mask st then
        List.iter
          (fun z ->
            incr zone_count;
            let d = Reference.delay net mask st z in
            if not (Dbm.is_empty d) then
              if not (covered_by e d) then
                fail Consecution
                  "state #%d: delay successor escapes the certified antichain"
                  k)
          e.zones;
      (* discrete successors *)
      List.iter
        (fun (j : Reference.joint) ->
          (* a transition whose guards already contradict the invariants
             (or each other) at this discrete state can never fire from
             any covered valuation: no obligations *)
          let zfire = Reference.inv_zone net mask st in
          List.iter
            (fun (i, ei) ->
              let ed = Automaton.edge net.Network.automata.(i) ei in
              Guard.apply st.Semantics.env ed.Automaton.guard zfire)
            j.Reference.parts;
          if not (Dbm.is_empty zfire) then begin
            let what =
              Format.asprintf "state #%d: transition %a" k
                (Semantics.pp_label net) j.Reference.label
            in
            (* (G) guard domination for every participant *)
            List.iter
              (fun (i, ei) ->
                dominated mask st.Semantics.env e what Consecution
                  (Automaton.edge net.Network.automata.(i) ei).Automaton.guard)
              j.Reference.parts;
            let resets =
              List.concat_map
                (fun (i, ei) ->
                  List.filter_map
                    (function
                      | Update.Reset_clock (x, _) -> Some x
                      | Update.Set_var _ -> None)
                    (Automaton.edge net.Network.automata.(i) ei).Automaton.update)
                j.Reference.parts
            in
            let target = ref None in
            List.iter
              (fun z ->
                incr zone_count;
                match Reference.fire net mask st z j.Reference.parts with
                | None -> ()
                | Some (st', z') ->
                    let e' =
                      match !target with
                      | Some e' -> e'
                      | None ->
                          let e' =
                            try lookup st'
                            with Not_found ->
                              fail Consecution
                                "%s: successor state not in the certified \
                                 antichain"
                                what
                          in
                          (* (M) monotone vectors: coverage at the
                             successor must not promise less than the
                             source vectors on clocks the step did not
                             reset, or the simulation argument breaks
                             between steps *)
                          Array.iteri
                            (fun x lx ->
                              if
                                x > 0
                                && (not mask.Reference.removed_clocks.(x))
                                && not (List.mem x resets)
                              then
                                if lx > e.l.(x) || e'.u.(x) > e.u.(x) then
                                  fail Consecution
                                    "%s: successor LU vectors exceed the \
                                     source's on un-reset clock %d"
                                    what x)
                            e'.l;
                          target := Some e';
                          e'
                    in
                    if not (covered_by e' z') then
                      fail Consecution
                        "%s: discrete successor escapes the certified \
                         antichain"
                        what)
              e.zones
          end)
        (Reference.joint_transitions net mask st))
    entries;
  !zone_count

let check_initiation (net : Network.t) (mask : Reference.mask) entries index =
  let st0, z0 = Reference.initial net mask in
  if not (Dbm.is_empty z0) then begin
    let key = (st0.Semantics.locs, canon_env net mask st0.Semantics.env) in
    match Hashtbl.find_opt index key with
    | None -> fail Initiation "the initial state is not in the certified antichain"
    | Some k ->
        let e = List.nth entries k in
        if not (covered_by e z0) then
          fail Initiation "the initial zone escapes the certified antichain"
  end

let goal_entries goal entries =
  List.filter
    (fun (e : entry) ->
      List.for_all
        (fun (i, l) -> e.st.Semantics.locs.(i) = l)
        goal.comp_locs
      && Guard.data_holds e.st.Semantics.env goal.guard)
    entries

let check_unreachable_judgment (mask : Reference.mask) goal entries =
  List.iter
    (fun (e : entry) ->
      (* domination first: without it a covered valuation could satisfy
         the goal's clock constraints while the stored zone does not *)
      dominated mask e.st.Semantics.env e "the goal" Judgment goal.guard;
      List.iter
        (fun z ->
          let z = Dbm.copy z in
          Guard.apply e.st.Semantics.env goal.guard z;
          if not (Dbm.is_empty z) then
            fail Judgment "a certified state satisfies the goal")
        e.zones)
    (goal_entries goal entries)

let check_sup_judgment (net : Network.t) (mask : Reference.mask) goal ~clock
    ~value ~kind entries =
  if clock <= 0 || clock >= Array.length net.Network.clock_names then
    fail Format "sup clock %d out of range" clock;
  if mask.Reference.removed_clocks.(clock) then
    fail Mask "sup clock %s was removed by the mask"
      net.Network.clock_names.(clock);
  let bound =
    match kind with
    | Attained -> Ita_dbm.Bound.le value
    | Approached -> Ita_dbm.Bound.lt value
  in
  let best = ref None in
  List.iter
    (fun (e : entry) ->
      dominated mask e.st.Semantics.env e "the goal" Judgment goal.guard;
      (* the certified vectors must see past the claimed value on the
         query clock, otherwise a covered valuation larger than the
         stored ones could hide above the abstraction *)
      if e.l.(clock) < value || e.u.(clock) < value then
        fail Judgment
          "goal state vectors do not dominate the claimed sup %d on clock %s"
          value
          net.Network.clock_names.(clock);
      List.iter
        (fun z ->
          let z = Dbm.copy z in
          Guard.apply e.st.Semantics.env goal.guard z;
          if not (Dbm.is_empty z) then begin
            let s = Dbm.sup z clock in
            if Ita_dbm.Bound.lt_bound bound s then
              fail Judgment
                "a certified goal state exceeds the claimed sup of clock %s"
                net.Network.clock_names.(clock);
            match !best with
            | Some b when not (Ita_dbm.Bound.lt_bound b s) -> ()
            | _ -> best := Some s
          end)
        e.zones)
    (goal_entries goal entries);
  match !best with
  | Some b when b = bound -> ()
  | Some _ ->
      fail Judgment
        "the claimed sup of clock %s is not attained by any certified state"
        net.Network.clock_names.(clock)
  | None ->
      fail Judgment "no certified state satisfies the goal, yet a sup is claimed"

(* ---- witness replay ---- *)

let check_witness (net : Network.t) goal labels =
  let meets_goal (st, z) =
    List.for_all (fun (i, l) -> st.Semantics.locs.(i) = l) goal.comp_locs
    && Guard.data_holds st.Semantics.env goal.guard
    &&
    let z = Dbm.copy z in
    Guard.apply st.Semantics.env goal.guard z;
    not (Dbm.is_empty z)
  in
  let final =
    List.fold_left
      (fun cfgs label ->
        match Reference.step_exact net cfgs label with
        | [] ->
            fail Witness "witness step %a is not a real transition"
              (Semantics.pp_label net) label
        | cfgs' -> cfgs')
      [ Reference.initial_exact net ]
      labels
  in
  if not (List.exists meets_goal final) then
    fail Witness "the replayed witness does not satisfy the goal"

(* ---- entry point ---- *)

let check (net : Network.t) ~(goal : goal) (q : query_cert) :
    (stats, failure) result =
  try
    let mask = mask_of_query net q in
    validate_mask net mask;
    validate_goal net mask goal;
    match q.verdict with
    | Reachable labels ->
        check_witness net goal labels;
        Ok { checked_states = 0; checked_zones = 0 }
    | Unreachable | Sup _ ->
        let index = validate_entries net mask q.entries in
        check_initiation net mask q.entries index;
        (* judgment before consecution: it is cheap, and a mutation
           that breaks the verdict claim is reported as the verdict's
           failure even when it also breaks induction *)
        (match q.verdict with
        | Unreachable -> check_unreachable_judgment mask goal q.entries
        | Sup { clock; value; kind } ->
            check_sup_judgment net mask goal ~clock ~value ~kind q.entries
        | Reachable _ -> assert false);
        let zones = check_consecution net mask q.entries index in
        Ok { checked_states = List.length q.entries; checked_zones = zones }
  with Fail f -> Error f
