(** Verdict certificates and their independent checker.

    Every verdict the optimized engine produces can be accompanied by a
    certificate that proves it without trusting the engine:

    - {b unreachable} and {b sup} verdicts carry the final passed-list
      antichain — per discrete state the unextrapolated zones and the
      per-state LU vectors — translated back to the original
      pre-slicing model.  The checker verifies it is an inductive
      invariant ({e initiation} + {e consecution}) that implies the
      verdict ({e judgment});
    - {b reachable} verdicts carry the witness label sequence, replayed
      with exact successor computation.

    The checker is deliberately naive: {!Reference} semantics, plain
    DBM operations, [Dbm.le_lu] as the only primitive shared with the
    exploration path.  Its dune library declares dependencies on
    [ita_dbm] and [ita_ta] only — no interning, packing, slicing or
    sharding code can leak into the trust base. *)

open Ita_ta
module Dbm = Ita_dbm.Dbm

val version : int
(** On-disk format version; bumped on any incompatible change. *)

type goal = { comp_locs : (int * int) list; guard : Guard.t }
(** What the certified query asks about, in original model terms:
    required (component, location) pairs plus a guard over data
    variables and clocks.  Same shape as [Ita_mc.Query.t], duplicated
    here so the checker does not depend on [ita_mc]. *)

type sup_kind = Attained | Approached
    (** Whether the certified supremum is reached by a run ([<=]) or
        only approached in the limit ([<]). *)

type verdict =
  | Unreachable
  | Sup of { clock : Guard.clock; value : int; kind : sup_kind }
  | Reachable of Semantics.label list

type entry = {
  st : Semantics.state;
  l : int array;
  u : int array;
  zones : Dbm.t list;
}
(** One antichain node: a discrete state, its LU vectors ([-1] on
    clocks the certificate's mask removed), and its unextrapolated
    zones. *)

type query_cert = {
  index : int;  (** position of the query in the source file *)
  verdict : verdict;
  frozen_comps : int list;
  removed_clocks : int list;
  frozen_vars : int list;
  merged : (int * int) list;
      (** (merged, representative) clock pairs recorded by quasi-equal
          merging; diagnostic only — merged clocks stay in the model
          and need no special checker treatment. *)
  entries : entry list;
}

type t = { fingerprint : int; queries : query_cert list }

type obligation =
  | Format  (** unparsable or structurally ill-formed certificate *)
  | Fingerprint  (** certificate was produced for a different model *)
  | Mask  (** the declared slice mask is not provably harmless *)
  | Initiation  (** initial symbolic state not covered *)
  | Consecution  (** some successor escapes the antichain *)
  | Judgment  (** the invariant does not imply the claimed verdict *)
  | Witness  (** a reachable-verdict trace does not replay *)

type failure = { obligation : obligation; message : string }

type stats = { checked_states : int; checked_zones : int }
(** Work performed by a successful check; [checked_zones] counts
    delay/discrete successor computations. *)

val obligation_name : obligation -> string
(** Kebab-free lowercase name, stable for [--json] output. *)

val exit_code : obligation -> int
(** Process exit code [tamc certify] uses for a failed obligation
    (3-9); [0] is success, [1]/[2] stay usage and I/O errors. *)

val fingerprint : Network.t -> int
(** Structural hash of the elaborated network, stored in certificates
    and compared by [tamc certify] before checking. *)

val to_string : t -> string
(** Serialize to the versioned line-based text format. *)

val save : string -> t -> unit
(** Write {!to_string} output to a file. *)

val parse : string -> (t, failure) result
(** Parse the text format; failures carry the {!Format} obligation.
    Zones are rebuilt with [Dbm.of_encoded], i.e. re-closed rather than
    trusted. *)

val load : string -> (t, failure) result
(** Read and {!parse} a certificate file. *)

val check : Network.t -> goal:goal -> query_cert -> (stats, failure) result
(** Verify one query's certificate against the (re-elaborated, original)
    network.  For invariant verdicts this validates the mask and the
    stored antichain, then discharges initiation, consecution (invariant
    and guard constant domination, exact delay and discrete successor
    coverage under [Dbm.le_lu], LU monotonicity along un-reset clocks)
    and the verdict judgment.  For reachable verdicts it replays the
    witness exactly.  Accepts only certificates that prove their
    verdict, regardless of producer. *)
