open Ita_ta
module Query = Ita_mc.Query

type observer = { obs_clock : Guard.clock; seen : Query.t }
type t = { net : Network.t; observer : observer option; sys : Sysmodel.t }

let queue_name scen k = Printf.sprintf "q_%s_%d" scen k
let done_name scen k = Printf.sprintf "done_%s_%d" scen k

(* ------------------------------------------------------------------ *)
(* Small guard/update helpers                                          *)
(* ------------------------------------------------------------------ *)

let var_gt0 v = Guard.data Expr.(Cmp (Gt, Var v, Int 0))
let var_eq v c = Guard.data Expr.(Cmp (Eq, Var v, Int c))
let all_zero vars = List.fold_left (fun g v -> Guard.conj g (var_eq v 0)) Guard.tt vars

let loc ?(kind = Automaton.Normal) ?(invariant = Guard.tt) loc_name =
  { Automaton.loc_name; invariant; kind }

let edge ?(guard = Guard.tt) ?(sync = Automaton.NoSync) ?(update = Update.none)
    src dst =
  { Automaton.src; guard; sync; update; dst }

(* ------------------------------------------------------------------ *)
(* Resource automata (paper Figures 4, 5 and 6)                        *)
(* ------------------------------------------------------------------ *)

type job = {
  job_name : string;
  duration : int;  (* us *)
  band : Scenario.band;
  queue : Expr.var;  (* this job's pending counter *)
  next_queue : Expr.var option;  (* the downstream step's counter *)
  done_chan : Channel.id option;  (* completion broadcast, if observed *)
  frames : (int * int * Expr.var) option;
      (* segmented links: frame count, frame duration, remaining-frames
         counter *)
}

let completion_update job =
  match job.next_queue with
  | Some q -> Update.incr q
  | None -> Update.none

let completion_sync job =
  match job.done_chan with
  | Some c -> Automaton.Send c
  | None -> Automaton.NoSync

(* Guard blocking a Low-band job while any High-band job is pending;
   trivial under the nondeterministic policy. *)
let admission_guard policy jobs job =
  match (policy, job.band) with
  | Resource.Nondet_nonpreemptive, _ | _, Scenario.High -> var_gt0 job.queue
  | ( ( Resource.Priority_nonpreemptive | Resource.Priority_preemptive
      | Resource.Tdma _ | Resource.Priority_segmented _ ),
      Scenario.Low ) ->
      let high_queues =
        List.filter_map
          (fun j -> if j.band = Scenario.High then Some j.queue else None)
          jobs
      in
      Guard.conj (var_gt0 job.queue) (all_zero high_queues)

let nonpreemptive_automaton ~policy ~x jobs =
  let idle = 0 in
  let busy ji = 1 + ji in
  let locations =
    loc "idle"
    :: List.map
         (fun j ->
           loc ("busy_" ^ j.job_name)
             ~invariant:(Guard.clock_le x j.duration))
         jobs
  in
  let edges =
    List.concat
      (List.mapi
         (fun ji j ->
           [
             edge idle (busy ji)
               ~guard:(admission_guard policy jobs j)
               ~update:(Update.seq [ Update.decr j.queue; Update.reset x ]);
             edge (busy ji) idle
               ~guard:(Guard.clock_eq x j.duration)
               ~sync:(completion_sync j)
               ~update:(completion_update j);
           ])
         jobs)
  in
  (locations, edges)

(* The Figure 5 pattern.  High-band jobs run to completion; a Low-band
   job tracks its (possibly extended) demand in [d_var] and yields to
   any pending High-band job via the preemption locations. *)
let preemptive_automaton ~x ~y ~d_var jobs =
  let high = List.filter (fun j -> j.band = Scenario.High) jobs in
  let low = List.filter (fun j -> j.band = Scenario.Low) jobs in
  let n_high = List.length high and n_low = List.length low in
  let idle = 0 in
  let busy_high hi = 1 + hi in
  let busy_low li = 1 + n_high + li in
  let pre li hi = 1 + n_high + n_low + (li * n_high) + hi in
  let locations =
    (loc "idle"
    :: List.map
         (fun j ->
           loc ("busy_" ^ j.job_name)
             ~invariant:(Guard.clock_le x j.duration))
         high)
    @ List.map
        (fun j ->
          loc ("busy_" ^ j.job_name)
            ~invariant:(Guard.clock_rel x Guard.Le (Expr.Var d_var)))
        low
    @ List.concat_map
        (fun jl ->
          List.map
            (fun jh ->
              loc
                (Printf.sprintf "pre_%s_%s" jl.job_name jh.job_name)
                ~invariant:(Guard.clock_le y jh.duration))
            high)
        low
  in
  let start_high =
    List.mapi
      (fun hi j ->
        edge idle (busy_high hi) ~guard:(var_gt0 j.queue)
          ~update:(Update.seq [ Update.decr j.queue; Update.reset x ]))
      high
  in
  let start_low =
    List.mapi
      (fun li j ->
        edge idle (busy_low li)
          ~guard:(admission_guard Resource.Priority_preemptive jobs j)
          ~update:
            (Update.seq
               [
                 Update.decr j.queue;
                 Update.reset x;
                 Update.set d_var (Expr.Int j.duration);
               ]))
      low
  in
  let finish_high =
    List.mapi
      (fun hi j ->
        edge (busy_high hi) idle
          ~guard:(Guard.clock_eq x j.duration)
          ~sync:(completion_sync j) ~update:(completion_update j))
      high
  in
  let finish_low =
    List.mapi
      (fun li j ->
        edge (busy_low li) idle
          ~guard:(Guard.clock_rel x Guard.Eq (Expr.Var d_var))
          ~sync:(completion_sync j)
          ~update:(Update.seq [ Update.set d_var (Expr.Int 0); completion_update j ]))
      low
  in
  let preempt =
    List.concat
      (List.mapi
         (fun li _jl ->
           List.mapi
             (fun hi jh ->
               edge (busy_low li) (pre li hi) ~guard:(var_gt0 jh.queue)
                 ~update:(Update.seq [ Update.decr jh.queue; Update.reset y ]))
             high)
         low)
  in
  let resume =
    List.concat
      (List.mapi
         (fun li _jl ->
           List.mapi
             (fun hi jh ->
               edge (pre li hi) (busy_low li)
                 ~guard:(Guard.clock_eq y jh.duration)
                 ~sync:(completion_sync jh)
                 ~update:
                   (Update.seq
                      [
                        Update.set d_var
                          Expr.(Add (Var d_var, Int jh.duration));
                        completion_update jh;
                      ]))
             high)
         low)
  in
  (locations, start_high @ start_low @ finish_high @ finish_low @ preempt @ resume)

(* Segmented link (CAN-like): a message of n frames holds the medium
   for one frame at a time and re-arbitrates in between, so it can
   block a rival for at most one frame.  The remaining-frames counter
   carries the message across arbitration rounds. *)
let segmented_automaton ~policy ~x jobs =
  let idle = 0 in
  let sending ji = 1 + ji in
  let locations =
    loc "idle"
    :: List.map
         (fun j ->
           let fdur =
             match j.frames with
             | Some (_, fdur, _) -> fdur
             | None -> j.duration
           in
           loc ("sending_" ^ j.job_name) ~invariant:(Guard.clock_le x fdur))
         jobs
  in
  let edges =
    List.concat
      (List.mapi
         (fun ji j ->
           match j.frames with
           | None ->
               (* single-frame message: the plain Figure 6 pattern *)
               [
                 edge idle (sending ji)
                   ~guard:(admission_guard policy jobs j)
                   ~update:(Update.seq [ Update.decr j.queue; Update.reset x ]);
                 edge (sending ji) idle
                   ~guard:(Guard.clock_eq x j.duration)
                   ~sync:(completion_sync j)
                   ~update:(completion_update j);
               ]
           | Some (count, fdur, fvar) ->
               [
                 (* start a fresh message: first frame goes out, the
                    rest are accounted in the frame counter *)
                 edge idle (sending ji)
                   ~guard:
                     (Guard.conj
                        (admission_guard policy jobs j)
                        (var_eq fvar 0))
                   ~update:
                     (Update.seq
                        [
                          Update.decr j.queue;
                          Update.set fvar (Expr.Int (count - 1));
                          Update.reset x;
                        ]);
                 (* continuation frame, competing in arbitration *)
                 edge idle (sending ji)
                   ~guard:
                     (Guard.conj (var_gt0 fvar)
                        (match j.band with
                        | Scenario.High -> Guard.tt
                        | Scenario.Low ->
                            all_zero
                              (List.filter_map
                                 (fun j' ->
                                   if j'.band = Scenario.High then
                                     Some j'.queue
                                   else None)
                                 jobs)))
                   ~update:(Update.seq [ Update.decr fvar; Update.reset x ]);
                 (* frame boundary: message done or back to arbitration *)
                 edge (sending ji) idle
                   ~guard:
                     (Guard.conj (Guard.clock_eq x fdur) (var_eq fvar 0))
                   ~sync:(completion_sync j)
                   ~update:(completion_update j);
                 edge (sending ji) idle
                   ~guard:(Guard.conj (Guard.clock_eq x fdur) (var_gt0 fvar));
               ])
         jobs)
  in
  (locations, edges)

(* The TDMA pattern: the resource alternates a live window (slot) and a
   blackout; a job caught by the blackout is suspended and its demand
   variable extended by the blackout length — the Figure 5 trick with
   the blackout as a fixed-length preemptor.  Jobs do not preempt each
   other; admission uses the usual priority guards. *)
let tdma_automaton ~policy ~x ~s ~d_var ~slot ~cycle jobs =
  let n = List.length jobs in
  let win_idle = 0 and blackout_idle = 1 in
  let busy ji = 2 + ji in
  let pre ji = 2 + n + ji in
  let blackout = cycle - slot in
  let in_window = Guard.clock_le s slot in
  let in_cycle = Guard.clock_le s cycle in
  let locations =
    [
      loc "win_idle" ~invariant:in_window;
      loc "blackout_idle" ~invariant:in_cycle;
    ]
    @ List.map
        (fun j ->
          loc ("busy_" ^ j.job_name)
            ~invariant:
              (Guard.conj
                 (Guard.clock_rel x Guard.Le (Expr.Var d_var))
                 in_window))
        jobs
    @ List.map
        (fun j -> loc ("pre_" ^ j.job_name) ~invariant:in_cycle)
        jobs
  in
  let cycle_keeping =
    [
      edge win_idle blackout_idle ~guard:(Guard.clock_eq s slot);
      edge blackout_idle win_idle
        ~guard:(Guard.clock_eq s cycle)
        ~update:(Update.reset s);
    ]
  in
  let per_job =
    List.concat
      (List.mapi
         (fun ji j ->
           [
             edge win_idle (busy ji)
               ~guard:(admission_guard policy jobs j)
               ~update:
                 (Update.seq
                    [
                      Update.decr j.queue;
                      Update.reset x;
                      Update.set d_var (Expr.Int j.duration);
                    ]);
             edge (busy ji) win_idle
               ~guard:(Guard.clock_rel x Guard.Eq (Expr.Var d_var))
               ~sync:(completion_sync j)
               ~update:
                 (Update.seq
                    [ Update.set d_var (Expr.Int 0); completion_update j ]);
             edge (busy ji) (pre ji) ~guard:(Guard.clock_eq s slot);
             edge (pre ji) (busy ji)
               ~guard:(Guard.clock_eq s cycle)
               ~update:
                 (Update.seq
                    [
                      Update.reset s;
                      Update.set d_var Expr.(Add (Var d_var, Int blackout));
                    ]);
           ])
         jobs)
  in
  (locations, cycle_keeping @ per_job)

(* ------------------------------------------------------------------ *)
(* Environment automata (paper Figures 7 and 8)                        *)
(* ------------------------------------------------------------------ *)

(* A generator description that the measuring transformation can
   rewrite: emissions are edges whose [emits] flag is set. *)
type env_edge = { e : Automaton.edge; emits : bool }

type env_auto = {
  env_locations : Automaton.location list;
  env_edges : env_edge list;
  env_initial : int;
}

let plain_edge e = { e; emits = false }
let emit_edge e = { e; emits = true }

(* Emission updates [q0++] are appended by the caller; here edges carry
   only their timing structure and flag. *)
let env_automaton b ~scen_name (trigger : Eventmodel.t) q0 =
  let clock name = Network.Builder.clock b (scen_name ^ "_" ^ name) in
  let emit = Update.incr q0 in
  match trigger with
  | Eventmodel.Periodic { period; offset } ->
      let x = clock "x" in
      {
        env_locations =
          [
            loc "L0" ~invariant:(Guard.clock_le x offset);
            loc "L1" ~invariant:(Guard.clock_le x period);
          ];
        env_edges =
          [
            emit_edge
              (edge 0 1
                 ~guard:(Guard.clock_eq x offset)
                 ~update:(Update.seq [ emit; Update.reset x ]));
            emit_edge
              (edge 1 1
                 ~guard:(Guard.clock_eq x period)
                 ~update:(Update.seq [ emit; Update.reset x ]));
          ];
        env_initial = 0;
      }
  | Eventmodel.Periodic_unknown_offset { period } ->
      let x = clock "x" in
      {
        env_locations =
          [
            loc "L0" ~invariant:(Guard.clock_le x period);
            loc "L1" ~invariant:(Guard.clock_le x period);
          ];
        env_edges =
          [
            emit_edge
              (edge 0 1 ~update:(Update.seq [ emit; Update.reset x ]));
            emit_edge
              (edge 1 1
                 ~guard:(Guard.clock_eq x period)
                 ~update:(Update.seq [ emit; Update.reset x ]));
          ];
        env_initial = 0;
      }
  | Eventmodel.Sporadic { min_separation } ->
      let x = clock "x" in
      {
        env_locations = [ loc "L0"; loc "L1" ];
        env_edges =
          [
            emit_edge
              (edge 0 1 ~update:(Update.seq [ emit; Update.reset x ]));
            emit_edge
              (edge 1 1
                 ~guard:(Guard.clock_ge x min_separation)
                 ~update:(Update.seq [ emit; Update.reset x ]));
          ];
        env_initial = 0;
      }
  | Eventmodel.Periodic_jitter { period; jitter } ->
      let x = clock "x" in
      {
        env_locations =
          [
            loc "L0" ~invariant:(Guard.clock_le x period);
            loc "L1" ~invariant:(Guard.clock_le x jitter);
            loc "L2" ~invariant:(Guard.clock_le x period);
          ];
        env_edges =
          [
            (* phase: the first period starts anywhere in [0, P] *)
            plain_edge (edge 0 1 ~update:(Update.reset x));
            (* release within the jitter window *)
            emit_edge (edge 1 2 ~update:emit);
            plain_edge
              (edge 2 1
                 ~guard:(Guard.clock_eq x period)
                 ~update:(Update.reset x));
          ];
        env_initial = 0;
      }
  | Eventmodel.Bursty { period; jitter; min_separation } ->
      let x = clock "x" in
      let y = clock "y" in
      let backlog = (jitter / period) + 2 in
      let pending =
        Network.Builder.int_var b (scen_name ^ "_pending") ~lo:0 ~hi:backlog
          ~init:1
      in
      let snd =
        Network.Builder.int_var b (scen_name ^ "_snd") ~lo:0 ~hi:backlog
          ~init:0
      in
      let send_guard, send_reset =
        if min_separation > 0 then begin
          let z = clock "z" in
          ( Guard.conj (Guard.clock_gt z min_separation) (var_gt0 pending),
            Update.reset z )
        end
        else (var_gt0 pending, Update.none)
      in
      let tick src =
        plain_edge
          (edge src src
             ~guard:(Guard.clock_eq x period)
             ~update:(Update.seq [ Update.incr pending; Update.reset x ]))
      in
      let send src =
        emit_edge
          (edge src src ~guard:send_guard
             ~update:
               (Update.seq
                  [ Update.decr pending; emit; Update.incr snd; send_reset ]))
      in
      {
        env_locations =
          [
            loc "B0"
              ~invariant:
                (Guard.conj (Guard.clock_le x period) (Guard.clock_le y jitter));
            loc "B1"
              ~invariant:
                (Guard.conj (Guard.clock_le x period) (Guard.clock_le y period));
          ];
        env_edges =
          [
            tick 0;
            send 0;
            plain_edge
              (edge 0 1
                 ~guard:(Guard.conj (Guard.clock_eq y jitter) (var_gt0 snd))
                 ~update:(Update.seq [ Update.decr snd; Update.reset y ]));
            tick 1;
            send 1;
            plain_edge
              (edge 1 1
                 ~guard:(Guard.conj (Guard.clock_eq y period) (var_gt0 snd))
                 ~update:(Update.seq [ Update.decr snd; Update.reset y ]));
          ];
        env_initial = 0;
      }

(* ------------------------------------------------------------------ *)
(* Measuring variant (paper Figure 9, generalized)                     *)
(* ------------------------------------------------------------------ *)

(* [m := m < 0 ? m : m - 1] *)
let skip_update m =
  Update.set m Expr.(Ite (Cmp (Lt, Var m, Int 0), Var m, Sub (Var m, Int 1)))

type counter_pair = { n : Expr.var; m : Expr.var }

(* Self-loop pair receiving [chan] on location [l]: skip counted
   responses; on the tagged one run [hit] and go to [hit_dst]. *)
let response_edges l chan cp ~hit ~hit_dst =
  [
    edge l l
      ~guard:(Guard.data Expr.(Not (Cmp (Eq, Var cp.m, Int 0))))
      ~sync:(Automaton.Recv chan)
      ~update:(Update.seq [ skip_update cp.m; Update.decr cp.n ]);
    edge l hit_dst
      ~guard:(var_eq cp.m 0)
      ~sync:(Automaton.Recv chan)
      ~update:
        (Update.seq [ Update.set cp.m (Expr.Int (-1)); Update.decr cp.n; hit ]);
  ]

(* Rewrite a plain generator into its measuring variant. *)
let measuring_variant b ~scen_name (env : env_auto) ~obs_clock ~to_chan
    ~from_chan ~counter_bound =
  let int_var name ~lo ~hi ~init =
    Network.Builder.int_var b (scen_name ^ "_" ^ name) ~lo ~hi ~init
  in
  let cp_to =
    {
      n = int_var "n" ~lo:0 ~hi:counter_bound ~init:0;
      m = int_var "m" ~lo:(-1) ~hi:counter_bound ~init:(-1);
    }
  in
  let cp_from =
    Option.map
      (fun _ ->
        {
          n = int_var "nf" ~lo:0 ~hi:counter_bound ~init:0;
          m = int_var "mf" ~lo:(-1) ~hi:counter_bound ~init:(-1);
        })
      from_chan
  in
  let n_locs = List.length env.env_locations in
  let seen = n_locs in
  (* Locations at which a response can be observed: the forward closure,
     along the environment's own edges, of the emitting edges'
     destinations.  A response is only ever in flight after an emit, and
     the closure is forward-closed, so outside it the observer's receive
     edges can never fire and [ret] can never hold those values — declare
     it with exactly the closure's range and skip the dead edges. *)
  let observable =
    let reach = Array.make n_locs false in
    let rec visit l =
      if not reach.(l) then begin
        reach.(l) <- true;
        List.iter
          (fun { e; _ } -> if e.Automaton.src = l then visit e.Automaton.dst)
          env.env_edges
      end
    in
    List.iter
      (fun { e; emits } -> if emits then visit e.Automaton.dst)
      env.env_edges;
    reach
  in
  let observable_locs =
    List.filter (fun l -> observable.(l)) (List.init n_locs Fun.id)
  in
  let ret_lo, ret_hi =
    match observable_locs with
    | [] -> (0, 0) (* nothing emits: the observer is inert *)
    | l :: rest -> (l, List.fold_left max l rest)
  in
  let ret = int_var "ret" ~lo:ret_lo ~hi:ret_hi ~init:ret_lo in
  let bump_counts =
    Update.incr cp_to.n
    @ (match cp_from with Some cp -> Update.incr cp.n | None -> Update.none)
  in
  let tag_updates =
    Update.set cp_to.m (Expr.Var cp_to.n)
    @ (match cp_from with
      | Some cp -> Update.set cp.m (Expr.Var cp.n)
      | None -> Update.none)
    @ match from_chan with None -> Update.reset obs_clock | Some _ -> Update.none
  in
  let rewritten_edges =
    List.concat_map
      (fun { e; emits } ->
        if not emits then [ e ]
        else
          let plain =
            { e with Automaton.update = e.Automaton.update @ bump_counts }
          in
          let tagged =
            {
              e with
              Automaton.guard =
                Guard.conj e.Automaton.guard (var_eq cp_to.m (-1));
              update = tag_updates @ e.Automaton.update @ bump_counts;
            }
          in
          [ plain; tagged ])
      env.env_edges
  in
  let observation_edges =
    List.concat_map
      (fun l ->
        response_edges l to_chan cp_to
          ~hit:(Update.set ret (Expr.Int l))
          ~hit_dst:seen
        @
        match (from_chan, cp_from) with
        | Some fc, Some cp ->
            response_edges l fc cp ~hit:(Update.reset obs_clock) ~hit_dst:l
        | None, None -> []
        | Some _, None | None, Some _ -> assert false)
      observable_locs
  in
  let return_edges =
    List.map (fun l -> edge seen l ~guard:(var_eq ret l)) observable_locs
  in
  {
    env_locations =
      env.env_locations @ [ loc "seen" ~kind:Automaton.Committed ];
    env_edges =
      List.map plain_edge (rewritten_edges @ observation_edges @ return_edges);
    env_initial = env.env_initial;
  }

(* ------------------------------------------------------------------ *)
(* Putting the network together                                        *)
(* ------------------------------------------------------------------ *)

let generate ?measure (sys : Sysmodel.t) =
  (match Sysmodel.validate sys with
  | Ok () -> ()
  | Error msg -> raise (Network.Invalid_model msg));
  let b = Network.Builder.create () in
  let qb = sys.Sysmodel.queue_bound in
  (* pending counters for every step of every scenario *)
  let queues = Hashtbl.create 16 in
  List.iter
    (fun (s : Scenario.t) ->
      List.iteri
        (fun k _ ->
          let v =
            Network.Builder.int_var b
              (queue_name s.Scenario.name k)
              ~lo:0 ~hi:qb ~init:0
          in
          Hashtbl.add queues (s.Scenario.name, k) v)
        s.Scenario.steps)
    sys.Sysmodel.scenarios;
  let queue scen k = Hashtbl.find queues (scen, k) in
  (* the greediness channel *)
  let hurry = Network.Builder.channel b "hurry" Channel.Broadcast ~urgent:true in
  (* completion broadcasts for the observed steps *)
  let observed_steps =
    match measure with
    | None -> []
    | Some (scen, (r : Scenario.requirement)) -> (
        (scen, r.Scenario.to_step)
        :: (match r.Scenario.from_step with
           | Some f -> [ (scen, f) ]
           | None -> []))
  in
  let done_chans =
    List.map
      (fun (scen, k) ->
        ((scen, k), Network.Builder.channel b (done_name scen k) Channel.Broadcast ~urgent:false))
      observed_steps
  in
  let done_chan scen k = List.assoc_opt (scen, k) done_chans in
  (* resource automata *)
  List.iter
    (fun (r : Resource.t) ->
      let deployed = Sysmodel.jobs_on sys r in
      if deployed <> [] then begin
        let jobs =
          List.map
            (fun ((s : Scenario.t), k, st) ->
              let job_name =
                Printf.sprintf "%s_%s" s.Scenario.name (Scenario.step_name st)
              in
              let frames =
                match (r.Resource.policy, st, r.Resource.kind) with
                | ( Resource.Priority_segmented { frame_bytes },
                    Scenario.Transfer { bytes; _ },
                    Resource.Link { kbps } ) ->
                    let count = ((bytes + frame_bytes - 1) / frame_bytes) in
                    if count <= 1 then None
                    else begin
                      let fdur =
                        Units.us_of_bytes ~bytes:frame_bytes ~kbps
                      in
                      let fvar =
                        Network.Builder.int_var b
                          (Printf.sprintf "%s_fr_%s" r.Resource.name job_name)
                          ~lo:0 ~hi:count ~init:0
                      in
                      Some (count, fdur, fvar)
                    end
                | _, _, _ -> None
              in
              {
                job_name;
                duration = Sysmodel.step_duration_us sys st;
                band = s.Scenario.band;
                queue = queue s.Scenario.name k;
                next_queue =
                  (if k + 1 < Scenario.n_steps s then
                     Some (queue s.Scenario.name (k + 1))
                   else None);
                done_chan = done_chan s.Scenario.name k;
                frames;
              })
            deployed
        in
        let x = Network.Builder.clock b (r.Resource.name ^ "_x") in
        let locations, edges =
          match r.Resource.policy with
          | Resource.Nondet_nonpreemptive | Resource.Priority_nonpreemptive ->
              nonpreemptive_automaton ~policy:r.Resource.policy ~x jobs
          | Resource.Priority_segmented _ ->
              segmented_automaton ~policy:r.Resource.policy ~x jobs
          | Resource.Tdma { slot_us; cycle_us } ->
              let s = Network.Builder.clock b (r.Resource.name ^ "_s") in
              let max_d =
                List.fold_left (fun acc j -> max acc j.duration) 0 jobs
              in
              let blackout = cycle_us - slot_us in
              let d_max = max_d + (((max_d / slot_us) + 2) * blackout) in
              let d_var =
                Network.Builder.int_var b (r.Resource.name ^ "_D") ~lo:0
                  ~hi:d_max ~init:0
              in
              tdma_automaton ~policy:r.Resource.policy ~x ~s ~d_var
                ~slot:slot_us ~cycle:cycle_us jobs
          | Resource.Priority_preemptive ->
              let has_low = List.exists (fun j -> j.band = Scenario.Low) jobs in
              if not has_low then
                nonpreemptive_automaton ~policy:Resource.Priority_nonpreemptive
                  ~x jobs
              else begin
                (* the preemption clock only appears in pre_* locations,
                   which need a high band to preempt with; without one,
                   declaring it would leave a dead clock in the network *)
                let has_high =
                  List.exists (fun j -> j.band = Scenario.High) jobs
                in
                let y =
                  if has_high then
                    Network.Builder.clock b (r.Resource.name ^ "_y")
                  else x
                in
                let d_low_max =
                  List.fold_left
                    (fun acc j ->
                      if j.band = Scenario.Low then max acc j.duration else acc)
                    0 jobs
                in
                let sum_high =
                  List.fold_left
                    (fun acc j ->
                      if j.band = Scenario.High then acc + j.duration else acc)
                    0 jobs
                in
                let d_max = d_low_max + (8 * qb * sum_high) in
                let d_var =
                  Network.Builder.int_var b (r.Resource.name ^ "_D") ~lo:0
                    ~hi:d_max ~init:0
                in
                preemptive_automaton ~x ~y ~d_var jobs
              end
        in
        (* Claim and preemption edges are greedy (the paper's hurry!):
           exactly the resource edges without clock guards and without
           a completion sync. *)
        let edges =
          List.map
            (fun (e : Automaton.edge) ->
              if
                e.Automaton.sync = Automaton.NoSync
                && e.Automaton.guard.Guard.clocks = []
              then { e with Automaton.sync = Automaton.Send hurry }
              else e)
            edges
        in
        Network.Builder.add_automaton b
          (Automaton.make ~name:r.Resource.name ~locations ~edges ~initial:0)
      end)
    sys.Sysmodel.resources;
  (* environment automata *)
  let observer = ref None in
  List.iter
    (fun (s : Scenario.t) ->
      let scen_name = s.Scenario.name in
      let q0 = queue scen_name 0 in
      let env = env_automaton b ~scen_name s.Scenario.trigger q0 in
      let env =
        match measure with
        | Some (mscen, (r : Scenario.requirement)) when mscen = scen_name ->
            let obs_clock = Network.Builder.clock b (scen_name ^ "_yobs") in
            let to_chan =
              match done_chan scen_name r.Scenario.to_step with
              | Some c -> c
              | None -> assert false
            in
            let from_chan =
              Option.map
                (fun f ->
                  match done_chan scen_name f with
                  | Some c -> c
                  | None -> assert false)
                r.Scenario.from_step
            in
            let counter_bound =
              qb + Eventmodel.max_backlog s.Scenario.trigger
            in
            let menv =
              measuring_variant b ~scen_name env ~obs_clock ~to_chan ~from_chan
                ~counter_bound
            in
            observer := Some (scen_name, obs_clock);
            menv
        | _ -> env
      in
      Network.Builder.add_automaton b
        (Automaton.make ~name:("ENV_" ^ scen_name)
           ~locations:env.env_locations
           ~edges:(List.map (fun ee -> ee.e) env.env_edges)
           ~initial:env.env_initial))
    sys.Sysmodel.scenarios;
  let net = Network.Builder.build b in
  let observer =
    Option.map
      (fun (scen_name, obs_clock) ->
        {
          obs_clock;
          seen = Query.at net ~comp:("ENV_" ^ scen_name) ~loc:"seen";
        })
      !observer
  in
  { net; observer; sys }

let queue_var t ~scenario ~step =
  Network.var_index t.net (queue_name scenario step)
