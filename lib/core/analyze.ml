open Ita_mc

type method_ =
  | Exhaustive
  | Binary of { hi : int }
  | Structured_testing of {
      order : Reach.order;
      budget : Reach.budget;
      start : int;
      step : int;
    }

type outcome =
  | Exact_wcrt of int
  | Wcrt_lower_bound of int
  | No_response

type result = {
  outcome : outcome;
  explored : int;
  elapsed : float;
  uncontended_us : int;
  certified : (Ita_cert.Cert.stats, Ita_cert.Cert.failure) Stdlib.result option;
}

let wcrt ?(method_ = Exhaustive) ?order ?abstraction ?reduction ?bounds
    ?domains ?slicing ?(certify = false) ?cert_out sys ~scenario ~requirement =
  let s = Sysmodel.scenario sys scenario in
  let req = Scenario.requirement s requirement in
  let gen = Gen.generate ~measure:(scenario, req) sys in
  let observer =
    match gen.Gen.observer with Some o -> o | None -> assert false
  in
  let at = observer.Gen.seen and clock = observer.Gen.obs_clock in
  let uncontended_us =
    Sysmodel.uncontended_us sys s ~from_step:req.Scenario.from_step
      ~to_step:req.Scenario.to_step
  in
  (* Certification only applies to the exhaustive sup-query: that is
     the one method whose verdict is an invariant rather than a bound
     from an incomplete search. *)
  let want_cert = certify || cert_out <> None in
  let snap_ref = ref None in
  let snap =
    if want_cert then Some (fun s -> snap_ref := Some s) else None
  in
  let qcert = ref None in
  let outcome, explored, elapsed =
    match method_ with
    | Exhaustive -> (
        match
          Wcrt.sup ?order ?abstraction ?reduction ?bounds ?domains ?slicing
            ?snap
            ~initial_ceiling:(max 4 (4 * uncontended_us))
            gen.Gen.net ~at ~clock
        with
        | Wcrt.Sup { value; kind; stats } ->
            (match !snap_ref with
            | Some snapshot ->
                let kind =
                  match kind with
                  | Wcrt.Attained -> Ita_cert.Cert.Attained
                  | Wcrt.Approached -> Ita_cert.Cert.Approached
                in
                qcert :=
                  Some
                    (Cert_emit.of_snapshot ~index:0
                       ~verdict:(Ita_cert.Cert.Sup { clock; value; kind })
                       snapshot)
            | None -> ());
            (Exact_wcrt value, stats.Reach.explored, stats.Reach.elapsed)
        | Wcrt.Goal_unreachable stats ->
            (No_response, stats.Reach.explored, stats.Reach.elapsed)
        | Wcrt.Sup_budget_exhausted { observed; stats } ->
            ( (match observed with
              | Some v -> Wcrt_lower_bound v
              | None -> No_response),
              stats.Reach.explored,
              stats.Reach.elapsed )
        | Wcrt.Sup_unbounded { ceiling; stats } ->
            (Wcrt_lower_bound ceiling, stats.Reach.explored, stats.Reach.elapsed)
        )
    | Binary { hi } -> (
        let r =
          Wcrt.binary_search ?order ?abstraction ?reduction ?bounds ?domains
            ?slicing ~hi gen.Gen.net ~at ~clock
        in
        match (r.Wcrt.lower, r.Wcrt.upper) with
        | Some l, Some u when u = l + 1 ->
            (Exact_wcrt l, r.Wcrt.total_explored, r.Wcrt.total_elapsed)
        | Some l, _ ->
            (Wcrt_lower_bound l, r.Wcrt.total_explored, r.Wcrt.total_elapsed)
        | None, Some _ -> (No_response, r.Wcrt.total_explored, r.Wcrt.total_elapsed)
        | None, None -> (No_response, r.Wcrt.total_explored, r.Wcrt.total_elapsed)
        )
    | Structured_testing { order; budget; start; step } -> (
        let r =
          Wcrt.probe_lower ~order ?abstraction ?reduction ?bounds ?domains
            ?slicing gen.Gen.net ~at ~clock ~budget
            ~start ~step
        in
        match r.Wcrt.lower with
        | Some l -> (Wcrt_lower_bound l, r.Wcrt.total_explored, r.Wcrt.total_elapsed)
        | None -> (No_response, r.Wcrt.total_explored, r.Wcrt.total_elapsed))
  in
  let certified =
    match !qcert with
    | None -> None
    | Some qc ->
        (match cert_out with
        | Some path ->
            Ita_cert.Cert.save path (Cert_emit.make gen.Gen.net [ qc ])
        | None -> ());
        if certify then
          Some
            (Ita_cert.Cert.check gen.Gen.net
               ~goal:(Cert_emit.goal_of_query at)
               qc)
        else None
  in
  { outcome; explored; elapsed; uncontended_us; certified }

let pp_outcome ppf = function
  | Exact_wcrt us -> Units.pp_ms ppf us
  | Wcrt_lower_bound us -> Format.fprintf ppf "> %a" Units.pp_ms us
  | No_response -> Format.pp_print_string ppf "-"

type verdict = Met | Violated | Unknown

type budget_report = {
  scenario_name : string;
  requirement_name : string;
  budget_us : int;
  wcrt : outcome;
  verdict : verdict;
}

let check_budgets ?method_ ?order ?abstraction ?reduction ?bounds ?domains
    ?slicing (sys : Sysmodel.t) =
  List.concat_map
    (fun (s : Scenario.t) ->
      List.filter_map
        (fun (req : Scenario.requirement) ->
          match req.Scenario.budget_us with
          | None -> None
          | Some budget ->
              let r =
                wcrt ?method_ ?order ?abstraction ?reduction ?bounds ?domains
                  ?slicing sys ~scenario:s.Scenario.name
                  ~requirement:req.Scenario.req_name
              in
              let verdict =
                match r.outcome with
                | Exact_wcrt v -> if v < budget then Met else Violated
                | Wcrt_lower_bound v ->
                    if v >= budget then Violated else Unknown
                | No_response -> Unknown
              in
              Some
                {
                  scenario_name = s.Scenario.name;
                  requirement_name = req.Scenario.req_name;
                  budget_us = budget;
                  wcrt = r.outcome;
                  verdict;
                })
        s.Scenario.requirements)
    sys.Sysmodel.scenarios

let pp_budget_report ppf r =
  Format.fprintf ppf "%s/%s: wcrt %a ms vs budget %a ms -> %s"
    r.scenario_name r.requirement_name pp_outcome r.wcrt Units.pp_ms
    r.budget_us
    (match r.verdict with
    | Met -> "met"
    | Violated -> "VIOLATED"
    | Unknown -> "unknown")
