(** End-to-end analysis driver: architecture model in, worst-case
    response times out.

    [Exhaustive] explores the full zone graph and returns the exact
    WCRT (a sup-query over the observer clock at [seen], equivalent to
    the paper's binary search on Property 1 but in a single run).
    [Structured_testing] is the paper's fallback for state spaces that
    explode (the "df" / "rdf" cells of Table 1): a budgeted
    depth-first or random-depth-first hunt for ever-larger response
    times, yielding a sound lower bound. *)

open Ita_mc

type method_ =
  | Exhaustive
  | Binary of { hi : int }  (** the paper's actual strategy *)
  | Structured_testing of {
      order : Reach.order;
      budget : Reach.budget;
      start : int;
      step : int;
    }

type outcome =
  | Exact_wcrt of int  (** microseconds; attained *)
  | Wcrt_lower_bound of int  (** microseconds; search was budgeted *)
  | No_response  (** the measured response never occurs *)

type result = {
  outcome : outcome;
  explored : int;
  elapsed : float;
  uncontended_us : int;
      (** interference-free duration of the measured window *)
  certified : (Ita_cert.Cert.stats, Ita_cert.Cert.failure) Stdlib.result option;
      (** [Some r] iff [~certify:true] produced an [Exact_wcrt] and the
          independent checker was run on its certificate; [None] for
          every other method/outcome combination. *)
}

val wcrt :
  ?method_:method_ ->
  ?order:Reach.order ->
  ?abstraction:Reach.abstraction ->
  ?reduction:Reach.reduction ->
  ?bounds:Reach.bounds ->
  ?domains:int ->
  ?slicing:Reach.slicing ->
  ?certify:bool ->
  ?cert_out:string ->
  Sysmodel.t ->
  scenario:string ->
  requirement:string ->
  result
(** [wcrt sys ~scenario ~requirement] builds the measured network and
    extracts the WCRT.  Default method is [Exhaustive] with BFS.

    [?certify] (default [false]) re-validates an [Exact_wcrt] verdict
    with the independent certificate checker, in process, and reports
    the outcome in [certified].  [?cert_out] additionally (or instead)
    saves the certificate to the given path, where [tamc certify]-style
    offline validation can pick it up.  Both only apply to the
    [Exhaustive] method — bounds from incomplete searches carry no
    invariant to certify.
    @raise Not_found on unknown scenario/requirement names. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Table-style: "357.133" for exact values, "> 400.000" for lower
    bounds, "-" for no response. *)

type verdict = Met | Violated | Unknown

type budget_report = {
  scenario_name : string;
  requirement_name : string;
  budget_us : int;
  wcrt : outcome;
  verdict : verdict;
}

val check_budgets :
  ?method_:method_ ->
  ?order:Ita_mc.Reach.order ->
  ?abstraction:Reach.abstraction ->
  ?reduction:Reach.reduction ->
  ?bounds:Reach.bounds ->
  ?domains:int ->
  ?slicing:Reach.slicing ->
  Sysmodel.t ->
  budget_report list
(** The paper's framing — "does the product work, given a set of hard
    resource restrictions?" — as one call: analyze every requirement
    that declares a budget and compare.  A lower bound at or above the
    budget is already a [Violated]; a lower bound below it proves
    nothing, hence [Unknown]. *)

val pp_budget_report : Format.formatter -> budget_report -> unit
