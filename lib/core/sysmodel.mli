(** A complete analyzable system: deployment (resources) + applications
    (scenarios) + bookkeeping bounds.

    [queue_bound] caps every generated pending-activation counter.  It
    must dominate the real backlog (events in flight per step); if it
    does not, analysis aborts with a variable-range violation rather
    than silently dropping events — the same failure mode as UPPAAL's
    bounded integers. *)

type t = {
  name : string;
  resources : Resource.t list;
  scenarios : Scenario.t list;
  queue_bound : int;
}

val make :
  name:string ->
  resources:Resource.t list ->
  scenarios:Scenario.t list ->
  ?queue_bound:int ->
  unit ->
  t
(** Default [queue_bound] is 4. @raise Invalid_argument when
    {!validate} fails. *)

val validate : t -> (unit, string) result

val scenario : t -> string -> Scenario.t
(** @raise Not_found *)

val resource : t -> string -> Resource.t
(** @raise Not_found *)

val step_duration_us : t -> Scenario.step -> int
(** Worst-case duration of a step on its resource, in microseconds. *)

val uncontended_us :
  t -> Scenario.t -> from_step:int option -> to_step:int -> int
(** Sum of step durations along the measured window: the response time
    with no interference at all; a universal WCRT lower bound and a
    useful sanity anchor. *)

val jobs_on : t -> Resource.t -> (Scenario.t * int * Scenario.step) list
(** All (scenario, step index, step) triples deployed on a resource,
    in scenario-then-step order. *)

val with_trigger : t -> string -> Eventmodel.t -> t
(** [with_trigger m scen ev] replaces one scenario's event model —
    the Table 1 column sweep. *)

val with_resource : t -> string -> (Resource.t -> Resource.t) -> t
(** [with_resource m name f] replaces resource [name] by [f r] and
    revalidates — the design-space "change a CPU speed / bus baud
    rate / scheduling policy" transform.
    @raise Not_found on an unknown resource name.
    @raise Invalid_argument when the transformed model fails
    {!validate} (e.g. [f] renamed the resource away from its steps). *)

val remap_step : t -> scenario:string -> step:int -> resource:string -> t
(** [remap_step m ~scenario ~step ~resource] moves one scenario step
    onto another resource — the design-space "move functionality
    between processors" transform.  The step keeps its demand
    (instructions or bytes); only the deployment changes.
    @raise Not_found on an unknown scenario name.
    @raise Invalid_argument on an out-of-range step index or when the
    target resource has the wrong kind (compute steps need a
    processor, transfers need a link). *)

val pp : Format.formatter -> t -> unit
