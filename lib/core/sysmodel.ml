type t = {
  name : string;
  resources : Resource.t list;
  scenarios : Scenario.t list;
  queue_bound : int;
}

let validate m =
  if m.queue_bound < 1 then Error "queue_bound must be at least 1"
  else if m.scenarios = [] then Error "no scenarios"
  else
    List.fold_left
      (fun acc s ->
        Result.bind acc (fun () ->
            Scenario.validate ~resources:m.resources s))
      (Ok ()) m.scenarios

let make ~name ~resources ~scenarios ?(queue_bound = 4) () =
  let m = { name; resources; scenarios; queue_bound } in
  match validate m with
  | Ok () -> m
  | Error msg -> invalid_arg ("Sysmodel.make: " ^ msg)

let scenario m name = List.find (fun (s : Scenario.t) -> s.Scenario.name = name) m.scenarios
let resource m name = List.find (fun (r : Resource.t) -> r.Resource.name = name) m.resources

let step_duration_us m st =
  let r = resource m (Scenario.step_resource st) in
  match (st, r.Resource.kind) with
  | Scenario.Compute { instructions; _ }, Resource.Processor { mips } ->
      Units.us_of_instructions ~instructions ~mips
  | Scenario.Transfer { bytes; _ }, Resource.Link { kbps } ->
      Units.us_of_bytes ~bytes ~kbps
  | Scenario.Compute _, Resource.Link _ | Scenario.Transfer _, Resource.Processor _
    ->
      (* excluded by validation *)
      assert false

let uncontended_us m s ~from_step ~to_step =
  let lo = match from_step with None -> 0 | Some f -> f + 1 in
  List.filteri (fun i _ -> i >= lo && i <= to_step) s.Scenario.steps
  |> List.fold_left (fun acc st -> acc + step_duration_us m st) 0

let jobs_on m r =
  List.concat_map
    (fun (s : Scenario.t) ->
      List.mapi (fun i st -> (i, st)) s.Scenario.steps
      |> List.filter_map (fun (i, st) ->
             if Scenario.step_resource st = r.Resource.name then
               Some (s, i, st)
             else None))
    m.scenarios

let with_trigger m scen ev =
  {
    m with
    scenarios =
      List.map
        (fun (s : Scenario.t) ->
          if s.Scenario.name = scen then { s with Scenario.trigger = ev } else s)
        m.scenarios;
  }

let revalidated m =
  match validate m with
  | Ok () -> m
  | Error msg -> invalid_arg ("Sysmodel transform: " ^ msg)

let with_resource m name f =
  let found = ref false in
  let resources =
    List.map
      (fun (r : Resource.t) ->
        if r.Resource.name = name then (
          found := true;
          f r)
        else r)
      m.resources
  in
  if not !found then raise Not_found;
  revalidated { m with resources }

let remap_step m ~scenario:scen ~step ~resource =
  let s = scenario m scen in
  if step < 0 || step >= List.length s.Scenario.steps then
    invalid_arg
      (Printf.sprintf "Sysmodel.remap_step: %s has no step %d" scen step);
  let steps =
    List.mapi
      (fun i (st : Scenario.step) ->
        if i <> step then st
        else
          match st with
          | Scenario.Compute c -> Scenario.Compute { c with resource }
          | Scenario.Transfer t -> Scenario.Transfer { t with resource })
      s.Scenario.steps
  in
  let scenarios =
    List.map
      (fun (s' : Scenario.t) ->
        if s'.Scenario.name = scen then { s' with Scenario.steps } else s')
      m.scenarios
  in
  revalidated { m with scenarios }

let pp ppf m =
  Format.fprintf ppf "@[<v2>system %s:@," m.name;
  List.iter (fun r -> Format.fprintf ppf "%a@," Resource.pp r) m.resources;
  List.iter (fun s -> Format.fprintf ppf "%a@," Scenario.pp s) m.scenarios;
  Format.fprintf ppf "@]"
