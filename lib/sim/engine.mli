(** Discrete-event simulation of an architecture model — the POOSL /
    SHESIM baseline of the paper's Table 2.

    One run executes a single concrete schedule: arrivals are sampled
    from the event models (seeded), resources dispatch
    highest-band-first and FIFO within a band, preemptive resources
    suspend the running Low job the instant a High activation arrives
    (remaining work is conserved).

    Simulation explores a measure-one subset of behaviors, so its
    maxima are lower bounds on the true WCRT — the paper's point about
    POOSL results sitting below the model-checked values. *)

type sample = {
  scenario : string;
  requirement : string;
  response_us : int;
}

type run_stats = {
  samples : sample list;
  events_processed : int;
  busy_us : (string * int) list;  (** per-resource busy time *)
}

val run :
  seed:int ->
  horizon_us:int ->
  ?sporadic_slack:float ->
  Ita_core.Sysmodel.t ->
  run_stats
(** Simulate until [horizon_us]; every completed requirement window of
    every event instance contributes one sample.  [sporadic_slack]
    stretches sporadic inter-arrival gaps by a uniform factor in
    [1, 1 + slack] (default 0.1); 0 makes sporadic maximally dense. *)

val max_response :
  runs:int ->
  horizon_us:int ->
  ?first_seed:int ->
  ?sporadic_slack:float ->
  Ita_core.Sysmodel.t ->
  scenario:string ->
  requirement:string ->
  int
(** Worst response of one requirement over [runs] seeded runs
    (seeds [first_seed .. first_seed + runs - 1], default from 1) —
    the simulation estimate of a WCRT, a statistical {e lower} bound.
    Returns 0 when no window of the requirement ever completed. *)
