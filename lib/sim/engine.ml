open Ita_core
module Prng = Ita_util.Prng

type sample = { scenario : string; requirement : string; response_us : int }

type run_stats = {
  samples : sample list;
  events_processed : int;
  busy_us : (string * int) list;
}

(* One pending activation: instance [inst] of [scenario] wants to run
   step [step] (work [remaining] us, possibly already partially done
   when re-queued after preemption). *)
type activation = {
  scenario : int;  (* scenario index *)
  inst : int;
  step : int;
  mutable remaining : int;
}

type running = {
  act : activation;
  mutable dispatched_at : int;
  work : int;  (* service time this dispatch will deliver *)
  gen : int;
}

type resource_state = {
  res : Resource.t;
  high_q : activation Queue.t;
  low_q : activation Queue.t;
  mutable suspended : activation list;  (* preempted Low jobs, LIFO *)
  mutable current : running option;
  mutable gen : int;
  mutable busy : int;
}

type event =
  | Arrival of { scenario : int; inst : int; at_nominal : int }
  | Completion of { resource : int; gen : int }

(* Per-instance bookkeeping for requirement windows. *)
type instance = { arrived : int; mutable step_done : int array }

let run ~seed ~horizon_us ?(sporadic_slack = 0.1) (sys : Sysmodel.t) =
  let rng = Prng.create seed in
  let scenarios = Array.of_list sys.Sysmodel.scenarios in
  let resources = Array.of_list sys.Sysmodel.resources in
  let res_index name =
    let found = ref (-1) in
    Array.iteri (fun i (r : Resource.t) -> if r.Resource.name = name then found := i)
      resources;
    assert (!found >= 0);
    !found
  in
  let steps =
    Array.map (fun (s : Scenario.t) -> Array.of_list s.Scenario.steps) scenarios
  in
  let durations =
    Array.map (Array.map (fun st -> Sysmodel.step_duration_us sys st)) steps
  in
  let step_resource =
    Array.map (Array.map (fun st -> res_index (Scenario.step_resource st))) steps
  in
  let rs =
    Array.map
      (fun r ->
        {
          res = r;
          high_q = Queue.create ();
          low_q = Queue.create ();
          suspended = [];
          current = None;
          gen = 0;
          busy = 0;
        })
      resources
  in
  let cal : event Calendar.t = Calendar.create () in
  let instances : (int * int, instance) Hashtbl.t = Hashtbl.create 1024 in
  let samples = ref [] in
  let events_processed = ref 0 in

  (* --- arrival generation ---------------------------------------- *)
  (* For each scenario, schedule the next arrival lazily: each Arrival
     event re-schedules its successor. *)
  let next_arrival_time si ~nominal =
    let s = scenarios.(si) in
    match s.Scenario.trigger with
    | Eventmodel.Periodic { period; _ } -> (nominal + period, nominal + period)
    | Eventmodel.Periodic_unknown_offset { period } ->
        (nominal + period, nominal + period)
    | Eventmodel.Sporadic { min_separation } ->
        let gap =
          min_separation
          + int_of_float
              (Prng.float rng (sporadic_slack *. float_of_int min_separation))
        in
        (nominal + gap, nominal + gap)
    | Eventmodel.Periodic_jitter { period; jitter } ->
        let nominal' = nominal + period in
        (nominal', nominal' + Prng.int rng (jitter + 1))
    | Eventmodel.Bursty { period; jitter; min_separation = _ } ->
        let nominal' = nominal + period in
        (nominal', nominal' + Prng.int rng (jitter + 1))
  in
  (* bursty streams must still honour the minimal separation *)
  let last_release = Array.make (Array.length scenarios) min_int in
  let clamp_release si release =
    let dmin =
      match scenarios.(si).Scenario.trigger with
      | Eventmodel.Bursty { min_separation; _ } -> min_separation
      | Eventmodel.Periodic _ | Eventmodel.Periodic_unknown_offset _
      | Eventmodel.Sporadic _ | Eventmodel.Periodic_jitter _ ->
          0
    in
    let release =
      if last_release.(si) = min_int then release
      else max release (last_release.(si) + dmin)
    in
    last_release.(si) <- release;
    release
  in
  let first_arrival si =
    let s = scenarios.(si) in
    match s.Scenario.trigger with
    | Eventmodel.Periodic { offset; _ } -> (0, offset)
    | Eventmodel.Periodic_unknown_offset { period } ->
        let o = Prng.int rng (period + 1) in
        (o, o)
    | Eventmodel.Sporadic _ -> (0, 0)
    | Eventmodel.Periodic_jitter { period; jitter } ->
        let o = Prng.int rng (period + 1) in
        (o, o + Prng.int rng (jitter + 1))
    | Eventmodel.Bursty { jitter; _ } -> (0, Prng.int rng (jitter + 1))
  in

  (* --- dispatching ------------------------------------------------ *)
  let preemptible r =
    r.res.Resource.policy = Resource.Priority_preemptive
  in
  (* TDMA: earliest start of service at or after [t], and the finish
     time of [work] started at [t], walking the live windows *)
  let tdma_start ~slot ~cycle t =
    let phase = t mod cycle in
    if phase < slot then t else t + (cycle - phase)
  in
  let tdma_finish ~slot ~cycle t work =
    let rec go t work =
      let t = tdma_start ~slot ~cycle t in
      let avail = slot - (t mod cycle) in
      if work <= avail then t + work
      else go (t - (t mod cycle) + cycle) (work - avail)
    in
    go t work
  in
  let completion_time r now work =
    match r.res.Resource.policy with
    | Resource.Tdma { slot_us; cycle_us } ->
        tdma_finish ~slot:slot_us ~cycle:cycle_us now work
    | Resource.Nondet_nonpreemptive | Resource.Priority_nonpreemptive
    | Resource.Priority_preemptive | Resource.Priority_segmented _ ->
        now + work
  in
  (* segmented links serve at most one frame per dispatch and then
     re-arbitrate *)
  let dispatch_quantum r remaining =
    match (r.res.Resource.policy, r.res.Resource.kind) with
    | Resource.Priority_segmented { frame_bytes }, Resource.Link { kbps } ->
        min remaining (max 1 (Units.us_of_bytes ~bytes:frame_bytes ~kbps))
    | _, _ -> remaining
  in
  let rec dispatch ri now =
    let r = rs.(ri) in
    match r.current with
    | Some running ->
        (* preempt a Low job the moment High work appears *)
        let current_is_low =
          scenarios.(running.act.scenario).Scenario.band = Scenario.Low
        in
        if
          current_is_low && preemptible r
          && not (Queue.is_empty r.high_q)
        then begin
          let done_work = now - running.dispatched_at in
          running.act.remaining <- running.act.remaining - done_work;
          r.busy <- r.busy + done_work;
          assert (running.act.remaining >= 0);
          r.gen <- r.gen + 1 (* invalidate its completion event *);
          r.suspended <- running.act :: r.suspended;
          r.current <- None;
          dispatch ri now
        end
    | None ->
        let next =
          if not (Queue.is_empty r.high_q) then Some (Queue.pop r.high_q)
          else
            match r.suspended with
            | act :: rest ->
                r.suspended <- rest;
                Some act
            | [] ->
                if not (Queue.is_empty r.low_q) then Some (Queue.pop r.low_q)
                else None
        in
        (match next with
        | None -> ()
        | Some act ->
            let work = dispatch_quantum r act.remaining in
            r.gen <- r.gen + 1;
            r.current <- Some { act; dispatched_at = now; work; gen = r.gen };
            Calendar.schedule cal
              ~time:(completion_time r now work)
              (Completion { resource = ri; gen = r.gen }))
  in
  let activate ri act now =
    let r = rs.(ri) in
    let band = scenarios.(act.scenario).Scenario.band in
    (match band with
    | Scenario.High -> Queue.push act r.high_q
    | Scenario.Low -> Queue.push act r.low_q);
    dispatch ri now
  in

  (* --- requirement sampling --------------------------------------- *)
  let record_completion si inst step now =
    let key = (si, inst) in
    let i = Hashtbl.find instances key in
    i.step_done.(step) <- now;
    let s = scenarios.(si) in
    List.iter
      (fun (req : Scenario.requirement) ->
        if req.Scenario.to_step = step then begin
          let start =
            match req.Scenario.from_step with
            | None -> i.arrived
            | Some f -> i.step_done.(f)
          in
          samples :=
            {
              scenario = s.Scenario.name;
              requirement = req.Scenario.req_name;
              response_us = now - start;
            }
            :: !samples
        end)
      s.Scenario.requirements;
    if step = Array.length steps.(si) - 1 then Hashtbl.remove instances key
  in

  (* --- main loop --------------------------------------------------- *)
  Array.iteri
    (fun si _ ->
      let nominal, release = first_arrival si in
      let release = clamp_release si release in
      if release <= horizon_us then
        Calendar.schedule cal ~time:release
          (Arrival { scenario = si; inst = 0; at_nominal = nominal }))
    scenarios;
  let continue = ref true in
  while !continue do
    match Calendar.pop cal with
    | None -> continue := false
    | Some (now, ev) when now > horizon_us ->
        ignore ev;
        continue := false
    | Some (now, Arrival { scenario = si; inst; at_nominal }) ->
        incr events_processed;
        Hashtbl.replace instances (si, inst)
          {
            arrived = now;
            step_done = Array.make (Array.length steps.(si)) (-1);
          };
        let act =
          { scenario = si; inst; step = 0; remaining = durations.(si).(0) }
        in
        activate step_resource.(si).(0) act now;
        (* schedule the next arrival *)
        let nominal', release' = next_arrival_time si ~nominal:at_nominal in
        let release' = clamp_release si release' in
        if release' <= horizon_us then
          Calendar.schedule cal ~time:(max now release')
            (Arrival
               { scenario = si; inst = inst + 1; at_nominal = nominal' })
    | Some (now, Completion { resource = ri; gen }) ->
        incr events_processed;
        let r = rs.(ri) in
        (match r.current with
        | Some running when running.gen = gen && running.work < running.act.remaining
          ->
            (* frame boundary on a segmented link: re-arbitrate *)
            r.busy <- r.busy + running.work;
            running.act.remaining <- running.act.remaining - running.work;
            r.current <- None;
            r.suspended <- running.act :: r.suspended;
            dispatch ri now
        | Some running when running.gen = gen ->
            r.busy <- r.busy + running.work;
            r.current <- None;
            let act = running.act in
            record_completion act.scenario act.inst act.step now;
            let next_step = act.step + 1 in
            if next_step < Array.length steps.(act.scenario) then begin
              let act' =
                {
                  act with
                  step = next_step;
                  remaining = durations.(act.scenario).(next_step);
                }
              in
              activate step_resource.(act.scenario).(next_step) act' now
            end;
            dispatch ri now
        | _ -> () (* stale completion after preemption *))
  done;
  {
    samples = !samples;
    events_processed = !events_processed;
    busy_us =
      Array.to_list
        (Array.map (fun r -> (r.res.Resource.name, r.busy)) rs);
  }

let max_response ~runs ~horizon_us ?(first_seed = 1) ?sporadic_slack sys
    ~scenario ~requirement =
  let worst = ref 0 in
  for seed = first_seed to first_seed + runs - 1 do
    let stats = run ~seed ~horizon_us ?sporadic_slack sys in
    List.iter
      (fun (s : sample) ->
        if s.scenario = scenario && s.requirement = requirement then
          worst := max !worst s.response_us)
      stats.samples
  done;
  !worst
