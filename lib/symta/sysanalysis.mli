(** System-level compositional analysis (the SymTA/S approach):
    per-resource busy-window analyses coupled by event-stream
    propagation, iterated to a global fixpoint.

    Each scenario step is a task activated by the output stream of its
    predecessor (the scenario trigger for step 0).  Output jitter grows
    with the response-time spread, which feeds back into the
    interference terms of other resources, so the whole system is
    re-analyzed until the streams stabilize.

    End-to-end bounds are sums of local worst-case response times
    along the measured window — conservative (compositional analysis
    loses inter-resource correlation, which is exactly why the paper's
    Table 2 shows SymTA/S at or above the UPPAAL values). *)

type step_report = {
  scenario : string;
  step_index : int;
  step_name : string;
  resource : string;
  wcet : int;
  r_min : int;
  r_max : int;
  activation : Evstream.t;
}

type t = { steps : step_report list; iterations : int }

exception Diverged of string
(** Stream jitters kept growing: the system is (or appears) overloaded. *)

val analyze : ?max_iterations:int -> Ita_core.Sysmodel.t -> t

val wcrt :
  t -> Ita_core.Sysmodel.t -> scenario:string -> requirement:string -> int
(** Sum of local [r_max] along the requirement's window,
    microseconds. *)

val wcrt_bound :
  ?max_iterations:int ->
  Ita_core.Sysmodel.t ->
  scenario:string ->
  requirement:string ->
  (int, string) result
(** [analyze] + [wcrt] in one exception-free call — the batch-job
    entry point: divergence and unschedulability come back as
    [Error] instead of escaping a sweep. *)

val pp : Format.formatter -> t -> unit
