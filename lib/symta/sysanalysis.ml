open Ita_core

type step_report = {
  scenario : string;
  step_index : int;
  step_name : string;
  resource : string;
  wcet : int;
  r_min : int;
  r_max : int;
  activation : Evstream.t;
}

type t = { steps : step_report list; iterations : int }

exception Diverged of string

let discipline_of (r : Resource.t) =
  match r.Resource.policy with
  | Resource.Priority_preemptive -> Busywindow.Preemptive
  | Resource.Nondet_nonpreemptive | Resource.Priority_nonpreemptive
  | Resource.Tdma _ | Resource.Priority_segmented _ ->
      Busywindow.Nonpreemptive

(* A TDMA blackout behaves like a periodic top-band task of length
   cycle - slot. *)
let virtual_tasks (r : Resource.t) =
  match r.Resource.policy with
  | Resource.Tdma { slot_us; cycle_us } ->
      let stream =
        { Evstream.period = cycle_us; jitter = 0; dmin = cycle_us }
      in
      [
        {
          Busywindow.task_name = r.Resource.name ^ "/blackout";
          group = "__tdma__" ^ r.Resource.name;
          step_index = 0;
          chain_pending = 0;
          prefix_response = 0;
          delta_jitter = 0;
          block_quantum = cycle_us - slot_us;
          wcet = cycle_us - slot_us;
          stream;
          cross_stream = stream;
          band = Scenario.High;
        };
      ]
  | Resource.Nondet_nonpreemptive | Resource.Priority_nonpreemptive
  | Resource.Priority_preemptive | Resource.Priority_segmented _ ->
      []

(* Chain state carried between rounds: pipeline backlog (pending
   instances), response spread, and per-step response prefixes. *)
type chain_state = { pending : int; spread : int; prefixes : int array }

let initial_chain n = { pending = 0; spread = 0; prefixes = Array.make n 0 }

(* One analysis round under the given per-scenario chain states. *)
let round sys chains =
  let responses = Hashtbl.create 16 in
  let chain_of (s : Scenario.t) =
    try Hashtbl.find chains s.Scenario.name
    with Not_found -> initial_chain (Scenario.n_steps s)
  in
  List.iter
    (fun (r : Resource.t) ->
      let jobs = Sysmodel.jobs_on sys r in
      if jobs <> [] then begin
        let tasks =
          List.map
            (fun ((s : Scenario.t), k, st) ->
              let trigger = Evstream.of_eventmodel s.Scenario.trigger in
              let chain = chain_of s in
              {
                Busywindow.task_name =
                  Printf.sprintf "%s/%s" s.Scenario.name
                    (Scenario.step_name st);
                group = s.Scenario.name;
                step_index = k;
                chain_pending = chain.pending;
                prefix_response = chain.prefixes.(k);
                (* 0: activations are treated as trigger-spaced.  The
                   pipeline-bunching refinement (spread-widened
                   delta_min) is sound but feeds the global fixpoint
                   with gain close to one on this case study's 87%%
                   loaded MMI and multiplies every ChangeVolume bound
                   by 3-5x; like SymTA/S we accept that windows
                   measured from mid-chain points can slightly exceed
                   the compositional bound (see EXPERIMENTS.md). *)
                delta_jitter = 0;
                block_quantum =
                  (let wcet = Sysmodel.step_duration_us sys st in
                   match (r.Resource.policy, st, r.Resource.kind) with
                   | ( Resource.Priority_segmented { frame_bytes },
                       Scenario.Transfer { bytes = _; _ },
                       Resource.Link { kbps } ) ->
                       min wcet (Units.us_of_bytes ~bytes:frame_bytes ~kbps)
                   | _, _, _ -> wcet);
                wcet = Sysmodel.step_duration_us sys st;
                stream = trigger;
                cross_stream =
                  {
                    trigger with
                    Evstream.jitter = trigger.Evstream.jitter + chain.spread;
                    dmin = 0;
                  };
                band = s.Scenario.band;
              })
            jobs
        in
        let all_responses =
          Busywindow.analyze (discipline_of r) (tasks @ virtual_tasks r)
        in
        List.iter2
          (fun ((s : Scenario.t), k, _) (resp : Busywindow.response) ->
            Hashtbl.replace responses (s.Scenario.name, k) resp)
          jobs
          (List.filteri (fun i _ -> i < List.length jobs) all_responses)
      end)
    sys.Sysmodel.resources;
  responses

(* Monotone update: merged with the previous state (elementwise max)
   so the fixpoint iteration cannot oscillate between readings that
   differ by integer rounding. *)
let chain_update sys responses previous =
  let chains = Hashtbl.create 8 in
  List.iter
    (fun (s : Scenario.t) ->
      let n = Scenario.n_steps s in
      let prefixes = Array.make n 0 in
      let r_chain = ref 0 and c_chain = ref 0 in
      List.iteri
        (fun k st ->
          prefixes.(k) <- !r_chain;
          let resp : Busywindow.response =
            Hashtbl.find responses (s.Scenario.name, k)
          in
          r_chain := !r_chain + resp.Busywindow.r_max;
          c_chain := !c_chain + Sysmodel.step_duration_us sys st)
        s.Scenario.steps;
      let p = Eventmodel.period s.Scenario.trigger in
      let fresh =
        {
          pending = max 0 (((!r_chain + p - 1) / p) - 1);
          spread = max 0 (!r_chain - !c_chain);
          prefixes;
        }
      in
      let merged =
        match Hashtbl.find_opt previous s.Scenario.name with
        | None -> fresh
        | Some old ->
            {
              pending = max old.pending fresh.pending;
              spread = max old.spread fresh.spread;
              prefixes = Array.map2 max old.prefixes fresh.prefixes;
            }
      in
      Hashtbl.replace chains s.Scenario.name merged)
    sys.Sysmodel.scenarios;
  chains

let chains_equal c1 c2 =
  Hashtbl.length c1 = Hashtbl.length c2
  && Hashtbl.fold
       (fun key (v : chain_state) acc ->
         acc
         &&
         match Hashtbl.find_opt c2 key with
         | Some v' ->
             v.pending = v'.pending && v.spread = v'.spread
             && v.prefixes = v'.prefixes
         | None -> false)
       c1 true

let analyze ?(max_iterations = 64) (sys : Sysmodel.t) =
  let rec go chains iterations =
    if iterations > max_iterations then begin
      if Sys.getenv_opt "SYMTA_DEBUG" <> None then
        Hashtbl.iter
          (fun name (c : chain_state) ->
            Format.eprintf "%s: pending=%d spread=%d prefixes=%s@." name
              c.pending c.spread
              (String.concat ","
                 (Array.to_list (Array.map string_of_int c.prefixes))))
          chains;
      raise (Diverged "chain states failed to stabilize")
    end
    else
      let responses = round sys chains in
      let chains' = chain_update sys responses chains in
      if chains_equal chains chains' then (responses, iterations)
      else go chains' (iterations + 1)
  in
  let responses, iterations = go (Hashtbl.create 8) 1 in
  let steps =
    List.concat_map
      (fun (s : Scenario.t) ->
        List.mapi
          (fun k st ->
            let resp = Hashtbl.find responses (s.Scenario.name, k) in
            {
              scenario = s.Scenario.name;
              step_index = k;
              step_name = Scenario.step_name st;
              resource = Scenario.step_resource st;
              wcet = Sysmodel.step_duration_us sys st;
              r_min = resp.Busywindow.r_min;
              r_max = resp.Busywindow.r_max;
              activation = resp.Busywindow.task.Busywindow.stream;
            })
          s.Scenario.steps)
      sys.Sysmodel.scenarios
  in
  { steps; iterations }

let wcrt t sys ~scenario ~requirement =
  let s = Sysmodel.scenario sys scenario in
  let req = Scenario.requirement s requirement in
  let lo = match req.Scenario.from_step with None -> 0 | Some f -> f + 1 in
  List.fold_left
    (fun acc step ->
      if
        step.scenario = scenario && step.step_index >= lo
        && step.step_index <= req.Scenario.to_step
      then acc + step.r_max
      else acc)
    0 t.steps

let pp ppf t =
  Format.fprintf ppf "@[<v>converged after %d rounds@," t.iterations;
  List.iter
    (fun st ->
      Format.fprintf ppf "%-14s %-16s on %-4s C=%-7d R=[%d, %d] %a@,"
        st.scenario st.step_name st.resource st.wcet st.r_min st.r_max
        Evstream.pp st.activation)
    t.steps;
  Format.fprintf ppf "@]"

let wcrt_bound ?max_iterations sys ~scenario ~requirement =
  match analyze ?max_iterations sys with
  | t -> (
      match wcrt t sys ~scenario ~requirement with
      | v -> Ok v
      | exception Not_found ->
          Error
            (Printf.sprintf "unknown scenario/requirement %s/%s" scenario
               requirement))
  | exception Diverged msg -> Error ("diverged: " ^ msg)
  | exception Busywindow.Unschedulable msg -> Error ("unschedulable: " ^ msg)
