(** Greedy processing components and their composition into an MPA
    analysis of a {!Ita_core.Sysmodel.t}.

    Each scenario step becomes a greedy component on its resource:

    - a processor or link offers the full-rate service curve to its
      High band; each component consumes demand and passes the
      leftover service to the Low band (fixed-priority resource
      sharing in RTC);
    - within a band, rival demand is subtracted from the service a
      component sees (FIFO pessimism, as in the SymTA/S baseline);
    - the worst-case delay through a component is the horizontal
      deviation between its demand curve and its service curve, and
      its output event stream is the input arrival curve shifted by
      that delay (jitter propagation);
    - end-to-end bounds add per-component delays — the loss of
      inter-resource correlation that makes MPA conservative
      (paper Section 5: the "phase shift disappears" in the interval
      domain, so MPA cannot profit from known offsets and always
      reports pno-style bounds). *)

type step_report = {
  scenario : string;
  step_index : int;
  step_name : string;
  resource : string;
  wcet : int;
  delay : int;  (** worst-case delay through this component, us *)
  backlog : int;  (** backlog bound in events *)
}

type t = { steps : step_report list; iterations : int; horizon : int }

exception Diverged of string

val analyze : ?max_iterations:int -> ?horizon:int -> Ita_core.Sysmodel.t -> t
(** Default horizon: four times the largest scenario period, grown
    automatically if a delay bound collides with it. *)

val wcrt :
  t -> Ita_core.Sysmodel.t -> scenario:string -> requirement:string -> int
(** Sum of component delays along the requirement's window. *)

val wcrt_bound :
  ?max_iterations:int ->
  ?horizon:int ->
  Ita_core.Sysmodel.t ->
  scenario:string ->
  requirement:string ->
  (int, string) result
(** [analyze] + [wcrt] in one exception-free call — the batch-job
    entry point: divergence comes back as [Error] instead of escaping
    a sweep. *)

val pp : Format.formatter -> t -> unit
