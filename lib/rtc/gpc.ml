open Ita_core

type step_report = {
  scenario : string;
  step_index : int;
  step_name : string;
  resource : string;
  wcet : int;
  delay : int;
  backlog : int;
}

type t = { steps : step_report list; iterations : int; horizon : int }

exception Diverged of string

(* One global round: each step's arrival curve is its trigger curve
   shifted by the accumulated upstream delay; resources serve High
   demand from full service, Low demand from the leftover. *)
let round sys ~horizon pendings spreads =
  let arrival (s : Scenario.t) _k =
    (* step activations happen at the trigger rate: the chain is FIFO,
       so accumulated jitter enters through the backlog and
       cross-stream terms only (cf. Busywindow) *)
    let period, jitter, dmin = Eventmodel.pjd s.Scenario.trigger in
    Curve.upper_pjd ~period ~jitter ~dmin
  in
  let next = Hashtbl.create 16 in
  List.iter
    (fun (r : Resource.t) ->
      let jobs = Sysmodel.jobs_on sys r in
      if jobs <> [] then begin
        let demand_of ((s : Scenario.t), k, st) =
          Curve.scale (arrival s k) (Sysmodel.step_duration_us sys st)
        in
        let high, low =
          List.partition
            (fun ((s : Scenario.t), _, _) -> s.Scenario.band = Scenario.High)
            jobs
        in
        let total_high_demand =
          List.fold_left
            (fun acc j -> Curve.add acc (demand_of j))
            Curve.zero high
        in
        let full =
          match r.Resource.policy with
          | Resource.Tdma { slot_us; cycle_us } ->
              (* the classical TDMA lower service curve, as the
                 leftover of a unit-rate server after the periodic
                 blackout demand *)
              let blackout =
                Curve.scale
                  (Curve.upper_pjd ~period:cycle_us ~jitter:0 ~dmin:cycle_us)
                  (cycle_us - slot_us)
              in
              Minplus.leftover ~horizon ~service:(Curve.rate 1)
                ~demand:blackout
          | Resource.Nondet_nonpreemptive | Resource.Priority_nonpreemptive
          | Resource.Priority_preemptive | Resource.Priority_segmented _ ->
              Curve.rate 1
        in
        let low_service =
          Minplus.leftover ~horizon ~service:full ~demand:total_high_demand
        in
        let analyze_band service band_jobs =
          List.iter
            (fun (((s : Scenario.t), k, st) as j) ->
              (* Rivals within the band steal service too.  Same-chain
                 rivals are precedence-ordered with the victim
                 (cf. Busywindow.rival_count): downstream steps only
                 contribute the chain's pipeline backlog, upstream
                 steps additionally keep arriving during the window. *)
              let rivals =
                List.fold_left
                  (fun acc ((s' : Scenario.t), k', st') ->
                    let c = Sysmodel.step_duration_us sys st' in
                    if s'.Scenario.name = s.Scenario.name && k' = k then acc
                    else if s'.Scenario.name = s.Scenario.name then begin
                      let backlog =
                        try Hashtbl.find pendings s'.Scenario.name
                        with Not_found -> 0
                      in
                      let pending_demand =
                        Curve.constant (backlog * c)
                      in
                      if k' < k then
                        Curve.add acc
                          (Curve.add pending_demand
                             (Curve.scale (arrival s' k') c))
                      else Curve.add acc pending_demand
                    end
                    else begin
                      let period, jitter, _ =
                        Eventmodel.pjd s'.Scenario.trigger
                      in
                      let spread =
                        try Hashtbl.find spreads s'.Scenario.name
                        with Not_found -> 0
                      in
                      Curve.add acc
                        (Curve.scale
                           (Curve.upper_pjd ~period
                              ~jitter:(jitter + spread) ~dmin:0)
                           c)
                    end)
                  Curve.zero band_jobs
              in
              let my_service =
                Minplus.leftover ~horizon ~service ~demand:rivals
              in
              let demand = demand_of j in
              let delay =
                Minplus.horizontal_deviation ~horizon ~demand
                  ~service:my_service
              in
              let backlog =
                let events = arrival s k in
                let served_events =
                  (* service in work units over wcet *)
                  Curve.make
                    ~eval:(fun d ->
                      Curve.eval my_service d / Sysmodel.step_duration_us sys st)
                    ~breakpoints:(fun ~horizon:h ->
                      Curve.breakpoints my_service ~horizon:h)
                in
                Minplus.vertical_deviation ~horizon ~demand:events
                  ~service:served_events
              in
              Hashtbl.replace next (s.Scenario.name, k) (delay, backlog))
            band_jobs
        in
        analyze_band full high;
        analyze_band low_service low
      end)
    sys.Sysmodel.resources;
  next

let analyze ?(max_iterations = 32) ?horizon (sys : Sysmodel.t) =
  let base_horizon =
    match horizon with
    | Some h -> h
    | None ->
        4
        * List.fold_left
            (fun acc (s : Scenario.t) ->
              max acc (Eventmodel.period s.Scenario.trigger))
            1 sys.Sysmodel.scenarios
  in
  let rec with_horizon horizon =
    let delays = Hashtbl.create 16 in
    let pendings = Hashtbl.create 8 in
    let spreads = Hashtbl.create 8 in
    let update_chains () =
      List.iter
        (fun (s : Scenario.t) ->
          let r_chain = ref 0 and c_chain = ref 0 in
          List.iteri
            (fun k st ->
              (try r_chain := !r_chain + Hashtbl.find delays (s.Scenario.name, k)
               with Not_found -> ());
              c_chain := !c_chain + Sysmodel.step_duration_us sys st)
            s.Scenario.steps;
          let p = Eventmodel.period s.Scenario.trigger in
          Hashtbl.replace pendings s.Scenario.name
            (max 0 (((!r_chain + p - 1) / p) - 1));
          Hashtbl.replace spreads s.Scenario.name
            (max 0 (!r_chain - !c_chain)))
        sys.Sysmodel.scenarios
    in
    let rec go i =
      if i > max_iterations then raise (Diverged "delays failed to stabilize");
      update_chains ();
      let next = round sys ~horizon pendings spreads in
      let changed = ref false in
      let overflow = ref false in
      Hashtbl.iter
        (fun key (delay, _) ->
          if delay = max_int then overflow := true
          else if Hashtbl.find_opt delays key <> Some delay then begin
            changed := true;
            Hashtbl.replace delays key delay
          end)
        next;
      if !overflow then `Grow
      else if !changed then go (i + 1)
      else `Done (next, i)
    in
    match go 1 with
    | `Grow ->
        if horizon > 1 lsl 34 then raise (Diverged "horizon exploded");
        with_horizon (horizon * 4)
    | `Done (final, iterations) -> (final, iterations, horizon)
  in
  let final, iterations, horizon = with_horizon base_horizon in
  let steps =
    List.concat_map
      (fun (s : Scenario.t) ->
        List.mapi
          (fun k st ->
            let delay, backlog = Hashtbl.find final (s.Scenario.name, k) in
            {
              scenario = s.Scenario.name;
              step_index = k;
              step_name = Scenario.step_name st;
              resource = Scenario.step_resource st;
              wcet = Sysmodel.step_duration_us sys st;
              delay;
              backlog;
            })
          s.Scenario.steps)
      sys.Sysmodel.scenarios
  in
  { steps; iterations; horizon }

let wcrt t sys ~scenario ~requirement =
  let s = Sysmodel.scenario sys scenario in
  let req = Scenario.requirement s requirement in
  let lo = match req.Scenario.from_step with None -> 0 | Some f -> f + 1 in
  List.fold_left
    (fun acc step ->
      if
        step.scenario = scenario && step.step_index >= lo
        && step.step_index <= req.Scenario.to_step
      then acc + step.delay
      else acc)
    0 t.steps

let pp ppf t =
  Format.fprintf ppf "@[<v>MPA: %d rounds, horizon %d@," t.iterations t.horizon;
  List.iter
    (fun st ->
      Format.fprintf ppf "%-14s %-16s on %-4s C=%-7d delay=%-7d backlog=%d@,"
        st.scenario st.step_name st.resource st.wcet st.delay st.backlog)
    t.steps;
  Format.fprintf ppf "@]"

let wcrt_bound ?max_iterations ?horizon sys ~scenario ~requirement =
  match analyze ?max_iterations ?horizon sys with
  | t -> (
      match wcrt t sys ~scenario ~requirement with
      | v -> Ok v
      | exception Not_found ->
          Error
            (Printf.sprintf "unknown scenario/requirement %s/%s" scenario
               requirement))
  | exception Diverged msg -> Error ("diverged: " ^ msg)
