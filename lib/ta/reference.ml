(* Naive reference semantics for certificate checking.

   This module deliberately re-implements the symbolic successor
   relation from the network definition alone: plain DBM operations, no
   extrapolation, no active-clock reduction, no interning, no slicing,
   no sharding.  {!Semantics} is the optimized twin the explorer runs;
   an independent certificate checker must not trust it, so nothing
   here calls into it beyond sharing its plain [state]/[label] types.

   The [mask] makes the reference semantics aware of what a
   query-directed slice removed without knowing how the slicer decided:
   frozen components never move (their locations and variables are
   constants of the checked invariant), removed clocks are
   unconstrained everywhere and excluded from guard-domination
   obligations.  All mask handling is direction-checked: the masked
   relation always has at least the transitions and delays of the real
   projected system, so every obligation discharged against it also
   holds for the real runs (the certificate checker validates the
   isolation conditions that make the converse harmless). *)

module Dbm = Ita_dbm.Dbm

type state = Semantics.state = { locs : int array; env : int array }
type label = Semantics.label

type mask = {
  frozen_comps : bool array;
      (** [true]: the component is outside the certified cone and never
          moves; its location is pinned and its edges are not
          enumerated. *)
  removed_clocks : bool array;
      (** [true]: the clock is unconstrained in every stored zone and
          ignored by LU coverage; guard-domination obligations skip
          it. *)
  frozen_vars : bool array;
      (** [true]: the variable is outside the cone and held at its
          initial value. *)
}

let no_mask (net : Network.t) =
  {
    frozen_comps = Array.make (Array.length net.Network.automata) false;
    removed_clocks = Array.make (Array.length net.Network.clock_names) false;
    frozen_vars = Array.make (Array.length net.Network.var_names) false;
  }

let loc_kind (net : Network.t) (st : state) i =
  (Automaton.location net.Network.automata.(i) st.locs.(i)).Automaton.kind

(* Invariants of the unmasked components only: a frozen component sits
   at a fixed location the real runs may have left, so its invariant
   must not constrain the certified zones (the checker separately
   ensures frozen components cannot retime the cone). *)
let apply_invariants (net : Network.t) mask (st : state) z =
  Array.iteri
    (fun i l ->
      if not mask.frozen_comps.(i) then begin
        let inv =
          (Automaton.location net.Network.automata.(i) l).Automaton.invariant
        in
        if inv.Guard.clocks <> [] then Guard.apply st.env inv z
      end)
    st.locs

let inv_zone (net : Network.t) mask (st : state) =
  let z = Dbm.universal (Network.n_clocks net) in
  apply_invariants net mask st z;
  z

(* Delay permission over the unmasked components.  This is an
   over-approximation of the real system's [delay_allowed]: a frozen
   component can only add blockers (committed/urgent locations, urgent
   synchronizations), never remove them, so whenever the real projected
   system may delay the reference semantics checks the delay-coverage
   obligation too. *)
let delay_allowed (net : Network.t) mask (st : state) =
  let n = Array.length net.Network.automata in
  let blocked_kind =
    let rec go i =
      i < n
      && ((not mask.frozen_comps.(i))
          && (match loc_kind net st i with
             | Automaton.Committed | Automaton.Urgent -> true
             | Automaton.Normal -> false)
         || go (i + 1))
    in
    go 0
  in
  (not blocked_kind)
  &&
  let data_enabled (e : Automaton.edge) =
    Guard.data_holds st.env e.Automaton.guard
  in
  let edge_with i pred =
    (not mask.frozen_comps.(i))
    &&
    let a = net.Network.automata.(i) in
    List.exists
      (fun ei ->
        let e = Automaton.edge a ei in
        pred e && data_enabled e)
      (Automaton.out_edges a st.locs.(i))
  in
  let chan_enabled c (ch : Channel.t) =
    ch.Channel.urgent
    &&
    let sender_at i = edge_with i (fun e -> e.Automaton.sync = Automaton.Send c) in
    let receiver_at i =
      edge_with i (fun e -> e.Automaton.sync = Automaton.Recv c)
    in
    match ch.Channel.kind with
    | Channel.Broadcast ->
        let rec go i = i < n && (sender_at i || go (i + 1)) in
        go 0
    | Channel.Binary ->
        let rec go i =
          i < n
          && ((sender_at i
              && (let rec har j =
                    j < n && (((j <> i) && receiver_at j) || har (j + 1))
                  in
                  har 0))
             || go (i + 1))
        in
        go 0
  in
  let urgent = ref false in
  Array.iteri
    (fun c ch -> if (not !urgent) && chan_enabled c ch then urgent := true)
    net.Network.channels;
  not !urgent

(* Exact time elapse: up then the unmasked invariants, nothing else —
   the certificate stores unextrapolated zones, so the checker never
   abstracts. *)
let delay (net : Network.t) mask (st : state) z =
  let z = Dbm.copy z in
  Dbm.up z;
  apply_invariants net mask st z;
  z

type joint = { label : label; parts : (int * int) list }

(* All joint transitions of the unmasked components whose data guards
   hold in [st], under the committed-location restriction over the
   unmasked components.  Structure mirrors the optimized enumeration so
   differential tests keep both honest, but the code is independent. *)
let joint_transitions (net : Network.t) mask (st : state) =
  let n = Array.length net.Network.automata in
  let unmasked i = not mask.frozen_comps.(i) in
  let committed =
    let rec go i =
      i < n && ((unmasked i && loc_kind net st i = Automaton.Committed) || go (i + 1))
    in
    go 0
  in
  let committed_ok parts =
    (not committed)
    || List.exists
         (fun (i, ei) ->
           let e = Automaton.edge net.Network.automata.(i) ei in
           (Automaton.location net.Network.automata.(i) e.Automaton.src)
             .Automaton.kind = Automaton.Committed)
         parts
  in
  let data_enabled (i, ei) =
    Guard.data_holds st.env
      (Automaton.edge net.Network.automata.(i) ei).Automaton.guard
  in
  let acc = ref [] in
  let emit label parts =
    if committed_ok parts then acc := { label; parts } :: !acc
  in
  for i = 0 to n - 1 do
    if unmasked i then begin
      let a = net.Network.automata.(i) in
      List.iter
        (fun ei ->
          let e = Automaton.edge a ei in
          if e.Automaton.sync = Automaton.NoSync && data_enabled (i, ei) then
            emit (Semantics.Internal { comp = i; edge = ei }) [ (i, ei) ])
        (Automaton.out_edges a st.locs.(i))
    end
  done;
  let edges_on i pred =
    if not (unmasked i) then []
    else
      let a = net.Network.automata.(i) in
      List.filter
        (fun ei -> pred (Automaton.edge a ei) && data_enabled (i, ei))
        (Automaton.out_edges a st.locs.(i))
  in
  Array.iteri
    (fun ch (chan : Channel.t) ->
      match chan.Channel.kind with
      | Channel.Binary ->
          for i = 0 to n - 1 do
            let sends =
              edges_on i (fun e -> e.Automaton.sync = Automaton.Send ch)
            in
            if sends <> [] then
              for j = 0 to n - 1 do
                if j <> i then
                  let recvs =
                    edges_on j (fun e -> e.Automaton.sync = Automaton.Recv ch)
                  in
                  List.iter
                    (fun se ->
                      List.iter
                        (fun re ->
                          emit
                            (Semantics.Sync
                               {
                                 chan = ch;
                                 sender = (i, se);
                                 receivers = [ (j, re) ];
                               })
                            [ (i, se); (j, re) ])
                        recvs)
                    sends
              done
          done
      | Channel.Broadcast ->
          for i = 0 to n - 1 do
            let sends =
              edges_on i (fun e -> e.Automaton.sync = Automaton.Send ch)
            in
            List.iter
              (fun se ->
                let choices = ref [ [] ] in
                for j = n - 1 downto 0 do
                  if j <> i then
                    let recvs =
                      edges_on j (fun e -> e.Automaton.sync = Automaton.Recv ch)
                    in
                    if recvs <> [] then
                      choices :=
                        List.concat_map
                          (fun rest ->
                            List.map (fun re -> (j, re) :: rest) recvs)
                          !choices
                done;
                List.iter
                  (fun recvs ->
                    emit
                      (Semantics.Sync
                         { chan = ch; sender = (i, se); receivers = recvs })
                      ((i, se) :: recvs))
                  !choices)
              sends
          done)
    net.Network.channels;
  List.rev !acc

(* One exact discrete step: clock guards under the pre-update
   environment, then the sequential updates, then the target-state
   unmasked invariants.  No delay, no abstraction.  [None] when the
   step is disabled (empty zone, or an update leaves a variable
   range — a transition the runtime semantics rejects). *)
let fire (net : Network.t) mask (st : state) z parts =
  let z = Dbm.copy z in
  List.iter
    (fun (i, ei) ->
      let e = Automaton.edge net.Network.automata.(i) ei in
      Guard.apply st.env e.Automaton.guard z)
    parts;
  if Dbm.is_empty z then None
  else
    match
      let env = Array.copy st.env in
      let locs = Array.copy st.locs in
      List.iter
        (fun (i, ei) ->
          let e = Automaton.edge net.Network.automata.(i) ei in
          Update.apply ~ranges:net.Network.var_ranges env z e.Automaton.update;
          locs.(i) <- e.Automaton.dst)
        parts;
      { locs; env }
    with
    | st' ->
        apply_invariants net mask st' z;
        if Dbm.is_empty z then None else Some (st', z)
    | exception Update.Out_of_range _ -> None

(* The exact initial configuration: all components (frozen ones
   included — their pinned location is the initial one) at their
   initial locations, variables at their declared initial values, all
   clocks zero, narrowed by the unmasked invariants.  Delay is not
   taken here: the delay-coverage obligation extends coverage from the
   initial point onward. *)
let initial (net : Network.t) mask =
  let locs =
    Array.map (fun (a : Automaton.t) -> a.Automaton.initial) net.Network.automata
  in
  let env = Array.copy net.Network.var_init in
  let st = { locs; env } in
  let z = Dbm.zero (Network.n_clocks net) in
  apply_invariants net mask st z;
  (st, z)

(* ------------------------------------------------------------------ *)
(* Exact witness replay over the full network                          *)
(* ------------------------------------------------------------------ *)

(* Replaying a claimed counterexample path needs the real (unmasked,
   maximal-broadcast, committed-restricted) transition relation with
   exact delay closure.  Configurations form a set because broadcast
   labels from a sliced run list only the in-cone receivers: every
   out-of-cone component able to receive must also receive, and each
   choice of its receiving edge is a distinct real continuation. *)

let delay_close_exact net mask st z =
  if delay_allowed net mask st then begin
    Dbm.up z;
    apply_invariants net mask st z
  end

let initial_exact (net : Network.t) =
  let mask = no_mask net in
  let st, z = initial net mask in
  delay_close_exact net mask st z;
  (st, z)

(* Is [ (i, ei) ] a structurally valid participant at [st]: the edge
   exists, leaves the current location, and its data guard holds? *)
let participant_ok (net : Network.t) (st : state) (i, ei) sync =
  i >= 0
  && i < Array.length net.Network.automata
  &&
  let a = net.Network.automata.(i) in
  ei >= 0
  && ei < Array.length a.Automaton.edges
  &&
  let e = Automaton.edge a ei in
  e.Automaton.src = st.locs.(i)
  && e.Automaton.sync = sync
  && Guard.data_holds st.env e.Automaton.guard

let enabled_recvs (net : Network.t) (st : state) ch j =
  let a = net.Network.automata.(j) in
  List.filter
    (fun ei ->
      let e = Automaton.edge a ei in
      e.Automaton.sync = Automaton.Recv ch
      && Guard.data_holds st.env e.Automaton.guard)
    (Automaton.out_edges a st.locs.(j))

(* All real part-lists matching [label] at [st]: checks participant
   validity, the committed restriction, and broadcast maximality
   (completing the listed receivers with every component that can
   receive, in all edge-choice combinations).  Empty when the label is
   not a real transition at [st]. *)
let real_parts (net : Network.t) (st : state) (label : label) =
  let n = Array.length net.Network.automata in
  let committed =
    let rec go i =
      i < n && (loc_kind net st i = Automaton.Committed || go (i + 1))
    in
    go 0
  in
  let committed_ok parts =
    (not committed)
    || List.exists
         (fun (i, ei) ->
           let e = Automaton.edge net.Network.automata.(i) ei in
           (Automaton.location net.Network.automata.(i) e.Automaton.src)
             .Automaton.kind = Automaton.Committed)
         parts
  in
  let candidates =
    match label with
    | Semantics.Internal { comp; edge } ->
        if participant_ok net st (comp, edge) Automaton.NoSync then
          [ [ (comp, edge) ] ]
        else []
    | Semantics.Sync { chan; sender = (si, se); receivers } -> (
        if chan < 0 || chan >= Array.length net.Network.channels then []
        else
          let ch = net.Network.channels.(chan) in
          if not (participant_ok net st (si, se) (Automaton.Send chan)) then []
          else
            match ch.Channel.kind with
            | Channel.Binary -> (
                match receivers with
                | [ (ri, re) ] when ri <> si ->
                    if participant_ok net st (ri, re) (Automaton.Recv chan) then
                      [ [ (si, se); (ri, re) ] ]
                    else []
                | _ -> [])
            | Channel.Broadcast ->
                let listed = List.map fst receivers in
                if
                  List.exists (fun ri -> ri = si) listed
                  || List.length listed
                     <> List.length (List.sort_uniq compare listed)
                  || List.exists
                       (fun (ri, re) ->
                         not
                           (participant_ok net st (ri, re) (Automaton.Recv chan)))
                       receivers
                then []
                else begin
                  (* maximality: every other component with an enabled
                     receiving edge must take part; the listed receivers
                     fix their edge, the rest branch over theirs *)
                  let choices = ref [ List.rev receivers ] in
                  for j = n - 1 downto 0 do
                    if j <> si && not (List.mem j listed) then
                      match enabled_recvs net st chan j with
                      | [] -> ()
                      | recvs ->
                          choices :=
                            List.concat_map
                              (fun rest ->
                                List.map (fun re -> (j, re) :: rest) recvs)
                              !choices
                  done;
                  List.map (fun rs -> (si, se) :: rs) !choices
                end)
  in
  List.filter committed_ok candidates

(* One labelled step of the candidate set, with exact delay closure. *)
let step_exact (net : Network.t) configs (label : label) =
  let mask = no_mask net in
  List.concat_map
    (fun (st, z) ->
      List.filter_map
        (fun parts ->
          match fire net mask st z parts with
          | None -> None
          | Some (st', z') ->
              delay_close_exact net mask st' z';
              if Dbm.is_empty z' then None else Some (st', z'))
        (real_parts net st label))
    configs
