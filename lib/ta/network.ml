type t = {
  automata : Automaton.t array;
  clock_names : string array;
  var_names : string array;
  var_ranges : (int * int) array;
  var_init : int array;
  channels : Channel.t array;
  k : int array;
  lbase : int array;
  ubase : int array;
  lloc : int array array array;
  uloc : int array array array;
  active : bool array array array;
  pinned : bool array;
}

exception Invalid_model of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_model s)) fmt
let n_clocks net = Array.length net.clock_names - 1
let n_components net = Array.length net.automata

let bump_clock_bound net x c =
  let k = Array.copy net.k in
  k.(x) <- max k.(x) c;
  let lbase = Array.copy net.lbase and ubase = Array.copy net.ubase in
  lbase.(x) <- max lbase.(x) c;
  ubase.(x) <- max ubase.(x) c;
  let pinned = Array.copy net.pinned in
  pinned.(x) <- true;
  { net with k; lbase; ubase; pinned }

let index_of name arr =
  let found = ref (-1) in
  Array.iteri (fun i n -> if n = name && !found < 0 then found := i) arr;
  if !found < 0 then raise Not_found else !found

let component_index net name =
  index_of name (Array.map (fun (a : Automaton.t) -> a.name) net.automata)

let clock_index net name = index_of name net.clock_names
let var_index net name = index_of name net.var_names

let pp_locs net ppf locs =
  Array.iteri
    (fun i l ->
      if i > 0 then Format.fprintf ppf " | ";
      let a = net.automata.(i) in
      Format.fprintf ppf "%s.%s" a.Automaton.name
        (Automaton.location a l).Automaton.loc_name)
    locs

module Builder = struct
  type network = t

  type b = {
    mutable clocks : string list;  (* reversed *)
    mutable vars : (string * int * int * int) list;  (* reversed *)
    mutable chans : Channel.t list;  (* reversed *)
    mutable autos : Automaton.t list;  (* reversed *)
  }

  let create () = { clocks = [ "t0" ]; vars = []; chans = []; autos = [] }

  let clock b name =
    if List.mem name b.clocks then invalid "duplicate clock %s" name;
    b.clocks <- name :: b.clocks;
    List.length b.clocks - 1

  let int_var b name ~lo ~hi ~init =
    if List.exists (fun (n, _, _, _) -> n = name) b.vars then
      invalid "duplicate variable %s" name;
    if not (lo <= init && init <= hi) then
      invalid "variable %s: init %d outside [%d, %d]" name init lo hi;
    b.vars <- (name, lo, hi, init) :: b.vars;
    List.length b.vars - 1

  let channel b name kind ~urgent =
    if List.exists (fun (c : Channel.t) -> c.name = name) b.chans then
      invalid "duplicate channel %s" name;
    b.chans <- { Channel.name; kind; urgent } :: b.chans;
    List.length b.chans - 1

  let add_automaton b a = b.autos <- a :: b.autos

  (* Static checks: see the interface. *)
  let validate_sync ~channels (a : Automaton.t) =
    let check_edge (e : Automaton.edge) =
      let has_clock_guard = e.guard.Guard.clocks <> [] in
      match e.sync with
      | Automaton.NoSync -> ()
      | Automaton.Send c | Automaton.Recv c ->
          let ch : Channel.t = channels.(c) in
          if ch.urgent && has_clock_guard then
            invalid "%s: clock guard on urgent channel %s" a.name ch.name;
          if
            ch.kind = Channel.Broadcast && has_clock_guard
            && e.sync = Automaton.Recv c
          then
            invalid "%s: clock guard on broadcast receiver %s" a.name ch.name
    in
    Array.iter check_edge a.edges

  let build ?(validate = true) b =
    let clock_names = Array.of_list (List.rev b.clocks) in
    let vars = Array.of_list (List.rev b.vars) in
    let var_names = Array.map (fun (n, _, _, _) -> n) vars in
    let var_ranges = Array.map (fun (_, lo, hi, _) -> (lo, hi)) vars in
    let var_init = Array.map (fun (_, _, _, i) -> i) vars in
    let channels = Array.of_list (List.rev b.chans) in
    let automata = Array.of_list (List.rev b.autos) in
    if validate then Array.iter (validate_sync ~channels) automata;
    (* Maximal constants per clock, over all guards, invariants and
       clock-reset values. *)
    let k = Array.make (Array.length clock_names) 0 in
    let scan_guard g =
      for x = 1 to Array.length clock_names - 1 do
        k.(x) <- max k.(x) (Guard.max_constant var_ranges g x)
      done
    in
    let scan_update (u : Update.t) =
      let scan_assign = function
        | Update.Reset_clock (x, e) ->
            let lo, hi = Expr.interval var_ranges e in
            k.(x) <- max k.(x) (max (abs lo) (abs hi))
        | Update.Set_var _ -> ()
      in
      List.iter scan_assign u
    in
    let scan_automaton (a : Automaton.t) =
      Array.iter (fun (l : Automaton.location) -> scan_guard l.invariant)
        a.locations;
      Array.iter
        (fun (e : Automaton.edge) ->
          scan_guard e.guard;
          scan_update e.update)
        a.edges
    in
    Array.iter scan_automaton automata;
    (* Location-based clock activity (Daws-Yovine): backward fixpoint
       per automaton.  active(l) = tested(l) + union over outgoing
       edges e of (tested-by-guard(e) + (active(dst e) minus resets
       of e)). *)
    let n_clocks = Array.length clock_names in
    let guard_clocks (g : Guard.t) =
      List.map (fun (a : Guard.atom) -> a.Guard.clock) g.Guard.clocks
    in
    let reset_clocks (u : Update.t) =
      List.filter_map
        (function
          | Update.Reset_clock (x, _) -> Some x
          | Update.Set_var _ -> None)
        u
    in
    let activity_of (a : Automaton.t) =
      let nl = Array.length a.Automaton.locations in
      let active = Array.init nl (fun _ -> Array.make n_clocks false) in
      let changed = ref true in
      while !changed do
        changed := false;
        Array.iteri
          (fun l (loc : Automaton.location) ->
            let mark x =
              if not active.(l).(x) then begin
                active.(l).(x) <- true;
                changed := true
              end
            in
            List.iter mark (guard_clocks loc.Automaton.invariant);
            List.iter
              (fun ei ->
                let e = a.Automaton.edges.(ei) in
                List.iter mark (guard_clocks e.Automaton.guard);
                let resets = reset_clocks e.Automaton.update in
                Array.iteri
                  (fun x act ->
                    if act && x > 0 && not (List.mem x resets) then mark x)
                  active.(e.Automaton.dst))
              (Automaton.out_edges a l))
          a.Automaton.locations
      done;
      active
    in
    let active = Array.map activity_of automata in
    (* Separate lower/upper maximal constants (for Extra+LU), resolved
       per automaton location by a backward fixpoint in the style of
       [activity_of]: a location's bound for a clock covers every
       constant the clock can still be compared against before its next
       reset along that component.  Lower-bound atoms ([x >(=) c]) feed
       L, upper-bound atoms and invariants feed U, [==] feeds both;
       reset magnitudes are kept in both, matching the classical [k]
       scan.  Per-state bounds are the max over components, which is
       sound for networks (any future guard is some component's future
       guard). *)
    let reset_magnitudes (upd : Update.t) =
      List.filter_map
        (function
          | Update.Reset_clock (x, e) ->
              let lo, hi = Expr.interval var_ranges e in
              Some (x, max (abs lo) (abs hi))
          | Update.Set_var _ -> None)
        upd
    in
    let lu_of (a : Automaton.t) =
      let nl = Array.length a.Automaton.locations in
      let l = Array.init nl (fun _ -> Array.make n_clocks 0) in
      let u = Array.init nl (fun _ -> Array.make n_clocks 0) in
      let changed = ref true in
      let bump arr li x c =
        if c > arr.(li).(x) then begin
          arr.(li).(x) <- c;
          changed := true
        end
      in
      let scan_atoms li (g : Guard.t) =
        List.iter
          (fun (at : Guard.atom) ->
            let lo, hi = Expr.interval var_ranges at.Guard.bound in
            let c = max (abs lo) (abs hi) in
            match at.Guard.rel with
            | Guard.Ge | Guard.Gt -> bump l li at.Guard.clock c
            | Guard.Le | Guard.Lt -> bump u li at.Guard.clock c
            | Guard.Eq ->
                bump l li at.Guard.clock c;
                bump u li at.Guard.clock c)
          g.Guard.clocks
      in
      while !changed do
        changed := false;
        Array.iteri
          (fun li (loc : Automaton.location) ->
            scan_atoms li loc.Automaton.invariant;
            List.iter
              (fun ei ->
                let e = a.Automaton.edges.(ei) in
                scan_atoms li e.Automaton.guard;
                List.iter
                  (fun (x, c) ->
                    bump l li x c;
                    bump u li x c)
                  (reset_magnitudes e.Automaton.update);
                let resets = reset_clocks e.Automaton.update in
                for x = 1 to n_clocks - 1 do
                  if not (List.mem x resets) then begin
                    bump l li x l.(e.Automaton.dst).(x);
                    bump u li x u.(e.Automaton.dst).(x)
                  end
                done)
              (Automaton.out_edges a li))
          a.Automaton.locations
      done;
      (* fall back to per-network (one shared row) when the
         location-resolved table would be large: the lookup stays O(1)
         and memory stays bounded for generated giants *)
      if nl * n_clocks > 65536 then begin
        let lmax = Array.make n_clocks 0 and umax = Array.make n_clocks 0 in
        Array.iter
          (fun row ->
            Array.iteri (fun x c -> if c > lmax.(x) then lmax.(x) <- c) row)
          l;
        Array.iter
          (fun row ->
            Array.iteri (fun x c -> if c > umax.(x) then umax.(x) <- c) row)
          u;
        (Array.make nl lmax, Array.make nl umax)
      end
      else (l, u)
    in
    let lu = Array.map lu_of automata in
    {
      automata;
      clock_names;
      var_names;
      var_ranges;
      var_init;
      channels;
      k;
      lbase = Array.make n_clocks 0;
      ubase = Array.make n_clocks 0;
      lloc = Array.map fst lu;
      uloc = Array.map snd lu;
      active;
      pinned = Array.make n_clocks false;
    }
end
