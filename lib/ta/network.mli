(** Networks of timed automata: the parallel composition the checker
    explores.

    A network owns the global clock set (index [0] is the reference
    clock), the bounded integer variables, the channels and the
    component automata.  {!Builder} is the only way to construct one;
    it performs the static checks that keep the symbolic semantics
    sound:

    - edges synchronizing on an urgent channel carry no clock guards;
    - receiving edges of broadcast channels carry no clock guards;
    - guards are diagonal-free by construction ({!Guard.t}).

    [build] also derives the per-clock maximal constants used for zone
    extrapolation from every guard, invariant and reset in the model;
    queries that compare clocks against further constants must register
    them with {!bump_clock_bound}. *)

type t = {
  automata : Automaton.t array;
  clock_names : string array;
  var_names : string array;
  var_ranges : (int * int) array;
  var_init : int array;
  channels : Channel.t array;
  k : int array;  (** classical (ExtraM) extrapolation constants, [k.(0) = 0] *)
  lbase : int array;
      (** per-clock global floor of the lower-bound constants L; query
          constants registered with {!bump_clock_bound} land here *)
  ubase : int array;  (** same for the upper-bound constants U *)
  lloc : int array array array;
      (** [lloc.(comp).(loc).(clock)]: largest constant a lower-bound
          guard can still compare the clock against before its next
          reset, from this component location on (backward fixpoint);
          the per-state L bound is the max over components, then over
          {!lbase}.  Feeds Extra+LU. *)
  uloc : int array array array;  (** same for upper-bound guards/invariants *)
  active : bool array array array;
      (** [active.(comp).(loc).(clock)]: location-based clock activity
          (Daws-Yovine): a clock is active at a location when some path
          from it can test the clock before resetting it.  The checker
          normalizes inactive clocks to 0, collapsing zones that differ
          only in dead clock values. *)
  pinned : bool array;
      (** clocks observed from outside the model (query clocks); always
          treated as active *)
}

exception Invalid_model of string

val n_clocks : t -> int
(** Number of real clocks (excluding the reference clock). *)

val n_components : t -> int

val bump_clock_bound : t -> Guard.clock -> int -> t
(** [bump_clock_bound net x c] returns a network whose extrapolation
    constants for [x] (classical [k] and both LU floors) are at least
    [c] and which pins [x] as always active (queries observe it);
    shares everything else. *)

val component_index : t -> string -> int
(** @raise Not_found on unknown automaton name. *)

val clock_index : t -> string -> Guard.clock
val var_index : t -> string -> Expr.var

val pp_locs : t -> Format.formatter -> int array -> unit
(** Print a location vector as [RAD.idle | BUS.sending ...]. *)

module Builder : sig
  type network = t
  type b

  val create : unit -> b

  val clock : b -> string -> Guard.clock
  (** Declare a clock; names must be unique. *)

  val int_var : b -> string -> lo:int -> hi:int -> init:int -> Expr.var
  val channel : b -> string -> Channel.kind -> urgent:bool -> Channel.id
  val add_automaton : b -> Automaton.t -> unit

  val build : ?validate:bool -> b -> network
  (** @raise Invalid_model when a static check fails.  [~validate:false]
      skips the urgent/broadcast clock-guard checks and is meant for
      the static analyzer only ({!Ita_analysis.Lint} reports the same
      conditions as error diagnostics): a network built that way must
      not be handed to the symbolic semantics. *)
end
