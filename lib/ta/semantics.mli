(** Symbolic (zone-graph) semantics of a network, following UPPAAL:

    - a symbolic configuration is [(location vector, integer valuation,
      zone)], with the zone already delay-closed and constrained by the
      active invariants;
    - delay is forbidden while some component is in an urgent or
      committed location, or some urgent-channel synchronization is
      enabled (such edges carry no clock guards, so enabledness only
      depends on the discrete part);
    - while some component is in a committed location, only transitions
      leaving a committed location may fire;
    - after each discrete step the zone is delay-closed (unless delay
      is forbidden), re-constrained by invariants and extrapolated with
      the network's maximal constants. *)

module Dbm = Ita_dbm.Dbm

type state = { locs : int array; env : int array }
(** The discrete part of a configuration. *)

type config = { state : state; zone : Dbm.t }

type abstraction = ExtraM | ExtraLU | LuSim
    (** Which finite abstraction the exploration applies to zones.
        [ExtraM] is classical maximal-constant extrapolation with one
        bound per clock ([Network.k]); [ExtraLU] is Extra+LU over the
        static lower/upper bounds analysis ([Network.lloc]/[uloc] with
        the [lbase]/[ubase] floors) — coarser, hence fewer symbolic
        states, with identical reachability verdicts on the
        diagonal-free automata this library builds.  [LuSim] stores
        zones {e unextrapolated} (delay-closure rewrites nothing) and
        relies on the passed list subsuming with the a◁LU simulation
        test ({!Dbm.le_lu}) over the same L/U constants — strictly
        coarser than Extra+LU inclusion, again with identical verdicts.
        Exact zones also make witness traces exact.  Finiteness of the
        exploration is then a property of the passed list, not of the
        zone set: an exploration that stores [LuSim] zones must subsume
        with [Dbm.le_lu], as [Ita_mc.Reach] does. *)

type reduction = None | Active
    (** Active-clock reduction (Daws–Yovine).  Under [Active]
        delay-closure pins every clock that is inactive in the current
        location vector ([Network.active], minus [Network.pinned]) to
        [0], so zones differing only in dead clock values coincide —
        a sound reduction: an inactive clock is reset before it is
        next tested, hence its value cannot influence any future guard
        or invariant.  [None] keeps dead clock values, which can only
        enlarge (never change the verdicts of) the explored zone
        graph; it is the differential-testing oracle for [Active].
        An exploration must use one reduction for all configurations
        it builds. *)

type label =
  | Internal of { comp : int; edge : int }
  | Sync of {
      chan : Channel.id;
      sender : int * int;  (** component, edge *)
      receivers : (int * int) list;
    }

val state_equal : state -> state -> bool
val state_hash : state -> int

val lu_bounds : Network.t -> state -> int array * int array
(** [lu_bounds net st] resolves the per-clock Extra+LU constants in
    discrete state [st]: per-location maxima over the components
    ([Network.lloc]/[uloc]), floored by [lbase]/[ubase].  Freshly
    allocated; index [0] is [0].  These are the vectors the [ExtraLU]
    abstraction extrapolates with and the [LuSim] passed list feeds to
    {!Dbm.le_lu}. *)

val initial : ?abstraction:abstraction -> ?reduction:reduction -> Network.t -> config
(** Defaults: [ExtraLU] abstraction, [Active] reduction.  An
    exploration must use the same abstraction for every configuration
    it builds. *)

val delay_allowed : Network.t -> state -> bool

val successors :
  ?abstraction:abstraction ->
  ?reduction:reduction ->
  Network.t ->
  config ->
  (label * config) list
(** All symbolic successors, in deterministic order.  Configurations
    with empty zones are filtered out.

    Domain-safety contract: [initial] and [successors] are pure — they
    read the (immutable) network, never mutate the input configuration,
    and return freshly allocated zones that share no mutable state with
    the input.  The parallel exploration engine
    ([Ita_mc.Reach] with [domains > 1]) relies on this to call them
    concurrently from several domains without synchronisation; any
    future caching added here must be domain-safe.

    @raise Update.Out_of_range on a
    variable-range violation (a modeling error). *)

val zone_of_goal :
  Network.t -> config -> Guard.t -> comp_locs:(int * int) list -> Dbm.t option
(** [zone_of_goal net c g ~comp_locs] is [Some z] when configuration
    [c] intersects the goal "components are at the given locations and
    [g] holds", where [z] is that non-empty intersection; [None]
    otherwise.  Used by reachability queries. *)

val pp_label : Network.t -> Format.formatter -> label -> unit
val pp_state : Network.t -> Format.formatter -> state -> unit
