module Dbm = Ita_dbm.Dbm

type state = { locs : int array; env : int array }
type config = { state : state; zone : Dbm.t }
type abstraction = ExtraM | ExtraLU | LuSim
type reduction = None | Active

type label =
  | Internal of { comp : int; edge : int }
  | Sync of {
      chan : Channel.id;
      sender : int * int;
      receivers : (int * int) list;
    }

(* The checker interns discrete states, so most live comparisons hit
   the physical short-circuit. *)
let state_equal s1 s2 = s1 == s2 || (s1.locs = s2.locs && s1.env = s2.env)
let state_hash s = Hashtbl.hash (s.locs, s.env)

let loc_kind (net : Network.t) st i =
  (Automaton.location net.automata.(i) st.locs.(i)).Automaton.kind

let any_committed net st =
  let n = Array.length st.locs in
  let rec go i = i < n && (loc_kind net st i = Automaton.Committed || go (i + 1)) in
  go 0

let any_urgent_loc net st =
  let n = Array.length st.locs in
  let rec go i = i < n && (loc_kind net st i = Automaton.Urgent || go (i + 1)) in
  go 0

(* Is some urgent-channel synchronization enabled in the discrete state?
   Urgent edges have no clock guards (checked at build time), so this
   only inspects data guards. *)
let urgent_sync_enabled (net : Network.t) st =
  let n = Array.length net.automata in
  let data_enabled (e : Automaton.edge) = Guard.data_holds st.env e.guard in
  let edge_with i pred =
    let a = net.automata.(i) in
    List.exists
      (fun ei ->
        let e = Automaton.edge a ei in
        pred e && data_enabled e)
      (Automaton.out_edges a st.locs.(i))
  in
  let chan_enabled c (ch : Channel.t) =
    ch.urgent
    &&
    let sender_at i = edge_with i (fun e -> e.sync = Automaton.Send c) in
    let receiver_at i = edge_with i (fun e -> e.sync = Automaton.Recv c) in
    match ch.kind with
    | Channel.Broadcast ->
        let rec go i = i < n && (sender_at i || go (i + 1)) in
        go 0
    | Channel.Binary ->
        let rec go i =
          i < n
          && ((sender_at i
              && (let rec har j =
                    j < n && (((j <> i) && receiver_at j) || har (j + 1))
                  in
                  har 0))
             || go (i + 1))
        in
        go 0
  in
  let found = ref false in
  Array.iteri (fun c ch -> if (not !found) && chan_enabled c ch then found := true)
    net.channels;
  !found

let delay_allowed net st =
  (not (any_committed net st))
  && (not (any_urgent_loc net st))
  && not (urgent_sync_enabled net st)

let apply_invariants (net : Network.t) st z =
  Array.iteri
    (fun i l ->
      let inv = (Automaton.location net.automata.(i) l).Automaton.invariant in
      if inv.Guard.clocks <> [] then Guard.apply st.env inv z)
    st.locs

(* Clocks inactive at every component's current location carry no
   information: pin them to 0 so that zones differing only in dead
   clocks coincide (active-clock reduction). *)
let normalize_inactive (net : Network.t) st z =
  let n = Array.length net.Network.clock_names in
  let n_comp = Array.length net.Network.automata in
  for x = 1 to n - 1 do
    if not net.Network.pinned.(x) then begin
      let rec live i =
        i < n_comp
        && (net.Network.active.(i).(st.locs.(i)).(x) || live (i + 1))
      in
      if not (live 0) then Dbm.reset z x 0
    end
  done

(* Resolve the per-state Extra+LU constants: the bound for a clock is
   the max over components of the location-indexed static analysis,
   floored by the network-wide base (where query constants live).
   Shared by the Extra+LU extrapolation and the a◁LU subsumption test
   (which consumes the same vectors but never rewrites the zone). *)
let lu_bounds (net : Network.t) st =
  let n = Array.length net.Network.clock_names in
  let l = Array.copy net.Network.lbase in
  let u = Array.copy net.Network.ubase in
  Array.iteri
    (fun i li ->
      let ll = net.Network.lloc.(i).(li) and uu = net.Network.uloc.(i).(li) in
      for x = 1 to n - 1 do
        if ll.(x) > l.(x) then l.(x) <- ll.(x);
        if uu.(x) > u.(x) then u.(x) <- uu.(x)
      done)
    st.locs;
  (l, u)

(* Extrapolate [z] with the abstraction in force.  Under [LuSim] the
   stored zones stay unextrapolated — finiteness comes from the passed
   list subsuming with {!Dbm.le_lu} instead. *)
let extrapolate (net : Network.t) abstraction st z =
  match abstraction with
  | ExtraM -> Dbm.extrapolate z net.Network.k
  | ExtraLU ->
      let l, u = lu_bounds net st in
      Dbm.extrapolate_lu z l u
  | LuSim -> ()

(* Delay-close [z] in discrete state [st]: up, then invariants, then
   extrapolation.  [z] must already satisfy the invariants. *)
let delay_close net abstraction reduction st z =
  if delay_allowed net st then begin
    Dbm.up z;
    apply_invariants net st z
  end;
  extrapolate net abstraction st z;
  match reduction with None -> () | Active -> normalize_inactive net st z

let initial ?(abstraction = ExtraLU) ?(reduction = Active) (net : Network.t) =
  let locs = Array.map (fun (a : Automaton.t) -> a.initial) net.automata in
  let env = Array.copy net.var_init in
  let st = { locs; env } in
  let z = Dbm.zero (Network.n_clocks net) in
  apply_invariants net st z;
  delay_close net abstraction reduction st z;
  { state = st; zone = z }

(* One discrete step: [parts] is the ordered list of participating
   (component, edge) pairs, the sender first.  Returns [None] when the
   step is disabled by clock guards or the target invariants. *)
let fire (net : Network.t) abstraction reduction c parts =
  let z = Dbm.copy c.zone in
  (* clock guards are evaluated under the pre-update environment *)
  List.iter
    (fun (i, ei) ->
      let e = Automaton.edge net.automata.(i) ei in
      Guard.apply c.state.env e.guard z)
    parts;
  if Dbm.is_empty z then Option.None
  else begin
    let env = Array.copy c.state.env in
    let locs = Array.copy c.state.locs in
    List.iter
      (fun (i, ei) ->
        let e = Automaton.edge net.automata.(i) ei in
        Update.apply ~ranges:net.var_ranges env z e.update;
        locs.(i) <- e.dst)
      parts;
    let st = { locs; env } in
    apply_invariants net st z;
    if Dbm.is_empty z then Option.None
    else begin
      delay_close net abstraction reduction st z;
      if Dbm.is_empty z then Option.None else Some { state = st; zone = z }
    end
  end

let successors ?(abstraction = ExtraLU) ?(reduction = Active) (net : Network.t)
    c =
  let st = c.state in
  let n = Array.length net.automata in
  let committed = any_committed net st in
  let committed_ok parts =
    (not committed)
    || List.exists
         (fun (i, ei) ->
           let e = Automaton.edge net.automata.(i) ei in
           (Automaton.location net.automata.(i) e.Automaton.src).Automaton.kind
           = Automaton.Committed)
         parts
  in
  let data_enabled (i, ei) =
    Guard.data_holds st.env (Automaton.edge net.automata.(i) ei).Automaton.guard
  in
  let acc = ref [] in
  let emit label parts =
    if committed_ok parts then
      match fire net abstraction reduction c parts with
      | Some c' -> acc := (label, c') :: !acc
      | None -> ()
  in
  (* internal transitions *)
  for i = 0 to n - 1 do
    let a = net.automata.(i) in
    List.iter
      (fun ei ->
        let e = Automaton.edge a ei in
        if e.sync = Automaton.NoSync && data_enabled (i, ei) then
          emit (Internal { comp = i; edge = ei }) [ (i, ei) ])
      (Automaton.out_edges a st.locs.(i))
  done;
  (* synchronizations, channel by channel *)
  let edges_on i pred =
    let a = net.automata.(i) in
    List.filter
      (fun ei -> pred (Automaton.edge a ei) && data_enabled (i, ei))
      (Automaton.out_edges a st.locs.(i))
  in
  Array.iteri
    (fun ch (chan : Channel.t) ->
      match chan.kind with
      | Channel.Binary ->
          for i = 0 to n - 1 do
            let sends = edges_on i (fun e -> e.sync = Automaton.Send ch) in
            if sends <> [] then
              for j = 0 to n - 1 do
                if j <> i then
                  let recvs = edges_on j (fun e -> e.sync = Automaton.Recv ch) in
                  List.iter
                    (fun se ->
                      List.iter
                        (fun re ->
                          emit
                            (Sync
                               {
                                 chan = ch;
                                 sender = (i, se);
                                 receivers = [ (j, re) ];
                               })
                            [ (i, se); (j, re) ])
                        recvs)
                    sends
              done
          done
      | Channel.Broadcast ->
          for i = 0 to n - 1 do
            let sends = edges_on i (fun e -> e.sync = Automaton.Send ch) in
            List.iter
              (fun se ->
                (* every other component that can receive must receive;
                   multiple enabled receiving edges in one component are a
                   nondeterministic choice, hence the cartesian product *)
                let choices = ref [ [] ] in
                for j = n - 1 downto 0 do
                  if j <> i then
                    let recvs = edges_on j (fun e -> e.sync = Automaton.Recv ch) in
                    if recvs <> [] then
                      choices :=
                        List.concat_map
                          (fun rest ->
                            List.map (fun re -> (j, re) :: rest) recvs)
                          !choices
                done;
                List.iter
                  (fun recvs ->
                    emit
                      (Sync { chan = ch; sender = (i, se); receivers = recvs })
                      ((i, se) :: recvs))
                  !choices)
              sends
          done)
    net.channels;
  List.rev !acc

let zone_of_goal (_net : Network.t) c g ~comp_locs =
  let at_locs =
    List.for_all (fun (i, l) -> c.state.locs.(i) = l) comp_locs
  in
  if (not at_locs) || not (Guard.data_holds c.state.env g) then Option.None
  else begin
    let z = Dbm.copy c.zone in
    Guard.apply c.state.env g z;
    if Dbm.is_empty z then Option.None else Some z
  end

let pp_label (net : Network.t) ppf = function
  | Internal { comp; edge } ->
      let a = net.automata.(comp) in
      let e = Automaton.edge a edge in
      Format.fprintf ppf "%s: %s -> %s" a.Automaton.name
        (Automaton.location a e.Automaton.src).Automaton.loc_name
        (Automaton.location a e.Automaton.dst).Automaton.loc_name
  | Sync { chan; sender = (i, _); receivers } ->
      let ch = net.channels.(chan) in
      Format.fprintf ppf "%s! by %s (%d receivers)" ch.Channel.name
        net.automata.(i).Automaton.name
        (List.length receivers)

let pp_state (net : Network.t) ppf st =
  Network.pp_locs net ppf st.locs;
  Format.fprintf ppf "  {";
  Array.iteri
    (fun v x ->
      if v > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%s=%d" net.var_names.(v) x)
    st.env;
  Format.fprintf ppf "}"
