(** Naive reference semantics for certificate checking.

    A deliberate re-implementation of the symbolic successor relation
    from the network definition alone — plain DBM operations, no
    extrapolation, no active-clock reduction, no interning, no slicing,
    no sharding — so an independent certificate checker
    ({!Ita_cert.Cert}) shares nothing with the optimized exploration
    path beyond the model representation and [Dbm.le_lu].

    The {!mask} describes what a query-directed slice removed, without
    exposing how the slicer decided: frozen components never move,
    removed clocks are unconstrained and exempt from guard-domination
    obligations, frozen variables hold their initial values.  Every
    masked operation over-approximates the corresponding real projected
    behavior (more transitions, more permissive delay), which is the
    direction certificate soundness needs. *)

module Dbm = Ita_dbm.Dbm

type state = Semantics.state = { locs : int array; env : int array }
type label = Semantics.label

type mask = {
  frozen_comps : bool array;
  removed_clocks : bool array;
  frozen_vars : bool array;
}

val no_mask : Network.t -> mask
(** The trivial mask: nothing frozen, nothing removed. *)

val apply_invariants : Network.t -> mask -> state -> Dbm.t -> unit
(** Intersect with the invariants of the unmasked components, bounds
    evaluated under the state's environment. *)

val inv_zone : Network.t -> mask -> state -> Dbm.t
(** The universal zone narrowed by the unmasked invariants at the
    state's locations. *)

val delay_allowed : Network.t -> mask -> state -> bool
(** Whether time may elapse, judged over the unmasked components only
    (committed/urgent locations, enabled urgent synchronizations).
    Over-approximates the real system's delay permission. *)

val delay : Network.t -> mask -> state -> Dbm.t -> Dbm.t
(** Exact time elapse on a copy: up, then the unmasked invariants.  No
    extrapolation. *)

type joint = { label : label; parts : (int * int) list }
(** A joint transition: its label and the ordered participating
    (component, edge) pairs, sender first. *)

val joint_transitions : Network.t -> mask -> state -> joint list
(** All joint transitions of the unmasked components whose data guards
    hold, under the committed restriction judged over unmasked
    components. *)

val fire :
  Network.t -> mask -> state -> Dbm.t -> (int * int) list -> (state * Dbm.t) option
(** One exact discrete step from a zone: participating clock guards
    under the pre-update environment, sequential updates, target
    unmasked invariants.  No delay, no abstraction.  [None] when
    disabled (empty zone or out-of-range update). *)

val initial : Network.t -> mask -> state * Dbm.t
(** The exact initial configuration (all clocks zero, narrowed by the
    unmasked invariants); no delay taken. *)

(** {1 Exact witness replay (full network)} *)

val initial_exact : Network.t -> state * Dbm.t
(** The initial configuration of the full network with exact delay
    closure. *)

val real_parts : Network.t -> state -> label -> (int * int) list list
(** All real participant lists matching a claimed label at a state:
    validates participants and the committed restriction, and completes
    broadcast receiver lists with every further component that can
    receive (each edge choice a distinct completion).  Empty when the
    label is not a real transition there. *)

val step_exact :
  Network.t -> (state * Dbm.t) list -> label -> (state * Dbm.t) list
(** Advance a candidate set by one labelled step with exact delay
    closure; drops disabled candidates. *)
