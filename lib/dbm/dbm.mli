(** Difference Bound Matrices: the canonical symbolic representation of
    clock zones used by zone-based timed-automata model checkers.

    A DBM over [n] clocks is an [(n+1) x (n+1)] matrix of {!Bound.t}
    where entry [(i, j)] constrains [x_i - x_j]; index [0] is the
    constant reference clock whose value is always [0].  All operations
    below keep the matrix in canonical (all-pairs-shortest-path closed)
    form, so inclusion and equality are pointwise.

    DBMs are mutable for performance; operations that logically produce
    a new zone mutate in place unless documented otherwise.  Use
    {!copy} before a destructive call when the original is still
    needed. *)

type t

val dim : t -> int
(** Number of rows/columns, i.e. number of clocks + 1. *)

val zero : int -> t
(** [zero n] is the zone over [n] clocks where every clock equals [0]
    (the initial zone of a timed automaton). *)

val universal : int -> t
(** [universal n] is the zone where every clock ranges over [0, +oo). *)

val copy : t -> t

val is_empty : t -> bool
(** A canonical DBM is empty iff its diagonal got negative; all
    mutators below re-canonicalize, so this is O(1). *)

val get : t -> int -> int -> Bound.t
(** [get z i j] is the canonical bound on [x_i - x_j]. *)

val up : t -> unit
(** Time elapse (UPPAAL's "up"): remove all upper bounds on clocks,
    keeping differences.  Preserves canonicity. *)

val constrain : t -> int -> int -> Bound.t -> unit
(** [constrain z i j b] intersects with [x_i - x_j (< or <=) c].
    Re-canonicalizes incrementally in O(dim^2).  May empty the zone. *)

val reset : t -> int -> int -> unit
(** [reset z i v] sets clock [i] to the non-negative constant [v]. *)

val free : t -> int -> unit
(** [free z i] removes all constraints on clock [i] except [x_i >= 0]. *)

val intersect : t -> t -> unit
(** [intersect z z'] narrows [z] to the intersection with [z']. *)

val subset : t -> t -> bool
(** [subset z z'] iff every valuation of [z] belongs to [z'].  Both
    arguments must be canonical (which this module guarantees). *)

val equal : t -> t -> bool
val hash : t -> int

val compare : t -> t -> int
(** Total order on zones: dimension first, every empty zone below every
    non-empty one, then lexicographic on the encoded entries.  The
    bound encoding is value-monotone and process-independent, so the
    order is stable across runs — certificate emission uses it to
    produce byte-identical artifacts regardless of exploration
    schedule. *)

val to_encoded : t -> int * int array
(** [(dim, entries)] with [entries] a fresh flat row-major copy of the
    encoded {!Bound.t} matrix; the exchange format of certificates. *)

val of_encoded : int -> int array -> t
(** [of_encoded dim entries] rebuilds a zone from {!to_encoded} output.
    The entries are {e not} trusted to be canonical: the result is
    re-closed, so the pointwise operations are sound on it even when
    the producer lied.  @raise Invalid_argument on a length/dimension
    mismatch. *)

val extrapolate : t -> int array -> unit
(** [extrapolate z k] applies classical maximal-constant abstraction
    (ExtraM): bounds larger than [k.(i)] become [+oo] and lower bounds
    beyond [-k.(j)] are relaxed to [< -k.(j)].  [k.(0)] must be [0].
    Sound for diagonal-free timed automata; the result is
    re-canonicalized. *)

val extrapolate_lu : t -> int array -> int array -> unit
(** [extrapolate_lu z l u] applies Extra+LU — the coarser abstraction
    based on separate lower/upper maximal constants (Behrmann et al.;
    Bouyer et al.'s survey "Zone-based verification of timed automata:
    extrapolations, simulations and what next?", 2022) — in place, with
    the same re-canonicalizing contract as {!extrapolate}.  [l.(i)] is
    the largest constant any lower-bound guard ([x_i >(=) c]) compares
    [x_i] against, [u.(i)] the same for upper-bound guards; both must
    have index [0] equal to [0].  Includes the diagonal-aware
    refinement: bounds are also dropped when the zone as a whole lies
    strictly above [l.(i)] (resp. [u.(j)]).  Sound only for
    diagonal-free automata; strictly coarser than (or equal to)
    {!extrapolate} with [k = max l u]. *)

val le_lu : int array -> int array -> t -> t -> bool
(** [le_lu l u z z'] decides [z ⊆ a◁LU(z')] — the LU-simulation
    subsumption on {e unextrapolated} zones (Behrmann et al.; Bouyer et
    al.'s survey, 2022).  [l]/[u] are per-clock lower/upper maximal
    guard constants with index [0] equal to [0], exactly as for
    {!extrapolate_lu}.  The test is per-entry over both canonical
    arguments, mutates nothing and allocates nothing.  It is reflexive
    and transitive, implies language inclusion of the corresponding
    symbolic states, and is coarser than {!subset} after
    {!extrapolate_lu}: whenever [subset (extrapolate_lu z)
    (extrapolate_lu z')] holds on copies, [le_lu l u z z'] holds on the
    originals.  Empty [z] is below everything; nothing non-empty is
    below an empty [z']. *)

val sup : t -> int -> Bound.t
(** [sup z i] is the least upper bound of clock [i] over the zone
    ([Bound.infinity] when unbounded). *)

val inf : t -> int -> Bound.t
(** [inf z i] is the bound on [-x_i], i.e. [(c, ~)] means
    [x_i >(=) -c]; the greatest lower bound of clock [i] is [-c]. *)

val satisfies : t -> int array -> bool
(** [satisfies z v] tests membership of the concrete valuation [v]
    (with [v.(0) = 0]); used as a testing oracle. *)

val delay_ordered : t -> int array -> int -> int array option
(** [delay_ordered z v d] is [Some (v + d)] when delaying the valuation
    [v] by [d] stays in [z], [None] otherwise; testing helper. *)

val pp : Format.formatter -> t -> unit
(** Human-readable conjunction of the non-trivial constraints. *)
