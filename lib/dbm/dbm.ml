type t = { n : int; m : int array }
(* [m] is a flat [n * n] array of encoded {!Bound.t}; entry [i*n + j]
   bounds [x_i - x_j].  Kept canonical: m.(i*n+j) <= m.(i*n+k) + m.(k*n+j)
   for all i j k, unless the zone is empty, which is flagged by a
   negative diagonal entry at (0, 0). *)

let dim z = z.n

let zero n =
  let n = n + 1 in
  { n; m = Array.make (n * n) (Bound.zero_le :> int) }

let universal n =
  let n = n + 1 in
  let inf = (Bound.infinity :> int) and z0 = (Bound.zero_le :> int) in
  let m = Array.make (n * n) inf in
  for j = 0 to n - 1 do
    m.(j) <- z0;
    (* row 0: -x_j <= 0 *)
    m.((j * n) + j) <- z0
  done;
  { n; m }

let copy z = { z with m = Array.copy z.m }
let is_empty z = z.m.(0) < (Bound.zero_le :> int)
let get z i j : Bound.t = Bound.of_encoded z.m.((i * z.n) + j)
let bset z i j (b : Bound.t) = z.m.((i * z.n) + j) <- (b :> int)
let mark_empty z = z.m.(0) <- (Bound.lt 0 :> int)

(* Full Floyd-Warshall closure; O(n^3).  Used after extrapolation and
   intersection; single-constraint updates use the O(n^2) incremental
   variant in [constrain]. *)
let close z =
  let n = z.n and m = z.m in
  try
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        let ik = m.((i * n) + k) in
        if ik <> (Bound.infinity :> int) then
          for j = 0 to n - 1 do
            let v =
              (Bound.add (Bound.of_encoded ik)
                 (Bound.of_encoded m.((k * n) + j))
                :> int)
            in
            if v < m.((i * n) + j) then m.((i * n) + j) <- v
          done
      done;
      for i = 0 to n - 1 do
        if m.((i * n) + i) < (Bound.zero_le :> int) then raise Exit
      done
    done
  with Exit -> mark_empty z

let up z =
  let inf = (Bound.infinity :> int) in
  if not (is_empty z) then
    for i = 1 to z.n - 1 do
      z.m.(i * z.n) <- inf
    done

let constrain z i j b =
  if not (is_empty z) then
    if Bound.lt_bound b (get z i j) then
      if Bound.lt_bound (Bound.add b (get z j i)) Bound.zero_le then
        mark_empty z
      else begin
        bset z i j b;
        let n = z.n and m = z.m in
        (* tighten every pair through the new edge (i, j) *)
        for p = 0 to n - 1 do
          let pi = get z p i in
          if not (Bound.is_infinity pi) then begin
            let via = Bound.add pi b in
            for q = 0 to n - 1 do
              let cand = (Bound.add via (get z j q) :> int) in
              if cand < m.((p * n) + q) then m.((p * n) + q) <- cand
            done
          end
        done
      end

let reset z i v =
  assert (v >= 0);
  if not (is_empty z) then begin
    let bv = Bound.le v and bnv = Bound.le (-v) in
    for j = 0 to z.n - 1 do
      if j <> i then begin
        bset z i j (Bound.add bv (get z 0 j));
        bset z j i (Bound.add (get z j 0) bnv)
      end
    done;
    bset z i i Bound.zero_le
  end

let free z i =
  if not (is_empty z) then begin
    for j = 0 to z.n - 1 do
      if j <> i then begin
        bset z i j Bound.infinity;
        bset z j i (get z j 0)
      end
    done;
    bset z i 0 Bound.infinity;
    bset z 0 i Bound.zero_le
  end

let intersect z z' =
  assert (z.n = z'.n);
  if is_empty z' then mark_empty z
  else if not (is_empty z) then begin
    let changed = ref false in
    for k = 0 to Array.length z.m - 1 do
      if z'.m.(k) < z.m.(k) then begin
        z.m.(k) <- z'.m.(k);
        changed := true
      end
    done;
    if !changed then close z
  end

let subset z z' =
  assert (z.n = z'.n);
  is_empty z
  || ((not (is_empty z'))
     &&
     let ok = ref true in
     let k = ref 0 in
     let len = Array.length z.m in
     while !ok && !k < len do
       if z.m.(!k) > z'.m.(!k) then ok := false;
       incr k
     done;
     !ok)

let equal z z' =
  z.n = z'.n
  &&
  if is_empty z then is_empty z'
  else (not (is_empty z')) && z.m = z'.m

let hash z = if is_empty z then 0 else Hashtbl.hash z.m

let extrapolate z k =
  assert (Array.length k = z.n && k.(0) = 0);
  if not (is_empty z) then begin
    let changed = ref false in
    for i = 0 to z.n - 1 do
      for j = 0 to z.n - 1 do
        if i <> j then begin
          let b = get z i j in
          if not (Bound.is_infinity b) then
            if Bound.lt_bound (Bound.le k.(i)) b then begin
              bset z i j Bound.infinity;
              changed := true
            end
            else if Bound.lt_bound b (Bound.lt (-k.(j))) then begin
              bset z i j (Bound.lt (-k.(j)));
              changed := true
            end
        end
      done
    done;
    if !changed then close z
  end

(* Extra+LU (Behrmann et al., "Lower and upper bounds in zone-based
   abstractions of timed automata"): like [extrapolate] but with
   separate lower (L) and upper (U) maximal constants, plus the
   diagonal-aware refinement that consults the zone's position — the
   original row 0 — before deciding: once the zone lies entirely above
   L(x_i), no lower-bound guard on [x_i] can tell members apart, so
   every bound involving [x_i] as minuend is dead; likewise a zone
   entirely above U(x_j) satisfies no upper-bound guard on [x_j].
   Sound for diagonal-free automata only (which {!Guard.t} enforces by
   construction). *)
let extrapolate_lu z l u =
  assert (Array.length l = z.n && Array.length u = z.n);
  assert (l.(0) = 0 && u.(0) = 0);
  if not (is_empty z) then begin
    let n = z.n in
    (* the conditions below read the *original* c_{0j} entries; row 0
       itself is rewritten by the i = 0 case, so snapshot it first *)
    let row0 = Array.sub z.m 0 n in
    let above_l j = row0.(j) < (Bound.lt (-l.(j)) :> int) in
    let above_u j = row0.(j) < (Bound.lt (-u.(j)) :> int) in
    let changed = ref false in
    for i = 1 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          let b = get z i j in
          if
            (not (Bound.is_infinity b))
            && (Bound.lt_bound (Bound.le l.(i)) b
               || above_l i
               || (j > 0 && above_u j))
          then begin
            bset z i j Bound.infinity;
            changed := true
          end
        end
      done
    done;
    for j = 1 to n - 1 do
      (* lower bounds of x_j relax to (< -U(x_j)) once the zone sits
         strictly above U(x_j) *)
      if above_u j then begin
        bset z 0 j (Bound.lt (-u.(j)));
        changed := true
      end
    done;
    if !changed then close z
  end

(* [le_lu l u z z'] decides Z ⊆ a◁LU(Z') — the simulation-based
   subsumption of Behrmann et al. / Herbreteau et al., where
   a◁LU(W) = { v | ∃ w ∈ W, ∀x. (v x > w x ⟹ w x > L x)
                             ∧ (v x < w x ⟹ v x > U x) }.

   For v ∈ Z the witness set { w | w ◁LU-simulates v } is a per-clock
   box: lower edge (0,x) = (≤,-v x) if v x ≤ L x else (<, -L x); upper
   edge (y,0) = (≤, v y) if v y ≤ U y else absent.  Z ⊄ a◁LU(Z') iff
   some v ∈ Z makes Z' ∩ box(v) empty, i.e. creates a negative cycle
   lower_x + Z'_{xy} + upper_y (pairs with x or y = 0 cover the
   one-new-edge cycles, since L 0 = U 0 = 0 makes the reference-clock
   edges (≤,0)).  Quantifier elimination over v x, v y collapses this,
   for each pair (x,y) with Z'_{xy} = (c',≺') finite, to feasibility of
   proj_{x,y}(Z) ∩ { v y ≤ min (U y) (L x - c') } ∩ { v y - v x ≺'⁻ -c' }
   — a 3-node constraint graph whose only cycles through the two new
   edges (both leave node y, so no simple cycle uses both) are the four
   sums tested below.  No mutation, no allocation. *)
let le_lu l u z z' =
  assert (z.n = z'.n);
  assert (Array.length l = z.n && Array.length u = z.n);
  assert (l.(0) = 0 && u.(0) = 0);
  is_empty z
  || ((not (is_empty z'))
     &&
     let n = z.n in
     let feasible b = not (Bound.lt_bound b Bound.zero_le) in
     try
       for x = 0 to n - 1 do
         for y = 0 to n - 1 do
           if x <> y then begin
             let zp = get z' x y in
             if not (Bound.is_infinity zp) then begin
               let nb' = Bound.negate_weak zp in
               (* (1) Z must genuinely exceed Z' at (x, y) *)
               if feasible (Bound.add nb' (get z x y)) then begin
                 let tb =
                   Bound.le (Stdlib.min u.(y) (l.(x) - Bound.value zp))
                 in
                 if
                   (* (2) some v y ≤ T is reachable within Z *)
                   feasible (Bound.add tb (get z 0 y))
                   (* (3) cycle nb' + Z_{x0} + Z_{0y} *)
                   && feasible
                        (Bound.add nb' (Bound.add (get z x 0) (get z 0 y)))
                   (* (4) cycle tb + Z_{0x} + Z_{xy} *)
                   && feasible
                        (Bound.add (get z x y) (Bound.add tb (get z 0 x)))
                 then raise Exit
               end
             end
           end
         done
       done;
       true
     with Exit -> false)

let sup z i = get z i 0
let inf z i = get z 0 i

(* Total order on canonical zones of equal dimension: dimension first,
   then lexicographic on the encoded entries.  The encoding is
   monotone, so the order is stable across processes — certificate
   emission sorts with it to get byte-identical artifacts regardless of
   shard/domain schedule. *)
let compare z z' =
  let c = Stdlib.compare z.n z'.n in
  if c <> 0 then c
  else if is_empty z then if is_empty z' then 0 else -1
  else if is_empty z' then 1
  else Stdlib.compare z.m z'.m

let to_encoded z = (z.n, Array.copy z.m)

let of_encoded n m =
  if n < 1 || Array.length m <> n * n then
    invalid_arg "Dbm.of_encoded: dimension mismatch";
  (* never trust the producer's canonicity: re-close so that the
     pointwise operations (subset, le_lu, sup) are sound on the
     result *)
  let z = { n; m = Array.copy m } in
  close z;
  z

let satisfies z v =
  assert (Array.length v = z.n && v.(0) = 0);
  (not (is_empty z))
  &&
  let ok = ref true in
  for i = 0 to z.n - 1 do
    for j = 0 to z.n - 1 do
      if not (Bound.sat (v.(i) - v.(j)) (get z i j)) then ok := false
    done
  done;
  !ok

let delay_ordered z v d =
  let v' = Array.mapi (fun i x -> if i = 0 then 0 else x + d) v in
  if satisfies z v' then Some v' else None

let pp ppf z =
  if is_empty z then Format.pp_print_string ppf "false"
  else begin
    let first = ref true in
    let sep () =
      if !first then first := false else Format.fprintf ppf " && "
    in
    for i = 0 to z.n - 1 do
      for j = 0 to z.n - 1 do
        if i <> j then begin
          let b = get z i j in
          let trivial =
            Bound.is_infinity b || (j = i) || (i = 0 && b = Bound.zero_le)
          in
          if not trivial then begin
            sep ();
            if j = 0 then Format.fprintf ppf "x%d%a" i Bound.pp b
            else if i = 0 then Format.fprintf ppf "-x%d%a" j Bound.pp b
            else Format.fprintf ppf "x%d-x%d%a" i j Bound.pp b
          end
        end
      done
    done;
    if !first then Format.pp_print_string ppf "true"
  end
