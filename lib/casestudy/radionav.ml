open Ita_core

let mmi =
  Resource.processor "MMI" ~mips:22.0 ~policy:Resource.Priority_preemptive

let rad =
  Resource.processor "RAD" ~mips:11.0 ~policy:Resource.Priority_preemptive

let nav =
  Resource.processor "NAV" ~mips:113.0 ~policy:Resource.Priority_preemptive

let bus = Resource.link "BUS" ~kbps:72.0 ~policy:Resource.Priority_preemptive

let change_volume_period_us = 31_250
let address_lookup_period_us = 1_000_000
let tmc_period_us = 3_000_000

let change_volume trigger =
  Scenario.make ~name:"ChangeVolume" ~trigger ~band:Scenario.High
    ~steps:
      [
        Scenario.Compute
          { op = "HandleKeyPress"; resource = "MMI"; instructions = 1e5 };
        Scenario.Transfer { msg = "SetVolume"; resource = "BUS"; bytes = 4 };
        Scenario.Compute
          { op = "AdjustVolume"; resource = "RAD"; instructions = 1e5 };
        Scenario.Transfer { msg = "GetVolume"; resource = "BUS"; bytes = 4 };
        Scenario.Compute
          { op = "UpdateScreen"; resource = "MMI"; instructions = 5e5 };
      ]
    ~requirements:
      [
        {
          Scenario.req_name = "K2A";
          from_step = None;
          to_step = 2;
          budget_us = None;
        };
        {
          Scenario.req_name = "A2V";
          from_step = Some 2;
          to_step = 4;
          budget_us = Some 50_000;
        };
        {
          Scenario.req_name = "K2V";
          from_step = None;
          to_step = 4;
          budget_us = Some 200_000;
        };
      ]

let address_lookup trigger =
  Scenario.make ~name:"AddressLookup" ~trigger ~band:Scenario.High
    ~steps:
      [
        Scenario.Compute
          { op = "HandleKeyPress"; resource = "MMI"; instructions = 1e5 };
        Scenario.Transfer { msg = "Query"; resource = "BUS"; bytes = 4 };
        Scenario.Compute
          { op = "DatabaseLookup"; resource = "NAV"; instructions = 5e6 };
        Scenario.Transfer { msg = "Result"; resource = "BUS"; bytes = 64 };
        Scenario.Compute
          { op = "UpdateScreen"; resource = "MMI"; instructions = 5e5 };
      ]
    ~requirements:
      [
        {
          Scenario.req_name = "E2E";
          from_step = None;
          to_step = 4;
          budget_us = Some 200_000;
        };
      ]

let handle_tmc trigger =
  Scenario.make ~name:"HandleTMC" ~trigger ~band:Scenario.Low
    ~steps:
      [
        Scenario.Compute
          { op = "HandleTMC"; resource = "RAD"; instructions = 1e6 };
        Scenario.Transfer { msg = "TMCData"; resource = "BUS"; bytes = 64 };
        Scenario.Compute
          { op = "DecodeTMC"; resource = "NAV"; instructions = 5e6 };
        Scenario.Transfer { msg = "TMCResult"; resource = "BUS"; bytes = 64 };
        Scenario.Compute
          { op = "UpdateScreen"; resource = "MMI"; instructions = 5e5 };
      ]
    ~requirements:
      [
        {
          Scenario.req_name = "TMC";
          from_step = None;
          to_step = 4;
          budget_us = Some 1_000_000;
        };
      ]

type column = Po | Pno | Sp | Pj | Bur

let column_name = function
  | Po -> "po"
  | Pno -> "pno"
  | Sp -> "sp"
  | Pj -> "pj"
  | Bur -> "bur"

let trigger column ~period =
  match column with
  | Po -> Eventmodel.Periodic { period; offset = 0 }
  | Pno -> Eventmodel.Periodic_unknown_offset { period }
  | Sp -> Eventmodel.Sporadic { min_separation = period }
  | Pj -> Eventmodel.Periodic_jitter { period; jitter = period }
  | Bur -> Eventmodel.Bursty { period; jitter = 2 * period; min_separation = 0 }

(* In the pj and bur columns only the radio station is jittery/bursty;
   the other actors are sporadic (paper Section 4). *)
let other_trigger column ~period =
  match column with
  | Po | Pno | Sp -> trigger column ~period
  | Pj | Bur -> Eventmodel.Sporadic { min_separation = period }

let columns = [ Po; Pno; Sp; Pj; Bur ]

type combo = Cv_tmc | Al_tmc

let combos = [ Cv_tmc; Al_tmc ]
let combo_name = function Cv_tmc -> "cv" | Al_tmc -> "al"

let system ?(queue_bound = 4) combo column =
  let tmc = handle_tmc (trigger column ~period:tmc_period_us) in
  let scenarios =
    match combo with
    | Cv_tmc ->
        [
          change_volume
            (other_trigger column ~period:change_volume_period_us);
          tmc;
        ]
    | Al_tmc ->
        [
          address_lookup
            (other_trigger column ~period:address_lookup_period_us);
          tmc;
        ]
  in
  Sysmodel.make
    ~name:
      (Printf.sprintf "radionav-%s-%s"
         (match combo with Cv_tmc -> "cv" | Al_tmc -> "al")
         (column_name column))
    ~resources:[ mmi; rad; nav; bus ]
    ~scenarios ~queue_bound ()

let system_with ?queue_bound ?mmi_mips ?rad_mips ?nav_mips ?bus_kbps
    ?cpu_policy ?bus_policy ?decode_on combo column =
  let sys = system ?queue_bound combo column in
  let set_mips name mips sys =
    match mips with
    | None -> sys
    | Some mips ->
        Sysmodel.with_resource sys name (fun r ->
            Resource.processor r.Resource.name ~mips ~policy:r.Resource.policy)
  in
  let sys = set_mips "MMI" mmi_mips sys in
  let sys = set_mips "RAD" rad_mips sys in
  let sys = set_mips "NAV" nav_mips sys in
  let sys =
    match bus_kbps with
    | None -> sys
    | Some kbps ->
        Sysmodel.with_resource sys "BUS" (fun r ->
            Resource.link r.Resource.name ~kbps ~policy:r.Resource.policy)
  in
  let sys =
    match cpu_policy with
    | None -> sys
    | Some policy ->
        List.fold_left
          (fun sys name ->
            Sysmodel.with_resource sys name (fun r -> { r with Resource.policy }))
          sys [ "MMI"; "RAD"; "NAV" ]
  in
  let sys =
    match bus_policy with
    | None -> sys
    | Some policy ->
        Sysmodel.with_resource sys "BUS" (fun r -> { r with Resource.policy })
  in
  match decode_on with
  | None -> sys
  | Some resource ->
      (* DecodeTMC is HandleTMC's step 2 (paper Figure 3) *)
      Sysmodel.remap_step sys ~scenario:"HandleTMC" ~step:2 ~resource

type row = {
  label : string;
  combo : combo;
  scenario : string;
  requirement : string;
  paper_po : float option;
  paper_pno : float option;
}

let table1_rows =
  [
    {
      label = "HandleTMC (+ ChangeVolume)";
      combo = Cv_tmc;
      scenario = "HandleTMC";
      requirement = "TMC";
      paper_po = Some 357.133;
      paper_pno = Some 381.632;
    };
    {
      label = "HandleTMC (+ AddressLookup)";
      combo = Al_tmc;
      scenario = "HandleTMC";
      requirement = "TMC";
      paper_po = Some 172.106;
      paper_pno = Some 239.080;
    };
    {
      label = "K2A (ChangeVolume + HandleTMC)";
      combo = Cv_tmc;
      scenario = "ChangeVolume";
      requirement = "K2A";
      paper_po = Some 27.716;
      paper_pno = Some 27.716;
    };
    {
      label = "A2V (ChangeVolume + HandleTMC)";
      combo = Cv_tmc;
      scenario = "ChangeVolume";
      requirement = "A2V";
      paper_po = Some 41.796;
      paper_pno = Some 41.796;
    };
    {
      label = "AddressLookup (+ HandleTMC)";
      combo = Al_tmc;
      scenario = "AddressLookup";
      requirement = "E2E";
      paper_po = Some 79.075;
      paper_pno = Some 79.075;
    };
  ]
