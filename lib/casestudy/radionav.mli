(** The in-car radio navigation case study (paper Section 2).

    Deployment (Figure 1, parameters from the companion MPA study of
    the same system): three processors — MMI at 22 MIPS, RAD at
    11 MIPS, NAV at 113 MIPS — on one 72 kbit/s communication bus.

    Three applications:

    - {b ChangeVolume} (Figure 2): keypress at up to 32/s;
      HandleKeyPress (1e5 instr, MMI) -> SetVolume (4 B) ->
      AdjustVolume (1e5, RAD, audible) -> GetVolume (4 B) ->
      UpdateScreen (5e5, MMI, visual).  Requirements: K2V < 200 ms,
      A2V < 50 ms (and K2A, reported in Table 1).
    - {b AddressLookup}: one lookup per second; HandleKeyPress (1e5,
      MMI) -> query (4 B) -> DatabaseLookup (5e6, NAV) -> result
      (64 B) -> UpdateScreen (5e5, MMI); < 200 ms.
    - {b HandleTMC} (Figure 3): 300 messages per 15 min (one per 3 s);
      HandleTMC (1e6, RAD) -> TMC data (64 B) -> DecodeTMC (5e6, NAV)
      -> result (64 B) -> UpdateScreen (5e5, MMI); < 1 s for urgent
      messages.

    ChangeVolume and AddressLookup have priority over the TMC traffic
    (paper Section 4); processors schedule preemptively in the
    Figure 5 style, the bus arbitrates non-preemptively by priority.

    The paper analyzes two application combinations
    (ChangeVolume+HandleTMC and AddressLookup+HandleTMC) under five
    environment columns (Table 1). *)

open Ita_core

val mmi : Resource.t
val rad : Resource.t
val nav : Resource.t
val bus : Resource.t

val change_volume_period_us : int
(** 31250: 32 events/s. *)

val address_lookup_period_us : int
(** 1000000: one lookup per second. *)

val tmc_period_us : int
(** 3000000: 300 messages per 15 minutes. *)

val change_volume : Eventmodel.t -> Scenario.t
val address_lookup : Eventmodel.t -> Scenario.t
val handle_tmc : Eventmodel.t -> Scenario.t

(** Table 1 columns: which event model each actor uses. *)
type column = Po | Pno | Sp | Pj | Bur

val column_name : column -> string
val trigger : column -> period:int -> Eventmodel.t
(** The measured-combination event model of a column: [Pj] is
    periodic-with-jitter J = P and [Bur] is bursty with J = 2P, D = 0
    for the radio station, while the other actors fall back to
    sporadic in those columns — exactly the paper's setup. *)

val columns : column list
(** Table 1 order: po, pno, sp, pj, bur. *)

(** The two analyzed application combinations. *)
type combo = Cv_tmc | Al_tmc

val combos : combo list
val combo_name : combo -> string
(** Short tags: "cv" and "al". *)

val system : ?queue_bound:int -> combo -> column -> Sysmodel.t

val system_with :
  ?queue_bound:int ->
  ?mmi_mips:float ->
  ?rad_mips:float ->
  ?nav_mips:float ->
  ?bus_kbps:float ->
  ?cpu_policy:Resource.policy ->
  ?bus_policy:Resource.policy ->
  ?decode_on:string ->
  combo ->
  column ->
  Sysmodel.t
(** The configuration space behind {!system}: the same deployment
    with any of the paper's architecture alternatives applied —
    different CPU speeds, bus baud rate, scheduling policies, and
    [decode_on] moving the DecodeTMC computation onto another
    processor ("moving functionality between processors", the
    paper's Section 4 design question).  Defaults reproduce
    {!system} exactly. *)

(** One row of Table 1 / Table 2: a requirement measured in a
    combination. *)
type row = {
  label : string;  (** the paper's row label *)
  combo : combo;
  scenario : string;
  requirement : string;
  paper_po : float option;  (** paper's value, ms, for comparison *)
  paper_pno : float option;
}

val table1_rows : row list
