open Ita_ta

exception Elab_error of string

type query =
  | Reach_q of Ita_mc.Query.t
  | Sup_q of { clock : Guard.clock; at : Ita_mc.Query.t }
  | Deadlock_q

type srcmap = {
  proc_pos : Ast.pos array;
  loc_pos : Ast.pos array array;
  edge_pos : Ast.pos array array;
}

type t = { net : Network.t; queries : query list; srcmap : srcmap }

let err fmt = Printf.ksprintf (fun s -> raise (Elab_error s)) fmt

type names = {
  clocks : (string, Guard.clock) Hashtbl.t;
  vars : (string, Expr.var) Hashtbl.t;
  chans : (string, Channel.id) Hashtbl.t;
}

let resolve_kind names id =
  match Hashtbl.find_opt names.clocks id with
  | Some c -> `Clock c
  | None -> (
      match Hashtbl.find_opt names.vars id with
      | Some v -> `Var v
      | None -> `Unknown)

(* Integer expressions: clocks are not values here. *)
let rec iexp names = function
  | Ast.Int n -> Expr.Int n
  | Ast.Ident id -> (
      match resolve_kind names id with
      | `Var v -> Expr.Var v
      | `Clock _ -> err "clock %s used as an integer value" id
      | `Unknown -> err "unknown identifier %s" id)
  | Ast.Binop (op, a, b) ->
      let a = iexp names a and b = iexp names b in
      (match op with
      | Ast.Add -> Expr.Add (a, b)
      | Ast.Sub -> Expr.Sub (a, b)
      | Ast.Mul -> Expr.Mul (a, b)
      | Ast.Div -> Expr.Div (a, b))
  | Ast.Neg a -> Expr.Neg (iexp names a)
  | Ast.Cmp _ | Ast.And _ | Ast.Or _ | Ast.Not _ | Ast.Bool _ ->
      err "boolean expression in integer position"

let rec bexp names = function
  | Ast.Bool true -> Expr.True
  | Ast.Bool false -> Expr.False
  | Ast.Cmp (op, a, b) ->
      let op' =
        match op with
        | Ast.Eq -> Expr.Eq
        | Ast.Ne -> Expr.Ne
        | Ast.Lt -> Expr.Lt
        | Ast.Le -> Expr.Le
        | Ast.Gt -> Expr.Gt
        | Ast.Ge -> Expr.Ge
      in
      Expr.Cmp (op', iexp names a, iexp names b)
  | Ast.And (a, b) -> Expr.And (bexp names a, bexp names b)
  | Ast.Or (a, b) -> Expr.Or (bexp names a, bexp names b)
  | Ast.Not a -> Expr.Not (bexp names a)
  | Ast.Int _ | Ast.Ident _ | Ast.Binop _ | Ast.Neg _ ->
      err "integer expression in boolean position"

let is_clock names = function
  | Ast.Ident id -> (
      match resolve_kind names id with `Clock c -> Some c | _ -> None)
  | _ -> None

let clock_rel_of = function
  | Ast.Lt -> Guard.Lt
  | Ast.Le -> Guard.Le
  | Ast.Gt -> Guard.Gt
  | Ast.Ge -> Guard.Ge
  | Ast.Eq -> Guard.Eq
  | Ast.Ne -> err "clocks cannot be compared with !="

let mirror = function
  | Guard.Lt -> Guard.Gt
  | Guard.Le -> Guard.Ge
  | Guard.Gt -> Guard.Lt
  | Guard.Ge -> Guard.Le
  | Guard.Eq -> Guard.Eq

(* Guards are conjunctions whose atoms may constrain clocks; clock
   atoms under ||, ! or in non-atomic positions are rejected. *)
let rec guard names = function
  | Ast.And (a, b) -> Guard.conj (guard names a) (guard names b)
  | Ast.Cmp (op, a, b) as e -> (
      match (is_clock names a, is_clock names b) with
      | Some _, Some _ -> err "difference constraints between clocks are not supported"
      | Some c, None ->
          Guard.clock_rel c (clock_rel_of op) (iexp names b)
      | None, Some c ->
          Guard.clock_rel c (mirror (clock_rel_of op)) (iexp names a)
      | None, None -> Guard.data (bexp names e))
  | e ->
      (* no clock atom may hide under disjunction or negation *)
      let rec check = function
        | Ast.Cmp (_, a, b) ->
            if is_clock names a <> None || is_clock names b <> None then
              err "clock constraints must appear as conjunction atoms"
        | Ast.And (a, b) | Ast.Or (a, b) ->
            check a;
            check b
        | Ast.Not a | Ast.Neg a -> check a
        | Ast.Binop (_, a, b) ->
            check a;
            check b
        | Ast.Int _ | Ast.Ident _ | Ast.Bool _ -> ()
      in
      check e;
      Guard.data (bexp names e)

let update names (assigns : Ast.assign_decl list) =
  List.map
    (fun { Ast.target; value } ->
      match resolve_kind names target with
      | `Clock c -> Update.Reset_clock (c, iexp names value)
      | `Var v -> Update.Set_var (v, iexp names value)
      | `Unknown -> err "unknown assignment target %s" target)
    assigns

(* Query predicates additionally allow [Process.Location] atoms. *)
let split_loc_atom id =
  match String.index_opt id '.' with
  | Some i ->
      Some (String.sub id 0 i, String.sub id (i + 1) (String.length id - i - 1))
  | None -> None

let query_of names net e =
  let locs = ref [] in
  let rec strip = function
    | Ast.And (a, b) -> Ast.And (strip a, strip b)
    | Ast.Ident id as e -> (
        match split_loc_atom id with
        | Some (p, l) ->
            let comp =
              try Network.component_index net p
              with Not_found -> err "unknown process %s" p
            in
            let loc =
              try Automaton.find_location net.Network.automata.(comp) l
              with Not_found -> err "unknown location %s.%s" p l
            in
            locs := (comp, loc) :: !locs;
            Ast.Bool true
        | None -> e)
    | e -> e
  in
  let e = strip e in
  {
    Ita_mc.Query.comp_locs = List.rev !locs;
    guard = guard names e;
  }

let elaborate ?(validate = true) (decls : Ast.t) =
  let b = Network.Builder.create () in
  let names =
    {
      clocks = Hashtbl.create 8;
      vars = Hashtbl.create 8;
      chans = Hashtbl.create 8;
    }
  in
  (* first pass: declarations *)
  List.iter
    (function
      | Ast.Clocks cs ->
          List.iter
            (fun c -> Hashtbl.replace names.clocks c (Network.Builder.clock b c))
            cs
      | Ast.Var { var_name; lo; hi; init } ->
          Hashtbl.replace names.vars var_name
            (Network.Builder.int_var b var_name ~lo ~hi ~init)
      | Ast.Chan { chan_name; broadcast; urgent } ->
          let kind = if broadcast then Channel.Broadcast else Channel.Binary in
          Hashtbl.replace names.chans chan_name
            (Network.Builder.channel b chan_name kind ~urgent)
      | Ast.Process _ | Ast.Query _ -> ())
    decls;
  (* second pass: processes *)
  List.iter
    (function
      | Ast.Process p ->
          let loc_index = Hashtbl.create 8 in
          List.iteri
            (fun i (l : Ast.loc_decl) ->
              if Hashtbl.mem loc_index l.Ast.loc_name then
                err "%s: duplicate location %s" p.Ast.proc_name l.Ast.loc_name;
              Hashtbl.replace loc_index l.Ast.loc_name i)
            p.Ast.locs;
          let locations =
            List.map
              (fun (l : Ast.loc_decl) ->
                {
                  Automaton.loc_name = l.Ast.loc_name;
                  invariant =
                    (match l.Ast.loc_inv with
                    | None -> Guard.tt
                    | Some e -> guard names e);
                  kind =
                    (match l.Ast.loc_kind with
                    | `Normal -> Automaton.Normal
                    | `Urgent -> Automaton.Urgent
                    | `Committed -> Automaton.Committed);
                })
              p.Ast.locs
          in
          let initials =
            List.filter (fun (l : Ast.loc_decl) -> l.Ast.loc_init) p.Ast.locs
          in
          let initial =
            match initials with
            | [ l ] -> Hashtbl.find loc_index l.Ast.loc_name
            | [] -> err "%s: no init location" p.Ast.proc_name
            | _ -> err "%s: multiple init locations" p.Ast.proc_name
          in
          let chan id =
            match Hashtbl.find_opt names.chans id with
            | Some c -> c
            | None -> err "unknown channel %s" id
          in
          let loc id =
            match Hashtbl.find_opt loc_index id with
            | Some i -> i
            | None -> err "%s: unknown location %s" p.Ast.proc_name id
          in
          let edges =
            List.map
              (fun (e : Ast.edge_decl) ->
                {
                  Automaton.src = loc e.Ast.edge_src;
                  dst = loc e.Ast.edge_dst;
                  guard =
                    (match e.Ast.edge_guard with
                    | None -> Guard.tt
                    | Some g -> guard names g);
                  sync =
                    (match e.Ast.edge_sync with
                    | Ast.No_sync -> Automaton.NoSync
                    | Ast.Send c -> Automaton.Send (chan c)
                    | Ast.Recv c -> Automaton.Recv (chan c));
                  update = update names e.Ast.edge_updates;
                })
              p.Ast.edges
          in
          Network.Builder.add_automaton b
            (Automaton.make ~name:p.Ast.proc_name ~locations ~edges ~initial)
      | Ast.Clocks _ | Ast.Var _ | Ast.Chan _ | Ast.Query _ -> ())
    decls;
  let net = Network.Builder.build ~validate b in
  (* automata were added in declaration order, so srcmap indices line
     up with the network's component/location/edge indices *)
  let procs =
    List.filter_map
      (function Ast.Process p -> Some p | _ -> Option.None)
      decls
  in
  let srcmap =
    {
      proc_pos =
        Array.of_list (List.map (fun (p : Ast.process_decl) -> p.Ast.proc_pos) procs);
      loc_pos =
        Array.of_list
          (List.map
             (fun (p : Ast.process_decl) ->
               Array.of_list
                 (List.map (fun (l : Ast.loc_decl) -> l.Ast.loc_pos) p.Ast.locs))
             procs);
      edge_pos =
        Array.of_list
          (List.map
             (fun (p : Ast.process_decl) ->
               Array.of_list
                 (List.map (fun (e : Ast.edge_decl) -> e.Ast.edge_pos) p.Ast.edges))
             procs);
    }
  in
  (* third pass: queries, which need the finished network *)
  let queries =
    List.filter_map
      (function
        | Ast.Query Ast.Deadlock -> Some Deadlock_q
        | Ast.Query (Ast.Reach e) -> Some (Reach_q (query_of names net e))
        | Ast.Query (Ast.Sup { sup_clock; sup_at }) ->
            let clock =
              match Hashtbl.find_opt names.clocks sup_clock with
              | Some c -> c
              | None -> err "unknown clock %s" sup_clock
            in
            Some (Sup_q { clock; at = query_of names net sup_at })
        | Ast.Clocks _ | Ast.Var _ | Ast.Chan _ | Ast.Process _ -> None)
      decls
  in
  { net; queries; srcmap }

let load_file ?validate path = elaborate ?validate (Parser.parse_file path)
