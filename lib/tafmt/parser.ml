exception Parse_error of { line : int; message : string }

let error lx fmt =
  Printf.ksprintf
    (fun message -> raise (Parse_error { line = Lexer.line lx; message }))
    fmt

let token_str = function
  | Lexer.INT n -> string_of_int n
  | Lexer.IDENT s -> s
  | Lexer.KW s -> s
  | Lexer.PUNCT s -> s
  | Lexer.EOF -> "<eof>"

let expect lx tok =
  let t = Lexer.next lx in
  if t <> tok then error lx "expected %s, found %s" (token_str tok) (token_str t)

let ident lx =
  match Lexer.next lx with
  | Lexer.IDENT s -> s
  | t -> error lx "expected identifier, found %s" (token_str t)

let int lx =
  match Lexer.next lx with
  | Lexer.INT n -> n
  | t -> error lx "expected integer, found %s" (token_str t)

(* Expressions: precedence climbing.
   ||  <  &&  <  comparisons  <  + -  <  * /  <  unary *)

let cmp_of = function
  | "==" -> Some Ast.Eq
  | "!=" -> Some Ast.Ne
  | "<" -> Some Ast.Lt
  | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt
  | ">=" -> Some Ast.Ge
  | _ -> None

let rec parse_or lx =
  let lhs = parse_and lx in
  match Lexer.peek lx with
  | Lexer.PUNCT "||" ->
      ignore (Lexer.next lx);
      Ast.Or (lhs, parse_or lx)
  | _ -> lhs

and parse_and lx =
  let lhs = parse_cmp lx in
  match Lexer.peek lx with
  | Lexer.PUNCT "&&" ->
      ignore (Lexer.next lx);
      Ast.And (lhs, parse_and lx)
  | _ -> lhs

and parse_cmp lx =
  let lhs = parse_addsub lx in
  match Lexer.peek lx with
  | Lexer.PUNCT p -> (
      match cmp_of p with
      | Some op ->
          ignore (Lexer.next lx);
          Ast.Cmp (op, lhs, parse_addsub lx)
      | None -> lhs)
  | _ -> lhs

and parse_addsub lx =
  let rec go lhs =
    match Lexer.peek lx with
    | Lexer.PUNCT "+" ->
        ignore (Lexer.next lx);
        go (Ast.Binop (Ast.Add, lhs, parse_muldiv lx))
    | Lexer.PUNCT "-" ->
        ignore (Lexer.next lx);
        go (Ast.Binop (Ast.Sub, lhs, parse_muldiv lx))
    | _ -> lhs
  in
  go (parse_muldiv lx)

and parse_muldiv lx =
  let rec go lhs =
    match Lexer.peek lx with
    | Lexer.PUNCT "*" ->
        ignore (Lexer.next lx);
        go (Ast.Binop (Ast.Mul, lhs, parse_unary lx))
    | Lexer.PUNCT "/" ->
        ignore (Lexer.next lx);
        go (Ast.Binop (Ast.Div, lhs, parse_unary lx))
    | _ -> lhs
  in
  go (parse_unary lx)

and parse_unary lx =
  match Lexer.next lx with
  | Lexer.INT n -> Ast.Int n
  | Lexer.IDENT s -> Ast.Ident s
  | Lexer.KW "true" -> Ast.Bool true
  | Lexer.KW "false" -> Ast.Bool false
  | Lexer.PUNCT "-" -> Ast.Neg (parse_unary lx)
  | Lexer.PUNCT "!" -> Ast.Not (parse_unary lx)
  | Lexer.PUNCT "(" ->
      let e = parse_or lx in
      expect lx (Lexer.PUNCT ")");
      e
  | t -> error lx "expected expression, found %s" (token_str t)

(* Declarations *)

let parse_assign lx =
  let target = ident lx in
  (match Lexer.next lx with
  | Lexer.PUNCT ":=" | Lexer.PUNCT "=" -> ()
  | t -> error lx "expected := in update, found %s" (token_str t));
  let value = parse_or lx in
  { Ast.target; value }

let rec parse_assigns lx acc =
  let a = parse_assign lx in
  match Lexer.peek lx with
  | Lexer.PUNCT "," ->
      ignore (Lexer.next lx);
      parse_assigns lx (a :: acc)
  | _ -> List.rev (a :: acc)

(* Positions: each parse_* below runs right after [next] consumed the
   declaration's introducing keyword ([edge], [loc], [process]), so
   [Lexer.pos] still points at that keyword — capture it before any
   further token is read. *)

let here lx =
  let line, col = Lexer.pos lx in
  { Ast.line; col }

let parse_edge lx =
  let edge_pos = here lx in
  let edge_src = ident lx in
  expect lx (Lexer.PUNCT "->");
  let edge_dst = ident lx in
  let edge_guard = ref None in
  let edge_sync = ref Ast.No_sync in
  let edge_updates = ref [] in
  let rec clauses () =
    match Lexer.peek lx with
    | Lexer.KW "when" ->
        ignore (Lexer.next lx);
        edge_guard := Some (parse_or lx);
        clauses ()
    | Lexer.KW "sync" ->
        ignore (Lexer.next lx);
        let c = ident lx in
        (match Lexer.next lx with
        | Lexer.PUNCT "!" -> edge_sync := Ast.Send c
        | Lexer.PUNCT "?" -> edge_sync := Ast.Recv c
        | t -> error lx "expected ! or ? after channel, found %s" (token_str t));
        clauses ()
    | Lexer.KW "do" ->
        ignore (Lexer.next lx);
        edge_updates := parse_assigns lx [];
        clauses ()
    | _ -> ()
  in
  clauses ();
  {
    Ast.edge_src;
    edge_dst;
    edge_guard = !edge_guard;
    edge_sync = !edge_sync;
    edge_updates = !edge_updates;
    edge_pos;
  }

let parse_loc lx ~kind ~init =
  let loc_pos = here lx in
  let loc_name = ident lx in
  let loc_inv =
    match Lexer.peek lx with
    | Lexer.KW "inv" ->
        ignore (Lexer.next lx);
        Some (parse_or lx)
    | _ -> None
  in
  { Ast.loc_name; loc_kind = kind; loc_init = init; loc_inv; loc_pos }

let parse_process lx =
  let proc_pos = here lx in
  let proc_name = ident lx in
  expect lx (Lexer.PUNCT "{");
  let locs = ref [] and edges = ref [] in
  let rec body () =
    match Lexer.next lx with
    | Lexer.PUNCT "}" -> ()
    | Lexer.KW "init" ->
        (* optional kind prefix after init, e.g. "init committed loc" *)
        let kind =
          match Lexer.peek lx with
          | Lexer.KW "committed" ->
              ignore (Lexer.next lx);
              `Committed
          | Lexer.KW "urgent" ->
              ignore (Lexer.next lx);
              `Urgent
          | _ -> `Normal
        in
        expect lx (Lexer.KW "loc");
        locs := parse_loc lx ~kind ~init:true :: !locs;
        body ()
    | Lexer.KW "committed" ->
        expect lx (Lexer.KW "loc");
        locs := parse_loc lx ~kind:`Committed ~init:false :: !locs;
        body ()
    | Lexer.KW "urgent" ->
        expect lx (Lexer.KW "loc");
        locs := parse_loc lx ~kind:`Urgent ~init:false :: !locs;
        body ()
    | Lexer.KW "loc" ->
        locs := parse_loc lx ~kind:`Normal ~init:false :: !locs;
        body ()
    | Lexer.KW "edge" ->
        edges := parse_edge lx :: !edges;
        body ()
    | t -> error lx "unexpected %s in process body" (token_str t)
  in
  body ();
  { Ast.proc_name; locs = List.rev !locs; edges = List.rev !edges; proc_pos }

let parse_chan lx ~broadcast ~urgent =
  let chan_name = ident lx in
  { Ast.chan_name; broadcast; urgent }

let parse_query lx =
  match Lexer.next lx with
  | Lexer.KW "deadlock" -> Ast.Deadlock
  | Lexer.KW "reach" -> Ast.Reach (parse_or lx)
  | Lexer.KW "sup" ->
      let sup_clock = ident lx in
      expect lx (Lexer.KW "at");
      let sup_at = parse_or lx in
      Ast.Sup { sup_clock; sup_at }
  | t -> error lx "expected reach or sup, found %s" (token_str t)

let parse_decls lx =
  let rec go acc =
    match Lexer.next lx with
    | Lexer.EOF -> List.rev acc
    | Lexer.KW "clock" ->
        let rec names ns =
          match Lexer.peek lx with
          | Lexer.IDENT _ -> names (ident lx :: ns)
          | _ -> List.rev ns
        in
        go (Ast.Clocks (names []) :: acc)
    | Lexer.KW "var" ->
        let var_name = ident lx in
        let lo = int lx in
        let hi = int lx in
        let init = int lx in
        go (Ast.Var { var_name; lo; hi; init } :: acc)
    | Lexer.KW "chan" -> go (Ast.Chan (parse_chan lx ~broadcast:false ~urgent:false) :: acc)
    | Lexer.KW "broadcast" ->
        expect lx (Lexer.KW "chan");
        go (Ast.Chan (parse_chan lx ~broadcast:true ~urgent:false) :: acc)
    | Lexer.KW "urgent" -> (
        match Lexer.next lx with
        | Lexer.KW "chan" ->
            go (Ast.Chan (parse_chan lx ~broadcast:false ~urgent:true) :: acc)
        | Lexer.KW "broadcast" ->
            expect lx (Lexer.KW "chan");
            go (Ast.Chan (parse_chan lx ~broadcast:true ~urgent:true) :: acc)
        | t -> error lx "expected chan after urgent, found %s" (token_str t))
    | Lexer.KW "process" -> go (Ast.Process (parse_process lx) :: acc)
    | Lexer.KW "query" -> go (Ast.Query (parse_query lx) :: acc)
    | t -> error lx "unexpected %s at top level" (token_str t)
  in
  go []

let parse_string src = parse_decls (Lexer.of_string src)

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string src
