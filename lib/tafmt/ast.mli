(** Abstract syntax of the textual network format (.ta files).

    The format covers everything the library's semantics supports:

    {v
    // declarations
    clock x y
    var n 0 8 0              // name lo hi init
    chan c                   // binary channel
    broadcast chan done_     // broadcast channel
    urgent broadcast chan hurry

    process P {
      init loc L0 inv x <= 5
      committed loc Seen
      urgent loc U
      loc L1
      edge L0 -> L1 when x >= 1 && n == 0 sync c! do x := 0, n := n + 1
      edge L1 -> L0 sync c?
    }

    query reach P.L1 && x >= 3
    query sup x at P.L1
    v}

    Identifiers are resolved (clock vs variable, channels, locations)
    during elaboration, not parsing. *)

type pos = { line : int; col : int }
(** 1-based source position of a declaration's introducing keyword;
    carried through elaboration so the static analyzer can report
    findings as [file:line:col]. *)

type binop = Add | Sub | Mul | Div

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type exp =
  | Int of int
  | Ident of string
  | Binop of binop * exp * exp
  | Neg of exp
  | Cmp of cmp * exp * exp
  | And of exp * exp
  | Or of exp * exp
  | Not of exp
  | Bool of bool

type chan_decl = { chan_name : string; broadcast : bool; urgent : bool }

type loc_decl = {
  loc_name : string;
  loc_kind : [ `Normal | `Urgent | `Committed ];
  loc_init : bool;
  loc_inv : exp option;
  loc_pos : pos;
}

type sync_decl = No_sync | Send of string | Recv of string

type assign_decl = { target : string; value : exp }

type edge_decl = {
  edge_src : string;
  edge_dst : string;
  edge_guard : exp option;
  edge_sync : sync_decl;
  edge_updates : assign_decl list;
  edge_pos : pos;
}

type process_decl = {
  proc_name : string;
  locs : loc_decl list;
  edges : edge_decl list;
  proc_pos : pos;
}

type query_decl =
  | Reach of exp  (** atoms may be [P.Loc] location predicates *)
  | Sup of { sup_clock : string; sup_at : exp }
  | Deadlock  (** is a state with no discrete successor reachable? *)

type decl =
  | Clocks of string list
  | Var of { var_name : string; lo : int; hi : int; init : int }
  | Chan of chan_decl
  | Process of process_decl
  | Query of query_decl

type t = decl list
