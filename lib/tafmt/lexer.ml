type token =
  | INT of int
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

exception Lex_error of { line : int; message : string }

type t = {
  src : string;
  mutable pos : int;
  mutable line_no : int;
  mutable line_start : int;  (* byte offset where the current line begins *)
  mutable tok_line : int;  (* start of the most recently scanned token *)
  mutable tok_col : int;
  mutable lookahead : token option;
}

let keywords =
  [
    "clock"; "var"; "chan"; "broadcast"; "urgent"; "process"; "loc"; "init";
    "committed"; "edge"; "when"; "sync"; "do"; "inv"; "query"; "reach";
    "sup"; "at"; "true"; "false"; "deadlock";
  ]

let of_string src =
  {
    src;
    pos = 0;
    line_no = 1;
    line_start = 0;
    tok_line = 1;
    tok_col = 1;
    lookahead = None;
  }

let line lx = lx.line_no
let pos lx = (lx.tok_line, lx.tok_col)

let error lx fmt =
  Printf.ksprintf
    (fun message -> raise (Lex_error { line = lx.line_no; message }))
    fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let rec skip_space lx =
  if lx.pos < String.length lx.src then begin
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_space lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line_no <- lx.line_no + 1;
        lx.line_start <- lx.pos;
        skip_space lx
    | '/'
      when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_space lx
    | _ -> ()
  end

let scan lx =
  skip_space lx;
  lx.tok_line <- lx.line_no;
  lx.tok_col <- lx.pos - lx.line_start + 1;
  if lx.pos >= String.length lx.src then EOF
  else begin
    let c = lx.src.[lx.pos] in
    if (c >= '0' && c <= '9') || (c = '-' && lx.pos + 1 < String.length lx.src
                                  && lx.src.[lx.pos + 1] >= '0'
                                  && lx.src.[lx.pos + 1] <= '9') then begin
      let start = lx.pos in
      if c = '-' then lx.pos <- lx.pos + 1;
      while
        lx.pos < String.length lx.src
        && lx.src.[lx.pos] >= '0'
        && lx.src.[lx.pos] <= '9'
      do
        lx.pos <- lx.pos + 1
      done;
      INT (int_of_string (String.sub lx.src start (lx.pos - start)))
    end
    else if is_ident_char c && not (c >= '0' && c <= '9') then begin
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let word = String.sub lx.src start (lx.pos - start) in
      if List.mem word keywords then KW word else IDENT word
    end
    else begin
      let two =
        if lx.pos + 1 < String.length lx.src then
          String.sub lx.src lx.pos 2
        else ""
      in
      match two with
      | "->" | "<=" | ">=" | "==" | "!=" | "&&" | "||" | ":=" ->
          lx.pos <- lx.pos + 2;
          PUNCT two
      | _ -> (
          match c with
          | '{' | '}' | '(' | ')' | ',' | '<' | '>' | '!' | '?' | '+' | '-'
          | '*' | '/' | '=' ->
              lx.pos <- lx.pos + 1;
              PUNCT (String.make 1 c)
          | _ -> error lx "unexpected character %C" c)
    end
  end

let peek lx =
  match lx.lookahead with
  | Some t -> t
  | None ->
      let t = scan lx in
      lx.lookahead <- Some t;
      t

let next lx =
  match lx.lookahead with
  | Some t ->
      lx.lookahead <- None;
      t
  | None -> scan lx
