(** Name resolution and translation from the parsed {!Ast.t} to a
    checkable {!Ita_ta.Network.t} plus its queries. *)

open Ita_ta

exception Elab_error of string

type query =
  | Reach_q of Ita_mc.Query.t
  | Sup_q of { clock : Guard.clock; at : Ita_mc.Query.t }
  | Deadlock_q

type srcmap = {
  proc_pos : Ast.pos array;  (** indexed by component *)
  loc_pos : Ast.pos array array;  (** [loc_pos.(comp).(loc)] *)
  edge_pos : Ast.pos array array;  (** [edge_pos.(comp).(edge)] *)
}
(** Source positions of the declarations behind each network index, for
    mapping analyzer diagnostics back to the [.ta] file. *)

type t = { net : Network.t; queries : query list; srcmap : srcmap }

val elaborate : ?validate:bool -> Ast.t -> t
(** @raise Elab_error on unresolved names, clock constraints under
    disjunction/negation, or comparisons between two clocks.
    @raise Network.Invalid_model via the builder's static checks.
    [~validate:false] skips the builder's urgent/broadcast clock-guard
    checks so the linter can diagnose them instead; such a network must
    not be model checked. *)

val load_file : ?validate:bool -> string -> t
(** Parse and elaborate. *)
