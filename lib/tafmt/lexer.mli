(** Hand-written lexer for the .ta format. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** reserved word *)
  | PUNCT of string  (** operators and punctuation *)
  | EOF

exception Lex_error of { line : int; message : string }

type t

val of_string : string -> t
val line : t -> int

(** [(line, col)] (1-based) where the most recently scanned token
    starts.  Beware the lookahead: after a [peek], this is the peeked
    token's position, so capture positions right after the [next] that
    consumes the token of interest. *)
val pos : t -> int * int
val peek : t -> token
val next : t -> token
(** Consumes and returns the current token. *)
