open Ita_ta
module Dbm = Ita_dbm.Dbm
module Bound = Ita_dbm.Bound

type bound_kind = Attained | Approached

type sup_result =
  | Sup of { value : int; kind : bound_kind; stats : Reach.stats }
  | Goal_unreachable of Reach.stats
  | Sup_budget_exhausted of { observed : int option; stats : Reach.stats }
  | Sup_unbounded of { ceiling : int; stats : Reach.stats }

let goal_sup net (q : Query.t) clock (c : Semantics.config) =
  match
    Semantics.zone_of_goal net c q.Query.guard ~comp_locs:q.Query.comp_locs
  with
  | None -> None
  | Some z -> Some (Dbm.sup z clock)

let sup ?order ?budget ?abstraction ?reduction ?bounds ?domains ?slicing ?snap
    ?(initial_ceiling = 1_000_000) ?(max_ceiling = 1 lsl 40) net ~at ~clock =
  (* slice once, before the ceiling loop: the cone is seeded with the
     goal plus the measured clock, so the sup is taken over exactly the
     same runs — the exploration below runs on the reduced network and
     needs no index translation of its own *)
  let mode =
    match slicing with Some s -> s | None -> Reach.default_slicing ()
  in
  let sl, net, at = Reach.slice_query mode ~extra_clocks:[ clock ] net at in
  let clock =
    match Ita_analysis.Slice.map_clock sl clock with
    | Some c -> c
    | None -> assert false (* the measured clock seeds the cone *)
  in
  let rec attempt ceiling =
    let best = ref None in
    let improve b =
      match !best with
      | None -> best := Some b
      | Some b' -> if Bound.lt_bound b' b then best := Some b
    in
    let on_store c =
      match goal_sup net at clock c with
      | None -> ()
      | Some b -> improve b
    in
    let extra_bounds = (clock, ceiling) :: Query.clock_constants net at in
    let last_snap = ref None in
    let explore_snap =
      match snap with
      | None -> None
      | Some _ -> Some (fun s -> last_snap := Some s)
    in
    let result =
      Reach.explore ?order ?budget ?abstraction ?reduction ?bounds ?domains
        ~extra_bounds ?snap:explore_snap net ~on_store
    in
    let observed () =
      match !best with
      | None -> None
      | Some b when Bound.is_infinity b -> None
      | Some b -> Some (Bound.value b)
    in
    match result with
    | `Budget_exhausted stats ->
        Sup_budget_exhausted { observed = observed (); stats }
    | `Complete stats -> (
        match !best with
        | None -> Goal_unreachable stats
        | Some b when Bound.is_infinity b || Bound.value b >= ceiling ->
            (* the sup collided with the extrapolation ceiling: it is an
               artifact of the abstraction, not a real bound *)
            if ceiling * 4 > max_ceiling then Sup_unbounded { ceiling; stats }
            else attempt (ceiling * 4)
        | Some b ->
            (* the bound is below the ceiling, so the passed list of
               this (final) attempt is the certifiable invariant *)
            (match (snap, !last_snap) with
            | Some f, Some (xnet, passed) ->
                f
                  {
                    Reach.snap_slice = sl;
                    snap_net = xnet;
                    snap_passed = passed;
                  }
            | _ -> ());
            Sup
              {
                value = Bound.value b;
                kind = (if Bound.is_strict b then Approached else Attained);
                stats;
              })
  in
  attempt initial_ceiling

type search_result = {
  lower : int option;
  upper : int option;
  runs : int;
  total_explored : int;
  total_elapsed : float;
}

let check ?order ?budget ?abstraction ?reduction ?bounds ?domains ?slicing net
    (at : Query.t) clock c =
  let q = Query.with_guard at (Guard.clock_ge clock c) in
  Reach.reach ?order ?budget ?abstraction ?reduction ?bounds ?domains ?slicing
    net q

let binary_search ?order ?budget ?abstraction ?reduction ?bounds ?domains
    ?slicing ?(hi = 1_000_000) net ~at ~clock =
  let runs = ref 0 and explored = ref 0 and elapsed = ref 0.0 in
  let note (s : Reach.stats) =
    incr runs;
    explored := !explored + s.Reach.explored;
    elapsed := !elapsed +. s.Reach.elapsed
  in
  let result lower upper =
    {
      lower;
      upper;
      runs = !runs;
      total_explored = !explored;
      total_elapsed = !elapsed;
    }
  in
  let exception Stop of search_result in
  let test c =
    match
      check ?order ?budget ?abstraction ?reduction ?bounds ?domains ?slicing
        net at clock c
    with
    | Reach.Reachable { stats; _ } ->
        note stats;
        `Reachable
    | Reach.Unreachable stats ->
        note stats;
        `Unreachable
    | Reach.Budget_exhausted stats ->
        note stats;
        `Unknown
  in
  try
    (* the goal location must be reachable at all for the search to
       mean anything *)
    let lower = ref None and upper = ref None in
    (match test 0 with
    | `Reachable -> lower := Some 0
    | `Unreachable -> raise (Stop (result None (Some 0)))
    | `Unknown -> raise (Stop (result None None)));
    (* exponential climb to an unreachable ceiling *)
    let hi = ref hi in
    let continue = ref true in
    while !continue do
      match test !hi with
      | `Reachable ->
          lower := Some !hi;
          hi := !hi * 2
      | `Unreachable ->
          upper := Some !hi;
          continue := false
      | `Unknown -> raise (Stop (result !lower None))
    done;
    (* invariant: lower reachable, upper unreachable *)
    let lo = ref (match !lower with Some l -> l | None -> 0) in
    let up = ref (match !upper with Some u -> u | None -> assert false) in
    while !up - !lo > 1 do
      let mid = !lo + ((!up - !lo) / 2) in
      match test mid with
      | `Reachable -> lo := mid
      | `Unreachable -> up := mid
      | `Unknown -> raise (Stop (result (Some !lo) (Some !up)))
    done;
    result (Some !lo) (Some !up)
  with Stop r -> r

let probe_lower ?order ?abstraction ?reduction ?bounds ?domains ?slicing net
    ~at ~clock ~budget ~start ~step =
  let runs = ref 0 and explored = ref 0 and elapsed = ref 0.0 in
  let note (s : Reach.stats) =
    incr runs;
    explored := !explored + s.Reach.explored;
    elapsed := !elapsed +. s.Reach.elapsed
  in
  let lower = ref None in
  let c = ref start in
  let continue = ref true in
  while !continue do
    match
      check ?order ?abstraction ?reduction ?bounds ?domains ?slicing ~budget
        net at clock !c
    with
    | Reach.Reachable { stats; _ } ->
        note stats;
        lower := Some !c;
        c := !c + step
    | Reach.Unreachable stats | Reach.Budget_exhausted stats ->
        note stats;
        continue := false
  done;
  {
    lower = !lower;
    upper = None;
    runs = !runs;
    total_explored = !explored;
    total_elapsed = !elapsed;
  }
