(** Forward symbolic reachability: the model checker's engine.

    Explores the zone graph with a passed list keyed on the discrete
    state (zone lists with inclusion subsumption) and a waiting list
    whose discipline is the search order.  [Bfs] gives shortest
    counterexamples; [Dfs] and [Random_dfs] are the paper's "structured
    testing" modes ("df" / "rdf" in Table 1) for finding
    counterexamples — hence WCRT lower bounds — in state spaces too
    large to exhaust. *)

open Ita_ta

type order = Bfs | Dfs | Random_dfs of int  (** seed *)

type abstraction = Semantics.abstraction = ExtraM | ExtraLU | LuSim
    (** Finite abstraction applied to zones (see {!Semantics.abstraction}).
        The default everywhere is {!default_abstraction} (normally
        [ExtraLU]); [ExtraM] is kept as a differential-testing oracle
        and for exact goal-zone bounds.  Under [LuSim] zones are stored
        unextrapolated and the passed-list antichains subsume with the
        a◁LU simulation test ({!Ita_dbm.Dbm.le_lu}) over the same
        (flow-refined when [bounds = Flow]) per-state L/U constants the
        [ExtraLU] extrapolation reads — strictly coarser pruning,
        identical verdicts and WCRTs, exact goal zones and witness
        traces. *)

type reduction = Semantics.reduction = None | Active
    (** Active-clock reduction (see {!Semantics.reduction}).  The
        default everywhere is [Active]; [None] is kept as a
        differential-testing oracle and for state-space measurements
        of the reduction itself. *)

type bounds = Static | Flow
    (** Source of the per-location L/U extrapolation bounds and of the
        variable ranges behind the packed passed-list key.  [Flow]
        (the default everywhere) runs the abstract-interpretation
        dataflow analysis ({!Ita_analysis.Flow}) first: clock bounds
        are recomputed over the live control flow with guard constants
        evaluated under the inferred intervals (never looser than the
        builder's), and each variable is packed into exactly its
        inferred range.  [Static] keeps the builder's one-shot bounds
        and the declared ranges — the differential-testing oracle and
        the "flow off" column of the benchmark. *)

type slicing = Ita_analysis.Slice.mode = Off | Coi | CoiMerge
    (** Query-directed model reduction applied before exploration (see
        {!Ita_analysis.Slice}).  The default everywhere is
        {!default_slicing} (normally [CoiMerge]): components, variables
        and clocks outside the query's backward cone of influence are
        removed and quasi-equal clocks are merged, with byte-identical
        verdicts and WCRTs.  [Coi] skips the merging; [Off] is the
        differential-testing oracle. *)

type budget = { max_states : int option; max_seconds : float option }

val parse_domains : string -> (int, string) result
(** Parse a [TAMC_DOMAINS]-style value: a positive integer, where [1]
    selects the sequential engine.  The [Error] carries the valid-value
    description the warning and the CLI converters print. *)

val parse_abstraction : string -> (abstraction, string) result
(** Parse a [TAMC_ABSTRACTION]-style value ([extram] / [extralu] /
    [lusim], case-insensitive). *)

val parse_slicing : string -> (slicing, string) result
(** Parse a [TAMC_SLICING]-style value ([off] / [coi] / [coimerge],
    case-insensitive). *)

val default_domains : unit -> int
(** Worker-domain count used when a caller passes no [?domains]: the
    [TAMC_DOMAINS] environment variable if set to a positive integer,
    else [Domain.recommended_domain_count ()].  [1] selects the
    sequential engine.  An unrecognised value falls back exactly like
    an unset one — to the machine's core count — after a one-line
    stderr warning naming the valid values. *)

val default_abstraction : unit -> abstraction
(** Abstraction used when a caller passes no [?abstraction]: the
    [TAMC_ABSTRACTION] environment variable ([extram] / [extralu] /
    [lusim], so CI can force the whole suite through any abstraction),
    else [ExtraLU].  Unrecognised values fall back to [ExtraLU] after
    a one-line stderr warning naming the valid values. *)

val default_slicing : unit -> slicing
(** Slicing mode used when a caller passes no [?slicing]: the
    [TAMC_SLICING] environment variable ([off] / [coi] / [coimerge],
    so CI can force the whole suite through the unsliced paths), else
    [CoiMerge].  Unrecognised values fall back to [CoiMerge] after a
    one-line stderr warning naming the valid values. *)

val slice_query :
  slicing ->
  ?extra_clocks:Guard.clock list ->
  Network.t ->
  Query.t ->
  Ita_analysis.Slice.t * Network.t * Query.t
(** [slice_query mode net q] computes the query-directed reduction of
    [net] (the cone is seeded with the query's components, tested
    clocks and read variables, plus [extra_clocks] — e.g. a measured
    sup clock) and returns the slice, the reduced network and the
    query translated into its index space.  Used by {!reach} and by
    {!Wcrt}; exposed for the [tamc slice] report and the test
    suites. *)

val no_budget : budget
val states : int -> budget

val seconds : float -> budget
(** Wall-clock budget — the per-job deadline of batch sweeps, where
    one diverging exploration must not stall the whole run. *)

val combine : budget -> budget -> budget
(** Tightest of both limits, dimension-wise. *)

type stats = {
  explored : int;
      (** symbolic states popped and expanded.  Schedule-dependent under
          parallel exploration: two domains may both expand a zone one
          of them later prunes. *)
  stored : int;
      (** zones resident in the passed list at the end — zones pruned
          by antichain subsumption are not counted.  Under subset
          subsumption ([ExtraM]/[ExtraLU]) deterministic at any domain
          count for complete explorations: the subsumption probe and
          insert are atomic per shard, so concurrent comparable inserts
          can never double-count.  Under [LuSim] the simulation
          quasi-order is not antisymmetric — two distinct zones can
          simulate each other, and which representative survives (hence
          the exact count) is schedule-dependent. *)
  transitions : int;  (** symbolic successors computed *)
  elapsed : float;  (** wall-clock seconds *)
  domains : int;  (** worker domains used (1 = sequential engine) *)
  steals : int;  (** frontier nodes stolen across domains (0 when sequential) *)
  subsumed_lusim : int;
      (** successor configurations discharged by the a◁LU simulation
          test — [0] unless the abstraction is [LuSim].  Like
          [explored], schedule-dependent under parallel exploration. *)
}

type step = {
  via : Semantics.label option;  (** [None] for the initial state *)
  state : Semantics.state;
}

type outcome =
  | Reachable of { witness : step list; goal_zone : Semantics.Dbm.t; stats : stats }
  | Unreachable of stats
  | Budget_exhausted of stats
      (** the goal was not found within the budget: unreachability is
          NOT established. *)

type snapshot = {
  snap_slice : Ita_analysis.Slice.t;
      (** translates states, zones and LU vectors back to the original
          network's index space *)
  snap_net : Network.t;
      (** the network the engine actually explored: sliced,
          flow-refined, clock bounds bumped with the query constants —
          the tables per-state LU vectors must be resolved against *)
  snap_passed : (Semantics.state * Semantics.Dbm.t list) list;
      (** the final passed list, sorted by discrete state with each
          antichain sorted by {!Ita_dbm.Dbm.compare} — byte-stable
          across engines and domain counts *)
}
(** Everything certificate emission ({!Cert_emit}) needs from a
    completed exploration. *)

val reach :
  ?order:order ->
  ?budget:budget ->
  ?abstraction:abstraction ->
  ?reduction:reduction ->
  ?bounds:bounds ->
  ?domains:int ->
  ?slicing:slicing ->
  ?snap:(snapshot -> unit) ->
  Network.t ->
  Query.t ->
  outcome
(** The extrapolation constants are bumped with the query's clock
    constants, so checking [y >= C] is sound for any [C].  Under the
    default [ExtraLU] the returned goal zone may be coarser than the
    exact reachable valuations (verdicts are unaffected); pass
    [~abstraction:ExtraM] when tight goal-zone bounds matter.

    [?slicing] (default {!default_slicing}) reduces the network to the
    query's cone of influence first; the verdict is unaffected.
    Witnesses, states and the goal zone are translated back to the
    original network's index space: removed components are shown at
    their initial location, removed variables at their initial value,
    removed clocks unconstrained, merged clocks equal to their
    representative.

    [?snap] fires exactly when the verdict is [Unreachable] — the only
    verdict the passed list is an inductive invariant for — with the
    {!snapshot} certificate emission consumes.

    [?domains] (default {!default_domains}) picks the engine:
    [1] is the exact sequential code path; [d > 1] explores with [d]
    worker domains over a sharded passed list.  Verdicts are identical;
    witnesses of a parallel [Reachable] are valid runs but not
    necessarily shortest, and [explored]/[transitions] counts are
    schedule-dependent.  Budgeted parallel runs are best-effort: near
    the budget boundary a run may report [Budget_exhausted] where the
    sequential engine completed, but never the converse flip of a
    definite verdict. *)

val explore :
  ?order:order ->
  ?budget:budget ->
  ?abstraction:abstraction ->
  ?reduction:reduction ->
  ?bounds:bounds ->
  ?domains:int ->
  ?extra_bounds:(Guard.clock * int) list ->
  ?snap:(Network.t * (Semantics.state * Semantics.Dbm.t list) list -> unit) ->
  Network.t ->
  on_store:(Semantics.config -> unit) ->
  [ `Complete of stats | `Budget_exhausted of stats ]
(** Full exploration, calling [on_store] once per non-subsumed symbolic
    state; used by sup-style queries and state-space measurements.
    With [domains > 1] the [on_store] calls are serialised under a
    dedicated mutex, so existing single-threaded consumers (sup
    tracking, deadlock probes) need no changes.

    [?snap] fires on [`Complete] with the explored (flow-refined,
    bumped) network and the sorted passed list; callers that slice
    themselves ({!Wcrt.sup}) assemble the full {!snapshot} from it. *)

val explore_passed :
  ?order:order ->
  ?budget:budget ->
  ?abstraction:abstraction ->
  ?reduction:reduction ->
  ?bounds:bounds ->
  ?domains:int ->
  ?extra_bounds:(Guard.clock * int) list ->
  Network.t ->
  [ `Complete of (Semantics.state * Semantics.Dbm.t list) list * stats
  | `Budget_exhausted of stats ]
(** Like {!explore} but returns the final passed list: per interned
    discrete state, the antichain of maximal zones stored for it.
    Entries are sorted by discrete state and each antichain by
    {!Ita_dbm.Dbm.compare}, so under subset subsumption
    ([ExtraM]/[ExtraLU]) a complete exploration's output is
    byte-identical at any domain count.  Under [LuSim] contents are
    only canonical up to mutual a◁LU simulation (see {!stats.stored});
    the test layer checks two-way simulation coverage instead. *)

val pp_stats : Format.formatter -> stats -> unit
val pp_witness : Network.t -> Format.formatter -> step list -> unit
