(* Certificate emission: translate a completed exploration's snapshot
   into the original-model terms the independent checker consumes.

   This is the one place where explorer-side knowledge (the slice, the
   flow-refined LU tables, active-clock reduction) is allowed to shape
   the certificate; the checker never sees any of it — it receives
   plain states, zones and vectors and re-derives every obligation. *)

open Ita_ta
module Dbm = Ita_dbm.Dbm
module Slice = Ita_analysis.Slice
module Cert = Ita_cert.Cert

(* Stored zones were normalized under active-clock reduction: clocks
   inactive at the entry's locations are pinned to 0, while the naive
   checker's successors leave them running.  Freeing them is sound —
   an inactive clock stays inactive until some edge resets it, so the
   freed antichain is still inductive — and necessary, or consecution
   would reject every certificate produced with the (default) reduction
   on.  The query's clocks are pinned always-active, so judgment bounds
   are never weakened. *)
let free_inactive (net : Network.t) (st : Semantics.state) z =
  let n = Array.length net.Network.clock_names in
  let n_comp = Array.length net.Network.automata in
  let z = Dbm.copy z in
  for x = 1 to n - 1 do
    if not net.Network.pinned.(x) then begin
      let rec live i =
        i < n_comp
        && (net.Network.active.(i).(st.Semantics.locs.(i)).(x) || live (i + 1))
      in
      if not (live 0) then Dbm.free z x
    end
  done;
  z

(* The per-state LU vectors in original clock space: merged members
   inherit their representative's bounds (their zones constrain them
   equal), removed clocks carry the -1 don't-care sentinel. *)
let unmap_lu sl snet st =
  let l', u' = Semantics.lu_bounds snet st in
  let n =
    Array.length (sl.Slice.original : Network.t).Network.clock_names
  in
  let l = Array.make n (-1) and u = Array.make n (-1) in
  l.(0) <- 0;
  u.(0) <- 0;
  for x = 1 to n - 1 do
    match Slice.map_clock sl x with
    | Some x' ->
        l.(x) <- l'.(x');
        u.(x) <- u'.(x')
    | None -> ()
  done;
  (l, u)

(* The passed list prunes with the abstraction's own relation (zone
   inclusion under the extrapolating abstractions), which is weaker
   than a◁LU — so a parallel schedule can store extra zones that an
   earlier-arriving sibling ◁LU-dominates, and the raw antichain
   content varies across domain counts.  The ◁LU-maximal subset is
   schedule-independent (◁LU is a simulation, so every run's passed
   list ◁LU-covers the same canonical zone set), dominated zones are
   redundant for every checker obligation, and mutually-similar pairs
   resolve to the first in the deterministic snapshot order — this is
   what makes invariant certificates byte-stable across domain
   counts. *)
let lu_maximal l u zones =
  let kept = ref [] in
  List.iter
    (fun z ->
      if not (List.exists (fun z' -> Dbm.le_lu l u z z') !kept) then
        kept := z :: List.filter (fun z' -> not (Dbm.le_lu l u z' z)) !kept)
    zones;
  List.sort Dbm.compare !kept

let entries_of_snapshot (snap : Reach.snapshot) : Cert.entry list =
  let sl = snap.Reach.snap_slice in
  let snet = snap.Reach.snap_net in
  List.map
    (fun (st, zones) ->
      let l, u = unmap_lu sl snet st in
      {
        Cert.st = Slice.unmap_state sl st;
        l;
        u;
        zones =
          lu_maximal l u
            (List.map
               (fun z -> Slice.unmap_zone sl (free_inactive snet st z))
               zones);
      })
    snap.Reach.snap_passed

let of_snapshot ~index ~(verdict : Cert.verdict) (snap : Reach.snapshot) :
    Cert.query_cert =
  let sl = snap.Reach.snap_slice in
  {
    Cert.index;
    verdict;
    frozen_comps = sl.Slice.removed_comps;
    removed_clocks = sl.Slice.removed_clocks;
    frozen_vars = sl.Slice.removed_vars;
    merged = sl.Slice.merged;
    entries = entries_of_snapshot snap;
  }

(* A reachable verdict certifies by replay, not by invariant: only the
   witness labels travel (already translated to original index space by
   [Reach.reach]), with the trivial mask. *)
let of_witness ~index (labels : Semantics.label list) : Cert.query_cert =
  {
    Cert.index;
    verdict = Cert.Reachable labels;
    frozen_comps = [];
    removed_clocks = [];
    frozen_vars = [];
    merged = [];
    entries = [];
  }

let make (net : Network.t) queries : Cert.t =
  { Cert.fingerprint = Cert.fingerprint net; queries }

let goal_of_query (q : Query.t) : Cert.goal =
  { Cert.comp_locs = q.Query.comp_locs; guard = q.Query.guard }
