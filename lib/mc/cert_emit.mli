(** Certificate emission: the bridge from the optimized exploration
    path to the independent checker's world.

    An {!Reach.snapshot} (or the one {!Wcrt.sup} surfaces) is
    translated entry by entry to original-model terms: discrete states
    and zones unmapped through the slice, per-state LU vectors resolved
    against the explored network's flow-refined tables, and zones
    re-widened on the clocks active-clock reduction had pinned to [0]
    — the one normalization the naive checker could not reproduce.

    Everything exploration-specific stays on this side of the fence;
    [Ita_cert.Cert.check] consumes only the plain data produced here. *)

open Ita_ta

val of_snapshot :
  index:int ->
  verdict:Ita_cert.Cert.verdict ->
  Reach.snapshot ->
  Ita_cert.Cert.query_cert
(** Build one query's certificate from a completed exploration.
    [verdict] must be [Unreachable] or [Sup] (with the {e original}
    clock index); the entries are emitted in the snapshot's sorted
    order, so certificates are byte-stable across domain counts. *)

val of_witness :
  index:int -> Semantics.label list -> Ita_cert.Cert.query_cert
(** The certificate of a reachable verdict: the witness label sequence
    (already in original index space, as {!Reach.reach} returns it)
    under the trivial mask, replayed exactly by the checker. *)

val make : Network.t -> Ita_cert.Cert.query_cert list -> Ita_cert.Cert.t
(** Assemble the file-level certificate, fingerprinting the {e
    original} network. *)

val goal_of_query : Query.t -> Ita_cert.Cert.goal
(** The query's goal in the checker's (dependency-free) representation;
    the two types are structurally identical. *)
