open Ita_ta
module Dbm = Ita_dbm.Dbm
module Vec = Ita_util.Vec
module Prng = Ita_util.Prng

type order = Bfs | Dfs | Random_dfs of int
type budget = { max_states : int option; max_seconds : float option }

let no_budget = { max_states = None; max_seconds = None }
let states n = { max_states = Some n; max_seconds = None }
let seconds s = { max_states = None; max_seconds = Some s }

let combine a b =
  let tighter merge x y =
    match (x, y) with
    | None, y -> y
    | x, None -> x
    | Some x, Some y -> Some (merge x y)
  in
  {
    max_states = tighter min a.max_states b.max_states;
    max_seconds = tighter min a.max_seconds b.max_seconds;
  }

type abstraction = Semantics.abstraction = ExtraM | ExtraLU | LuSim
type reduction = Semantics.reduction = None | Active
type bounds = Static | Flow

module Slice = Ita_analysis.Slice

type slicing = Slice.mode = Off | Coi | CoiMerge

type stats = {
  explored : int;
  stored : int;
  transitions : int;
  elapsed : float;
  domains : int;
  steals : int;
  subsumed_lusim : int;
}

type step = { via : Semantics.label option; state : Semantics.state }

type outcome =
  | Reachable of { witness : step list; goal_zone : Dbm.t; stats : stats }
  | Unreachable of stats
  | Budget_exhausted of stats

(* The environment knobs (TAMC_DOMAINS / TAMC_ABSTRACTION /
   TAMC_SLICING) are operator knobs, not an API: unrecognised values
   fall back to the default rather than fail — but loudly, on stderr,
   naming the valid values, so a typo like [extra+lu] can no longer
   silently invalidate a whole CI leg.  The pure parsers are exposed
   for the command-line converters and the unit tests. *)

let parse_domains s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some _ | Option.None ->
      Error "expected a positive integer (1 selects the sequential engine)"

let parse_abstraction s =
  match String.lowercase_ascii (String.trim s) with
  | "extram" -> Ok ExtraM
  | "extralu" -> Ok ExtraLU
  | "lusim" -> Ok LuSim
  | _ -> Error "valid values: extram, extralu, lusim"

let parse_slicing s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Ok Off
  | "coi" -> Ok Coi
  | "coimerge" -> Ok CoiMerge
  | _ -> Error "valid values: off, coi, coimerge"

let warn_env var value err fallback =
  Printf.eprintf "tamc: warning: %s=%S ignored (%s); using %s\n%!" var value
    err fallback

let env_knob var parse fallback_desc default =
  match Sys.getenv_opt var with
  | Option.None -> default ()
  | Some s when String.trim s = "" -> default ()
  | Some s -> (
      match parse s with
      | Ok v -> v
      | Error err ->
          warn_env var s err fallback_desc;
          default ())

(* The number of worker domains when the caller does not say: the
   TAMC_DOMAINS environment variable (so CI can force both engines over
   the whole test suite) or the machine's core count.  [1] selects the
   sequential engine; an invalid value falls back exactly like an unset
   one. *)
let default_domains () =
  env_knob "TAMC_DOMAINS" parse_domains "the machine's core count" (fun () ->
      max 1 (Domain.recommended_domain_count ()))

(* The abstraction when the caller does not say: the TAMC_ABSTRACTION
   environment variable (so CI can force the whole test suite through
   any abstraction) or Extra+LU. *)
let default_abstraction () =
  env_knob "TAMC_ABSTRACTION" parse_abstraction "extralu" (fun () -> ExtraLU)

(* The model-reduction mode when the caller does not say: the
   TAMC_SLICING environment variable (so CI can force the whole test
   suite through the unsliced paths) or cone-of-influence slicing plus
   quasi-equal clock merging. *)
let default_slicing () =
  env_knob "TAMC_SLICING" parse_slicing "coimerge" (fun () -> CoiMerge)

(* Discrete states are interned under a packed key: locations and
   variables bit-packed into a short int array, each variable in
   exactly the bits its (declared or flow-inferred) range needs.  The
   packing is injective over in-range states, so exploration counts are
   independent of the bound source; a value outside its inferred range
   — impossible if the dataflow analysis is sound, since the runtime
   already confines variables to their declared ranges — fails fast
   rather than corrupting the passed list. *)
module Packed_key = struct
  type t = int array

  let equal = (( = ) : int array -> int array -> bool)
  let hash (a : int array) = Hashtbl.hash a
end

module H = Hashtbl.Make (Packed_key)

let bits_needed n =
  let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
  go 0 n

let make_packer (net : Network.t) ranges =
  let nc = Array.length net.Network.automata in
  let nv = Array.length ranges in
  let loc_bits =
    Array.map
      (fun (a : Automaton.t) ->
        bits_needed (Array.length a.Automaton.locations - 1))
      net.Network.automata
  in
  let var_bits = Array.map (fun (lo, hi) -> bits_needed (hi - lo)) ranges in
  (* fields never straddle a word boundary, so the word count must come
     from the same greedy layout the packer uses, not from ceil(total/62) *)
  let words =
    let word = ref 0 and used = ref 0 in
    let account bits =
      if bits > 0 then begin
        if !used + bits > 62 then begin
          incr word;
          used := 0
        end;
        used := !used + bits
      end
    in
    Array.iter account loc_bits;
    Array.iter account var_bits;
    !word + 1
  in
  fun (st : Semantics.state) ->
    let out = Array.make words 0 in
    let word = ref 0 and used = ref 0 in
    let push bits v =
      if bits > 0 then begin
        if !used + bits > 62 then begin
          incr word;
          used := 0
        end;
        out.(!word) <- out.(!word) lor (v lsl !used);
        used := !used + bits
      end
    in
    for i = 0 to nc - 1 do
      push loc_bits.(i) st.Semantics.locs.(i)
    done;
    for v = 0 to nv - 1 do
      let lo, hi = ranges.(v) in
      let x = st.Semantics.env.(v) in
      if x < lo || x > hi then
        failwith
          (Printf.sprintf
             "Reach: variable %s = %d escapes its inferred range [%d, %d] \
              (dataflow soundness violation)"
             net.Network.var_names.(v) x lo hi);
      push var_bits.(v) (x - lo)
    done;
    out

(* One zone of the passed list.  [gen] is bumped whenever the antichain
   prunes the slot, so a waiting-list entry can compare it against the
   generation it recorded when pushed — an O(1) liveness probe instead
   of the old [List.memq] scan of the whole antichain.  In the parallel
   engine the pop-time probe reads [gen] without the shard lock: a stale
   read can only let an already-pruned zone be expanded once more, which
   costs redundant work but never soundness (its successors are subsumed
   by the pruner's). *)
type slot = { zone : Dbm.t; mutable gen : int }

let dead_slot = { zone = Dbm.zero 0; gen = -1 }

(* The passed list stores, per discrete state, the antichain of maximal
   zones seen so far, in a growable array scanned without allocating.
   [canon] is the interned discrete state: every later configuration
   with an equal state is rewritten to share it physically, so one hash
   lookup per successor replaces the former find-per-probe pattern.
   [lu] is the per-state L/U bound pair when the antichain order is the
   a◁LU simulation ([LuSim]) — every zone filed under this entry shares
   the discrete state, hence the L/U vectors, so they are resolved once
   at entry creation and [Option.None] means plain DBM inclusion. *)
type entry = {
  canon : Semantics.state;
  mutable slots : slot array;
  mutable len : int;
  lu : (int array * int array) option;
}

let entry_of lu_of passed key (st : Semantics.state) =
  match H.find_opt passed key with
  | Some e -> e
  | None ->
      let e = { canon = st; slots = [||]; len = 0; lu = lu_of st } in
      H.add passed key e;
      e

(* The antichain order: plain canonical-DBM inclusion, or a◁LU
   simulation subsumption on the unextrapolated zones. *)
let zle e (z : Dbm.t) (z' : Dbm.t) =
  match e.lu with
  | Option.None -> Dbm.subset z z'
  | Some (l, u) -> Dbm.le_lu l u z z'

let subsumed_in e (z : Dbm.t) =
  let i = ref 0 and hit = ref false in
  while (not !hit) && !i < e.len do
    if zle e z e.slots.(!i).zone then hit := true;
    incr i
  done;
  !hit

(* Insert [z], pruning stored zones it subsumes.  [resident] tracks the
   true passed-list population for the final stats. *)
let store_in e (z : Dbm.t) resident =
  let keep = ref 0 in
  for i = 0 to e.len - 1 do
    let s = e.slots.(i) in
    if zle e s.zone z then begin
      s.gen <- s.gen + 1;
      decr resident
    end
    else begin
      e.slots.(!keep) <- s;
      incr keep
    end
  done;
  e.len <- !keep;
  let s = { zone = z; gen = 0 } in
  if e.len = Array.length e.slots then begin
    let cap = max 4 (2 * e.len) in
    let slots = Array.make cap s in
    Array.blit e.slots 0 slots 0 e.len;
    e.slots <- slots
  end;
  e.slots.(e.len) <- s;
  e.len <- e.len + 1;
  incr resident;
  s

let dump_table passed acc =
  H.fold
    (fun _ e acc ->
      (e.canon, List.init e.len (fun i -> e.slots.(i).zone)) :: acc)
    passed acc

(* Certificates and differential tests need the dumped passed list to
   be byte-stable across engines, domain counts and hash-table layouts:
   sort the entries by discrete state and each antichain by the stable
   zone order. *)
let sorted_dump l =
  List.map
    (fun ((st : Semantics.state), zs) -> (st, List.sort Dbm.compare zs))
    l
  |> List.sort (fun ((a : Semantics.state), _) ((b : Semantics.state), _) ->
         Stdlib.compare
           (a.Semantics.locs, a.Semantics.env)
           (b.Semantics.locs, b.Semantics.env))

type node = {
  config : Semantics.config;
  parent : int;  (* -1 for the root *)
  via : Semantics.label option;
  slot : slot;  (* the stored zone backing this waiting entry *)
  stamp : int;  (* [slot]'s generation when the node was pushed *)
}

type waiting = { push : int -> unit; pop : unit -> int option }

let make_waiting order =
  match order with
  | Bfs ->
      let q = Queue.create () in
      { push = (fun i -> Queue.push i q); pop = (fun () -> Queue.take_opt q) }
  | Dfs | Random_dfs _ ->
      let stack = ref [] in
      {
        push = (fun i -> stack := i :: !stack);
        pop =
          (fun () ->
            match !stack with
            | [] -> None
            | i :: rest ->
                stack := rest;
                Some i);
      }

(* Both engines report through this; the witness is materialised before
   returning so the engines can use different node representations. *)
type engine_result =
  | Goal_found of step list * Dbm.t * stats
  | Space_exhausted of stats
  | Out_of_budget of stats

let witness_of nodes id =
  let rec go id acc =
    if id < 0 then acc
    else
      let n : node = Vec.get nodes id in
      go n.parent ({ via = n.via; state = n.config.Semantics.state } :: acc)
  in
  go id []

(* Sequential engine — the exact pre-parallel code path, selected by
   [~domains:1]. *)
let run_seq ~order ~budget ~abstraction ~reduction ~lu_of net ~ranges ~goal
    ~on_store
    : engine_result * (unit -> (Semantics.state * Dbm.t list) list) =
  let t0 = Unix.gettimeofday () in
  let pack = make_packer net ranges in
  let nodes : node Vec.t = Vec.create () in
  let passed = H.create 4096 in
  let waiting = make_waiting order in
  let rng =
    match order with Random_dfs seed -> Some (Prng.create seed) | _ -> None
  in
  (* [resident] is the live passed-list population: incremented per
     stored zone, decremented when the antichain prunes one, so the
     final [stats.stored] reports zones actually resident at the end
     rather than the historical store count. *)
  let explored = ref 0 and transitions = ref 0 and resident = ref 0 in
  let lusim = ref 0 in
  let stats () =
    {
      explored = !explored;
      stored = !resident;
      transitions = !transitions;
      elapsed = Unix.gettimeofday () -. t0;
      domains = 1;
      steals = 0;
      subsumed_lusim = !lusim;
    }
  in
  let over_budget () =
    (match budget.max_states with Some m -> !explored >= m | None -> false)
    || match budget.max_seconds with
       | Some s -> Unix.gettimeofday () -. t0 > s
       | None -> false
  in
  let dump () = sorted_dump (dump_table passed []) in
  let exception Found of int * Dbm.t in
  (* States enter the passed list when pushed (not when popped): later
     duplicates are subsumed away before they ever occupy the waiting
     list.  A pushed state whose zone got pruned by a larger newcomer
     is skipped at pop time — the newcomer covers its successors. *)
  let add via parent (c : Semantics.config) =
    match goal c with
    | Some gz ->
        let id =
          Vec.push nodes { config = c; parent; via; slot = dead_slot; stamp = 0 }
        in
        raise (Found (id, gz))
    | None ->
        let e =
          entry_of lu_of passed (pack c.Semantics.state) c.Semantics.state
        in
        if subsumed_in e c.Semantics.zone then begin
          if e.lu <> Option.None then incr lusim
        end
        else begin
          (* intern the discrete state: revisits of this entry now share
             it physically, so equality short-circuits on [==] *)
          let c =
            if c.Semantics.state == e.canon then c
            else { c with Semantics.state = e.canon }
          in
          let s = store_in e c.Semantics.zone resident in
          on_store c;
          let id = Vec.push nodes { config = c; parent; via; slot = s; stamp = s.gen } in
          waiting.push id
        end
  in
  try
    add Option.None (-1) (Semantics.initial ~abstraction ~reduction net);
    let continue = ref true in
    while !continue do
      match waiting.pop () with
      | None -> continue := false
      | Some id ->
          let n = Vec.get nodes id in
          if n.slot.gen = n.stamp then begin
            incr explored;
            if over_budget () then raise Exit;
            let succs =
              Array.of_list
                (Semantics.successors ~abstraction ~reduction net n.config)
            in
            (match rng with Some g -> Prng.shuffle g succs | None -> ());
            Array.iter
              (fun (label, c') ->
                incr transitions;
                add (Some label) id c')
              succs
          end
    done;
    (Space_exhausted (stats ()), dump)
  with
  | Found (id, gz) -> (Goal_found (witness_of nodes id, gz, stats ()), dump)
  | Exit -> (Out_of_budget (stats ()), dump)

(* Parallel engine: the passed list is split into [n_shards] shards
   keyed by the packed-state hash, each an independent mutex-protected
   antichain table with its own resident counter; the subsumption probe
   and the insert happen under one lock acquisition, so two domains
   racing on comparable zones can never both store (which would
   double-count [stored] and leave a non-antichain passed list).  Each
   domain owns a deque of waiting nodes — LIFO for the owner, FIFO for
   thieves, so stolen work is old (near the root, likely large subtrees)
   and local work is cache-hot.  Termination is a global count of
   pushed-but-not-yet-expanded nodes: a domain only quits when every
   deque it probed was empty and that count is zero.

   Determinism: successor computation is a pure function of the popped
   configuration, and zone storage is monotone — a zone is dropped only
   when a superset zone is (already or concurrently) stored.  The fully
   explored passed list is therefore the set of maximal zones of the
   closure of the initial configuration under successors, independent
   of exploration order, so verdicts, WCRT suprema, final antichain
   contents and the final [stored] count all match the sequential
   engine exactly.  [explored]/[transitions] are genuinely
   schedule-dependent (two domains may both expand a zone that one of
   them later prunes) and are reported as observed. *)
module Par = struct
  module Deque = struct
    type 'a t = {
      lock : Mutex.t;
      mutable buf : 'a option array;
      mutable head : int;
      mutable len : int;
    }

    let create () =
      {
        lock = Mutex.create ();
        buf = Array.make 64 Option.None;
        head = 0;
        len = 0;
      }

    let push t x =
      Mutex.lock t.lock;
      let cap = Array.length t.buf in
      if t.len = cap then begin
        let buf = Array.make (2 * cap) Option.None in
        for i = 0 to t.len - 1 do
          buf.(i) <- t.buf.((t.head + i) mod cap)
        done;
        t.buf <- buf;
        t.head <- 0
      end;
      t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
      t.len <- t.len + 1;
      Mutex.unlock t.lock

    (* owner end: newest first, keeps the working set cache-hot *)
    let pop t =
      Mutex.lock t.lock;
      let r =
        if t.len = 0 then Option.None
        else begin
          let i = (t.head + t.len - 1) mod Array.length t.buf in
          let x = t.buf.(i) in
          t.buf.(i) <- Option.None;
          t.len <- t.len - 1;
          x
        end
      in
      Mutex.unlock t.lock;
      r

    (* thief end: oldest first *)
    let steal t =
      Mutex.lock t.lock;
      let r =
        if t.len = 0 then Option.None
        else begin
          let x = t.buf.(t.head) in
          t.buf.(t.head) <- Option.None;
          t.head <- (t.head + 1) mod Array.length t.buf;
          t.len <- t.len - 1;
          x
        end
      in
      Mutex.unlock t.lock;
      r
  end

  type shard = { s_lock : Mutex.t; s_table : entry H.t; s_resident : int ref }

  (* Waiting nodes carry parent pointers instead of indices into a
     shared vector: witness reconstruction needs no synchronisation. *)
  type pnode = {
    pconfig : Semantics.config;
    pparent : pnode option;
    pvia : Semantics.label option;
    pslot : slot;
    pstamp : int;
  }

  type pstop =
    | Pfound of pnode * Dbm.t
    | Pbudget
    | Perror of exn * Printexc.raw_backtrace

  exception Halt

  let n_shards = 64

  let pwitness n =
    let rec go n acc =
      match n with
      | Option.None -> acc
      | Some p ->
          go p.pparent
            ({ via = p.pvia; state = p.pconfig.Semantics.state } :: acc)
    in
    go (Some n) []

  let run ~order ~budget ~abstraction ~reduction ~lu_of ~domains net ~ranges
      ~goal ~on_store =
    let t0 = Unix.gettimeofday () in
    let pack = make_packer net ranges in
    let shards =
      Array.init n_shards (fun _ ->
          { s_lock = Mutex.create (); s_table = H.create 256; s_resident = ref 0 })
    in
    let deques = Array.init domains (fun _ -> Deque.create ()) in
    let stop : pstop option Atomic.t = Atomic.make Option.None in
    let pending = Atomic.make 0 in
    let explored = Atomic.make 0 in
    let transitions = Array.make domains 0 in
    let steals = Array.make domains 0 in
    let lusim = Array.make domains 0 in
    (* serialises user callbacks: [on_store] consumers (sup tracking,
       deadlock probes) stay race-free without changing their API *)
    let cb_lock = Mutex.create () in
    let halt r =
      ignore (Atomic.compare_and_set stop Option.None (Some r));
      raise Halt
    in
    let over_budget e =
      (match budget.max_states with Some m -> e >= m | None -> false)
      || match budget.max_seconds with
         | Some s -> Unix.gettimeofday () -. t0 > s
         | None -> false
    in
    let add w via parent (c : Semantics.config) =
      match goal c with
      | Some gz ->
          halt
            (Pfound
               ( { pconfig = c; pparent = parent; pvia = via; pslot = dead_slot;
                   pstamp = 0 },
                 gz ))
      | None ->
          let key = pack c.Semantics.state in
          let sh = shards.(Packed_key.hash key land (n_shards - 1)) in
          Mutex.lock sh.s_lock;
          let e = entry_of lu_of sh.s_table key c.Semantics.state in
          if subsumed_in e c.Semantics.zone then begin
            Mutex.unlock sh.s_lock;
            if e.lu <> Option.None then lusim.(w) <- lusim.(w) + 1
          end
          else begin
            let c =
              if c.Semantics.state == e.canon then c
              else { c with Semantics.state = e.canon }
            in
            let s = store_in e c.Semantics.zone sh.s_resident in
            Mutex.unlock sh.s_lock;
            Mutex.lock cb_lock;
            (match on_store c with
            | () -> Mutex.unlock cb_lock
            | exception ex ->
                Mutex.unlock cb_lock;
                raise ex);
            Atomic.incr pending;
            (* a fresh slot always starts at generation 0; by the time
               anyone dereferences [s.gen] it may already be pruned,
               which the pop-time probe detects *)
            Deque.push deques.(w)
              { pconfig = c; pparent = parent; pvia = via; pslot = s; pstamp = 0 }
          end
    in
    let process w rng (n : pnode) =
      if n.pslot.gen = n.pstamp then begin
        let e = 1 + Atomic.fetch_and_add explored 1 in
        if over_budget e then halt Pbudget;
        let succs =
          Array.of_list
            (Semantics.successors ~abstraction ~reduction net n.pconfig)
        in
        (match rng with Some g -> Prng.shuffle g succs | None -> ());
        Array.iter
          (fun (label, c') ->
            transitions.(w) <- transitions.(w) + 1;
            add w (Some label) (Some n) c')
          succs
      end
    in
    let worker w () =
      let rng =
        match order with
        | Random_dfs seed -> Some (Prng.create (seed + (31 * w) + 1))
        | Bfs | Dfs -> Option.None
      in
      try
        let rec next () =
          if Atomic.get stop <> Option.None then Option.None
          else
            match Deque.pop deques.(w) with
            | Some _ as r -> r
            | None -> (
                let stolen = ref Option.None in
                let i = ref 1 in
                while !stolen = Option.None && !i < domains do
                  (match Deque.steal deques.((w + !i) mod domains) with
                  | Some _ as r ->
                      steals.(w) <- steals.(w) + 1;
                      stolen := r
                  | None -> ());
                  incr i
                done;
                match !stolen with
                | Some _ as r -> r
                | None ->
                    if Atomic.get pending = 0 then Option.None
                    else begin
                      Domain.cpu_relax ();
                      next ()
                    end)
        in
        let rec loop () =
          match next () with
          | None -> ()
          | Some n ->
              process w rng n;
              (* decremented only after the node's successors are all
                 pushed (and counted), so [pending] can never dip to
                 zero while reachable work exists *)
              Atomic.decr pending;
              loop ()
        in
        loop ()
      with
      | Halt -> ()
      | ex ->
          let bt = Printexc.get_raw_backtrace () in
          ignore
            (Atomic.compare_and_set stop Option.None (Some (Perror (ex, bt))))
    in
    (try add 0 Option.None Option.None (Semantics.initial ~abstraction ~reduction net)
     with Halt -> ());
    if Atomic.get stop = Option.None then begin
      let doms =
        Array.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
      in
      worker 0 ();
      Array.iter Domain.join doms
    end;
    let stats () =
      {
        explored = Atomic.get explored;
        stored = Array.fold_left (fun a sh -> a + !(sh.s_resident)) 0 shards;
        transitions = Array.fold_left ( + ) 0 transitions;
        elapsed = Unix.gettimeofday () -. t0;
        domains;
        steals = Array.fold_left ( + ) 0 steals;
        subsumed_lusim = Array.fold_left ( + ) 0 lusim;
      }
    in
    let dump () =
      sorted_dump
        (Array.fold_left (fun acc sh -> dump_table sh.s_table acc) [] shards)
    in
    match Atomic.get stop with
    | Some (Perror (e, bt)) -> Printexc.raise_with_backtrace e bt
    | Some (Pfound (n, gz)) -> (Goal_found (pwitness n, gz, stats ()), dump)
    | Some Pbudget -> (Out_of_budget (stats ()), dump)
    | None -> (Space_exhausted (stats ()), dump)
end

(* Everything certificate emission needs from a completed exploration:
   the slice that translates back to original index space, the network
   the engine actually explored (sliced, flow-refined, query-bumped —
   the per-state LU vectors must come from {e these} tables), and the
   sorted passed-list dump. *)
type snapshot = {
  snap_slice : Slice.t;
  snap_net : Network.t;
  snap_passed : (Semantics.state * Dbm.t list) list;
}

(* Core loop shared by [reach], [explore] and [explore_passed].  [goal]
   maps a fresh configuration to its non-empty goal zone when it hits
   the target; goal checking happens at state creation time so that
   counterexamples are found as early as possible (UPPAAL does the
   same).  Returns the result, the passed-list dump thunk and the
   network as explored (after flow refinement). *)
let run ?(order = Bfs) ?(budget = no_budget) ?abstraction
    ?(reduction = Active) ?(bounds = Flow) ?domains net ~goal ~on_store () =
  let abstraction =
    match abstraction with Some a -> a | None -> default_abstraction ()
  in
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  (* the dataflow analysis tightens the per-location L/U clock bounds
     (read by [Semantics.extrapolate]) and shrinks the variable ranges
     the packed state key allots bits to; [Static] keeps the builder's
     one-shot bounds and the declared ranges as a differential oracle *)
  let net, ranges =
    match bounds with
    | Static -> (net, net.Network.var_ranges)
    | Flow ->
        let fa = Ita_analysis.Flow.analyze net in
        ( Ita_analysis.Flow.refine_lu fa net,
          Ita_analysis.Flow.global_ranges fa )
  in
  (* Under [LuSim] the antichains order zones by a◁LU simulation over
     the per-state L/U constants — resolved against the (possibly
     flow-refined) [net] above, so the subsumption test and the
     [ExtraLU] extrapolation always read the same bounds *)
  let lu_of =
    match abstraction with
    | LuSim ->
        fun (st : Semantics.state) -> Some (Semantics.lu_bounds net st)
    | ExtraM | ExtraLU -> fun _ -> Option.None
  in
  let result, dump =
    if domains = 1 then
      run_seq ~order ~budget ~abstraction ~reduction ~lu_of net ~ranges ~goal
        ~on_store
    else
      Par.run ~order ~budget ~abstraction ~reduction ~lu_of ~domains net
        ~ranges ~goal ~on_store
  in
  (result, dump, net)

(* The observation seed of a query's backward cone: its components, the
   clocks its guard tests, the variables it reads. *)
let goal_of_query ~extra_clocks (q : Query.t) : Slice.goal =
  {
    Slice.g_comps = List.map fst q.Query.comp_locs;
    g_clocks =
      extra_clocks
      @ List.map
          (fun (a : Guard.atom) -> a.Guard.clock)
          q.Query.guard.Guard.clocks;
    g_vars =
      Expr.bvars q.Query.guard.Guard.data
      @ List.concat_map
          (fun (a : Guard.atom) -> Expr.ivars a.Guard.bound)
          q.Query.guard.Guard.clocks;
  }

let slice_query mode ?(extra_clocks = []) net (q : Query.t) =
  let sl = Slice.make ~mode net (goal_of_query ~extra_clocks q) in
  let q' =
    if sl.Slice.identity then q
    else
      {
        Query.comp_locs =
          List.map
            (fun (ci, li) ->
              match Slice.map_comp sl ci with
              | Some ci' -> (ci', li)
              | Option.None -> assert false (* goal components are kept *))
            q.Query.comp_locs;
        guard = Slice.map_guard sl q.Query.guard;
      }
  in
  (sl, sl.Slice.net, q')

let reach ?order ?budget ?abstraction ?reduction ?bounds ?domains ?slicing
    ?snap net (q : Query.t) =
  let mode =
    match slicing with Some s -> s | Option.None -> default_slicing ()
  in
  let sl, net, q = slice_query mode net q in
  let net =
    List.fold_left
      (fun net (x, c) -> Network.bump_clock_bound net x c)
      net
      (Query.clock_constants net q)
  in
  let goal c =
    Semantics.zone_of_goal net c q.Query.guard ~comp_locs:q.Query.comp_locs
  in
  match
    run ?order ?budget ?abstraction ?reduction ?bounds ?domains net ~goal
      ~on_store:(fun _ -> ())
      ()
  with
  | Goal_found (witness, gz, stats), _, _ ->
      let witness =
        List.map
          (fun (st : step) ->
            {
              via = Option.map (Slice.unmap_label sl) st.via;
              state = Slice.unmap_state sl st.state;
            })
          witness
      in
      Reachable { witness; goal_zone = Slice.unmap_zone sl gz; stats }
  | Space_exhausted stats, dump, xnet ->
      (* the verdict is an invariant claim: surface everything a
         certificate needs while the passed list is still alive *)
      (match snap with
      | Some f ->
          f { snap_slice = sl; snap_net = xnet; snap_passed = dump () }
      | Option.None -> ());
      Unreachable stats
  | Out_of_budget stats, _, _ -> Budget_exhausted stats

let explore ?order ?budget ?abstraction ?reduction ?bounds ?domains
    ?(extra_bounds = []) ?snap net ~on_store =
  let net =
    List.fold_left
      (fun net (x, c) -> Network.bump_clock_bound net x c)
      net extra_bounds
  in
  match
    run ?order ?budget ?abstraction ?reduction ?bounds ?domains net
      ~goal:(fun _ -> Option.None)
      ~on_store ()
  with
  | Goal_found _, _, _ -> assert false
  | Space_exhausted stats, dump, xnet ->
      (match snap with
      | Some f -> f (xnet, dump ())
      | Option.None -> ());
      `Complete stats
  | Out_of_budget stats, _, _ -> `Budget_exhausted stats

let explore_passed ?order ?budget ?abstraction ?reduction ?bounds ?domains
    ?(extra_bounds = []) net =
  let net =
    List.fold_left
      (fun net (x, c) -> Network.bump_clock_bound net x c)
      net extra_bounds
  in
  match
    run ?order ?budget ?abstraction ?reduction ?bounds ?domains net
      ~goal:(fun _ -> Option.None)
      ~on_store:(fun _ -> ())
      ()
  with
  | Goal_found _, _, _ -> assert false
  | Space_exhausted stats, dump, _ -> `Complete (dump (), stats)
  | Out_of_budget stats, _, _ -> `Budget_exhausted stats

let pp_stats ppf s =
  Format.fprintf ppf "explored %d, stored %d, transitions %d, %.3fs"
    s.explored s.stored s.transitions s.elapsed;
  if s.subsumed_lusim > 0 then
    Format.fprintf ppf " (lusim-subsumed %d)" s.subsumed_lusim;
  if s.domains > 1 then
    Format.fprintf ppf " (%d domains, %d steals)" s.domains s.steals

let pp_witness net ppf steps =
  List.iteri
    (fun i { via; state } ->
      (match via with
      | None -> Format.fprintf ppf "@[<h>%3d. (initial) " i
      | Some l ->
          Format.fprintf ppf "@[<h>%3d. [%a] " i (Semantics.pp_label net) l);
      Semantics.pp_state net ppf state;
      Format.fprintf ppf "@]@.")
    steps
