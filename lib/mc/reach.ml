open Ita_ta
module Dbm = Ita_dbm.Dbm
module Vec = Ita_util.Vec
module Prng = Ita_util.Prng

type order = Bfs | Dfs | Random_dfs of int
type budget = { max_states : int option; max_seconds : float option }

let no_budget = { max_states = None; max_seconds = None }
let states n = { max_states = Some n; max_seconds = None }
let seconds s = { max_states = None; max_seconds = Some s }

let combine a b =
  let tighter merge x y =
    match (x, y) with
    | None, y -> y
    | x, None -> x
    | Some x, Some y -> Some (merge x y)
  in
  {
    max_states = tighter min a.max_states b.max_states;
    max_seconds = tighter min a.max_seconds b.max_seconds;
  }

type abstraction = Semantics.abstraction = ExtraM | ExtraLU
type reduction = Semantics.reduction = None | Active
type bounds = Static | Flow

type stats = {
  explored : int;
  stored : int;
  transitions : int;
  elapsed : float;
}

type step = { via : Semantics.label option; state : Semantics.state }

type outcome =
  | Reachable of { witness : step list; goal_zone : Dbm.t; stats : stats }
  | Unreachable of stats
  | Budget_exhausted of stats

(* Discrete states are interned under a packed key: locations and
   variables bit-packed into a short int array, each variable in
   exactly the bits its (declared or flow-inferred) range needs.  The
   packing is injective over in-range states, so exploration counts are
   independent of the bound source; a value outside its inferred range
   — impossible if the dataflow analysis is sound, since the runtime
   already confines variables to their declared ranges — fails fast
   rather than corrupting the passed list. *)
module Packed_key = struct
  type t = int array

  let equal = (( = ) : int array -> int array -> bool)
  let hash (a : int array) = Hashtbl.hash a
end

module H = Hashtbl.Make (Packed_key)

let bits_needed n =
  let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
  go 0 n

let make_packer (net : Network.t) ranges =
  let nc = Array.length net.Network.automata in
  let nv = Array.length ranges in
  let loc_bits =
    Array.map
      (fun (a : Automaton.t) ->
        bits_needed (Array.length a.Automaton.locations - 1))
      net.Network.automata
  in
  let var_bits = Array.map (fun (lo, hi) -> bits_needed (hi - lo)) ranges in
  (* fields never straddle a word boundary, so the word count must come
     from the same greedy layout the packer uses, not from ceil(total/62) *)
  let words =
    let word = ref 0 and used = ref 0 in
    let account bits =
      if bits > 0 then begin
        if !used + bits > 62 then begin
          incr word;
          used := 0
        end;
        used := !used + bits
      end
    in
    Array.iter account loc_bits;
    Array.iter account var_bits;
    !word + 1
  in
  fun (st : Semantics.state) ->
    let out = Array.make words 0 in
    let word = ref 0 and used = ref 0 in
    let push bits v =
      if bits > 0 then begin
        if !used + bits > 62 then begin
          incr word;
          used := 0
        end;
        out.(!word) <- out.(!word) lor (v lsl !used);
        used := !used + bits
      end
    in
    for i = 0 to nc - 1 do
      push loc_bits.(i) st.Semantics.locs.(i)
    done;
    for v = 0 to nv - 1 do
      let lo, hi = ranges.(v) in
      let x = st.Semantics.env.(v) in
      if x < lo || x > hi then
        failwith
          (Printf.sprintf
             "Reach: variable %s = %d escapes its inferred range [%d, %d] \
              (dataflow soundness violation)"
             net.Network.var_names.(v) x lo hi);
      push var_bits.(v) (x - lo)
    done;
    out

(* One zone of the passed list.  [gen] is bumped whenever the antichain
   prunes the slot, so a waiting-list entry can compare it against the
   generation it recorded when pushed — an O(1) liveness probe instead
   of the old [List.memq] scan of the whole antichain. *)
type slot = { zone : Dbm.t; mutable gen : int }

let dead_slot = { zone = Dbm.zero 0; gen = -1 }

(* The passed list stores, per discrete state, the antichain of maximal
   zones seen so far, in a growable array scanned without allocating.
   [canon] is the interned discrete state: every later configuration
   with an equal state is rewritten to share it physically, so one hash
   lookup per successor replaces the former find-per-probe pattern. *)
type entry = {
  canon : Semantics.state;
  mutable slots : slot array;
  mutable len : int;
}

let entry_of passed key (st : Semantics.state) =
  match H.find_opt passed key with
  | Some e -> e
  | None ->
      let e = { canon = st; slots = [||]; len = 0 } in
      H.add passed key e;
      e

let subsumed_in e (z : Dbm.t) =
  let i = ref 0 and hit = ref false in
  while (not !hit) && !i < e.len do
    if Dbm.subset z e.slots.(!i).zone then hit := true;
    incr i
  done;
  !hit

(* Insert [z], pruning stored zones it subsumes.  [resident] tracks the
   true passed-list population for the final stats. *)
let store_in e (z : Dbm.t) resident =
  let keep = ref 0 in
  for i = 0 to e.len - 1 do
    let s = e.slots.(i) in
    if Dbm.subset s.zone z then begin
      s.gen <- s.gen + 1;
      decr resident
    end
    else begin
      e.slots.(!keep) <- s;
      incr keep
    end
  done;
  e.len <- !keep;
  let s = { zone = z; gen = 0 } in
  if e.len = Array.length e.slots then begin
    let cap = max 4 (2 * e.len) in
    let slots = Array.make cap s in
    Array.blit e.slots 0 slots 0 e.len;
    e.slots <- slots
  end;
  e.slots.(e.len) <- s;
  e.len <- e.len + 1;
  incr resident;
  s

type node = {
  config : Semantics.config;
  parent : int;  (* -1 for the root *)
  via : Semantics.label option;
  slot : slot;  (* the stored zone backing this waiting entry *)
  stamp : int;  (* [slot]'s generation when the node was pushed *)
}

type waiting = { push : int -> unit; pop : unit -> int option }

let make_waiting order =
  match order with
  | Bfs ->
      let q = Queue.create () in
      { push = (fun i -> Queue.push i q); pop = (fun () -> Queue.take_opt q) }
  | Dfs | Random_dfs _ ->
      let stack = ref [] in
      {
        push = (fun i -> stack := i :: !stack);
        pop =
          (fun () ->
            match !stack with
            | [] -> None
            | i :: rest ->
                stack := rest;
                Some i);
      }

type engine_result =
  | Goal_found of node Vec.t * int * Dbm.t * stats
  | Space_exhausted of stats
  | Out_of_budget of stats

(* Core loop shared by [reach] and [explore].  [goal] maps a fresh
   configuration to its non-empty goal zone when it hits the target;
   goal checking happens at state creation time so that counterexamples
   are found as early as possible (UPPAAL does the same). *)
let run ?(order = Bfs) ?(budget = no_budget) ?(abstraction = ExtraLU)
    ?(reduction = Active) ?(bounds = Flow) net ~goal ~on_store () :
    engine_result =
  let t0 = Unix.gettimeofday () in
  (* the dataflow analysis tightens the per-location L/U clock bounds
     (read by [Semantics.extrapolate]) and shrinks the variable ranges
     the packed state key allots bits to; [Static] keeps the builder's
     one-shot bounds and the declared ranges as a differential oracle *)
  let net, ranges =
    match bounds with
    | Static -> (net, net.Network.var_ranges)
    | Flow ->
        let fa = Ita_analysis.Flow.analyze net in
        ( Ita_analysis.Flow.refine_lu fa net,
          Ita_analysis.Flow.global_ranges fa )
  in
  let pack = make_packer net ranges in
  let nodes : node Vec.t = Vec.create () in
  let passed = H.create 4096 in
  let waiting = make_waiting order in
  let rng =
    match order with Random_dfs seed -> Some (Prng.create seed) | _ -> None
  in
  (* [resident] is the live passed-list population: incremented per
     stored zone, decremented when the antichain prunes one, so the
     final [stats.stored] reports zones actually resident at the end
     rather than the historical store count. *)
  let explored = ref 0 and transitions = ref 0 and resident = ref 0 in
  let stats () =
    {
      explored = !explored;
      stored = !resident;
      transitions = !transitions;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  let over_budget () =
    (match budget.max_states with Some m -> !explored >= m | None -> false)
    || match budget.max_seconds with
       | Some s -> Unix.gettimeofday () -. t0 > s
       | None -> false
  in
  let exception Found of int * Dbm.t in
  (* States enter the passed list when pushed (not when popped): later
     duplicates are subsumed away before they ever occupy the waiting
     list.  A pushed state whose zone got pruned by a larger newcomer
     is skipped at pop time — the newcomer covers its successors. *)
  let add via parent (c : Semantics.config) =
    match goal c with
    | Some gz ->
        let id =
          Vec.push nodes { config = c; parent; via; slot = dead_slot; stamp = 0 }
        in
        raise (Found (id, gz))
    | None ->
        let e = entry_of passed (pack c.Semantics.state) c.Semantics.state in
        if not (subsumed_in e c.Semantics.zone) then begin
          (* intern the discrete state: revisits of this entry now share
             it physically, so equality short-circuits on [==] *)
          let c =
            if c.Semantics.state == e.canon then c
            else { c with Semantics.state = e.canon }
          in
          let s = store_in e c.Semantics.zone resident in
          on_store c;
          let id = Vec.push nodes { config = c; parent; via; slot = s; stamp = s.gen } in
          waiting.push id
        end
  in
  try
    add Option.None (-1) (Semantics.initial ~abstraction ~reduction net);
    let continue = ref true in
    while !continue do
      match waiting.pop () with
      | None -> continue := false
      | Some id ->
          let n = Vec.get nodes id in
          if n.slot.gen = n.stamp then begin
            incr explored;
            if over_budget () then raise Exit;
            let succs =
              Array.of_list
                (Semantics.successors ~abstraction ~reduction net n.config)
            in
            (match rng with Some g -> Prng.shuffle g succs | None -> ());
            Array.iter
              (fun (label, c') ->
                incr transitions;
                add (Some label) id c')
              succs
          end
    done;
    Space_exhausted (stats ())
  with
  | Found (id, gz) -> Goal_found (nodes, id, gz, stats ())
  | Exit -> Out_of_budget (stats ())

let witness_of nodes id =
  let rec go id acc =
    if id < 0 then acc
    else
      let n : node = Vec.get nodes id in
      go n.parent ({ via = n.via; state = n.config.Semantics.state } :: acc)
  in
  go id []

let reach ?order ?budget ?abstraction ?reduction ?bounds net (q : Query.t) =
  let net =
    List.fold_left
      (fun net (x, c) -> Network.bump_clock_bound net x c)
      net
      (Query.clock_constants net q)
  in
  let goal c =
    Semantics.zone_of_goal net c q.Query.guard ~comp_locs:q.Query.comp_locs
  in
  match
    run ?order ?budget ?abstraction ?reduction ?bounds net ~goal
      ~on_store:(fun _ -> ())
      ()
  with
  | Goal_found (nodes, id, gz, stats) ->
      Reachable { witness = witness_of nodes id; goal_zone = gz; stats }
  | Space_exhausted stats -> Unreachable stats
  | Out_of_budget stats -> Budget_exhausted stats

let explore ?order ?budget ?abstraction ?reduction ?bounds
    ?(extra_bounds = []) net ~on_store =
  let net =
    List.fold_left
      (fun net (x, c) -> Network.bump_clock_bound net x c)
      net extra_bounds
  in
  match
    run ?order ?budget ?abstraction ?reduction ?bounds net
      ~goal:(fun _ -> Option.None)
      ~on_store ()
  with
  | Goal_found _ -> assert false
  | Space_exhausted stats -> `Complete stats
  | Out_of_budget stats -> `Budget_exhausted stats

let pp_stats ppf s =
  Format.fprintf ppf "explored %d, stored %d, transitions %d, %.3fs"
    s.explored s.stored s.transitions s.elapsed

let pp_witness net ppf steps =
  List.iteri
    (fun i { via; state } ->
      (match via with
      | None -> Format.fprintf ppf "@[<h>%3d. (initial) " i
      | Some l ->
          Format.fprintf ppf "@[<h>%3d. [%a] " i (Semantics.pp_label net) l);
      Semantics.pp_state net ppf state;
      Format.fprintf ppf "@]@.")
    steps
