open Ita_ta
module Dbm = Ita_dbm.Dbm
module Vec = Ita_util.Vec
module Prng = Ita_util.Prng

type order = Bfs | Dfs | Random_dfs of int
type budget = { max_states : int option; max_seconds : float option }

let no_budget = { max_states = None; max_seconds = None }
let states n = { max_states = Some n; max_seconds = None }
let seconds s = { max_states = None; max_seconds = Some s }

let combine a b =
  let tighter merge x y =
    match (x, y) with
    | None, y -> y
    | x, None -> x
    | Some x, Some y -> Some (merge x y)
  in
  {
    max_states = tighter min a.max_states b.max_states;
    max_seconds = tighter min a.max_seconds b.max_seconds;
  }

type stats = {
  explored : int;
  stored : int;
  transitions : int;
  elapsed : float;
}

type step = { via : Semantics.label option; state : Semantics.state }

type outcome =
  | Reachable of { witness : step list; goal_zone : Dbm.t; stats : stats }
  | Unreachable of stats
  | Budget_exhausted of stats

module State_key = struct
  type t = Semantics.state

  let equal = Semantics.state_equal
  let hash = Semantics.state_hash
end

module H = Hashtbl.Make (State_key)

type node = {
  config : Semantics.config;
  parent : int;  (* -1 for the root *)
  via : Semantics.label option;
}

(* The passed list stores, per discrete state, the antichain of maximal
   zones seen so far. *)
let subsumed passed (c : Semantics.config) =
  match H.find_opt passed c.Semantics.state with
  | None -> false
  | Some zones -> List.exists (fun z -> Dbm.subset c.Semantics.zone z) !zones

let store passed (c : Semantics.config) =
  let z = c.Semantics.zone in
  match H.find_opt passed c.Semantics.state with
  | None -> H.add passed c.Semantics.state (ref [ z ])
  | Some zones -> zones := z :: List.filter (fun z' -> not (Dbm.subset z' z)) !zones

type waiting = { push : int -> unit; pop : unit -> int option }

let make_waiting order =
  match order with
  | Bfs ->
      let q = Queue.create () in
      { push = (fun i -> Queue.push i q); pop = (fun () -> Queue.take_opt q) }
  | Dfs | Random_dfs _ ->
      let stack = ref [] in
      {
        push = (fun i -> stack := i :: !stack);
        pop =
          (fun () ->
            match !stack with
            | [] -> None
            | i :: rest ->
                stack := rest;
                Some i);
      }

type engine_result =
  | Goal_found of node Vec.t * int * Dbm.t * stats
  | Space_exhausted of stats
  | Out_of_budget of stats

(* Core loop shared by [reach] and [explore].  [goal] maps a fresh
   configuration to its non-empty goal zone when it hits the target;
   goal checking happens at state creation time so that counterexamples
   are found as early as possible (UPPAAL does the same). *)
let run ?(order = Bfs) ?(budget = no_budget) net ~goal ~on_store () :
    engine_result =
  let t0 = Unix.gettimeofday () in
  let nodes : node Vec.t = Vec.create () in
  let passed = H.create 4096 in
  let waiting = make_waiting order in
  let rng =
    match order with Random_dfs seed -> Some (Prng.create seed) | _ -> None
  in
  let explored = ref 0 and transitions = ref 0 and stored = ref 0 in
  let stats () =
    {
      explored = !explored;
      stored = !stored;
      transitions = !transitions;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  let over_budget () =
    (match budget.max_states with Some m -> !explored >= m | None -> false)
    || match budget.max_seconds with
       | Some s -> Unix.gettimeofday () -. t0 > s
       | None -> false
  in
  let exception Found of int * Dbm.t in
  (* States enter the passed list when pushed (not when popped): later
     duplicates are subsumed away before they ever occupy the waiting
     list.  A pushed state whose zone got pruned by a larger newcomer
     is skipped at pop time — the newcomer covers its successors. *)
  let still_stored (c : Semantics.config) =
    match H.find_opt passed c.Semantics.state with
    | None -> false
    | Some zones -> List.memq c.Semantics.zone !zones
  in
  let add via parent (c : Semantics.config) =
    match goal c with
    | Some gz ->
        let id = Vec.push nodes { config = c; parent; via } in
        raise (Found (id, gz))
    | None ->
        if not (subsumed passed c) then begin
          store passed c;
          incr stored;
          on_store c;
          let id = Vec.push nodes { config = c; parent; via } in
          waiting.push id
        end
  in
  try
    add None (-1) (Semantics.initial net);
    let continue = ref true in
    while !continue do
      match waiting.pop () with
      | None -> continue := false
      | Some id ->
          let c = (Vec.get nodes id).config in
          if still_stored c then begin
            incr explored;
            if over_budget () then raise Exit;
            let succs = Array.of_list (Semantics.successors net c) in
            (match rng with Some g -> Prng.shuffle g succs | None -> ());
            Array.iter
              (fun (label, c') ->
                incr transitions;
                add (Some label) id c')
              succs
          end
    done;
    Space_exhausted (stats ())
  with
  | Found (id, gz) -> Goal_found (nodes, id, gz, stats ())
  | Exit -> Out_of_budget (stats ())

let witness_of nodes id =
  let rec go id acc =
    if id < 0 then acc
    else
      let n : node = Vec.get nodes id in
      go n.parent ({ via = n.via; state = n.config.Semantics.state } :: acc)
  in
  go id []

let reach ?order ?budget net (q : Query.t) =
  let net =
    List.fold_left
      (fun net (x, c) -> Network.bump_clock_bound net x c)
      net
      (Query.clock_constants net q)
  in
  let goal c =
    Semantics.zone_of_goal net c q.Query.guard ~comp_locs:q.Query.comp_locs
  in
  match run ?order ?budget net ~goal ~on_store:(fun _ -> ()) () with
  | Goal_found (nodes, id, gz, stats) ->
      Reachable { witness = witness_of nodes id; goal_zone = gz; stats }
  | Space_exhausted stats -> Unreachable stats
  | Out_of_budget stats -> Budget_exhausted stats

let explore ?order ?budget ?(extra_bounds = []) net ~on_store =
  let net =
    List.fold_left
      (fun net (x, c) -> Network.bump_clock_bound net x c)
      net extra_bounds
  in
  match run ?order ?budget net ~goal:(fun _ -> None) ~on_store () with
  | Goal_found _ -> assert false
  | Space_exhausted stats -> `Complete stats
  | Out_of_budget stats -> `Budget_exhausted stats

let pp_stats ppf s =
  Format.fprintf ppf "explored %d, stored %d, transitions %d, %.3fs"
    s.explored s.stored s.transitions s.elapsed

let pp_witness net ppf steps =
  List.iteri
    (fun i { via; state } ->
      (match via with
      | None -> Format.fprintf ppf "@[<h>%3d. (initial) " i
      | Some l ->
          Format.fprintf ppf "@[<h>%3d. [%a] " i (Semantics.pp_label net) l);
      Semantics.pp_state net ppf state;
      Format.fprintf ppf "@]@.")
    steps
