(** Worst-case response time extraction.

    The paper (Property 1) finds the WCRT of a measured event by a
    binary search for the smallest [C] such that
    [A[] (rstat_m.seen -> rstat_m.y < C)] holds, i.e. such that
    [seen && y >= C] is unreachable.  This module implements:

    - {!binary_search}: exactly that strategy;
    - {!sup}: a direct sup-query (explore everything, record the
      maximal value of the measured clock at the goal), usually
      cheaper — one exploration instead of ~log runs;
    - {!probe_lower}: the paper's "structured testing" fallback for
      intractable state spaces — depth-first / random-depth-first
      search for counterexamples under a state budget, which yields
      WCRT *lower* bounds (the "> 400.000 (df)" entries of Table 1).

    All values are in model time units (the paper's models use
    microseconds). *)

open Ita_ta

type bound_kind = Attained | Approached
(** [Attained]: the sup is a reachable value ([y <= c] weakly).
    [Approached]: the sup is a limit ([y < c] strictly). *)

type sup_result =
  | Sup of { value : int; kind : bound_kind; stats : Reach.stats }
  | Goal_unreachable of Reach.stats
  | Sup_budget_exhausted of { observed : int option; stats : Reach.stats }
  | Sup_unbounded of { ceiling : int; stats : Reach.stats }
      (** the sup still collided with the extrapolation ceiling at
          [max_ceiling]: the clock is (almost certainly) unbounded at
          the goal, e.g. time flows freely there. *)

val sup :
  ?order:Reach.order ->
  ?budget:Reach.budget ->
  ?abstraction:Reach.abstraction ->
  ?reduction:Reach.reduction ->
  ?bounds:Reach.bounds ->
  ?domains:int ->
  ?slicing:Reach.slicing ->
  ?snap:(Reach.snapshot -> unit) ->
  ?initial_ceiling:int ->
  ?max_ceiling:int ->
  Network.t ->
  at:Query.t ->
  clock:Guard.clock ->
  sup_result
(** [sup net ~at ~clock] explores the full zone graph and returns the
    supremum of [clock] over goal states.  The extrapolation ceiling
    for the measured clock starts at [initial_ceiling] (default
    [1_000_000]) and is multiplied by 4 until the sup falls strictly
    below it, which guarantees soundness of the abstraction.

    [?slicing] (default {!Reach.default_slicing}) reduces the network
    to the cone of the goal plus the measured clock before exploring;
    the supremum is unchanged.

    [?snap] fires exactly when the result is [Sup], with the final
    (below-ceiling) attempt's {!Reach.snapshot} for certificate
    emission. *)

type search_result = {
  lower : int option;  (** largest [C] with [goal && clock >= C] reachable *)
  upper : int option;  (** smallest [C] proven unreachable *)
  runs : int;
  total_explored : int;
  total_elapsed : float;
}

val binary_search :
  ?order:Reach.order ->
  ?budget:Reach.budget ->
  ?abstraction:Reach.abstraction ->
  ?reduction:Reach.reduction ->
  ?bounds:Reach.bounds ->
  ?domains:int ->
  ?slicing:Reach.slicing ->
  ?hi:int ->
  Network.t ->
  at:Query.t ->
  clock:Guard.clock ->
  search_result
(** Binary search with doubling to find the initial unreachable [hi]
    (default start [1_000_000]).  With an exhausted budget the
    so-far-established bounds are returned. *)

val probe_lower :
  ?order:Reach.order ->
  ?abstraction:Reach.abstraction ->
  ?reduction:Reach.reduction ->
  ?bounds:Reach.bounds ->
  ?domains:int ->
  ?slicing:Reach.slicing ->
  Network.t ->
  at:Query.t ->
  clock:Guard.clock ->
  budget:Reach.budget ->
  start:int ->
  step:int ->
  search_result
(** Climb [C] from [start] by [step] while the budgeted search keeps
    finding counterexamples; the last success is a sound WCRT lower
    bound. *)
