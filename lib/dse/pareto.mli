(** Pareto frontier over two minimized metrics (WCRT, cost proxy).

    An item is on the frontier iff no other item is at least as good
    in both metrics and strictly better in one. *)

val frontier : metrics:('a -> float * float) -> 'a list -> 'a list
(** Non-dominated subset, sorted by the first metric (ties by the
    second).  Items with identical metrics are all kept. *)
