(** Worker pools for batch jobs: a [Unix.fork]-based pool with
    per-job timeouts and crash isolation ({!map}), and an in-process
    shared domain pool ({!map_domains}).

    Each job runs in its own forked child and reports its result back
    over a pipe (marshaled).  A child that diverges past the timeout
    is killed; a child that crashes (uncaught exception, fatal
    signal, [exit]) yields [Crashed] — in both cases every other
    job's result survives, which is the property a design-space sweep
    needs: one pathological candidate must not cost the batch.

    Children never exec: the job closure and its inputs are inherited
    through fork, so no argument serialization is needed; only
    results cross the pipe, and they must not contain closures. *)

type 'b outcome =
  | Done of 'b
  | Crashed of string  (** uncaught exception or abnormal exit *)
  | Timed_out of float  (** killed after this many seconds *)

val default_jobs : unit -> int
(** The machine's available core count (at least 1). *)

val map :
  ?jobs:int ->
  ?timeout_s:float ->
  ?on_result:(int -> 'b outcome -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array
(** [map f xs] runs [f] on every element in forked workers, at most
    [jobs] (default {!default_jobs}) concurrently, and returns the
    outcomes in input order.  [timeout_s] is the per-job wall-clock
    limit (default: none).  [on_result] fires in the parent as each
    job settles (in completion order) — the streaming hook used to
    persist results the moment they exist.  Results are unmarshaled
    from the child, so ['b] must be closure-free data. *)

val map_domains :
  ?jobs:int ->
  ?on_result:(int -> 'b outcome -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b outcome array
(** Like {!map} but on a pool of [jobs] worker domains inside this
    process: no fork or marshal cost and results need not be
    closure-free, at the price of no per-job timeout and no isolation
    from fatal runtime errors.  An exception escaping [f] yields
    [Crashed] for that job only ([Timed_out] never occurs).
    [on_result] calls are serialised under a mutex. *)
