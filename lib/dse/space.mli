(** Declarative design spaces over architecture models.

    The paper's evaluation (Section 4) compares {e architecture
    alternatives} of one system — different CPU speeds, bus baud
    rates, mappings of functionality to processors.  A {!t} declares
    such a space as a base {!Ita_core.Sysmodel.t} plus independent
    {!axis} values, each a set of labeled model transforms; the
    concrete candidates are the cartesian product of the axes, every
    candidate a fully built (and validated) system model.

    Axes are ordered; a candidate applies one choice per axis, in
    axis order, to the base model. *)

open Ita_core

type choice = { label : string; transform : Sysmodel.t -> Sysmodel.t }
type axis = { axis_name : string; choices : choice list }

val axis : string -> (string * (Sysmodel.t -> Sysmodel.t)) list -> axis
(** Arbitrary labeled transforms. @raise Invalid_argument when empty
    or when two choices share a label. *)

val mips_axis : resource:string -> float list -> axis
(** Vary a processor's speed (labels like ["RAD=22MIPS"]). *)

val kbps_axis : resource:string -> float list -> axis
(** Vary a link's baud rate (labels like ["BUS=96kbps"]). *)

val policy_axis : resource:string -> (string * Resource.policy) list -> axis
(** Vary a resource's scheduling policy. *)

val mapping_axis : scenario:string -> step:int -> string list -> axis
(** Vary the resource one scenario step is deployed on — the paper's
    "move functionality between processors" alternative. *)

val trigger_axis : scenario:string -> (string * Eventmodel.t) list -> axis
(** Vary a scenario's environment event model (a Table 1 column
    sweep as one axis of a larger space). *)

val queue_bound_axis : int list -> axis
(** Vary the generated pending-counter bound. *)

type t = { space_name : string; base : Sysmodel.t; axes : axis list }

val make : name:string -> base:Sysmodel.t -> axes:axis list -> t
(** @raise Invalid_argument on duplicate axis names. *)

val size : t -> int
(** Number of candidates (product of axis widths; 1 for no axes). *)

type candidate = {
  index : int;  (** position in {!candidates} order *)
  picks : (string * string) list;  (** (axis name, choice label) *)
  sys : Sysmodel.t;
}

val candidates : t -> candidate list
(** The cartesian product, validated: a transform combination that
    produces an inconsistent model raises here, not mid-sweep.
    Enumeration order: the last axis varies fastest. *)

val label : candidate -> string
(** Human-readable pick summary, e.g. ["RAD=22MIPS BUS=96kbps"];
    ["(base)"] for the empty-axes space. *)

val cost : candidate -> float
(** Hardware cost proxy used for the Pareto frontier: the sum of
    processor MIPS plus link kbps / 8 ("MIPS-equivalents").  Crude on
    purpose — the paper's question is "can a cheaper architecture
    still meet the deadlines", and any monotone proxy of silicon +
    wiring speed ranks the alternatives for that question. *)
