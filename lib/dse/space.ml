open Ita_core

type choice = { label : string; transform : Sysmodel.t -> Sysmodel.t }
type axis = { axis_name : string; choices : choice list }

let axis name choices =
  if choices = [] then invalid_arg ("Space.axis " ^ name ^ ": no choices");
  let labels = List.map fst choices in
  if List.length (List.sort_uniq compare labels) <> List.length labels then
    invalid_arg ("Space.axis " ^ name ^ ": duplicate choice labels");
  {
    axis_name = name;
    choices = List.map (fun (label, transform) -> { label; transform }) choices;
  }

let mips_axis ~resource levels =
  axis resource
    (List.map
       (fun mips ->
         ( Printf.sprintf "%s=%gMIPS" resource mips,
           fun m ->
             Sysmodel.with_resource m resource (fun r ->
                 Resource.processor r.Resource.name ~mips
                   ~policy:r.Resource.policy) ))
       levels)

let kbps_axis ~resource levels =
  axis resource
    (List.map
       (fun kbps ->
         ( Printf.sprintf "%s=%gkbps" resource kbps,
           fun m ->
             Sysmodel.with_resource m resource (fun r ->
                 Resource.link r.Resource.name ~kbps ~policy:r.Resource.policy)
         ))
       levels)

let policy_axis ~resource policies =
  axis
    (resource ^ "-policy")
    (List.map
       (fun (name, policy) ->
         ( Printf.sprintf "%s=%s" resource name,
           fun m ->
             Sysmodel.with_resource m resource (fun r -> { r with Resource.policy })
         ))
       policies)

let mapping_axis ~scenario ~step targets =
  axis
    (Printf.sprintf "%s.%d" scenario step)
    (List.map
       (fun resource ->
         ( Printf.sprintf "%s.%d@%s" scenario step resource,
           fun m -> Sysmodel.remap_step m ~scenario ~step ~resource ))
       targets)

let trigger_axis ~scenario models =
  axis
    (scenario ^ "-trigger")
    (List.map
       (fun (name, ev) ->
         ( Printf.sprintf "%s=%s" scenario name,
           fun m -> Sysmodel.with_trigger m scenario ev ))
       models)

let queue_bound_axis bounds =
  axis "queue-bound"
    (List.map
       (fun b ->
         ( Printf.sprintf "qbound=%d" b,
           fun m -> { m with Sysmodel.queue_bound = b } ))
       bounds)

type t = { space_name : string; base : Sysmodel.t; axes : axis list }

let make ~name ~base ~axes =
  let names = List.map (fun a -> a.axis_name) axes in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg ("Space.make " ^ name ^ ": duplicate axis names");
  { space_name = name; base; axes }

let size t = List.fold_left (fun n a -> n * List.length a.choices) 1 t.axes

type candidate = {
  index : int;
  picks : (string * string) list;
  sys : Sysmodel.t;
}

let candidates t =
  let rec expand axes picks sys =
    match axes with
    | [] -> [ (List.rev picks, sys) ]
    | a :: rest ->
        List.concat_map
          (fun c ->
            expand rest ((a.axis_name, c.label) :: picks) (c.transform sys))
          a.choices
  in
  List.mapi
    (fun index (picks, sys) -> { index; picks; sys })
    (expand t.axes [] t.base)

let label c =
  match c.picks with
  | [] -> "(base)"
  | picks -> String.concat " " (List.map snd picks)

let cost c =
  List.fold_left
    (fun acc (r : Resource.t) ->
      acc
      +.
      match r.Resource.kind with
      | Resource.Processor { mips } -> mips
      | Resource.Link { kbps } -> kbps /. 8.0)
    0.0 c.sys.Sysmodel.resources
