let frontier ~metrics items =
  let tagged = List.map (fun x -> (metrics x, x)) items in
  let dominates (x1, y1) (x2, y2) =
    x1 <= x2 && y1 <= y2 && (x1 < x2 || y1 < y2)
  in
  tagged
  |> List.filter (fun (m, _) ->
         not (List.exists (fun (m', _) -> dominates m' m) tagged))
  |> List.sort (fun (m1, _) (m2, _) -> compare m1 m2)
  |> List.map snd
