(** On-disk memoization of job results, keyed by a digest of the
    candidate model + technique + budget.  Re-running a sweep after
    editing the space only pays for the new candidates — incremental
    design-space exploration.

    One file per entry, written atomically (temp file + rename), so
    concurrent sweeps over the same directory are safe.  Values are
    marshaled; a stale or corrupt entry reads as a miss and is
    overwritten.  The key includes a format version, so changing the
    result type just invalidates old entries instead of misreading
    them. *)

type t

val create : dir:string -> t
(** Creates [dir] (and parents) when missing. *)

val dir : t -> string

val job_key : Job.spec -> string
(** Stable hex digest of everything that determines a job's result:
    the full system model, technique, measured requirement and
    budget. *)

val find : t -> string -> Job.result option
(** Counts a hit or a miss. *)

val store : t -> string -> Job.result -> unit

val hits : t -> int
val misses : t -> int
