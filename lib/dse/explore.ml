open Ita_core

type status =
  | Done of Job.result
  | Crashed of string
  | Timed_out of float
  | Rejected of string
type cell = { technique : Job.technique; status : status; cached : bool }
type row = { candidate : Space.candidate; cells : cell list }

type report = {
  space_name : string;
  scenario : string;
  requirement : string;
  deadline_us : int option;
  techniques : Job.technique list;
  rows : row list;
  cache_hits : int;
  cache_misses : int;
  executed : int;
  failed : int;
  rejected : int;
  workers : int;
  isolation : [ `Processes | `Domains ];
  wall_s : float;
}

let run ?isolation ?jobs ?timeout_s ?cache ?(budget = Job.default_budget)
    ?inject_crash space ~techniques ~scenario ~requirement =
  if techniques = [] then invalid_arg "Explore.run: no techniques";
  let isolation =
    match isolation with
    | Some i -> i
    | None ->
        (* per-job timeouts and fault injection need a killable child,
           so those callers keep the forked pool; plain sweeps share
           one domain pool and skip the fork/marshal tax *)
        if timeout_s <> None || inject_crash <> None then `Processes
        else `Domains
  in
  let budget =
    match isolation with
    | `Domains when budget.Job.mc_domains = None ->
        (* the pool already parallelises across jobs; nested engine
           parallelism would oversubscribe the cores *)
        { budget with Job.mc_domains = Some 1 }
    | _ -> budget
  in
  let workers =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  let deadline_us =
    (Scenario.requirement
       (Sysmodel.scenario space.Space.base scenario)
       requirement)
      .Scenario.budget_us
  in
  let t0 = Unix.gettimeofday () in
  let cands = Space.candidates space in
  (* lint pre-flight: a candidate whose generated network carries an
     error-severity finding would only waste worker time (or worse,
     crash mid-exploration on an out-of-range update), so screen it
     out before any job is scheduled.  The semantic passes reject at
     warning too: a dead edge or a write-write sync race on a
     *generated* network means the candidate's model is broken at the
     generator level, not merely suspicious. *)
  let rejection (c : Space.candidate) =
    match Gen.generate c.Space.sys with
    | exception e -> Some (Printexc.to_string e)
    | gen -> (
        match
          List.filter
            (fun (d : Ita_analysis.Diagnostic.t) ->
              let module D = Ita_analysis.Diagnostic in
              d.D.severity = D.Error
              || (D.compare_severity d.D.severity D.Warning >= 0
                 && List.mem d.D.pass [ D.Dead_edge; D.Sync_write_race ]))
            (Ita_analysis.Lint.run gen.Gen.net)
        with
        | [] -> None
        | d :: _ ->
            Some
              (Format.asprintf "%a" (Ita_analysis.Diagnostic.pp gen.Gen.net) d))
  in
  let rejections =
    List.filter_map
      (fun (c : Space.candidate) ->
        Option.map (fun m -> (c.Space.index, m)) (rejection c))
      cands
  in
  let rejected_msg (c : Space.candidate) = List.assoc_opt c.Space.index rejections in
  let runnable = List.filter (fun c -> rejected_msg c = None) cands in
  (* flat job list, candidate-major; probe the cache up front *)
  let entries =
    List.concat_map
      (fun (c : Space.candidate) ->
        List.map
          (fun tech ->
            let spec =
              {
                Job.sys = c.Space.sys;
                technique = tech;
                scenario;
                requirement;
                budget;
              }
            in
            let hit =
              match cache with
              | None -> None
              | Some ca -> Cache.find ca (Cache.job_key spec)
            in
            (c, tech, spec, hit))
          techniques)
      runnable
  in
  let entries =
    List.mapi (fun flat (c, tech, spec, hit) -> (flat, c, tech, spec, hit))
      entries
  in
  let to_run =
    List.filter_map
      (fun (flat, _, _, spec, hit) ->
        match hit with Some _ -> None | None -> Some (flat, spec))
      entries
  in
  let worker (flat, spec) =
    if inject_crash = Some flat then
      (* fault injection: die without a word, like a segfaulting or
         OOM-killed worker would.  In a domain pool there is no child
         process to kill, so the job raises and is recorded [Crashed]
         without taking the sweep down. *)
      (match isolation with
      | `Processes -> Unix._exit 66
      | `Domains -> failwith "injected crash");
    Job.run spec
  in
  let to_run_arr = Array.of_list to_run in
  let on_result i outcome =
    (* persist the moment a job settles: a sweep killed halfway keeps
       everything already computed *)
    match (outcome, cache) with
    | Pool.Done r, Some ca ->
        let _, spec = to_run_arr.(i) in
        Cache.store ca (Cache.job_key spec) r
    | _ -> ()
  in
  let outcomes =
    match isolation with
    | `Processes -> Pool.map ~jobs:workers ?timeout_s ~on_result worker to_run_arr
    | `Domains -> Pool.map_domains ~jobs:workers ~on_result worker to_run_arr
  in
  let by_flat = Hashtbl.create 64 in
  List.iteri
    (fun i (flat, _) ->
      let status =
        match outcomes.(i) with
        | Pool.Done r -> Done r
        | Pool.Crashed msg -> Crashed msg
        | Pool.Timed_out s -> Timed_out s
      in
      Hashtbl.replace by_flat flat status)
    to_run;
  let cells_of (c : Space.candidate) =
    match rejected_msg c with
    | Some msg ->
        List.map
          (fun tech -> { technique = tech; status = Rejected msg; cached = false })
          techniques
    | None ->
        List.filter_map
          (fun (flat, c', tech, _, hit) ->
            if c'.Space.index <> c.Space.index then None
            else
              Some
                (match hit with
                | Some r -> { technique = tech; status = Done r; cached = true }
                | None ->
                    {
                      technique = tech;
                      status = Hashtbl.find by_flat flat;
                      cached = false;
                    }))
          entries
  in
  let rows = List.map (fun c -> { candidate = c; cells = cells_of c }) cands in
  let failed =
    List.fold_left
      (fun acc r ->
        acc
        + List.length
            (List.filter
               (fun cell ->
                 match cell.status with
                 | Crashed _ | Timed_out _ -> true
                 | Done _ | Rejected _ -> false)
               r.cells))
      0 rows
  in
  let hits = List.length entries - List.length to_run in
  {
    space_name = space.Space.space_name;
    scenario;
    requirement;
    deadline_us;
    techniques;
    rows;
    cache_hits = hits;
    cache_misses = (if cache = None then 0 else List.length to_run);
    executed = List.length to_run;
    failed;
    rejected = List.length rejections;
    workers;
    isolation;
    wall_s = Unix.gettimeofday () -. t0;
  }

let row_wcrt_us row =
  let measures =
    List.filter_map
      (fun c -> match c.status with Done r -> Some r.Job.measure | _ -> None)
      row.cells
  in
  let exact =
    List.find_map (function Job.Exact v -> Some v | _ -> None) measures
  in
  let fold_opt f vs = match vs with [] -> None | v :: tl -> Some (List.fold_left f v tl) in
  let uppers =
    List.filter_map (function Job.Upper v -> Some v | _ -> None) measures
  in
  let lowers =
    List.filter_map (function Job.Lower v -> Some v | _ -> None) measures
  in
  match exact with
  | Some v -> Some v
  | None -> (
      match fold_opt min uppers with
      | Some v -> Some v
      | None -> fold_opt max lowers)

let feasibility ~deadline_us row =
  match deadline_us with
  | None -> `Unknown
  | Some d ->
      let measures =
        List.filter_map
          (fun c ->
            match c.status with Done r -> Some r.Job.measure | _ -> None)
          row.cells
      in
      let exact =
        List.find_map (function Job.Exact v -> Some v | _ -> None) measures
      in
      let best_upper =
        List.fold_left
          (fun acc m ->
            match m with
            | Job.Upper v -> Some (match acc with None -> v | Some a -> min a v)
            | _ -> acc)
          None measures
      in
      let best_lower =
        List.fold_left
          (fun acc m ->
            match m with
            | Job.Lower v -> Some (match acc with None -> v | Some a -> max a v)
            | _ -> acc)
          None measures
      in
      (match exact with
      | Some e -> if e <= d then `Feasible else `Infeasible
      | None -> (
          match best_upper with
          | Some u when u <= d -> `Feasible
          | _ -> (
              match best_lower with
              | Some l when l >= d -> `Infeasible
              | _ -> `Unknown)))

let frontier report =
  report.rows
  |> List.filter (fun r -> row_wcrt_us r <> None)
  |> Pareto.frontier ~metrics:(fun r ->
         ( float_of_int (Option.get (row_wcrt_us r)),
           Space.cost r.candidate ))

let pp ppf report =
  let n_cands = List.length report.rows in
  let n_tech = List.length report.techniques in
  Format.fprintf ppf "@[<v>== design-space exploration: %s :: %s/%s"
    report.space_name report.scenario report.requirement;
  (match report.deadline_us with
  | Some d -> Format.fprintf ppf " (deadline %a ms)" Units.pp_ms d
  | None -> ());
  Format.fprintf ppf " ==@,";
  Format.fprintf ppf
    "%d candidates x %d techniques = %d jobs: %d cached, %d executed (%d \
     failed) on %d %s in %.2fs"
    n_cands n_tech (n_cands * n_tech) report.cache_hits report.executed
    report.failed report.workers
    (match report.isolation with
    | `Processes -> "forked workers"
    | `Domains -> "worker domains")
    report.wall_s;
  if report.rejected > 0 then
    Format.fprintf ppf "@,%d candidate%s rejected by the lint pre-flight"
      report.rejected
      (if report.rejected = 1 then "" else "s");
  if report.executed > 0 && report.wall_s > 0.0 then
    Format.fprintf ppf " (%.2f jobs/s)"
      (float_of_int report.executed /. report.wall_s);
  Format.fprintf ppf "@,@,";
  Format.fprintf ppf "%-4s %-36s %8s" "#" "candidate" "cost";
  List.iter
    (fun t -> Format.fprintf ppf " %12s" (Job.technique_name t))
    report.techniques;
  Format.fprintf ppf " %10s@," "verdict";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-4d %-36s %8.1f" row.candidate.Space.index
        (Space.label row.candidate)
        (Space.cost row.candidate);
      List.iter
        (fun cell ->
          let text =
            match cell.status with
            | Done r ->
                Format.asprintf "%a%s" Job.pp_measure r.Job.measure
                  (if cell.cached then "*" else "")
            | Crashed _ -> "crash"
            | Timed_out _ -> "timeout"
            | Rejected _ -> "rejected"
          in
          Format.fprintf ppf " %12s" text)
        row.cells;
      let verdict =
        match feasibility ~deadline_us:report.deadline_us row with
        | `Feasible -> "feasible"
        | `Infeasible -> "INFEASIBLE"
        | `Unknown -> "?"
      in
      Format.fprintf ppf " %10s@," verdict)
    report.rows;
  Format.fprintf ppf "@,(* = cached result)@,";
  let front = frontier report in
  Format.fprintf ppf "@,Pareto frontier over (wcrt, cost):@,";
  List.iter
    (fun row ->
      Format.fprintf ppf "  #%-3d %-36s wcrt %a ms, cost %.1f@,"
        row.candidate.Space.index
        (Space.label row.candidate)
        Units.pp_ms
        (Option.get (row_wcrt_us row))
        (Space.cost row.candidate))
    front;
  Format.fprintf ppf "@]"
