(** Ready-made design spaces over the paper's case study.

    The radio-navigation system of Section 2, with the architecture
    alternatives the paper discusses in Section 4 as axes: processor
    speeds, bus baud rate, and the mapping of the TMC decoding onto a
    processor. *)

val radionav :
  ?combo:Ita_casestudy.Radionav.combo ->
  ?column:Ita_casestudy.Radionav.column ->
  ?queue_bound:int ->
  ?mmi_mips:float list ->
  ?rad_mips:float list ->
  ?nav_mips:float list ->
  ?bus_kbps:float list ->
  ?decode_on:string list ->
  unit ->
  Space.t
(** Default space: the AddressLookup+HandleTMC combination under the
    periodic-with-offset column, RAD at 11 or 22 MIPS, the bus at 48,
    72, 96 or 120 kbit/s — 8 candidates bracketing the paper's
    deployment.  An empty level list drops that axis; [decode_on]
    (e.g. [["NAV"; "RAD"]]) adds the "move DecodeTMC" mapping
    axis. *)
