open Ita_core
module Reach = Ita_mc.Reach
module Wcrt = Ita_mc.Wcrt

type technique = Mc | Sim | Symta | Rtc

let all_techniques = [ Mc; Sim; Symta; Rtc ]

let technique_name = function
  | Mc -> "mc"
  | Sim -> "sim"
  | Symta -> "symta"
  | Rtc -> "rtc"

let technique_of_string = function
  | "mc" -> Ok Mc
  | "sim" -> Ok Sim
  | "symta" -> Ok Symta
  | "rtc" -> Ok Rtc
  | s -> Error (Printf.sprintf "unknown technique %S (mc/sim/symta/rtc)" s)

type budget = {
  mc_states : int option;
  mc_seconds : float option;
  mc_abstraction : Reach.abstraction;
  mc_bounds : Reach.bounds;
  mc_domains : int option;
  mc_slicing : Reach.slicing;
  mc_certify : bool;
  sim_runs : int;
  sim_horizon_us : int;
}

let default_budget =
  {
    mc_states = None;
    mc_seconds = None;
    mc_abstraction = Reach.ExtraLU;
    mc_bounds = Reach.Flow;
    mc_domains = None;
    mc_slicing = Reach.CoiMerge;
    mc_certify = false;
    sim_runs = 5;
    sim_horizon_us = 30_000_000;
  }

type spec = {
  sys : Sysmodel.t;
  technique : technique;
  scenario : string;
  requirement : string;
  budget : budget;
}

type measure =
  | Exact of int
  | Lower of int
  | Upper of int
  | Unbounded
  | No_response
  | Failed of string

let measure_us = function
  | Exact v | Lower v | Upper v -> Some v
  | Unbounded | No_response | Failed _ -> None

type result = { measure : measure; elapsed : float; explored : int }

let run_mc spec =
  let s = Sysmodel.scenario spec.sys spec.scenario in
  let req = Scenario.requirement s spec.requirement in
  let gen = Gen.generate ~measure:(spec.scenario, req) spec.sys in
  let obs = Option.get gen.Gen.observer in
  let budget =
    {
      Reach.max_states = spec.budget.mc_states;
      Reach.max_seconds = spec.budget.mc_seconds;
    }
  in
  let snap_ref = ref None in
  let snap =
    if spec.budget.mc_certify then
      Some (fun s -> snap_ref := Some s)
    else None
  in
  match
    Wcrt.sup ~budget ~abstraction:spec.budget.mc_abstraction
      ~bounds:spec.budget.mc_bounds ?domains:spec.budget.mc_domains
      ~slicing:spec.budget.mc_slicing ?snap gen.Gen.net ~at:obs.Gen.seen
      ~clock:obs.Gen.obs_clock
  with
  | Wcrt.Sup { value; kind; stats } -> (
      (* a certified mc cell: re-validate the exact verdict with the
         independent checker before it may enter the Pareto front; a
         rejected certificate demotes the cell to [Failed] rather
         than letting an unproven number drive design choices *)
      match !snap_ref with
      | None ->
          { measure = Exact value; elapsed = stats.Reach.elapsed; explored = stats.Reach.explored }
      | Some snapshot -> (
          let module Cert = Ita_cert.Cert in
          let kind =
            match kind with
            | Wcrt.Attained -> Cert.Attained
            | Wcrt.Approached -> Cert.Approached
          in
          let qc =
            Ita_mc.Cert_emit.of_snapshot ~index:0
              ~verdict:(Cert.Sup { clock = obs.Gen.obs_clock; value; kind })
              snapshot
          in
          let goal = Ita_mc.Cert_emit.goal_of_query obs.Gen.seen in
          match Cert.check gen.Gen.net ~goal qc with
          | Ok _ ->
              { measure = Exact value; elapsed = stats.Reach.elapsed; explored = stats.Reach.explored }
          | Error f ->
              {
                measure =
                  Failed
                    (Printf.sprintf "certificate rejected [%s] %s"
                       (Cert.obligation_name f.Cert.obligation)
                       f.Cert.message);
                elapsed = stats.Reach.elapsed;
                explored = stats.Reach.explored;
              }))
  | Wcrt.Goal_unreachable stats ->
      { measure = No_response; elapsed = stats.Reach.elapsed; explored = stats.Reach.explored }
  | Wcrt.Sup_budget_exhausted { observed = Some v; stats } ->
      { measure = Lower v; elapsed = stats.Reach.elapsed; explored = stats.Reach.explored }
  | Wcrt.Sup_budget_exhausted { observed = None; stats } ->
      {
        measure = Failed "budget exhausted before any response was observed";
        elapsed = stats.Reach.elapsed;
        explored = stats.Reach.explored;
      }
  | Wcrt.Sup_unbounded { stats; _ } ->
      { measure = Unbounded; elapsed = stats.Reach.elapsed; explored = stats.Reach.explored }

let run_sim spec =
  let samples = ref 0 in
  let worst = ref 0 in
  for seed = 1 to spec.budget.sim_runs do
    let stats =
      Ita_sim.Engine.run ~seed ~horizon_us:spec.budget.sim_horizon_us spec.sys
    in
    List.iter
      (fun (s : Ita_sim.Engine.sample) ->
        if
          s.Ita_sim.Engine.scenario = spec.scenario
          && s.Ita_sim.Engine.requirement = spec.requirement
        then begin
          incr samples;
          worst := max !worst s.Ita_sim.Engine.response_us
        end)
      stats.Ita_sim.Engine.samples
  done;
  let measure = if !samples = 0 then No_response else Lower !worst in
  { measure; elapsed = 0.0; explored = !samples }

let run_symta spec =
  match
    Ita_symta.Sysanalysis.wcrt_bound spec.sys ~scenario:spec.scenario
      ~requirement:spec.requirement
  with
  | Ok v -> { measure = Upper v; elapsed = 0.0; explored = 0 }
  | Error msg -> { measure = Failed msg; elapsed = 0.0; explored = 0 }

let run_rtc spec =
  match
    Ita_rtc.Gpc.wcrt_bound spec.sys ~scenario:spec.scenario
      ~requirement:spec.requirement
  with
  | Ok v -> { measure = Upper v; elapsed = 0.0; explored = 0 }
  | Error msg -> { measure = Failed msg; elapsed = 0.0; explored = 0 }

let run spec =
  (* make sure the names resolve before doing any work, whatever the
     technique: a misnamed requirement is a caller bug *)
  ignore
    (Scenario.requirement
       (Sysmodel.scenario spec.sys spec.scenario)
       spec.requirement);
  let t0 = Unix.gettimeofday () in
  let r =
    match spec.technique with
    | Mc -> run_mc spec
    | Sim -> run_sim spec
    | Symta -> run_symta spec
    | Rtc -> run_rtc spec
  in
  { r with elapsed = Unix.gettimeofday () -. t0 }

let pp_measure ppf = function
  | Exact v -> Units.pp_ms ppf v
  | Lower v -> Format.fprintf ppf ">=%a" Units.pp_ms v
  | Upper v -> Format.fprintf ppf "<=%a" Units.pp_ms v
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | No_response -> Format.pp_print_string ppf "-"
  | Failed _ -> Format.pp_print_string ppf "failed"
