module R = Ita_casestudy.Radionav

let radionav ?(combo = R.Al_tmc) ?(column = R.Po) ?queue_bound
    ?(mmi_mips = []) ?(rad_mips = [ 11.0; 22.0 ]) ?(nav_mips = [])
    ?(bus_kbps = [ 48.0; 72.0; 96.0; 120.0 ]) ?(decode_on = []) () =
  let axis_if levels mk = match levels with [] -> [] | ls -> [ mk ls ] in
  let axes =
    axis_if mmi_mips (fun ls -> Space.mips_axis ~resource:"MMI" ls)
    @ axis_if rad_mips (fun ls -> Space.mips_axis ~resource:"RAD" ls)
    @ axis_if nav_mips (fun ls -> Space.mips_axis ~resource:"NAV" ls)
    @ axis_if bus_kbps (fun ls -> Space.kbps_axis ~resource:"BUS" ls)
    @ axis_if decode_on (fun ls ->
          Space.mapping_axis ~scenario:"HandleTMC" ~step:2 ls)
  in
  Space.make
    ~name:
      (Printf.sprintf "radionav-%s-%s" (R.combo_name combo)
         (R.column_name column))
    ~base:(R.system ?queue_bound combo column)
    ~axes
