(** One analysis job: a candidate architecture, a technique, a
    measured requirement, a budget.  The uniform interface under
    which the four engines of the paper's Table 2 — model checking,
    simulation, SymTA/S-style busy windows, MPA/RTC — become
    interchangeable workers of a sweep.

    A job is self-contained and side-effect free, so it can run in a
    forked worker and its result can be memoized on disk keyed by the
    spec. *)

open Ita_core

type technique = Mc | Sim | Symta | Rtc

val all_techniques : technique list
val technique_name : technique -> string
val technique_of_string : string -> (technique, string) result

type budget = {
  mc_states : int option;  (** state cap for the zone exploration *)
  mc_seconds : float option;  (** wall-clock cap for the exploration *)
  mc_abstraction : Ita_mc.Reach.abstraction;
      (** zone abstraction for the exploration *)
  mc_bounds : Ita_mc.Reach.bounds;
      (** extrapolation-bound source (flow-refined or static) *)
  mc_domains : int option;
      (** worker domains inside one exploration ([None]: the engine
          default, {!Ita_mc.Reach.default_domains}).  Sweeps running
          jobs on a shared domain pool pin this to [1] so the pool's
          parallelism is not multiplied by the engine's. *)
  mc_slicing : Ita_mc.Reach.slicing;
      (** query-directed model reduction applied before the
          exploration ({!Ita_mc.Reach.slicing}); part of the cache
          key. *)
  mc_certify : bool;
      (** re-validate every exact mc verdict with the independent
          certificate checker before it enters the results; a
          rejected certificate demotes the cell to [Failed].  Part of
          the cache key — certified and uncertified numbers are not
          interchangeable. *)
  sim_runs : int;  (** simulation seeds *)
  sim_horizon_us : int;  (** simulated time per seed *)
}

val default_budget : budget
(** Unlimited model checking under Extra+LU with flow-refined bounds
    and [CoiMerge] slicing; 5 simulation seeds of 30 s each. *)

type spec = {
  sys : Sysmodel.t;
  technique : technique;
  scenario : string;
  requirement : string;
  budget : budget;
}

(** What kind of number a technique produced — the paper's Table 2
    distinction.  [Exact] comes from exhaustive model checking;
    [Lower] from simulation (a witnessed response) or from a budgeted
    exploration (largest response observed before the budget ran
    out); [Upper] from the conservative analytic techniques. *)
type measure =
  | Exact of int  (** microseconds; the true WCRT *)
  | Lower of int  (** microseconds; a sound lower bound *)
  | Upper of int  (** microseconds; a sound upper bound *)
  | Unbounded  (** mc: the measured clock is unbounded at the goal *)
  | No_response  (** the measured window never completes *)
  | Failed of string  (** diverged / budget exhausted with nothing seen *)

val measure_us : measure -> int option
(** The comparable value of [Exact]/[Lower]/[Upper]; [None] otherwise. *)

type result = { measure : measure; elapsed : float; explored : int }
(** [explored]: symbolic states (mc), samples (sim), fixpoint
    iterations (symta/rtc). *)

val run : spec -> result
(** Execute the job in the calling process.  Never raises on analysis
    failure ([Failed] instead); unknown scenario/requirement names
    still raise [Not_found] — those are caller bugs, not candidate
    properties. *)

val pp_measure : Format.formatter -> measure -> unit
(** Table-style: "79.075" exact, ">=79.075" lower, "<=81.200" upper. *)
