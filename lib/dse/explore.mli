(** The sweep driver: enumerate a {!Space.t}, run every (candidate,
    technique) job — memoized through {!Cache}, parallel and
    crash-isolated through {!Pool} — and report a summary table plus
    the Pareto frontier over (WCRT, hardware cost proxy).

    This is the paper's Section 4 workflow as one call: "does the
    product work, given a set of hard resource restrictions?", asked
    of every architecture alternative at once. *)

type status =
  | Done of Job.result
  | Crashed of string
  | Timed_out of float
  | Rejected of string
      (** the candidate's generated network failed the static analyzer
          with an error-severity finding (the message), so no analysis
          job was spent on it *)

type cell = { technique : Job.technique; status : status; cached : bool }
type row = { candidate : Space.candidate; cells : cell list }

type report = {
  space_name : string;
  scenario : string;
  requirement : string;
  deadline_us : int option;  (** the requirement's declared budget *)
  techniques : Job.technique list;
  rows : row list;  (** candidate enumeration order *)
  cache_hits : int;
  cache_misses : int;  (** lookups that missed (0 without a cache) *)
  executed : int;  (** jobs actually run in workers *)
  failed : int;  (** crashed + timed out *)
  rejected : int;  (** candidates screened out by the lint pre-flight *)
  workers : int;
  isolation : [ `Processes | `Domains ];
      (** how jobs were dispatched: forked child processes or a shared
          in-process domain pool *)
  wall_s : float;
}

val run :
  ?isolation:[ `Processes | `Domains ] ->
  ?jobs:int ->
  ?timeout_s:float ->
  ?cache:Cache.t ->
  ?budget:Job.budget ->
  ?inject_crash:int ->
  Space.t ->
  techniques:Job.technique list ->
  scenario:string ->
  requirement:string ->
  report
(** [isolation] picks the pool: [`Processes] forks one child per job
    (crash isolation, per-job [timeout_s]); [`Domains] shares one
    in-process domain pool across jobs (no fork/marshal overhead; jobs
    get [mc_domains = 1] unless the budget pins it, so pool and engine
    parallelism do not multiply).  Default: [`Processes] when
    [timeout_s] or [inject_crash] is given, else [`Domains].

    [inject_crash i] makes flat job [i] (candidate-major over
    techniques) kill its own worker — the fault-injection hook that
    demonstrates crash isolation end to end; a cached job ignores it.
    Under [`Domains] the job raises instead of dying, and is recorded
    [Crashed] all the same.
    @raise Not_found on unknown scenario/requirement names.
    @raise Invalid_argument on an empty technique list. *)

val row_wcrt_us : row -> int option
(** The row's best available WCRT figure: an [Exact] value if any
    technique produced one, else the tightest [Upper] bound, else the
    largest [Lower] bound. *)

val feasibility :
  deadline_us:int option -> row -> [ `Feasible | `Infeasible | `Unknown ]
(** Sound verdict against the deadline: [`Feasible] needs an exact
    value or upper bound at or below it, [`Infeasible] an exact value
    above it or a lower bound at or beyond it. *)

val frontier : report -> row list
(** Pareto-optimal rows over (WCRT, {!Space.cost}), restricted to
    rows with a usable WCRT figure. *)

val pp : Format.formatter -> report -> unit
(** Summary table (cached cells marked [*]), throughput line and
    Pareto frontier. *)
