type 'b outcome = Done of 'b | Crashed of string | Timed_out of float

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* One in-flight child: its pipe's read end stays registered until we
   see EOF (normal completion) or kill it (timeout). *)
type child = {
  idx : int;
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  started : float;
}

let rec wait_status pid =
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> wait_status pid

let no_result = "worker died before reporting a result"

let decode (c : child) status =
  let from_pipe () =
    match
      (Marshal.from_string (Buffer.contents c.buf) 0 : ('b, string) result)
    with
    | Ok v -> Done v
    | Error msg -> Crashed msg
    | exception _ -> Crashed no_result
  in
  match status with
  | Unix.WEXITED 0 -> from_pipe ()
  | Unix.WEXITED n -> (
      (* a worker that wrote a full result and then exited nonzero
         still counts; an empty pipe is a crash *)
      match from_pipe () with
      | Done _ as d -> d
      | _ -> Crashed (Printf.sprintf "worker exited with code %d" n))
  | Unix.WSIGNALED s -> Crashed (Printf.sprintf "worker killed by signal %d" s)
  | Unix.WSTOPPED s -> Crashed (Printf.sprintf "worker stopped by signal %d" s)

let map ?jobs ?timeout_s ?(on_result = fun _ _ -> ()) f xs =
  let n = Array.length xs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let results = Array.make n (Crashed no_result) in
  let settle idx outcome =
    results.(idx) <- outcome;
    on_result idx outcome
  in
  let next = ref 0 in
  let running = ref [] in
  let spawn i =
    let r, w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        (* child: compute, marshal the outcome, hard-exit.  _exit
           skips at_exit and buffered-channel flushing, which belong
           to the parent. *)
        Unix.close r;
        List.iter (fun c -> try Unix.close c.fd with _ -> ()) !running;
        let code =
          try
            let v = try Ok (f xs.(i)) with e -> Error (Printexc.to_string e) in
            let oc = Unix.out_channel_of_descr w in
            Marshal.to_channel oc v [];
            flush oc;
            0
          with _ -> 125
        in
        Unix._exit code
    | pid ->
        Unix.close w;
        running :=
          {
            idx = i;
            pid;
            fd = r;
            buf = Buffer.create 256;
            started = Unix.gettimeofday ();
          }
          :: !running
  in
  let chunk = Bytes.create 65536 in
  while !next < n || !running <> [] do
    while !next < n && List.length !running < jobs do
      spawn !next;
      incr next
    done;
    let fds = List.map (fun c -> c.fd) !running in
    let readable, _, _ =
      try Unix.select fds [] [] 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let now = Unix.gettimeofday () in
    let keep = ref [] in
    List.iter
      (fun c ->
        let eof = ref false in
        if List.mem c.fd readable then begin
          match Unix.read c.fd chunk 0 (Bytes.length chunk) with
          | 0 -> eof := true
          | k -> Buffer.add_subbytes c.buf chunk 0 k
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        end;
        if !eof then begin
          Unix.close c.fd;
          settle c.idx (decode c (wait_status c.pid))
        end
        else
          match timeout_s with
          | Some limit when now -. c.started > limit ->
              (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (wait_status c.pid);
              Unix.close c.fd;
              settle c.idx (Timed_out (now -. c.started))
          | _ -> keep := c :: !keep)
      !running;
    running := !keep
  done;
  results

(* Shared-domain-pool alternative to [map]: jobs run as tasks on
   [jobs] domains inside this process.  No per-job timeout (a domain
   cannot be killed) and no isolation from fatal runtime errors, but
   no fork/marshal overhead either, and the engine's own ?domains
   machinery composes with it.  An uncaught exception in a job yields
   [Crashed] for that job only. *)
let map_domains ?jobs ?(on_result = fun _ _ -> ()) f xs =
  let n = Array.length xs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs (max 1 n) in
  let results = Array.make n (Crashed no_result) in
  let next = Atomic.make 0 in
  let cb_lock = Mutex.create () in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let outcome =
          match f xs.(i) with
          | v -> Done v
          | exception e -> Crashed (Printexc.to_string e)
        in
        results.(i) <- outcome;
        Mutex.lock cb_lock;
        (match on_result i outcome with
        | () -> Mutex.unlock cb_lock
        | exception e ->
            Mutex.unlock cb_lock;
            raise e);
        loop ()
      end
    in
    loop ()
  in
  if n > 0 then
    if jobs = 1 then worker ()
    else begin
      let doms = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join doms
    end;
  results
