type t = { dir : string; mutable hits : int; mutable misses : int }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { dir; hits = 0; misses = 0 }

let dir t = t.dir

(* bump when Job.result or the key fields change shape: old entries
   become misses *)
let version = "ita-dse-v7"

let job_key (spec : Job.spec) =
  let b = spec.Job.budget in
  let opt f = function None -> "-" | Some v -> f v in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            version;
            Marshal.to_string spec.Job.sys [];
            Job.technique_name spec.Job.technique;
            spec.Job.scenario;
            spec.Job.requirement;
            opt string_of_int b.Job.mc_states;
            opt string_of_float b.Job.mc_seconds;
            (match b.Job.mc_abstraction with
            | Ita_mc.Reach.ExtraM -> "extram"
            | Ita_mc.Reach.ExtraLU -> "extralu"
            | Ita_mc.Reach.LuSim -> "lusim");
            (match b.Job.mc_bounds with
            | Ita_mc.Reach.Static -> "static"
            | Ita_mc.Reach.Flow -> "flow");
            (match b.Job.mc_slicing with
            | Ita_mc.Reach.Off -> "off"
            | Ita_mc.Reach.Coi -> "coi"
            | Ita_mc.Reach.CoiMerge -> "coimerge");
            opt string_of_int b.Job.mc_domains;
            string_of_bool b.Job.mc_certify;
            string_of_int b.Job.sim_runs;
            string_of_int b.Job.sim_horizon_us;
          ]))

let path t key = Filename.concat t.dir (key ^ ".job")

let find t key =
  match open_in_bin (path t key) with
  | exception Sys_error _ ->
      t.misses <- t.misses + 1;
      None
  | ic -> (
      let v =
        match (Marshal.from_channel ic : Job.result) with
        | r -> Some r
        | exception _ -> None
      in
      close_in_noerr ic;
      (match v with
      | Some _ -> t.hits <- t.hits + 1
      | None -> t.misses <- t.misses + 1);
      v)

let store t key r =
  let final = path t key in
  let tmp =
    Printf.sprintf "%s.%d.tmp" final (Unix.getpid ())
  in
  let oc = open_out_bin tmp in
  Marshal.to_channel oc (r : Job.result) [];
  close_out oc;
  Sys.rename tmp final

let hits t = t.hits
let misses t = t.misses
