(* Unit and property tests for the zone substrate (lib/dbm).

   The property tests use concrete integer valuations as the oracle: a
   DBM operation is correct when membership of sampled valuations
   transforms the way the corresponding set operation dictates. *)

module Bound = Ita_dbm.Bound
module Dbm = Ita_dbm.Dbm
module Federation = Ita_dbm.Federation

(* ------------------------------------------------------------------ *)
(* Bound encoding                                                      *)
(* ------------------------------------------------------------------ *)

let test_bound_order () =
  Alcotest.(check bool) "lt c < le c" true (Bound.lt_bound (Bound.lt 3) (Bound.le 3));
  Alcotest.(check bool) "le c < lt (c+1)" true
    (Bound.lt_bound (Bound.le 3) (Bound.lt 4));
  Alcotest.(check bool) "finite < inf" true
    (Bound.lt_bound (Bound.le 1_000_000_000) Bound.infinity);
  Alcotest.(check bool) "negative bounds ordered" true
    (Bound.lt_bound (Bound.le (-5)) (Bound.lt (-4)))

let test_bound_add () =
  let check_add b1 b2 (expect : Bound.t) =
    Alcotest.(check int) "add" (expect :> int) (Bound.add b1 b2 :> int)
  in
  check_add (Bound.le 2) (Bound.le 3) (Bound.le 5);
  check_add (Bound.le 2) (Bound.lt 3) (Bound.lt 5);
  check_add (Bound.lt 2) (Bound.lt 3) (Bound.lt 5);
  check_add (Bound.le (-2)) (Bound.le 3) (Bound.le 1);
  check_add Bound.infinity (Bound.le 3) Bound.infinity;
  check_add (Bound.lt 0) Bound.infinity Bound.infinity

let test_bound_negate () =
  Alcotest.(check int) "negate le" (Bound.lt (-4) :> int)
    (Bound.negate_weak (Bound.le 4) :> int);
  Alcotest.(check int) "negate lt" (Bound.le (-4) :> int)
    (Bound.negate_weak (Bound.lt 4) :> int)

let test_bound_sat () =
  Alcotest.(check bool) "3 <= 3" true (Bound.sat 3 (Bound.le 3));
  Alcotest.(check bool) "3 < 3 fails" false (Bound.sat 3 (Bound.lt 3));
  Alcotest.(check bool) "anything < inf" true (Bound.sat 999999 Bound.infinity)

(* ------------------------------------------------------------------ *)
(* Basic zone unit tests (2 clocks unless said otherwise)              *)
(* ------------------------------------------------------------------ *)

let v a b = [| 0; a; b |]

let test_zero_zone () =
  let z = Dbm.zero 2 in
  Alcotest.(check bool) "origin in zero" true (Dbm.satisfies z (v 0 0));
  Alcotest.(check bool) "not (1,0)" false (Dbm.satisfies z (v 1 0));
  Alcotest.(check bool) "non-empty" false (Dbm.is_empty z)

let test_universal_zone () =
  let z = Dbm.universal 2 in
  Alcotest.(check bool) "origin" true (Dbm.satisfies z (v 0 0));
  Alcotest.(check bool) "(7,3)" true (Dbm.satisfies z (v 7 3));
  Alcotest.(check bool) "zero subset universal" true
    (Dbm.subset (Dbm.zero 2) z);
  Alcotest.(check bool) "universal not subset zero" false
    (Dbm.subset z (Dbm.zero 2))

let test_up () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Alcotest.(check bool) "diagonal after up" true (Dbm.satisfies z (v 5 5));
  Alcotest.(check bool) "off-diagonal excluded" false (Dbm.satisfies z (v 5 4))

let test_constrain_empty () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 3);
  (* x1 <= 3 *)
  Dbm.constrain z 0 1 (Bound.le (-5));
  (* x1 >= 5: contradiction *)
  Alcotest.(check bool) "empty" true (Dbm.is_empty z)

let test_reset () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 10);
  Dbm.reset z 2 0;
  (* x2 := 0 while x1 in [0,10] *)
  Alcotest.(check bool) "(10,0) in" true (Dbm.satisfies z (v 10 0));
  Alcotest.(check bool) "(10,1) out" false (Dbm.satisfies z (v 10 1));
  Dbm.up z;
  Alcotest.(check bool) "(12,2) after up" true (Dbm.satisfies z (v 12 2));
  Alcotest.(check bool) "x1 - x2 <= 10 kept" false (Dbm.satisfies z (v 13 2))

let test_reset_to_value () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.reset z 1 7;
  Alcotest.(check bool) "(7, d)" true (Dbm.satisfies z (v 7 3));
  Alcotest.(check bool) "(6, d)" false (Dbm.satisfies z (v 6 3))

let test_free () =
  let z = Dbm.zero 2 in
  Dbm.free z 1;
  Alcotest.(check bool) "(42, 0)" true (Dbm.satisfies z (v 42 0));
  Alcotest.(check bool) "x2 still 0" false (Dbm.satisfies z (v 42 1))

let test_intersect () =
  let z1 = Dbm.zero 2 in
  Dbm.up z1;
  Dbm.constrain z1 1 0 (Bound.le 5);
  let z2 = Dbm.zero 2 in
  Dbm.up z2;
  Dbm.constrain z2 0 1 (Bound.le (-3));
  Dbm.intersect z1 z2;
  Alcotest.(check bool) "(4,4)" true (Dbm.satisfies z1 (v 4 4));
  Alcotest.(check bool) "(2,2)" false (Dbm.satisfies z1 (v 2 2));
  Alcotest.(check bool) "(6,6)" false (Dbm.satisfies z1 (v 6 6))

let test_sup_inf () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 5);
  Alcotest.(check int) "sup x1" (Bound.le 5 :> int) (Dbm.sup z 1 :> int);
  Alcotest.(check int) "sup x2 = x1's by diagonal" (Bound.le 5 :> int)
    (Dbm.sup z 2 :> int);
  Dbm.constrain z 0 1 (Bound.lt (-2));
  Alcotest.(check int) "inf x1" (Bound.lt (-2) :> int) (Dbm.inf z 1 :> int)

let test_extrapolate () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 0 1 (Bound.le (-100));
  (* x1 >= 100, but max constant 10 *)
  Dbm.constrain z 1 0 (Bound.le 200);
  let z' = Dbm.copy z in
  Dbm.extrapolate z' [| 0; 10; 10 |];
  Alcotest.(check bool) "extrapolation grows the zone" true (Dbm.subset z z');
  (* beyond the constant, bounds are gone *)
  Alcotest.(check bool) "upper bound dropped" true
    (Bound.is_infinity (Dbm.sup z' 1));
  Alcotest.(check bool) "still excludes small values" false
    (Dbm.satisfies z' (v 5 5))

let test_extrapolate_lu () =
  (* both clocks sit above all LU bounds: every difference constraint
     is blurred and row 0 is refined down to the strict U bound *)
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 0 1 (Bound.le (-10));
  (* the delay closure keeps x1 = x2, both >= 10 *)
  let z' = Dbm.copy z in
  Dbm.extrapolate_lu z' [| 0; 3; 3 |] [| 0; 3; 3 |];
  Alcotest.(check bool) "superset of original" true (Dbm.subset z z');
  Alcotest.(check bool) "x1 > 3, x2 > 3 kept" true
    (Dbm.satisfies z' (v 4 5) && not (Dbm.satisfies z' (v 3 3)));
  Alcotest.(check bool) "diagonal blurred: x2 < x1 now allowed" true
    (Dbm.satisfies z' (v 9 4))

let test_extrapolate_lu_keeps_low_bounds () =
  (* constraints at or below the bounds survive exactly *)
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 5);
  Dbm.constrain z 0 1 (Bound.le (-2));
  let z' = Dbm.copy z in
  Dbm.extrapolate_lu z' [| 0; 5; 5 |] [| 0; 5; 5 |];
  Alcotest.(check bool) "unchanged below the bounds" true (Dbm.equal z z')

(* le_lu: a◁LU simulation subsumption on unextrapolated zones.  One
   clock, L(x1) = 0..8, U(x1) = 5: a zone reaching below U must be
   matched pointwise, a zone entirely above U is matched by anything
   above it. *)
let test_le_lu_one_clock () =
  let low lo =
    let z = Dbm.universal 1 in
    Dbm.constrain z 0 1 (Bound.le (-lo));
    z
  in
  let l = [| 0; 8 |] and u = [| 0; 5 |] in
  (* v1 = 0 ∈ Z needs a witness w ≤ 0 in Z' = {v1 >= 10}: none *)
  Alcotest.(check bool) "universal not below {>=10}" false
    (Dbm.le_lu l u (low 0) (low 10));
  (* every v ∈ {v1 >= 6} is above U(5), so any larger witness works *)
  Alcotest.(check bool) "{>=6} below {>=10}" true
    (Dbm.le_lu l u (low 6) (low 10));
  (* ... but not below U: 5 ∈ {v1 >= 5} has no witness ≤ 5 *)
  Alcotest.(check bool) "{>=5} not below {>=10}" false
    (Dbm.le_lu l u (low 5) (low 10));
  (* upper bounds only matter up to L: a member above its witness needs
     the witness above L, so {<=9} ⊑ {<=8} holds for small L but not
     once L reaches the witness's cap *)
  let high hi =
    let z = Dbm.universal 1 in
    Dbm.constrain z 1 0 (Bound.le hi);
    z
  in
  Alcotest.(check bool) "{<=9} below {<=8} when L = 3" true
    (Dbm.le_lu [| 0; 3 |] u (high 9) (high 8));
  Alcotest.(check bool) "{<=9} not below {<=8} when L = 8" false
    (Dbm.le_lu [| 0; 8 |] u (high 9) (high 8))

let test_le_lu_empty () =
  let l = [| 0; 3; 3; 3 |] and u = [| 0; 3; 3; 3 |] in
  let empty = Dbm.zero 3 in
  Dbm.constrain empty 0 1 (Bound.le (-1));
  let z = Dbm.zero 3 in
  Alcotest.(check bool) "empty below anything" true (Dbm.le_lu l u empty z);
  Alcotest.(check bool) "nothing non-empty below empty" false
    (Dbm.le_lu l u z empty);
  Alcotest.(check bool) "empty below empty" true
    (Dbm.le_lu l u empty (Dbm.copy empty))

let test_extrapolate_idempotent () =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le 200);
  let k = [| 0; 10; 10 |] in
  Dbm.extrapolate z k;
  let z' = Dbm.copy z in
  Dbm.extrapolate z' k;
  Alcotest.(check bool) "idempotent" true (Dbm.equal z z')

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

(* A random zone is built by a random operation sequence from the
   delay-closure of the origin; sampled valuations come from a small
   box so that membership is non-trivial. *)

type op =
  | Up
  | Constrain of int * int * Bound.t
  | Reset of int * int
  | Free of int

let n_clocks = 3

let gen_bound =
  QCheck2.Gen.(
    let* c = int_range (-8) 8 in
    let* strict = bool in
    return (if strict then Bound.lt c else Bound.le c))

let gen_op =
  QCheck2.Gen.(
    let* choice = int_range 0 3 in
    match choice with
    | 0 -> return Up
    | 1 ->
        let* i = int_range 0 n_clocks in
        let* j = int_range 0 n_clocks in
        let* b = gen_bound in
        return (if i = j then Up else Constrain (i, j, b))
    | 2 ->
        let* i = int_range 1 n_clocks in
        let* c = int_range 0 5 in
        return (Reset (i, c))
    | _ ->
        let* i = int_range 1 n_clocks in
        return (Free i))

let apply_op z = function
  | Up -> Dbm.up z
  | Constrain (i, j, b) -> Dbm.constrain z i j b
  | Reset (i, c) -> Dbm.reset z i c
  | Free i -> Dbm.free z i

let gen_zone =
  QCheck2.Gen.(
    let* ops = list_size (int_range 0 8) gen_op in
    return
      (let z = Dbm.zero n_clocks in
       Dbm.up z;
       List.iter (apply_op z) ops;
       z))

let gen_valuation =
  QCheck2.Gen.(
    let* xs = array_size (return n_clocks) (int_range 0 12) in
    return (Array.append [| 0 |] xs))

let prop_up_membership =
  QCheck2.Test.make ~count:500 ~name:"up: delayed points stay members"
    QCheck2.Gen.(tup3 gen_zone gen_valuation (int_range 0 10))
    (fun (z, val_, d) ->
      QCheck2.assume (Dbm.satisfies z val_);
      let z' = Dbm.copy z in
      Dbm.up z';
      match Dbm.delay_ordered z' val_ d with
      | Some _ -> true
      | None -> false)

let prop_constrain_membership =
  QCheck2.Test.make ~count:500
    ~name:"constrain: membership = old membership && atom"
    QCheck2.Gen.(tup3 gen_zone gen_valuation (tup3 (int_range 0 n_clocks) (int_range 0 n_clocks) gen_bound))
    (fun (z, val_, (i, j, b)) ->
      QCheck2.assume (i <> j);
      let z' = Dbm.copy z in
      Dbm.constrain z' i j b;
      let expected =
        Dbm.satisfies z val_ && Bound.sat (val_.(i) - val_.(j)) b
      in
      Dbm.satisfies z' val_ = expected)

let prop_reset_membership =
  QCheck2.Test.make ~count:500 ~name:"reset: image membership"
    QCheck2.Gen.(tup3 gen_zone gen_valuation (tup2 (int_range 1 n_clocks) (int_range 0 5)))
    (fun (z, val_, (i, c)) ->
      QCheck2.assume (Dbm.satisfies z val_);
      let z' = Dbm.copy z in
      Dbm.reset z' i c;
      let v' = Array.copy val_ in
      v'.(i) <- c;
      Dbm.satisfies z' v')

let prop_intersect_membership =
  QCheck2.Test.make ~count:500 ~name:"intersect: membership is conjunction"
    QCheck2.Gen.(tup3 gen_zone gen_zone gen_valuation)
    (fun (z1, z2, val_) ->
      let z = Dbm.copy z1 in
      Dbm.intersect z z2;
      Dbm.satisfies z val_ = (Dbm.satisfies z1 val_ && Dbm.satisfies z2 val_))

let prop_subset_sound =
  QCheck2.Test.make ~count:500 ~name:"subset: members transfer"
    QCheck2.Gen.(tup3 gen_zone gen_zone gen_valuation)
    (fun (z1, z2, val_) ->
      if Dbm.subset z1 z2 && Dbm.satisfies z1 val_ then Dbm.satisfies z2 val_
      else true)

let prop_extrapolate_widens =
  QCheck2.Test.make ~count:500 ~name:"extrapolate: superset of original"
    gen_zone
    (fun z ->
      let z' = Dbm.copy z in
      Dbm.extrapolate z' [| 0; 8; 8; 8 |];
      Dbm.subset z z')

let gen_lu_bounds =
  QCheck2.Gen.(
    array_size (return (n_clocks + 1)) (int_range 0 8)
    >|= fun a ->
    a.(0) <- 0;
    a)

let prop_extrapolate_lu_widens =
  QCheck2.Test.make ~count:500 ~name:"extrapolate_lu: superset of original"
    QCheck2.Gen.(tup3 gen_zone gen_lu_bounds gen_lu_bounds)
    (fun (z, l, u) ->
      let z' = Dbm.copy z in
      Dbm.extrapolate_lu z' l u;
      Dbm.subset z z')

let prop_extrapolate_lu_coarser_than_m =
  QCheck2.Test.make ~count:500
    ~name:"extrapolate_lu with L = U = k: superset of classical extrapolate"
    QCheck2.Gen.(tup2 gen_zone gen_lu_bounds)
    (fun (z, k) ->
      let zm = Dbm.copy z and zlu = Dbm.copy z in
      Dbm.extrapolate zm k;
      Dbm.extrapolate_lu zlu k k;
      Dbm.subset zm zlu)

(* ------------------------------------------------------------------ *)
(* le_lu properties                                                    *)
(* ------------------------------------------------------------------ *)

let prop_le_lu_reflexive =
  QCheck2.Test.make ~count:500 ~name:"le_lu: reflexive"
    QCheck2.Gen.(tup3 gen_zone gen_lu_bounds gen_lu_bounds)
    (fun (z, l, u) -> Dbm.le_lu l u z z)

let prop_le_lu_transitive =
  QCheck2.Test.make ~count:2000 ~name:"le_lu: transitive"
    QCheck2.Gen.(tup3 (tup3 gen_zone gen_zone gen_zone) gen_lu_bounds gen_lu_bounds)
    (fun ((z1, z2, z3), l, u) ->
      if Dbm.le_lu l u z1 z2 && Dbm.le_lu l u z2 z3 then Dbm.le_lu l u z1 z3
      else true)

let prop_le_lu_coarser_than_subset =
  QCheck2.Test.make ~count:1000 ~name:"le_lu: implied by plain inclusion"
    QCheck2.Gen.(tup3 (tup2 gen_zone gen_zone) gen_lu_bounds gen_lu_bounds)
    (fun ((z, z'), l, u) ->
      if Dbm.subset z z' then Dbm.le_lu l u z z' else true)

(* The theorem that makes a◁LU subsumption explore no more states than
   Extra+LU (Herbreteau et al.): Extra+LU(Z) ⊆ a◁LU(Z), hence
   extrapolation-based inclusion implies simulation-based inclusion on
   the unextrapolated zones.  Never assert the reverse direction — the
   whole point is that le_lu is strictly coarser. *)
let prop_le_lu_coarser_than_extrapolation =
  QCheck2.Test.make ~count:1000
    ~name:"le_lu: implied by subset after extrapolate_lu"
    QCheck2.Gen.(tup3 (tup2 gen_zone gen_zone) gen_lu_bounds gen_lu_bounds)
    (fun ((z, z'), l, u) ->
      let ze = Dbm.copy z and ze' = Dbm.copy z' in
      Dbm.extrapolate_lu ze l u;
      Dbm.extrapolate_lu ze' l u;
      if Dbm.subset ze ze' then Dbm.le_lu l u z z' else true)

(* Language-inclusion soundness on concrete walks: when [le_lu l u z z']
   holds, every guard/reset/delay walk a member of [z] can do concretely
   — guards diagonal-free with lower constants ≤ L and upper constants
   ≤ U, as the L/U analysis guarantees for the checker — is feasible
   from [z'] symbolically (delays time-abstracted by [up], exactly how
   the checker uses zones). *)
type wstep =
  | Wdelay of int
  | Wlow of int * int * bool  (* clock, constant, strict *)
  | Whigh of int * int * bool
  | Wreset of int

let gen_walk l u =
  QCheck2.Gen.(
    list_size (int_range 0 6)
      (let* choice = int_range 0 3 in
       match choice with
       | 0 ->
           let* d = int_range 0 6 in
           return (Wdelay d)
       | 1 ->
           let* i = int_range 1 n_clocks in
           let* strict = bool in
           let* k = int_range 0 (max 0 l.(i)) in
           return (Wlow (i, k, strict))
       | 2 ->
           let* i = int_range 1 n_clocks in
           let* strict = bool in
           let* k = int_range 0 (max 0 u.(i)) in
           return (Whigh (i, k, strict))
       | _ ->
           let* i = int_range 1 n_clocks in
           return (Wreset i)))

let concrete_walk v steps =
  let v = Array.copy v in
  List.for_all
    (function
      | Wdelay d ->
          for i = 1 to n_clocks do
            v.(i) <- v.(i) + d
          done;
          true
      | Wlow (i, k, strict) -> if strict then v.(i) > k else v.(i) >= k
      | Whigh (i, k, strict) -> if strict then v.(i) < k else v.(i) <= k
      | Wreset i ->
          v.(i) <- 0;
          true)
    steps

let symbolic_walk z steps =
  let z = Dbm.copy z in
  List.iter
    (function
      | Wdelay _ -> Dbm.up z
      | Wlow (i, k, strict) ->
          Dbm.constrain z 0 i (if strict then Bound.lt (-k) else Bound.le (-k))
      | Whigh (i, k, strict) ->
          Dbm.constrain z i 0 (if strict then Bound.lt k else Bound.le k)
      | Wreset i -> Dbm.reset z i 0)
    steps;
  not (Dbm.is_empty z)

let gen_lu_walk =
  QCheck2.Gen.(
    gen_lu_bounds >>= fun l ->
    gen_lu_bounds >>= fun u ->
    gen_walk l u >|= fun w -> (l, u, w))

let prop_le_lu_language_inclusion =
  QCheck2.Test.make ~count:2000
    ~name:"le_lu: concrete walks of members stay feasible in the simulator"
    QCheck2.Gen.(tup3 gen_zone gen_zone (tup2 gen_valuation gen_lu_walk))
    (fun (z, z', (val_, (l, u, steps))) ->
      if
        Dbm.le_lu l u z z'
        && Dbm.satisfies z val_
        && concrete_walk val_ steps
      then symbolic_walk z' steps
      else true)

let prop_extrapolate_lu_idempotent =
  QCheck2.Test.make ~count:500 ~name:"extrapolate_lu: idempotent"
    QCheck2.Gen.(tup3 gen_zone gen_lu_bounds gen_lu_bounds)
    (fun (z, l, u) ->
      Dbm.extrapolate_lu z l u;
      let z' = Dbm.copy z in
      Dbm.extrapolate_lu z' l u;
      Dbm.equal z z')

let prop_sup_bounds_members =
  QCheck2.Test.make ~count:500 ~name:"sup bounds all members"
    QCheck2.Gen.(tup2 gen_zone gen_valuation)
    (fun (z, val_) ->
      QCheck2.assume (Dbm.satisfies z val_);
      let ok = ref true in
      for i = 1 to n_clocks do
        if not (Bound.sat val_.(i) (Dbm.sup z i)) then ok := false
      done;
      !ok)

let prop_canonical_triangle =
  QCheck2.Test.make ~count:500
    ~name:"operations preserve canonical (triangle) form"
    QCheck2.Gen.(list_size (int_range 0 12) gen_op)
    (fun ops ->
      let z = Dbm.zero n_clocks in
      Dbm.up z;
      List.iter (apply_op z) ops;
      Dbm.is_empty z
      ||
      let n = n_clocks + 1 in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if
              Bound.lt_bound
                (Bound.add (Dbm.get z i k) (Dbm.get z k j))
                (Dbm.get z i j)
            then ok := false
          done
        done
      done;
      !ok)

let prop_equal_hash =
  QCheck2.Test.make ~count:500 ~name:"equal zones hash equally"
    QCheck2.Gen.(tup2 gen_zone gen_zone)
    (fun (z1, z2) -> (not (Dbm.equal z1 z2)) || Dbm.hash z1 = Dbm.hash z2)

(* ------------------------------------------------------------------ *)
(* Federation                                                          *)
(* ------------------------------------------------------------------ *)

let box lo hi =
  let z = Dbm.zero 2 in
  Dbm.up z;
  Dbm.constrain z 1 0 (Bound.le hi);
  Dbm.constrain z 0 1 (Bound.le (-lo));
  z

let test_federation_add () =
  let f = Federation.empty 2 in
  let f = Federation.add f (box 0 5) in
  let f = Federation.add f (box 2 3) in
  Alcotest.(check int) "subsumed zone dropped" 1 (Federation.size f);
  let f = Federation.add f (box 0 10) in
  Alcotest.(check int) "wider zone replaces" 1 (Federation.size f);
  Alcotest.(check bool) "member" true (Federation.mem f (v 7 7));
  Alcotest.(check bool) "non-member" false (Federation.mem f (v 11 11))

let test_federation_subsumes () =
  let f = Federation.add (Federation.empty 2) (box 0 5) in
  Alcotest.(check bool) "inner box subsumed" true
    (Federation.subsumes f (box 1 4));
  Alcotest.(check bool) "outer box not" false
    (Federation.subsumes f (box 1 9))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_up_membership;
        prop_constrain_membership;
        prop_reset_membership;
        prop_intersect_membership;
        prop_subset_sound;
        prop_extrapolate_widens;
        prop_extrapolate_lu_widens;
        prop_extrapolate_lu_coarser_than_m;
        prop_le_lu_reflexive;
        prop_le_lu_transitive;
        prop_le_lu_coarser_than_subset;
        prop_le_lu_coarser_than_extrapolation;
        prop_le_lu_language_inclusion;
        prop_extrapolate_lu_idempotent;
        prop_sup_bounds_members;
        prop_canonical_triangle;
        prop_equal_hash;
      ]
  in
  Alcotest.run "dbm"
    [
      ( "bound",
        [
          Alcotest.test_case "order" `Quick test_bound_order;
          Alcotest.test_case "add" `Quick test_bound_add;
          Alcotest.test_case "negate" `Quick test_bound_negate;
          Alcotest.test_case "sat" `Quick test_bound_sat;
        ] );
      ( "zone",
        [
          Alcotest.test_case "zero" `Quick test_zero_zone;
          Alcotest.test_case "universal" `Quick test_universal_zone;
          Alcotest.test_case "up" `Quick test_up;
          Alcotest.test_case "constrain to empty" `Quick test_constrain_empty;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "reset to value" `Quick test_reset_to_value;
          Alcotest.test_case "free" `Quick test_free;
          Alcotest.test_case "intersect" `Quick test_intersect;
          Alcotest.test_case "sup/inf" `Quick test_sup_inf;
          Alcotest.test_case "extrapolate" `Quick test_extrapolate;
          Alcotest.test_case "extrapolate_lu" `Quick test_extrapolate_lu;
          Alcotest.test_case "extrapolate_lu below bounds" `Quick
            test_extrapolate_lu_keeps_low_bounds;
          Alcotest.test_case "le_lu one clock" `Quick test_le_lu_one_clock;
          Alcotest.test_case "le_lu empty zones" `Quick test_le_lu_empty;
          Alcotest.test_case "extrapolate idempotent" `Quick
            test_extrapolate_idempotent;
        ] );
      ( "federation",
        [
          Alcotest.test_case "add with subsumption" `Quick test_federation_add;
          Alcotest.test_case "subsumes" `Quick test_federation_subsumes;
        ] );
      ("properties", qsuite);
    ]
