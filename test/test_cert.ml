(* Certificate tests: every verdict the engine emits must come with a
   certificate the independent checker accepts — across the full
   abstraction x slicing x domain-count matrix, on the model zoo, the
   shipped example files and the radionav case study.  Invariant
   certificates must additionally be byte-identical across domain
   counts, and programmatically corrupted certificates must be
   rejected with the right obligation named. *)

open Ita_ta
open Ita_mc
module Dbm = Ita_dbm.Dbm
module Cert = Ita_cert.Cert
module R = Ita_casestudy.Radionav
module E = Ita_tafmt.Elaborate

(* ------------------------------------------------------------------ *)
(* Models (the test_par zoo, including its wide-frontier stressor)     *)
(* ------------------------------------------------------------------ *)

let wide_frontier () =
  let b = Network.Builder.create () in
  let clocks =
    Array.init 3 (fun i -> Network.Builder.clock b (Printf.sprintf "c%d" i))
  in
  Array.iteri
    (fun i x ->
      let locations =
        [
          Models.loc "A";
          Models.loc "B" ~invariant:(Guard.clock_le x 5);
          Models.loc "C";
        ]
      in
      let edges =
        [
          Models.edge 0 1 ~update:(Update.reset x);
          Models.edge 0 2 ~guard:(Guard.clock_ge x 2) ~update:(Update.reset x);
          Models.edge 1 0 ~guard:(Guard.clock_ge x 3);
          Models.edge 2 0 ~update:(Update.reset x);
        ]
      in
      Network.Builder.add_automaton b
        (Automaton.make ~name:(Printf.sprintf "P%d" i) ~locations ~edges
           ~initial:0))
    clocks;
  Network.Builder.build b

let zoo () =
  [
    ("two-phase", (let net, _, _ = Models.two_phase () in net));
    ("urgent-gate", fst (Models.urgent_gate ()));
    ("committed-gate", fst (Models.committed_gate ()));
    ("handshake", fst (Models.handshake ()));
    ("broadcast", Models.broadcast_pair ());
    ("wide-frontier", wide_frontier ());
  ]

(* ------------------------------------------------------------------ *)
(* Emission helpers (mirroring what tamc check --cert does)            *)
(* ------------------------------------------------------------------ *)

let reach_cert ?(abstraction = Reach.ExtraLU) ?(slicing = Reach.Off)
    ?(domains = 1) net (q : Query.t) =
  let snap = ref None in
  match
    Reach.reach ~abstraction ~slicing ~domains
      ~snap:(fun s -> snap := Some s)
      net q
  with
  | Reach.Unreachable _ -> (
      match !snap with
      | Some s ->
          Some (Cert_emit.of_snapshot ~index:0 ~verdict:Cert.Unreachable s)
      | None -> Alcotest.fail "unreachable verdict fired no snapshot")
  | Reach.Reachable { witness; _ } ->
      Some
        (Cert_emit.of_witness ~index:0
           (List.filter_map (fun (s : Reach.step) -> s.Reach.via) witness))
  | Reach.Budget_exhausted _ -> None

let sup_cert ?(abstraction = Reach.ExtraLU) ?(slicing = Reach.Off)
    ?(domains = 1) ?(initial_ceiling = 64) ?(max_ceiling = 256) net ~at ~clock
    =
  let snap = ref None in
  match
    Wcrt.sup ~abstraction ~slicing ~domains ~initial_ceiling ~max_ceiling
      ~snap:(fun s -> snap := Some s)
      net ~at ~clock
  with
  | Wcrt.Sup { value; kind; _ } -> (
      let kind =
        match kind with
        | Wcrt.Attained -> Cert.Attained
        | Wcrt.Approached -> Cert.Approached
      in
      match !snap with
      | Some s ->
          Some
            (Cert_emit.of_snapshot ~index:0
               ~verdict:(Cert.Sup { clock; value; kind })
               s)
      | None -> Alcotest.fail "sup verdict fired no snapshot")
  | Wcrt.Goal_unreachable _ | Wcrt.Sup_budget_exhausted _
  | Wcrt.Sup_unbounded _ ->
      None

(* serialize, re-parse, then hand to the independent checker: the
   whole pipeline a certificate travels through in production *)
let roundtrip_check name net ~goal qc =
  let c = Cert_emit.make net [ qc ] in
  match Cert.parse (Cert.to_string c) with
  | Error f ->
      Alcotest.failf "%s: roundtrip parse failed [%s] %s" name
        (Cert.obligation_name f.Cert.obligation)
        f.Cert.message
  | Ok c' -> (
      Alcotest.(check int)
        (name ^ ": fingerprint survives the roundtrip")
        c.Cert.fingerprint c'.Cert.fingerprint;
      match c'.Cert.queries with
      | [ qc' ] -> (
          match Cert.check net ~goal qc' with
          | Ok _ -> ()
          | Error f ->
              Alcotest.failf "%s: certificate REJECTED [%s] %s" name
                (Cert.obligation_name f.Cert.obligation)
                f.Cert.message)
      | l -> Alcotest.failf "%s: %d queries after roundtrip" name (List.length l))

let check_net_matrix cfg ~abstraction ~slicing ~domains (name, net) =
  let n_clocks = Array.length net.Network.clock_names in
  Array.iter
    (fun (a : Automaton.t) ->
      Array.iter
        (fun (l : Automaton.location) ->
          let at =
            Query.at net ~comp:a.Automaton.name ~loc:l.Automaton.loc_name
          in
          for x = 1 to n_clocks - 1 do
            List.iter
              (fun c ->
                let q = Query.with_guard at (Guard.clock_ge x c) in
                match reach_cert ~abstraction ~slicing ~domains net q with
                | None -> ()
                | Some qc ->
                    roundtrip_check
                      (Printf.sprintf "%s %s: reach %s >= %d at %s.%s" cfg
                         name net.Network.clock_names.(x) c a.Automaton.name
                         l.Automaton.loc_name)
                      net
                      ~goal:(Cert_emit.goal_of_query q)
                      qc)
              [ 1; 7 ];
            match sup_cert ~abstraction ~slicing ~domains net ~at ~clock:x with
            | None -> ()
            | Some qc ->
                roundtrip_check
                  (Printf.sprintf "%s %s: sup %s at %s.%s" cfg name
                     net.Network.clock_names.(x) a.Automaton.name
                     l.Automaton.loc_name)
                  net
                  ~goal:(Cert_emit.goal_of_query at)
                  qc
          done)
        a.Automaton.locations)
    net.Network.automata

let matrix f =
  List.iter
    (fun (aname, abstraction) ->
      List.iter
        (fun (sname, slicing) ->
          List.iter
            (fun domains ->
              f
                (Printf.sprintf "[%s/%s/d=%d]" aname sname domains)
                ~abstraction ~slicing ~domains)
            [ 1; 4 ])
        [ ("off", Reach.Off); ("coi", Reach.Coi); ("coimerge", Reach.CoiMerge) ])
    [ ("extram", Reach.ExtraM); ("extralu", Reach.ExtraLU);
      ("lusim", Reach.LuSim) ]

let test_zoo_matrix () =
  matrix (fun cfg ~abstraction ~slicing ~domains ->
      List.iter (check_net_matrix cfg ~abstraction ~slicing ~domains) (zoo ()))

(* ------------------------------------------------------------------ *)
(* The shipped example files, through the same pipeline                *)
(* ------------------------------------------------------------------ *)

let model_path name =
  let candidates =
    [ "../examples/models/" ^ name; "examples/models/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "%s not found" name

let test_examples_matrix () =
  List.iter
    (fun file ->
      let { E.net; queries; _ } = E.load_file (model_path file) in
      matrix (fun cfg ~abstraction ~slicing ~domains ->
          List.iteri
            (fun i q ->
              match q with
              | E.Deadlock_q -> ()
              | E.Reach_q q -> (
                  match reach_cert ~abstraction ~slicing ~domains net q with
                  | None -> ()
                  | Some qc ->
                      roundtrip_check
                        (Printf.sprintf "%s %s: query %d" cfg file i)
                        net
                        ~goal:(Cert_emit.goal_of_query q)
                        qc)
              | E.Sup_q { clock; at } -> (
                  match
                    sup_cert ~abstraction ~slicing ~domains
                      ~initial_ceiling:1024 ~max_ceiling:65536 net ~at ~clock
                  with
                  | None -> ()
                  | Some qc ->
                      roundtrip_check
                        (Printf.sprintf "%s %s: query %d" cfg file i)
                        net
                        ~goal:(Cert_emit.goal_of_query at)
                        qc))
            queries))
    [ "two_phase.ta"; "train_gate.ta"; "fischer.ta"; "island_demo.ta" ]

(* ------------------------------------------------------------------ *)
(* Radionav: certify the case study's WCRT across the matrix           *)
(* ------------------------------------------------------------------ *)

let test_radionav_certificates () =
  let sys = R.system R.Al_tmc R.Po in
  let scenario = Ita_core.Sysmodel.scenario sys "HandleTMC" in
  let req = Ita_core.Scenario.requirement scenario "TMC" in
  let gen = Ita_core.Gen.generate ~measure:("HandleTMC", req) sys in
  let net = gen.Ita_core.Gen.net in
  let obs = Option.get gen.Ita_core.Gen.observer in
  let at = obs.Ita_core.Gen.seen and clock = obs.Ita_core.Gen.obs_clock in
  matrix (fun cfg ~abstraction ~slicing ~domains ->
      match
        sup_cert ~abstraction ~slicing ~domains ~initial_ceiling:1_000_000
          ~max_ceiling:16_000_000 net ~at ~clock
      with
      | None -> Alcotest.failf "%s radionav: no sup verdict" cfg
      | Some qc ->
          roundtrip_check
            (Printf.sprintf "%s radionav al/po" cfg)
            net
            ~goal:(Cert_emit.goal_of_query at)
            qc)

(* ------------------------------------------------------------------ *)
(* Byte stability: the same invariant certificate at any domain count  *)
(* ------------------------------------------------------------------ *)

let test_domain_count_byte_equality () =
  let net = wide_frontier () in
  let unreach =
    Query.with_guard (Query.at net ~comp:"P0" ~loc:"B") (Guard.clock_ge 1 7)
  in
  let at = Query.at net ~comp:"P0" ~loc:"B" in
  List.iter
    (fun (sname, slicing) ->
      let bytes domains =
        let qcs =
          [
            Option.get (reach_cert ~slicing ~domains net unreach);
            Option.get (sup_cert ~slicing ~domains net ~at ~clock:1);
          ]
        in
        Cert.to_string (Cert_emit.make net qcs)
      in
      Alcotest.(check string)
        (Printf.sprintf "wide-frontier [%s]: 1-domain and 4-domain \
                         certificates are byte-identical"
           sname)
        (bytes 1) (bytes 4))
    [ ("off", Reach.Off); ("coi", Reach.Coi); ("coimerge", Reach.CoiMerge) ]

(* ------------------------------------------------------------------ *)
(* Mutation rejection: corrupted certificates name the right
   obligation.  Base certificates are produced with slicing off so the
   mutations interact with the obligations, not with the mask.         *)
(* ------------------------------------------------------------------ *)

let initial_locs (net : Network.t) =
  Array.map (fun (a : Automaton.t) -> a.Automaton.initial) net.Network.automata

let expect_rejection name net ~goal qc expected =
  match Cert.check net ~goal qc with
  | Ok _ -> Alcotest.failf "%s: corrupted certificate was ACCEPTED" name
  | Error f ->
      Alcotest.(check string)
        (name ^ ": rejection names the right obligation")
        (Cert.obligation_name expected)
        (Cert.obligation_name f.Cert.obligation)

let wf_base () =
  let net = wide_frontier () in
  let unreach =
    Query.with_guard (Query.at net ~comp:"P0" ~loc:"B") (Guard.clock_ge 1 7)
  in
  let qc = Option.get (reach_cert net unreach) in
  (net, unreach, qc)

let test_mutation_drop_state () =
  let net, unreach, qc = wf_base () in
  let init = initial_locs net in
  (* dropping any non-initial state breaks consecution: its stored
     predecessor's successor is no longer covered *)
  let victim =
    List.find
      (fun (e : Cert.entry) -> e.Cert.st.Semantics.locs <> init)
      qc.Cert.entries
  in
  let entries =
    List.filter (fun (e : Cert.entry) -> e != victim) qc.Cert.entries
  in
  expect_rejection "drop-state" net
    ~goal:(Cert_emit.goal_of_query unreach)
    { qc with Cert.entries }
    Cert.Consecution

let test_mutation_widen_zone () =
  let net, unreach, qc = wf_base () in
  (* widen a stored zone at a goal location past the goal guard: the
     invariant no longer implies unreachability *)
  let widened = ref false in
  let entries =
    List.map
      (fun (e : Cert.entry) ->
        if (not !widened) && e.Cert.st.Semantics.locs.(0) = 1 then begin
          widened := true;
          let z = Dbm.copy (List.hd e.Cert.zones) in
          Dbm.free z 1;
          { e with Cert.zones = z :: List.tl e.Cert.zones }
        end
        else e)
      qc.Cert.entries
  in
  Alcotest.(check bool) "widen-zone: found a goal-location entry" true
    !widened;
  expect_rejection "widen-zone" net
    ~goal:(Cert_emit.goal_of_query unreach)
    { qc with Cert.entries }
    Cert.Judgment

let test_mutation_shrink_lu () =
  let net, unreach, qc = wf_base () in
  (* location B carries the invariant c0 <= 5: an entry there whose U
     vector is shrunk below 5 can no longer dominate it, so the
     abstraction the certificate claims is unsound — consecution *)
  let shrunk = ref false in
  let entries =
    List.map
      (fun (e : Cert.entry) ->
        if (not !shrunk) && e.Cert.st.Semantics.locs.(0) = 1 then begin
          shrunk := true;
          let u = Array.copy e.Cert.u in
          u.(1) <- 0;
          { e with Cert.u = u }
        end
        else e)
      qc.Cert.entries
  in
  Alcotest.(check bool) "shrink-lu: found a B entry" true !shrunk;
  expect_rejection "shrink-lu" net
    ~goal:(Cert_emit.goal_of_query unreach)
    { qc with Cert.entries }
    Cert.Consecution

let test_mutation_swap_state () =
  let net, unreach, qc = wf_base () in
  let init = initial_locs net in
  (* exchange the discrete states of two stored entries (keeping
     zones and LU vectors in place): both antichains now sit under the
     wrong locations and consecution's coverage collapses *)
  let swappable =
    List.filter
      (fun (e : Cert.entry) ->
        e.Cert.st.Semantics.locs <> init && e.Cert.st.Semantics.locs.(0) <> 1)
      qc.Cert.entries
  in
  let a = List.nth swappable 0 and b = List.nth swappable 1 in
  let entries =
    List.map
      (fun (e : Cert.entry) ->
        if e == a then { a with Cert.st = b.Cert.st }
        else if e == b then { b with Cert.st = a.Cert.st }
        else e)
      qc.Cert.entries
  in
  expect_rejection "swap-state" net
    ~goal:(Cert_emit.goal_of_query unreach)
    { qc with Cert.entries }
    Cert.Consecution

let test_mutation_stale_version () =
  let net, _, qc = wf_base () in
  let s = Cert.to_string (Cert_emit.make net [ qc ]) in
  let tag = "tamc-cert 1" in
  Alcotest.(check bool) "stale-version: header present" true
    (String.length s > String.length tag
    && String.sub s 0 (String.length tag) = tag);
  let stale =
    "tamc-cert 0" ^ String.sub s (String.length tag) (String.length s - String.length tag)
  in
  match Cert.parse stale with
  | Ok _ -> Alcotest.fail "stale-version: parsed a version-0 certificate"
  | Error f ->
      Alcotest.(check string) "stale-version: rejection names format"
        (Cert.obligation_name Cert.Format)
        (Cert.obligation_name f.Cert.obligation)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cert"
    [
      ( "matrix",
        [
          Alcotest.test_case "zoo: every verdict certifies" `Quick
            test_zoo_matrix;
          Alcotest.test_case "examples: every verdict certifies" `Quick
            test_examples_matrix;
          Alcotest.test_case "radionav: WCRT certifies" `Slow
            test_radionav_certificates;
        ] );
      ( "stability",
        [
          Alcotest.test_case "1 vs 4 domains: byte-identical" `Quick
            test_domain_count_byte_equality;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "dropped state -> consecution" `Quick
            test_mutation_drop_state;
          Alcotest.test_case "widened zone -> judgment" `Quick
            test_mutation_widen_zone;
          Alcotest.test_case "shrunk LU vector -> consecution" `Quick
            test_mutation_shrink_lu;
          Alcotest.test_case "swapped discrete state -> consecution" `Quick
            test_mutation_swap_state;
          Alcotest.test_case "stale version tag -> format" `Quick
            test_mutation_stale_version;
        ] );
    ]
