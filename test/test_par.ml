(* Differential tests for the parallel exploration engine: every
   verdict, WCRT and final antichain produced with worker domains must
   be identical to the sequential engine's (domains = 1), on the model
   zoo, on random automata and on the radionav case study.  Stats that
   the sharded passed list promises to keep deterministic (stored,
   i.e. resident zones) are stress-tested for nondeterminism; stats
   documented as schedule-dependent (explored, transitions) are never
   compared here. *)

open Ita_ta
open Ita_mc
module Dbm = Ita_dbm.Dbm
module R = Ita_casestudy.Radionav

(* ------------------------------------------------------------------ *)
(* Order-insensitive passed-list fingerprints                          *)
(* ------------------------------------------------------------------ *)

let antichain_fp net passed =
  (* per discrete state the antichain of stored zones, both levels
     sorted: the engine promises deterministic *contents*, never
     order *)
  passed
  |> List.map (fun ((st : Semantics.state), zones) ->
         ( Format.asprintf "%a" (Semantics.pp_state net) st,
           List.sort compare (List.map (Format.asprintf "%a" Dbm.pp) zones) ))
  |> List.sort compare

let resident_zones passed =
  List.fold_left (fun n (_, zones) -> n + List.length zones) 0 passed

let explore_passed_exn ?budget ?abstraction ~domains net =
  match Reach.explore_passed ?budget ?abstraction ~domains net with
  | `Complete (passed, stats) -> (passed, stats)
  | `Budget_exhausted _ -> Alcotest.fail "exploration should complete"

(* ------------------------------------------------------------------ *)
(* A wide-frontier, high-subsumption model: three interleaved
   components, each looping through branches that reset its own clock,
   so many discrete interleavings keep producing comparable zones for
   the same state and the antichain prunes heavily — the worst case
   for concurrent subsumed inserts.                                    *)
(* ------------------------------------------------------------------ *)

let wide_frontier () =
  let b = Network.Builder.create () in
  let clocks =
    Array.init 3 (fun i -> Network.Builder.clock b (Printf.sprintf "c%d" i))
  in
  Array.iteri
    (fun i x ->
      let locations =
        [
          Models.loc "A";
          Models.loc "B" ~invariant:(Guard.clock_le x 5);
          Models.loc "C";
        ]
      in
      let edges =
        [
          Models.edge 0 1 ~update:(Update.reset x);
          Models.edge 0 2 ~guard:(Guard.clock_ge x 2) ~update:(Update.reset x);
          Models.edge 1 0 ~guard:(Guard.clock_ge x 3);
          Models.edge 2 0 ~update:(Update.reset x);
        ]
      in
      Network.Builder.add_automaton b
        (Automaton.make ~name:(Printf.sprintf "P%d" i) ~locations ~edges
           ~initial:0))
    clocks;
  Network.Builder.build b

(* ------------------------------------------------------------------ *)
(* Satellite: the model-zoo differential suite                         *)
(* ------------------------------------------------------------------ *)

let zoo () =
  [
    ("two-phase", (let net, _, _ = Models.two_phase () in net));
    ("urgent-gate", fst (Models.urgent_gate ()));
    ("committed-gate", fst (Models.committed_gate ()));
    ("handshake", fst (Models.handshake ()));
    ("broadcast", Models.broadcast_pair ());
    ("wide-frontier", wide_frontier ());
  ]

let check_antichains name net =
  (* the canonical-antichain promise (identical stored contents across
     engines and schedules) is specific to subset subsumption, whose
     order is antisymmetric; under LuSim two distinct zones can
     simulate each other and the surviving representative is
     schedule-dependent, so these checks pin Extra+LU regardless of
     TAMC_ABSTRACTION (LuSim coverage: check_lusim_differential) *)
  let explore_passed_exn ?budget ~domains net =
    explore_passed_exn ?budget ~abstraction:Reach.ExtraLU ~domains net
  in
  let seq_passed, seq_stats = explore_passed_exn ~domains:1 net in
  let seq_fp = antichain_fp net seq_passed in
  Alcotest.(check int)
    (name ^ ": sequential stored = resident zones")
    (resident_zones seq_passed) seq_stats.Reach.stored;
  List.iter
    (fun d ->
      let passed, stats = explore_passed_exn ~domains:d net in
      Alcotest.(check int)
        (Printf.sprintf "%s: stats.domains (d=%d)" name d)
        d stats.Reach.domains;
      Alcotest.(check int)
        (Printf.sprintf "%s: stored matches sequential (d=%d)" name d)
        seq_stats.Reach.stored stats.Reach.stored;
      Alcotest.(check int)
        (Printf.sprintf "%s: stored = resident zones (d=%d)" name d)
        (resident_zones passed) stats.Reach.stored;
      Alcotest.(check (list (pair string (list string))))
        (Printf.sprintf "%s: antichain contents (d=%d)" name d)
        seq_fp (antichain_fp net passed))
    [ 2; 4 ]

let test_zoo_antichains () =
  List.iter (fun (name, net) -> check_antichains name net) (zoo ())

let verdict = function
  | Reach.Reachable _ -> "reachable"
  | Reach.Unreachable _ -> "unreachable"
  | Reach.Budget_exhausted _ -> "budget"

let sup_fp ?(initial_ceiling = 64) ?(max_ceiling = 256) ?abstraction ~domains
    net ~at ~clock () =
  (* tiny ceilings, as in test_mc: model constants are all well below
     64, and the fingerprint only has to agree across engines *)
  match
    Wcrt.sup ?abstraction ~domains ~initial_ceiling ~max_ceiling net ~at ~clock
  with
  | Wcrt.Sup { value; kind; _ } ->
      Printf.sprintf "sup %d %s" value
        (match kind with
        | Wcrt.Attained -> "attained"
        | Wcrt.Approached -> "approached")
  | Wcrt.Goal_unreachable _ -> "unreachable"
  | Wcrt.Sup_budget_exhausted _ -> "budget"
  | Wcrt.Sup_unbounded _ -> "unbounded"

let check_net_verdicts_and_wcrts name net =
  (* every location of every component: reachability of two guard
     thresholds and the sup of every clock must agree with the
     sequential engine at 2 and 4 domains *)
  let n_clocks = Array.length net.Network.clock_names in
  Array.iter
    (fun (a : Automaton.t) ->
      Array.iter
        (fun (l : Automaton.location) ->
          let at = Query.at net ~comp:a.Automaton.name ~loc:l.Automaton.loc_name in
          for x = 1 to n_clocks - 1 do
            List.iter
              (fun c ->
                let q = Query.with_guard at (Guard.clock_ge x c) in
                let seq = verdict (Reach.reach ~domains:1 net q) in
                List.iter
                  (fun d ->
                    Alcotest.(check string)
                      (Printf.sprintf "%s: verdict %s >= %d at %s.%s (d=%d)"
                         name net.Network.clock_names.(x) c a.Automaton.name
                         l.Automaton.loc_name d)
                      seq
                      (verdict (Reach.reach ~domains:d net q)))
                  [ 2; 4 ])
              [ 1; 7 ];
            let seq = sup_fp ~domains:1 net ~at ~clock:x () in
            List.iter
              (fun d ->
                Alcotest.(check string)
                  (Printf.sprintf "%s: sup %s at %s.%s (d=%d)" name
                     net.Network.clock_names.(x) a.Automaton.name
                     l.Automaton.loc_name d)
                  seq
                  (sup_fp ~domains:d net ~at ~clock:x ()))
              [ 2; 4 ]
          done)
        a.Automaton.locations)
    net.Network.automata

let test_zoo_verdicts_and_wcrts () =
  List.iter (fun (name, net) -> check_net_verdicts_and_wcrts name net) (zoo ())

(* ------------------------------------------------------------------ *)
(* Satellite: LuSim vs Extra+LU, sequential and parallel               *)
(* ------------------------------------------------------------------ *)

(* [covers_lusim rnet passed passed']: every stored zone of [passed]
   is a<|LU-simulated by a stored zone of [passed'] at the same
   discrete state, with the flow-refined per-state bounds the engine
   itself uses.  Mutual coverage is the right equivalence between LuSim
   passed lists: le_lu is not antisymmetric, so the surviving
   representative of two mutually-simulating zones is
   schedule-dependent and syntactic antichain equality would be
   flaky. *)
let covers_lusim rnet passed passed' =
  List.for_all
    (fun ((st : Semantics.state), zones) ->
      let l, u = Semantics.lu_bounds rnet st in
      let zones' =
        match
          List.find_opt (fun ((st' : Semantics.state), _) -> st' = st) passed'
        with
        | Some (_, zs) -> zs
        | Option.None -> []
      in
      List.for_all
        (fun z -> List.exists (fun z' -> Dbm.le_lu l u z z') zones')
        zones)
    passed

let check_lusim_differential name net =
  (* the LuSim parallel engine must reproduce the LuSim sequential
     passed list up to mutual simulation, and every verdict/WCRT under
     LuSim must equal Extra+LU's at 1 and 4 domains *)
  let rnet = Ita_analysis.Flow.(refine_lu (analyze net) net) in
  let seq_passed, _ = explore_passed_exn ~abstraction:Reach.LuSim ~domains:1 net in
  List.iter
    (fun d ->
      let passed, stats =
        explore_passed_exn ~abstraction:Reach.LuSim ~domains:d net
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: lusim stored = resident zones (d=%d)" name d)
        (resident_zones passed) stats.Reach.stored;
      Alcotest.(check bool)
        (Printf.sprintf "%s: parallel lusim covers sequential (d=%d)" name d)
        true
        (covers_lusim rnet seq_passed passed);
      Alcotest.(check bool)
        (Printf.sprintf "%s: sequential lusim covers parallel (d=%d)" name d)
        true
        (covers_lusim rnet passed seq_passed))
    [ 2; 4 ];
  let n_clocks = Array.length net.Network.clock_names in
  Array.iter
    (fun (a : Automaton.t) ->
      Array.iter
        (fun (l : Automaton.location) ->
          let at = Query.at net ~comp:a.Automaton.name ~loc:l.Automaton.loc_name in
          for x = 1 to n_clocks - 1 do
            let q = Query.with_guard at (Guard.clock_ge x 3) in
            let lu =
              verdict (Reach.reach ~abstraction:Reach.ExtraLU ~domains:1 net q)
            in
            let lu_sup =
              sup_fp ~abstraction:Reach.ExtraLU ~domains:1 net ~at ~clock:x ()
            in
            List.iter
              (fun d ->
                Alcotest.(check string)
                  (Printf.sprintf "%s: lusim verdict %s >= 3 at %s.%s (d=%d)"
                     name net.Network.clock_names.(x) a.Automaton.name
                     l.Automaton.loc_name d)
                  lu
                  (verdict
                     (Reach.reach ~abstraction:Reach.LuSim ~domains:d net q));
                Alcotest.(check string)
                  (Printf.sprintf "%s: lusim sup %s at %s.%s (d=%d)" name
                     net.Network.clock_names.(x) a.Automaton.name
                     l.Automaton.loc_name d)
                  lu_sup
                  (sup_fp ~abstraction:Reach.LuSim ~domains:d net ~at ~clock:x
                     ()))
              [ 1; 4 ]
          done)
        a.Automaton.locations)
    net.Network.automata

let test_zoo_lusim () =
  List.iter (fun (name, net) -> check_lusim_differential name net) (zoo ())

(* ------------------------------------------------------------------ *)
(* Satellite: the radionav case study, differentially                  *)
(* ------------------------------------------------------------------ *)

let test_radionav_wcrt () =
  (* the cheap validated cells (see test_casestudy); values pinned so a
     wrong-but-consistent pair of engines (or abstractions) cannot
     pass *)
  List.iter
    (fun (scen, req, expected) ->
      let sys = R.system R.Al_tmc R.Po in
      List.iter
        (fun (abstraction, d) ->
          match
            (Ita_core.Analyze.wcrt ~abstraction ~domains:d sys ~scenario:scen
               ~requirement:req)
              .Ita_core.Analyze.outcome
          with
          | Ita_core.Analyze.Exact_wcrt v ->
              Alcotest.(check int)
                (Printf.sprintf "%s/%s (d=%d)" scen req d)
                expected v
          | _ -> Alcotest.failf "%s/%s (d=%d): expected exact WCRT" scen req d)
        [
          (Reach.ExtraLU, 1);
          (Reach.ExtraLU, 2);
          (Reach.ExtraLU, 4);
          (Reach.LuSim, 1);
          (Reach.LuSim, 4);
        ])
    [ ("AddressLookup", "E2E", 79_075); ("HandleTMC", "TMC", 172_106) ]

let test_radionav_antichains () =
  let sys = R.system R.Al_tmc R.Po in
  let scenario = Ita_core.Sysmodel.scenario sys "HandleTMC" in
  let req = Ita_core.Scenario.requirement scenario "TMC" in
  let gen = Ita_core.Gen.generate ~measure:("HandleTMC", req) sys in
  check_antichains "radionav al/po" gen.Ita_core.Gen.net

(* ------------------------------------------------------------------ *)
(* Satellite: random automata — parallel vs sequential vs the concrete
   oracle (generator mirrors test_mc's random diagonal-free nets)      *)
(* ------------------------------------------------------------------ *)

let gen_random_net =
  let open QCheck2.Gen in
  let gen_atom clock =
    let* rel = oneofl [ Guard.Lt; Guard.Le; Guard.Ge; Guard.Gt; Guard.Eq ] in
    let* c = int_range 0 8 in
    return (Guard.clock_rel clock rel (Expr.Int c))
  in
  let gen_guard =
    let* use_x = bool and* use_y = bool in
    let* gx = gen_atom 1 and* gy = gen_atom 2 in
    return
      (Guard.conj
         (if use_x then gx else Guard.tt)
         (if use_y then gy else Guard.tt))
  in
  let* nl = int_range 2 4 in
  let* invariants =
    list_repeat nl
      (let* inv = bool in
       let* c = int_range 1 8 in
       return (if inv then Guard.clock_le 1 c else Guard.tt))
  in
  let* n_edges = int_range nl (2 * nl) in
  let* edges =
    list_repeat n_edges
      (let* src = int_range 0 (nl - 1) and* dst = int_range 0 (nl - 1) in
       let* guard = gen_guard in
       let* reset_x = bool and* reset_y = bool in
       let update =
         List.concat
           [
             (if reset_x then Update.reset 1 else []);
             (if reset_y then Update.reset 2 else []);
           ]
       in
       return (Models.edge src dst ~guard ~update))
  in
  let b = Network.Builder.create () in
  let _x = Network.Builder.clock b "x" in
  let _y = Network.Builder.clock b "y" in
  let locations =
    List.mapi
      (fun i inv -> Models.loc (Printf.sprintf "L%d" i) ~invariant:inv)
      invariants
  in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P" ~locations ~edges ~initial:0);
  return (Network.Builder.build b, nl)

let point_zone v =
  let z = Dbm.zero (Array.length v - 1) in
  for i = 1 to Array.length v - 1 do
    Dbm.reset z i v.(i)
  done;
  z

let symbolic_cover ?abstraction ~domains net =
  (* as in test_mc, but the cover is built by the engine under test.
     Under LuSim the passed list keeps unextrapolated zones and prunes
     up to the a<|LU simulation, so a concrete valuation is covered
     when its point zone is le_lu-below a stored zone (flow-refined
     per-state bounds, as the engine uses). *)
  let abstraction =
    match abstraction with
    | Some a -> a
    | Option.None -> Reach.default_abstraction ()
  in
  let store = Hashtbl.create 256 in
  (match
     Reach.explore ~abstraction ~domains net
       ~on_store:(fun (cfg : Semantics.config) ->
         let key =
           (cfg.Semantics.state.Semantics.locs, cfg.Semantics.state.Semantics.env)
         in
         let zones = try Hashtbl.find store key with Not_found -> [] in
         Hashtbl.replace store key (cfg.Semantics.zone :: zones))
   with
  | `Complete _ -> ()
  | `Budget_exhausted _ -> Alcotest.fail "exploration should complete");
  let lusim_net =
    match abstraction with
    | Reach.LuSim ->
        Some Ita_analysis.Flow.(refine_lu (analyze net) net)
    | Reach.ExtraM | Reach.ExtraLU -> Option.None
  in
  fun (c : Concrete.t) ->
    let n = Array.length net.Network.clock_names in
    let n_comp = Array.length net.Network.automata in
    let clocks = Array.copy c.Concrete.clocks in
    for x = 1 to n - 1 do
      let live =
        net.Network.pinned.(x)
        || Array.exists
             (fun i -> net.Network.active.(i).(c.Concrete.locs.(i)).(x))
             (Array.init n_comp (fun i -> i))
      in
      if not live then clocks.(x) <- 0
    done;
    match Hashtbl.find_opt store (c.Concrete.locs, c.Concrete.env) with
    | Option.None -> false
    | Some zones -> (
        List.exists (fun z -> Dbm.satisfies z clocks) zones
        ||
        match lusim_net with
        | Some rnet ->
            let st =
              { Semantics.locs = c.Concrete.locs; env = c.Concrete.env }
            in
            let l, u = Semantics.lu_bounds rnet st in
            let pt = point_zone clocks in
            List.exists (fun z -> Dbm.le_lu l u pt z) zones
        | Option.None -> false)

let safe_walk net ~seed ~steps ~max_step_delay =
  (* like Concrete.random_walk, but skipping enabled transitions whose
     target invariant fails: random nets produce such edges, and the
     symbolic engine drops them as empty-zone successors, so the
     oracle must not fire them either *)
  let rng = Ita_util.Prng.create seed in
  let fire c label =
    match Concrete.apply net c (Concrete.Fire label) with
    | c' -> Some c'
    | exception Invalid_argument _ -> None
  in
  let rec go c k acc =
    if k = 0 then List.rev acc
    else
      let dmax =
        match Concrete.max_delay net c with
        | None -> max_step_delay
        | Some m -> min m max_step_delay
      in
      let d = if dmax > 0 then Ita_util.Prng.int rng (dmax + 1) else 0 in
      let c =
        if d > 0 then Concrete.apply net c (Concrete.Delay d) else c
      in
      let acc = if d > 0 then c :: acc else acc in
      match List.filter_map (fire c) (Concrete.fireable net c) with
      | [] -> if d = 0 then List.rev acc else go c (k - 1) acc
      | succs ->
          let c' = List.nth succs (Ita_util.Prng.int rng (List.length succs)) in
          go c' (k - 1) (c' :: acc)
  in
  go (Concrete.initial net) steps []

let test_random_nets_par_agree =
  QCheck2.Test.make ~count:40
    ~name:"parallel verdicts agree with sequential and cover concrete walks"
    QCheck2.Gen.(triple gen_random_net (int_range 0 10) (int_range 1 10_000))
    (fun ((net, nl), c, seed) ->
      let ok = ref true in
      (* verdict differential on every location, incl. LuSim *)
      for l = 0 to nl - 1 do
        let at = Query.at net ~comp:"P" ~loc:(Printf.sprintf "L%d" l) in
        let q = Query.with_guard at (Guard.clock_ge 2 c) in
        let seq = verdict (Reach.reach ~domains:1 net q) in
        let par = verdict (Reach.reach ~domains:4 net q) in
        let lus = verdict (Reach.reach ~abstraction:Reach.LuSim ~domains:4 net q) in
        if seq <> par || seq <> lus then ok := false
      done;
      (* stored differential on the full zone graph (pinned to
         Extra+LU: cross-engine stored equality is the
         subset-subsumption promise) *)
      let _, seq_stats =
        explore_passed_exn ~abstraction:Reach.ExtraLU ~domains:1 net
      in
      let _, par_stats =
        explore_passed_exn ~abstraction:Reach.ExtraLU ~domains:4 net
      in
      if seq_stats.Reach.stored <> par_stats.Reach.stored then ok := false;
      (* concrete oracle: a random walk is covered by the parallel
         cover under the default abstraction and under LuSim *)
      let covered = symbolic_cover ~domains:4 net in
      let covered_lusim =
        symbolic_cover ~abstraction:Reach.LuSim ~domains:4 net
      in
      let walk = safe_walk net ~seed ~steps:40 ~max_step_delay:7 in
      if not (List.for_all covered walk) then ok := false;
      if not (List.for_all covered_lusim walk) then ok := false;
      !ok)

(* ------------------------------------------------------------------ *)
(* Satellite: determinism stress — 50 parallel runs must repeat the
   deterministic stats (stored, WCRT) bit for bit                      *)
(* ------------------------------------------------------------------ *)

let test_stress_deterministic_stats () =
  (* pinned to Extra+LU: the bit-for-bit antichain determinism under
     test is the subset-subsumption promise (see check_antichains) *)
  let explore_passed_exn ~domains net =
    explore_passed_exn ~abstraction:Reach.ExtraLU ~domains net
  in
  let net = wide_frontier () in
  let at = Query.at net ~comp:"P0" ~loc:"B" in
  let base_passed, base_stats = explore_passed_exn ~domains:4 net in
  let base_fp = antichain_fp net base_passed in
  let base_sup = sup_fp ~abstraction:Reach.ExtraLU ~domains:4 net ~at ~clock:1 () in
  Alcotest.(check string) "sup value" "sup 5 attained" base_sup;
  for run = 1 to 50 do
    let passed, stats = explore_passed_exn ~domains:4 net in
    Alcotest.(check int)
      (Printf.sprintf "run %d: stored deterministic" run)
      base_stats.Reach.stored stats.Reach.stored;
    Alcotest.(check (list (pair string (list string))))
      (Printf.sprintf "run %d: antichain deterministic" run)
      base_fp (antichain_fp net passed);
    Alcotest.(check string)
      (Printf.sprintf "run %d: WCRT deterministic" run)
      base_sup
      (sup_fp ~abstraction:Reach.ExtraLU ~domains:4 net ~at ~clock:1 ())
  done

(* ------------------------------------------------------------------ *)
(* Satellite: stored counts resident states after parallel merges      *)
(* ------------------------------------------------------------------ *)

let test_stored_is_resident () =
  (* the per-shard subsume-check+insert is atomic, so concurrent
     comparable inserts must never double-count: stored must equal the
     zones actually resident in the dumped passed list, and match the
     sequential count *)
  let net = wide_frontier () in
  let passed, stats = explore_passed_exn ~domains:4 net in
  Alcotest.(check int) "stored = resident zones" (resident_zones passed)
    stats.Reach.stored;
  (* the cross-engine stored equality is again the subset-subsumption
     promise, so pin Extra+LU for it *)
  let passed_lu, stats_lu =
    explore_passed_exn ~abstraction:Reach.ExtraLU ~domains:4 net
  in
  Alcotest.(check int) "stored = resident zones (extralu)"
    (resident_zones passed_lu) stats_lu.Reach.stored;
  let _, seq_stats = explore_passed_exn ~abstraction:Reach.ExtraLU ~domains:1 net in
  Alcotest.(check int) "parallel stored = sequential stored"
    seq_stats.Reach.stored stats_lu.Reach.stored

(* ------------------------------------------------------------------ *)
(* Parallel engine plumbing: budgets, witnesses, defaults              *)
(* ------------------------------------------------------------------ *)

let test_parallel_budget () =
  let net = wide_frontier () in
  (match Reach.explore_passed ~domains:4 ~budget:(Reach.states 1) net with
  | `Budget_exhausted stats ->
      Alcotest.(check int) "domains in stats" 4 stats.Reach.domains
  | `Complete _ -> Alcotest.fail "a one-state budget must exhaust")

let test_parallel_witness () =
  let net, _x, y = Models.two_phase () in
  let q =
    Query.with_guard (Query.at net ~comp:"P" ~loc:"L2") (Guard.clock_ge y 6)
  in
  match Reach.reach ~domains:4 net q with
  | Reach.Reachable { witness; _ } -> (
      match witness with
      | [] -> Alcotest.fail "witness must be non-empty"
      | first :: _ ->
          Alcotest.(check bool)
            "witness starts at the initial state" true
            (first.Reach.via = Option.None))
  | _ -> Alcotest.fail "L2 with y >= 6 is reachable"

let test_default_domains_positive () =
  Alcotest.(check bool) "default_domains >= 1" true (Reach.default_domains () >= 1)

let () =
  Alcotest.run "par"
    [
      ( "differential",
        [
          Alcotest.test_case "zoo antichains" `Quick test_zoo_antichains;
          Alcotest.test_case "zoo verdicts and WCRTs" `Quick
            test_zoo_verdicts_and_wcrts;
          Alcotest.test_case "zoo LuSim vs Extra+LU" `Quick test_zoo_lusim;
          Alcotest.test_case "radionav WCRT cells" `Slow test_radionav_wcrt;
          Alcotest.test_case "radionav antichains" `Slow
            test_radionav_antichains;
        ] );
      ( "random",
        [ QCheck_alcotest.to_alcotest test_random_nets_par_agree ] );
      ( "stress",
        [
          Alcotest.test_case "deterministic stats, 50 runs" `Slow
            test_stress_deterministic_stats;
          Alcotest.test_case "stored = resident after merges" `Quick
            test_stored_is_resident;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "budget exhaustion" `Quick test_parallel_budget;
          Alcotest.test_case "witness shape" `Quick test_parallel_witness;
          Alcotest.test_case "default domains" `Quick
            test_default_domains_positive;
        ] );
    ]
