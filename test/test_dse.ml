(* Tests for the design-space exploration subsystem: space
   enumeration, Pareto frontiers, the fork-based worker pool, the
   on-disk result cache, and the sweep driver end to end. *)

open Ita_core
module Space = Ita_dse.Space
module Pareto = Ita_dse.Pareto
module Pool = Ita_dse.Pool
module Job = Ita_dse.Job
module Cache = Ita_dse.Cache
module Explore = Ita_dse.Explore

(* ------------------------------------------------------------------ *)
(* A deterministic one-task system: WCRT = 4 us at 1 MIPS, 2 us at 2.
   The period must dwarf the observer's extrapolation ceiling the way
   the paper's second-scale periods do, or the measured state space
   drags through thousands of cycles before zones collapse.           *)
(* ------------------------------------------------------------------ *)

let mini ?(mips = 1.0) () =
  let cpu =
    Resource.processor "CPU" ~mips ~policy:Resource.Priority_preemptive
  in
  let hi =
    Scenario.make ~name:"Hi"
      ~trigger:(Eventmodel.Periodic { period = 2_000_000; offset = 0 })
      ~band:Scenario.High
      ~steps:
        [ Scenario.Compute { op = "h"; resource = "CPU"; instructions = 4.0 } ]
      ~requirements:
        [
          {
            Scenario.req_name = "R";
            from_step = None;
            to_step = 0;
            budget_us = Some 40;
          };
        ]
  in
  Sysmodel.make ~name:"mini" ~resources:[ cpu ] ~scenarios:[ hi ]
    ~queue_bound:2 ()

let mini_space () =
  Space.make ~name:"mini" ~base:(mini ())
    ~axes:[ Space.mips_axis ~resource:"CPU" [ 1.0; 2.0 ] ]

(* The in-process job tests pin the exploration to the sequential
   engine: OCaml's runtime forbids Unix.fork in a process that has
   ever spawned a domain, so letting TAMC_DOMAINS parallelise these
   would poison the fork-pool tests that run later.  The domain-pool
   suites at the end of this file (which run after every fork) cover
   the parallel paths. *)
let mini_spec ?(technique = Job.Mc) ?(mips = 1.0) () =
  {
    Job.sys = mini ~mips ();
    technique;
    scenario = "Hi";
    requirement = "R";
    budget = { Job.default_budget with Job.mc_domains = Some 1 };
  }

(* ------------------------------------------------------------------ *)
(* Space                                                               *)
(* ------------------------------------------------------------------ *)

let test_space_product () =
  let sp =
    Space.make ~name:"s" ~base:(mini ())
      ~axes:
        [
          Space.mips_axis ~resource:"CPU" [ 1.0; 2.0; 4.0 ];
          Space.queue_bound_axis [ 2; 3 ];
        ]
  in
  Alcotest.(check int) "size = 3*2" 6 (Space.size sp);
  let cands = Space.candidates sp in
  Alcotest.(check int) "enumerated all" 6 (List.length cands);
  (* last axis varies fastest *)
  Alcotest.(check (list string))
    "enumeration order"
    [
      "CPU=1MIPS qbound=2";
      "CPU=1MIPS qbound=3";
      "CPU=2MIPS qbound=2";
      "CPU=2MIPS qbound=3";
      "CPU=4MIPS qbound=2";
      "CPU=4MIPS qbound=3";
    ]
    (List.map Space.label cands);
  List.iteri
    (fun i c -> Alcotest.(check int) "index" i c.Space.index)
    cands

let test_space_transform_applied () =
  let cands = Space.candidates (mini_space ()) in
  (* cost of the CPU-only system is exactly its MIPS, so the transform
     visibly landed in the candidate model *)
  Alcotest.(check (list (float 1e-9)))
    "costs track the axis" [ 1.0; 2.0 ]
    (List.map Space.cost cands)

let test_space_empty_axes () =
  let sp = Space.make ~name:"s" ~base:(mini ()) ~axes:[] in
  Alcotest.(check int) "singleton" 1 (Space.size sp);
  match Space.candidates sp with
  | [ c ] -> Alcotest.(check string) "base label" "(base)" (Space.label c)
  | _ -> Alcotest.fail "empty-axes space must have one candidate"

let test_space_rejects_duplicates () =
  Alcotest.check_raises "duplicate axis names"
    (Invalid_argument "Space.make s: duplicate axis names") (fun () ->
      ignore
        (Space.make ~name:"s" ~base:(mini ())
           ~axes:
             [
               Space.mips_axis ~resource:"CPU" [ 1.0 ];
               Space.mips_axis ~resource:"CPU" [ 2.0 ];
             ]));
  Alcotest.check_raises "duplicate choice labels"
    (Invalid_argument "Space.axis a: duplicate choice labels") (fun () ->
      ignore (Space.axis "a" [ ("x", Fun.id); ("x", Fun.id) ]))

let test_space_invalid_candidate_raises () =
  (* mapping a compute step onto a link is caught at enumeration time,
     not mid-sweep *)
  let sp =
    Space.make ~name:"s"
      ~base:(Ita_casestudy.Radionav.system Ita_casestudy.Radionav.Al_tmc
               Ita_casestudy.Radionav.Po)
      ~axes:[ Space.mapping_axis ~scenario:"HandleTMC" ~step:2 [ "BUS" ] ]
  in
  match Space.candidates sp with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "compute-on-link must be rejected"

(* ------------------------------------------------------------------ *)
(* Pareto                                                              *)
(* ------------------------------------------------------------------ *)

let test_pareto_frontier () =
  let pts = [ (2., 6.); (1., 5.); (5., 5.); (3., 3.); (2., 4.); (4., 2.) ] in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "non-dominated, sorted by first metric"
    [ (1., 5.); (2., 4.); (3., 3.); (4., 2.) ]
    (Pareto.frontier ~metrics:Fun.id pts)

let test_pareto_keeps_ties () =
  Alcotest.(check int)
    "identical points all kept" 2
    (List.length (Pareto.frontier ~metrics:Fun.id [ (1., 1.); (1., 1.) ]))

let test_pareto_empty () =
  Alcotest.(check int)
    "empty in, empty out" 0
    (List.length (Pareto.frontier ~metrics:Fun.id []))

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_map () =
  let xs = Array.init 8 Fun.id in
  let out = Pool.map ~jobs:4 (fun x -> x * x) xs in
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Done v -> Alcotest.(check int) "square in order" (i * i) v
      | _ -> Alcotest.fail "all jobs must complete")
    out

let test_pool_exception_isolated () =
  let out =
    Pool.map ~jobs:2
      (fun x -> if x = 1 then failwith "boom" else x + 10)
      [| 0; 1; 2 |]
  in
  (match out.(1) with
  | Pool.Crashed msg ->
      Alcotest.(check bool) "message survives the pipe" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "raising job must report Crashed");
  List.iter
    (fun i ->
      match out.(i) with
      | Pool.Done v -> Alcotest.(check int) "neighbour intact" (i + 10) v
      | _ -> Alcotest.fail "crash must not leak into other jobs")
    [ 0; 2 ]

let test_pool_hard_exit_isolated () =
  let out =
    Pool.map ~jobs:2
      (fun x -> if x = 1 then Unix._exit 3 else x + 10)
      [| 0; 1; 2 |]
  in
  (match out.(1) with
  | Pool.Crashed msg ->
      Alcotest.(check string) "exit code reported"
        "worker exited with code 3" msg
  | _ -> Alcotest.fail "hard exit must report Crashed");
  match (out.(0), out.(2)) with
  | Pool.Done 10, Pool.Done 12 -> ()
  | _ -> Alcotest.fail "hard exit must not leak into other jobs"

let test_pool_timeout_isolated () =
  let out =
    Pool.map ~jobs:2 ~timeout_s:0.3
      (fun x ->
        if x = 0 then Unix.sleepf 30.0;
        x)
      [| 0; 1; 2 |]
  in
  (match out.(0) with
  | Pool.Timed_out s ->
      Alcotest.(check bool) "killed after the limit" true (s >= 0.3)
  | _ -> Alcotest.fail "sleeper must time out");
  match (out.(1), out.(2)) with
  | Pool.Done 1, Pool.Done 2 -> ()
  | _ -> Alcotest.fail "timeout must not leak into other jobs"

let test_pool_on_result_streams () =
  let settled = ref [] in
  ignore
    (Pool.map ~jobs:2
       ~on_result:(fun i _ -> settled := i :: !settled)
       (fun x -> x)
       [| 0; 1; 2; 3 |]);
  Alcotest.(check (list int))
    "every job observed exactly once" [ 0; 1; 2; 3 ]
    (List.sort compare !settled)

let test_pool_empty () =
  Alcotest.(check int) "no jobs, no outcomes" 0
    (Array.length (Pool.map Fun.id [||]))

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let fresh_dir tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ita-dse-test-%s-%d" tag (Unix.getpid ()))

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let test_cache_roundtrip () =
  let dir = fresh_dir "roundtrip" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cache = Cache.create ~dir in
  let key = Cache.job_key (mini_spec ()) in
  Alcotest.(check bool) "cold lookup misses" true (Cache.find cache key = None);
  let r = { Job.measure = Job.Exact 4; elapsed = 0.01; explored = 7 } in
  Cache.store cache key r;
  (match Cache.find cache key with
  | Some r' -> Alcotest.(check bool) "stored = loaded" true (r = r')
  | None -> Alcotest.fail "stored entry must be found");
  Alcotest.(check (pair int int)) "hit/miss accounting" (1, 1)
    (Cache.hits cache, Cache.misses cache)

let test_cache_key_discriminates () =
  let k = Cache.job_key (mini_spec ()) in
  Alcotest.(check string) "key is stable" k (Cache.job_key (mini_spec ()));
  Alcotest.(check bool) "technique changes the key" true
    (k <> Cache.job_key (mini_spec ~technique:Job.Symta ()));
  Alcotest.(check bool) "model changes the key" true
    (k <> Cache.job_key (mini_spec ~mips:2.0 ()));
  let spec = mini_spec () in
  Alcotest.(check bool) "budget changes the key" true
    (k
    <> Cache.job_key
         { spec with Job.budget = { spec.Job.budget with Job.sim_runs = 9 } });
  Alcotest.(check bool) "domain count changes the key" true
    (k
    <> Cache.job_key
         { spec with Job.budget = { spec.Job.budget with Job.mc_domains = Some 4 } })

let test_cache_corrupt_entry_is_miss () =
  let dir = fresh_dir "corrupt" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cache = Cache.create ~dir in
  let key = Cache.job_key (mini_spec ()) in
  let r = { Job.measure = Job.Exact 4; elapsed = 0.01; explored = 7 } in
  Cache.store cache key r;
  (* truncate the entry behind the cache's back *)
  let file = Filename.concat dir (key ^ ".job") in
  let oc = open_out_bin file in
  output_string oc "not a marshaled value";
  close_out oc;
  Alcotest.(check bool) "corrupt entry reads as a miss" true
    (Cache.find cache key = None)

(* ------------------------------------------------------------------ *)
(* Job                                                                 *)
(* ------------------------------------------------------------------ *)

let test_job_mc_exact () =
  let r = Job.run (mini_spec ()) in
  Alcotest.(check bool) "mc finds the exact WCRT" true
    (r.Job.measure = Job.Exact 4);
  let r = Job.run (mini_spec ~mips:2.0 ()) in
  Alcotest.(check bool) "twice the MIPS, half the WCRT" true
    (r.Job.measure = Job.Exact 2)

let test_job_upper_bounds_cover () =
  List.iter
    (fun technique ->
      match (Job.run (mini_spec ~technique ())).Job.measure with
      | Job.Upper v ->
          Alcotest.(check bool)
            (Job.technique_name technique ^ " bound is sound")
            true (v >= 4)
      | m ->
          Alcotest.failf "%s must return an upper bound, got %a"
            (Job.technique_name technique)
            Job.pp_measure m)
    [ Job.Symta; Job.Rtc ]

let test_job_unknown_name_raises () =
  Alcotest.check_raises "unknown scenario is a caller bug" Not_found
    (fun () ->
      ignore (Job.run { (mini_spec ()) with Job.scenario = "nope" }))

(* ------------------------------------------------------------------ *)
(* Explore end to end                                                  *)
(* ------------------------------------------------------------------ *)

let explore ?isolation ?cache ?inject_crash () =
  Explore.run ?isolation ~jobs:2 ~timeout_s:60.0 ?cache ?inject_crash
    (mini_space ()) ~techniques:[ Job.Mc; Job.Symta ] ~scenario:"Hi"
    ~requirement:"R"

let cell_measure (cell : Explore.cell) =
  match cell.Explore.status with
  | Explore.Done r -> Some r.Job.measure
  | _ -> None

let test_explore_end_to_end () =
  let report = explore () in
  Alcotest.(check int) "all jobs executed" 4 report.Explore.executed;
  Alcotest.(check int) "none failed" 0 report.Explore.failed;
  Alcotest.(check (option int)) "deadline picked up" (Some 40)
    report.Explore.deadline_us;
  let mc_values =
    List.map
      (fun (row : Explore.row) ->
        List.find_map
          (fun (c : Explore.cell) ->
            if c.Explore.technique = Job.Mc then cell_measure c else None)
          row.Explore.cells)
      report.Explore.rows
  in
  Alcotest.(check bool) "exact WCRTs per candidate" true
    (mc_values = [ Some (Job.Exact 4); Some (Job.Exact 2) ]);
  List.iter
    (fun row ->
      match Explore.feasibility ~deadline_us:report.Explore.deadline_us row with
      | `Feasible -> ()
      | _ -> Alcotest.fail "both candidates meet the 40 us deadline")
    report.Explore.rows;
  Alcotest.(check (list (option int)))
    "row WCRTs" [ Some 4; Some 2 ]
    (List.map Explore.row_wcrt_us report.Explore.rows);
  (* (wcrt 4, cost 1) and (wcrt 2, cost 2) trade off: both on the
     frontier *)
  Alcotest.(check int) "frontier size" 2
    (List.length (Explore.frontier report))

let test_explore_cache_hits () =
  let dir = fresh_dir "explore" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cache = Cache.create ~dir in
  let cold = explore ~cache () in
  Alcotest.(check (pair int int)) "cold pass runs everything" (0, 4)
    (cold.Explore.cache_hits, cold.Explore.executed);
  let warm = explore ~cache () in
  Alcotest.(check (pair int int)) "warm pass runs nothing" (4, 0)
    (warm.Explore.cache_hits, warm.Explore.executed);
  Alcotest.(check (list (option int)))
    "cached rows carry the same answers" [ Some 4; Some 2 ]
    (List.map Explore.row_wcrt_us warm.Explore.rows);
  List.iter
    (fun (row : Explore.row) ->
      List.iter
        (fun (c : Explore.cell) ->
          Alcotest.(check bool) "warm cells marked cached" true
            c.Explore.cached)
        row.Explore.cells)
    warm.Explore.rows

let test_explore_crash_isolated () =
  (* flat job 0 = (candidate 0, Mc); its worker dies silently *)
  let report = explore ~inject_crash:0 () in
  Alcotest.(check int) "exactly one loss" 1 report.Explore.failed;
  let statuses =
    List.concat_map
      (fun (row : Explore.row) ->
        List.map (fun (c : Explore.cell) -> c.Explore.status) row.Explore.cells)
      report.Explore.rows
  in
  (match List.hd statuses with
  | Explore.Crashed _ -> ()
  | _ -> Alcotest.fail "injected job must report Crashed");
  Alcotest.(check int) "all other results survive" 3
    (List.length
       (List.filter
          (function Explore.Done _ -> true | _ -> false)
          statuses));
  (* the crashed mc cell leaves symta's upper bound as candidate 0's
     figure: the row still has a usable verdict *)
  Alcotest.(check bool) "wounded row still reports" true
    (Explore.row_wcrt_us (List.hd report.Explore.rows) <> None)

(* ------------------------------------------------------------------ *)
(* Domain pool (must run after every fork-based test: once a domain
   has been spawned, the runtime forbids Unix.fork in this process)    *)
(* ------------------------------------------------------------------ *)

let test_pool_map_domains () =
  let xs = Array.init 40 Fun.id in
  let out = Pool.map_domains ~jobs:4 (fun x -> x * x) xs in
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Done v -> Alcotest.(check int) "square" (i * i) v
      | _ -> Alcotest.fail "domain job must succeed")
    out

let test_pool_map_domains_exception_isolated () =
  let out =
    Pool.map_domains ~jobs:3
      (fun x -> if x = 2 then failwith "boom" else x + 1)
      [| 0; 1; 2; 3 |]
  in
  (match out.(2) with
  | Pool.Crashed msg ->
      Alcotest.(check bool) "message survives" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "raising job must be Crashed");
  List.iter
    (fun i ->
      match out.(i) with
      | Pool.Done v -> Alcotest.(check int) "neighbour survives" (i + 1) v
      | _ -> Alcotest.fail "non-raising jobs must succeed")
    [ 0; 1; 3 ]

let test_pool_map_domains_on_result () =
  let seen = ref [] in
  let out =
    Pool.map_domains ~jobs:2
      ~on_result:(fun i _ -> seen := i :: !seen)
      (fun x -> x)
      [| 10; 11; 12 |]
  in
  Alcotest.(check int) "all settled" 3 (Array.length out);
  Alcotest.(check (list int))
    "every job streamed exactly once" [ 0; 1; 2 ]
    (List.sort compare !seen)

let test_pool_map_domains_empty () =
  Alcotest.(check int) "empty input" 0
    (Array.length (Pool.map_domains Fun.id [||]))

(* the same sweep through the shared domain pool: identical answers,
   no forking, and the report says which pool ran it *)
let explore_domains ?cache ?inject_crash () =
  Explore.run ~isolation:`Domains ~jobs:2 ?cache ?inject_crash (mini_space ())
    ~techniques:[ Job.Mc; Job.Symta ] ~scenario:"Hi" ~requirement:"R"

let test_explore_domains_end_to_end () =
  let report = explore_domains () in
  Alcotest.(check bool) "report says domains" true
    (report.Explore.isolation = `Domains);
  Alcotest.(check int) "all jobs executed" 4 report.Explore.executed;
  Alcotest.(check int) "none failed" 0 report.Explore.failed;
  Alcotest.(check (list (option int)))
    "same row WCRTs as the forked sweep" [ Some 4; Some 2 ]
    (List.map Explore.row_wcrt_us report.Explore.rows);
  Alcotest.(check int) "frontier size" 2
    (List.length (Explore.frontier report))

let test_explore_domains_crash_isolated () =
  (* under the domain pool the injected fault raises instead of dying;
     the job is Crashed, everything else survives *)
  let report = explore_domains ~inject_crash:0 () in
  Alcotest.(check int) "exactly one loss" 1 report.Explore.failed;
  let statuses =
    List.concat_map
      (fun (row : Explore.row) ->
        List.map (fun (c : Explore.cell) -> c.Explore.status) row.Explore.cells)
      report.Explore.rows
  in
  (match List.hd statuses with
  | Explore.Crashed _ -> ()
  | _ -> Alcotest.fail "injected job must report Crashed");
  Alcotest.(check int) "all other results survive" 3
    (List.length
       (List.filter
          (function Explore.Done _ -> true | _ -> false)
          statuses))

let test_explore_domains_auto_default () =
  (* no timeout, no fault injection: auto selection picks the domain
     pool; the per-job budget gets mc_domains pinned to 1 so pool and
     engine parallelism do not multiply *)
  let report =
    Explore.run ~jobs:2 (mini_space ()) ~techniques:[ Job.Mc ] ~scenario:"Hi"
      ~requirement:"R"
  in
  Alcotest.(check bool) "auto selects domains" true
    (report.Explore.isolation = `Domains);
  Alcotest.(check int) "none failed" 0 report.Explore.failed;
  Alcotest.(check (list (option int)))
    "row WCRTs" [ Some 4; Some 2 ]
    (List.map Explore.row_wcrt_us report.Explore.rows)

let () =
  Alcotest.run "dse"
    [
      ( "space",
        [
          Alcotest.test_case "cartesian product" `Quick test_space_product;
          Alcotest.test_case "transforms applied" `Quick
            test_space_transform_applied;
          Alcotest.test_case "empty axes" `Quick test_space_empty_axes;
          Alcotest.test_case "duplicate rejection" `Quick
            test_space_rejects_duplicates;
          Alcotest.test_case "invalid candidate" `Quick
            test_space_invalid_candidate_raises;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "frontier" `Quick test_pareto_frontier;
          Alcotest.test_case "ties kept" `Quick test_pareto_keeps_ties;
          Alcotest.test_case "empty" `Quick test_pareto_empty;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parallel map" `Quick test_pool_map;
          Alcotest.test_case "exception isolated" `Quick
            test_pool_exception_isolated;
          Alcotest.test_case "hard exit isolated" `Quick
            test_pool_hard_exit_isolated;
          Alcotest.test_case "timeout isolated" `Quick
            test_pool_timeout_isolated;
          Alcotest.test_case "on_result streams" `Quick
            test_pool_on_result_streams;
          Alcotest.test_case "empty input" `Quick test_pool_empty;
        ] );
      ( "cache",
        [
          Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "key discriminates" `Quick
            test_cache_key_discriminates;
          Alcotest.test_case "corrupt entry" `Quick
            test_cache_corrupt_entry_is_miss;
        ] );
      ( "job",
        [
          Alcotest.test_case "mc exact" `Quick test_job_mc_exact;
          Alcotest.test_case "analytic upper bounds" `Quick
            test_job_upper_bounds_cover;
          Alcotest.test_case "unknown names raise" `Quick
            test_job_unknown_name_raises;
        ] );
      ( "explore",
        [
          Alcotest.test_case "end to end" `Quick test_explore_end_to_end;
          Alcotest.test_case "cache hits" `Quick test_explore_cache_hits;
          Alcotest.test_case "crash isolated" `Quick
            test_explore_crash_isolated;
        ] );
      (* keep these last: they spawn domains, after which the runtime
         forbids Unix.fork in this process *)
      ( "pool-domains",
        [
          Alcotest.test_case "parallel map" `Quick test_pool_map_domains;
          Alcotest.test_case "exception isolated" `Quick
            test_pool_map_domains_exception_isolated;
          Alcotest.test_case "on_result streams" `Quick
            test_pool_map_domains_on_result;
          Alcotest.test_case "empty input" `Quick test_pool_map_domains_empty;
        ] );
      ( "explore-domains",
        [
          Alcotest.test_case "end to end" `Quick
            test_explore_domains_end_to_end;
          Alcotest.test_case "crash isolated" `Quick
            test_explore_domains_crash_isolated;
          Alcotest.test_case "auto default" `Quick
            test_explore_domains_auto_default;
        ] );
    ]
