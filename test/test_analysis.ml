(* Static-analysis tests: one minimal triggering model per lint pass,
   clean-baseline checks over the generated case-study networks and
   the shipped example models, and a differential suite showing the
   active-clock reduction changes no verdict and no WCRT value. *)

open Ita_ta
module D = Ita_analysis.Diagnostic
module Lint = Ita_analysis.Lint
module Reach = Ita_mc.Reach
module Wcrt = Ita_mc.Wcrt
module Query = Ita_mc.Query
module E = Ita_tafmt.Elaborate
module R = Ita_casestudy.Radionav
open Ita_core

let loc = Models.loc
let edge = Models.edge

let check_pass ?(severity : D.severity option) name pass findings =
  match D.by_pass pass findings with
  | [] -> Alcotest.failf "%s: expected a %s finding" name (D.pass_name pass)
  | d :: _ -> (
      match severity with
      | None -> ()
      | Some s ->
          Alcotest.(check string)
            (name ^ " severity") (D.severity_name s)
            (D.severity_name d.D.severity))

let check_no_pass name pass findings =
  if D.by_pass pass findings <> [] then
    Alcotest.failf "%s: unexpected %s finding" name (D.pass_name pass)

(* ---- unused-clock ---- *)

let test_unused_clock () =
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P" ~locations:[ loc "L0" ] ~edges:[] ~initial:0);
  let net = Network.Builder.build b in
  check_pass ~severity:D.Warning "unused" D.Unused_clock (Lint.run net);
  (* a clock observed from outside (a WCRT sup query) is exempt *)
  check_no_pass "observed" D.Unused_clock (Lint.run ~observed_clocks:[ x ] net)

(* ---- never-reset-clock ---- *)

let test_never_reset_clock () =
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:[ loc "L0"; loc "L1" ]
       ~edges:[ edge 0 1 ~guard:(Guard.clock_ge x 1) ]
       ~initial:0);
  let net = Network.Builder.build b in
  check_pass ~severity:D.Info "never-reset" D.Never_reset_clock (Lint.run net);
  check_no_pass "observed" D.Never_reset_clock
    (Lint.run ~observed_clocks:[ x ] net)

(* ---- dead-var ---- *)

let test_dead_var () =
  let b = Network.Builder.create () in
  let v = Network.Builder.int_var b "v" ~lo:0 ~hi:3 ~init:0 in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:[ loc "L0"; loc "L1" ]
       ~edges:[ edge 0 1 ~update:(Update.set v (Expr.Int 1)) ]
       ~initial:0);
  let net = Network.Builder.build b in
  check_pass ~severity:D.Warning "dead" D.Dead_var (Lint.run net);
  check_no_pass "observed" D.Dead_var (Lint.run ~observed_vars:[ v ] net)

(* ---- range-overflow ---- *)

let overflow_net rhs =
  let b = Network.Builder.create () in
  let v = Network.Builder.int_var b "v" ~lo:0 ~hi:3 ~init:0 in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:[ loc "L0"; loc "L1" ]
       ~edges:
         [
           edge 0 1
             ~guard:(Guard.data Expr.(Cmp (Ge, Var v, Int 0)))
             ~update:(Update.set v (rhs v));
         ]
       ~initial:0);
  Network.Builder.build b

let test_range_overflow () =
  (* v := 5 with v : [0, 3] can never stay in range: an error *)
  let definite = overflow_net (fun _ -> Expr.Int 5) in
  check_pass ~severity:D.Error "definite" D.Range_overflow (Lint.run definite);
  (* v := v + 1 straight from the initial valuation: the interval
     analysis knows v = 0 there, so the update provably stays in
     range — the old declared-range scan used to flag this *)
  let tightened = overflow_net (fun v -> Expr.(Add (Var v, Int 1))) in
  check_no_pass "flow-tightened" D.Range_overflow (Lint.run tightened);
  (* v := v + 1 on a loop: v really does range over [0, 3] at the
     source, so the enclosure [1, 4] is possibly out of range *)
  let possible =
    let b = Network.Builder.create () in
    let v = Network.Builder.int_var b "v" ~lo:0 ~hi:3 ~init:0 in
    Network.Builder.add_automaton b
      (Automaton.make ~name:"P" ~locations:[ loc "L0" ]
         ~edges:
           [ edge 0 0 ~update:(Update.set v Expr.(Add (Var v, Int 1))) ]
         ~initial:0);
    Network.Builder.build b
  in
  check_pass ~severity:D.Info "possible" D.Range_overflow (Lint.run possible);
  (* v := v with v : [0, 3] stays in range *)
  let clean = overflow_net (fun v -> Expr.Var v) in
  check_no_pass "clean" D.Range_overflow (Lint.run clean)

(* ---- unreachable-location ---- *)

let test_unreachable_location () =
  let b = Network.Builder.create () in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:[ loc "L0"; loc "ORPHAN" ]
       ~edges:[] ~initial:0);
  let net = Network.Builder.build b in
  check_pass ~severity:D.Warning "orphan" D.Unreachable_location (Lint.run net)

(* ---- invariant-misuse ---- *)

let test_invariant_misuse () =
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:
         [ loc "L0" ~invariant:(Guard.clock_ge x 2); loc "L1" ]
       ~edges:[ edge 0 1 ~update:(Update.reset x) ]
       ~initial:0);
  let net = Network.Builder.build b in
  check_pass "lower-bound invariant" D.Invariant_misuse (Lint.run net)

(* ---- urgent-clock-guard ---- *)

let test_urgent_clock_guard () =
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  let c = Network.Builder.channel b "c" Channel.Binary ~urgent:true in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"S"
       ~locations:[ loc "L0"; loc "L1" ]
       ~edges:
         [
           edge 0 1 ~sync:(Automaton.Send c) ~guard:(Guard.clock_ge x 1)
             ~update:(Update.reset x);
         ]
       ~initial:0);
  Network.Builder.add_automaton b
    (Automaton.make ~name:"R"
       ~locations:[ loc "M0"; loc "M1" ]
       ~edges:[ edge 0 1 ~sync:(Automaton.Recv c) ]
       ~initial:0);
  (* Builder.build rejects this model; the lint pass is for networks
     elaborated with the validation off *)
  let net = Network.Builder.build ~validate:false b in
  check_pass ~severity:D.Error "urgent guard" D.Urgent_clock_guard
    (Lint.run net)

(* ---- channel-peer ---- *)

let test_channel_peer () =
  let b = Network.Builder.create () in
  let c = Network.Builder.channel b "c" Channel.Binary ~urgent:false in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"S"
       ~locations:[ loc "L0"; loc "L1" ]
       ~edges:[ edge 0 1 ~sync:(Automaton.Send c) ]
       ~initial:0);
  let net = Network.Builder.build b in
  check_pass "sender without receiver" D.Channel_peer (Lint.run net);
  (* the hurry! idiom: a broadcast send with no receivers is clean *)
  let b = Network.Builder.create () in
  let h = Network.Builder.channel b "hurry" Channel.Broadcast ~urgent:true in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"S"
       ~locations:[ loc "L0"; loc "L1" ]
       ~edges:[ edge 0 1 ~sync:(Automaton.Send h) ]
       ~initial:0);
  let net = Network.Builder.build b in
  check_no_pass "hurry idiom" D.Channel_peer (Lint.run net)

(* ---- committed-cycle ---- *)

let test_committed_cycle () =
  let b = Network.Builder.create () in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:
         [
           loc "L0" ~kind:Automaton.Committed;
           loc "L1" ~kind:Automaton.Committed;
         ]
       ~edges:[ edge 0 1; edge 1 0 ]
       ~initial:0);
  let net = Network.Builder.build b in
  check_pass ~severity:D.Warning "committed loop" D.Committed_cycle
    (Lint.run net)

(* ---- zeno-cycle ---- *)

let test_zeno_cycle () =
  let b = Network.Builder.create () in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:[ loc "L0"; loc "L1" ]
       ~edges:[ edge 0 1; edge 1 0 ]
       ~initial:0);
  let free = Network.Builder.build b in
  check_pass ~severity:D.Warning "free cycle" D.Zeno_cycle (Lint.run free);
  (* a synchronizing cycle may be paced by its partner: only Info *)
  let b = Network.Builder.create () in
  let c = Network.Builder.channel b "c" Channel.Broadcast ~urgent:false in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:[ loc "L0"; loc "L1" ]
       ~edges:[ edge 0 1 ~sync:(Automaton.Send c); edge 1 0 ]
       ~initial:0);
  let synced = Network.Builder.build b in
  check_pass ~severity:D.Info "synced cycle" D.Zeno_cycle (Lint.run synced);
  (* a reset plus a positive lower bound on the same clock paces the
     cycle: clean *)
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:[ loc "L0"; loc "L1" ]
       ~edges:
         [
           edge 0 1 ~guard:(Guard.clock_ge x 1) ~update:(Update.reset x);
           edge 1 0;
         ]
       ~initial:0);
  let paced = Network.Builder.build b in
  check_no_pass "paced cycle" D.Zeno_cycle (Lint.run paced)

(* ---- merged-query-clock ---- *)

let test_merged_query_clock () =
  (* x and y are reset together on every edge that resets either, so
     CoiMerge folds y (the larger index) into x *)
  let quasi ~split =
    let b = Network.Builder.create () in
    let x = Network.Builder.clock b "x" in
    let y = Network.Builder.clock b "y" in
    let edges =
      [
        edge 0 1 ~update:(Update.reset x @ Update.reset y);
        edge 1 0 ~guard:(Guard.clock_ge x 2);
      ]
    in
    let edges =
      (* the extra x-only reset gives the clocks distinct signatures *)
      if split then edges @ [ edge 1 0 ~update:(Update.reset x) ] else edges
    in
    Network.Builder.add_automaton b
      (Automaton.make ~name:"P"
         ~locations:[ loc "L0"; loc "L1" ]
         ~edges ~initial:0);
    (Network.Builder.build b, y)
  in
  let net, y = quasi ~split:false in
  check_pass ~severity:D.Warning "merged observed clock" D.Merged_query_clock
    (Lint.run ~observed_clocks:[ y ] net);
  (* without a query clock there is nothing to warn about *)
  check_no_pass "no observation" D.Merged_query_clock (Lint.run net);
  (* a pinned clock is never merged *)
  check_no_pass "pinned"  D.Merged_query_clock
    (Lint.run ~observed_clocks:[ y ] (Network.bump_clock_bound net y 8));
  (* distinct reset signatures: no quasi-equality, no warning *)
  let net, y = quasi ~split:true in
  check_no_pass "distinct signatures" D.Merged_query_clock
    (Lint.run ~observed_clocks:[ y ] net)

(* ------------------------------------------------------------------ *)
(* Clean baselines: the generated case study and the example models    *)
(* ------------------------------------------------------------------ *)

let worst_name findings =
  match D.worst findings with
  | None -> "clean"
  | Some s -> D.severity_name s

let test_generated_baseline () =
  List.iter
    (fun combo ->
      List.iter
        (fun col ->
          let sys = R.system combo col in
          let gen = Gen.generate sys in
          let findings = Lint.run gen.Gen.net in
          let bad =
            List.filter
              (fun (d : D.t) ->
                D.compare_severity d.D.severity D.Warning >= 0)
              findings
          in
          if bad <> [] then
            Alcotest.failf "%s [%s]: %d findings at warning+, worst %s"
              (match combo with R.Cv_tmc -> "cv" | R.Al_tmc -> "al")
              (R.column_name col) (List.length bad) (worst_name findings))
        R.columns)
    [ R.Cv_tmc; R.Al_tmc ]

let model_path name =
  let candidates =
    [ "../examples/models/" ^ name; "examples/models/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "%s not found" name

let example_files = [ "fischer.ta"; "train_gate.ta"; "two_phase.ta" ]

let observed_of_queries queries =
  let clocks = ref [] and vars = ref [] in
  let add_guard (g : Guard.t) =
    List.iter
      (fun (a : Guard.atom) ->
        clocks := a.Guard.clock :: !clocks;
        vars := Expr.ivars a.Guard.bound @ !vars)
      g.Guard.clocks;
    vars := Expr.bvars g.Guard.data @ !vars
  in
  List.iter
    (function
      | E.Deadlock_q -> ()
      | E.Reach_q q -> add_guard q.Query.guard
      | E.Sup_q { clock; at } ->
          clocks := clock :: !clocks;
          add_guard at.Query.guard)
    queries;
  (!clocks, !vars)

let test_examples_baseline () =
  List.iter
    (fun file ->
      let { E.net; queries; _ } = E.load_file (model_path file) in
      let observed_clocks, observed_vars = observed_of_queries queries in
      let findings = Lint.run ~observed_clocks ~observed_vars net in
      let bad =
        List.filter
          (fun (d : D.t) -> D.compare_severity d.D.severity D.Warning >= 0)
          findings
      in
      if bad <> [] then
        Alcotest.failf "%s: %d findings at warning+, worst %s" file
          (List.length bad) (worst_name findings))
    example_files

(* ------------------------------------------------------------------ *)
(* Active-clock reduction differential: disabling or enabling the
   reduction must change no reachability verdict and no WCRT sup
   value — only the number of explored symbolic states.                *)
(* ------------------------------------------------------------------ *)

let verdict = function
  | Reach.Reachable _ -> "reachable"
  | Reach.Unreachable _ -> "unreachable"
  | Reach.Budget_exhausted _ -> "budget"

let sup_fingerprint ?(initial_ceiling = 64) ?(max_ceiling = 256) ~reduction net
    ~at ~clock =
  match
    Wcrt.sup ~reduction ~initial_ceiling ~max_ceiling net ~at ~clock
  with
  | Wcrt.Sup { value; kind; _ } ->
      Printf.sprintf "sup %d %s" value
        (match kind with
        | Wcrt.Attained -> "attained"
        | Wcrt.Approached -> "approached")
  | Wcrt.Goal_unreachable _ -> "unreachable"
  | Wcrt.Sup_budget_exhausted _ -> "budget"
  | Wcrt.Sup_unbounded _ -> "unbounded"

let check_net_reduction_agrees name net =
  let n_clocks = Array.length net.Network.clock_names in
  Array.iter
    (fun (a : Automaton.t) ->
      Array.iter
        (fun (l : Automaton.location) ->
          let at =
            Query.at net ~comp:a.Automaton.name ~loc:l.Automaton.loc_name
          in
          for x = 1 to n_clocks - 1 do
            let off =
              sup_fingerprint ~reduction:Reach.None net ~at ~clock:x
            in
            let on =
              sup_fingerprint ~reduction:Reach.Active net ~at ~clock:x
            in
            Alcotest.(check string)
              (Printf.sprintf "%s: sup %s at %s.%s" name
                 net.Network.clock_names.(x) a.Automaton.name
                 l.Automaton.loc_name)
              off on
          done)
        a.Automaton.locations)
    net.Network.automata

let test_reduction_agrees_on_models () =
  let nets =
    [
      ("two-phase", (let net, _, _ = Models.two_phase () in net));
      ("urgent-gate", fst (Models.urgent_gate ()));
      ("committed-gate", fst (Models.committed_gate ()));
      ("handshake", fst (Models.handshake ()));
      ("broadcast", Models.broadcast_pair ());
    ]
  in
  List.iter (fun (name, net) -> check_net_reduction_agrees name net) nets

let test_reduction_agrees_on_examples () =
  List.iter
    (fun file ->
      let { E.net; queries; _ } = E.load_file (model_path file) in
      List.iteri
        (fun i q ->
          match q with
          | E.Reach_q q ->
              let off =
                verdict (Reach.reach ~reduction:Reach.None net q)
              in
              let on =
                verdict (Reach.reach ~reduction:Reach.Active net q)
              in
              Alcotest.(check string)
                (Printf.sprintf "%s query %d" file i)
                off on
          | E.Sup_q { clock; at } ->
              let off =
                sup_fingerprint ~reduction:Reach.None net ~at ~clock
              in
              let on =
                sup_fingerprint ~reduction:Reach.Active net ~at ~clock
              in
              Alcotest.(check string)
                (Printf.sprintf "%s sup query %d" file i)
                off on
          | E.Deadlock_q -> ())
        queries)
    example_files

(* Random diagonal-free automata, as in the abstraction differential of
   test_mc: clocks that go inactive in some locations are exactly what
   the reduction erases, and a wrong erasure would change a verdict. *)
let gen_random_net =
  let open QCheck2.Gen in
  let gen_atom clock =
    let* rel = oneofl [ Guard.Lt; Guard.Le; Guard.Ge; Guard.Gt; Guard.Eq ] in
    let* c = int_range 0 8 in
    return (Guard.clock_rel clock rel (Expr.Int c))
  in
  let gen_guard =
    let* use_x = bool and* use_y = bool in
    let* gx = gen_atom 1 and* gy = gen_atom 2 in
    return
      (Guard.conj
         (if use_x then gx else Guard.tt)
         (if use_y then gy else Guard.tt))
  in
  let* nl = int_range 2 4 in
  let* invariants =
    list_repeat nl
      (let* inv = bool in
       let* c = int_range 1 8 in
       return (if inv then Guard.clock_le 1 c else Guard.tt))
  in
  let* n_edges = int_range nl (2 * nl) in
  let* edges =
    list_repeat n_edges
      (let* src = int_range 0 (nl - 1) and* dst = int_range 0 (nl - 1) in
       let* guard = gen_guard in
       let* reset_x = bool and* reset_y = bool in
       let update =
         List.concat
           [
             (if reset_x then Update.reset 1 else []);
             (if reset_y then Update.reset 2 else []);
           ]
       in
       return (edge src dst ~guard ~update))
  in
  let b = Network.Builder.create () in
  let _x = Network.Builder.clock b "x" in
  let _y = Network.Builder.clock b "y" in
  let locations =
    List.mapi
      (fun i inv -> loc (Printf.sprintf "L%d" i) ~invariant:inv)
      invariants
  in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P" ~locations ~edges ~initial:0);
  return (Network.Builder.build b, nl)

let test_reduction_random =
  QCheck2.Test.make ~count:60
    ~name:"reduction on and off agree on random automata"
    QCheck2.Gen.(pair gen_random_net (int_range 0 10))
    (fun ((net, nl), c) ->
      let ok = ref true in
      for l = 0 to nl - 1 do
        let at = Query.at net ~comp:"P" ~loc:(Printf.sprintf "L%d" l) in
        let q = Query.with_guard at (Guard.clock_ge 2 c) in
        let off = verdict (Reach.reach ~reduction:Reach.None net q) in
        let on = verdict (Reach.reach ~reduction:Reach.Active net q) in
        if off <> on then ok := false;
        for x = 1 to 2 do
          if
            sup_fingerprint ~reduction:Reach.None net ~at ~clock:x
            <> sup_fingerprint ~reduction:Reach.Active net ~at ~clock:x
          then ok := false
        done
      done;
      !ok)

(* And lint itself never crashes on random nets: total by construction *)
let test_lint_total_random =
  QCheck2.Test.make ~count:60 ~name:"lint is total on random automata"
    gen_random_net
    (fun (net, _) ->
      let findings = Lint.run net in
      ignore (Format.asprintf "%a" (Lint.pp_report net) findings);
      true)

(* ------------------------------------------------------------------ *)
(* Satellite: golden file pinning the [lint --json] schema — the exact
   bytes [tamc lint --json flow_demo.ta] prints, positions and query-
   derived observations included.  A schema change (new field, renamed
   pass, different ordering) must consciously regenerate
   lint_golden.json.                                                   *)

let fixture name =
  match List.find_opt Sys.file_exists [ name; "../test/" ^ name ] with
  | Some p -> p
  | Option.None -> Alcotest.failf "fixture %s not found" name

(* mirrors tamc's observed_of_queries: what the model's own queries
   watch feeds the cone pass and the unused/never-reset exemptions *)
let observed_of_queries queries =
  let comps = ref [] and clocks = ref [] and vars = ref [] in
  let add_guard (g : Guard.t) =
    List.iter
      (fun (a : Guard.atom) ->
        clocks := a.Guard.clock :: !clocks;
        vars := Expr.ivars a.Guard.bound @ !vars)
      g.Guard.clocks;
    vars := Expr.bvars g.Guard.data @ !vars
  in
  let add_comps (q : Query.t) =
    comps := List.map fst q.Query.comp_locs @ !comps
  in
  List.iter
    (function
      | E.Deadlock_q -> ()
      | E.Reach_q q ->
          add_comps q;
          add_guard q.Query.guard
      | E.Sup_q { clock; at } ->
          clocks := clock :: !clocks;
          add_comps at;
          add_guard at.Query.guard)
    queries;
  (List.sort_uniq compare !comps, !clocks, !vars)

let test_lint_json_golden () =
  let { E.net; queries; srcmap } =
    E.load_file ~validate:false (fixture "flow_demo.ta")
  in
  let observed_comps, observed_clocks, observed_vars =
    observed_of_queries queries
  in
  let findings =
    Lint.run ~observed_comps ~observed_clocks ~observed_vars net
  in
  let site_pos = function
    | D.Automaton_site i -> Some srcmap.E.proc_pos.(i)
    | D.Location_site { comp; loc } -> Some srcmap.E.loc_pos.(comp).(loc)
    | D.Edge_site { comp; edge } -> Some srcmap.E.edge_pos.(comp).(edge)
    | D.Network_site | D.Clock_site _ | D.Var_site _ | D.Channel_site _ ->
        Option.None
  in
  let resolve site =
    Option.map
      (fun { Ita_tafmt.Ast.line; col } ->
        Printf.sprintf "flow_demo.ta:%d:%d" line col)
      (site_pos site)
  in
  let pos site =
    Option.map
      (fun { Ita_tafmt.Ast.line; col } -> (line, col))
      (site_pos site)
  in
  let json = Lint.to_json ~resolve ~pos net findings in
  let golden =
    In_channel.with_open_bin (fixture "lint_golden.json")
      In_channel.input_all
  in
  Alcotest.(check string) "lint --json bytes" golden json

let () =
  Alcotest.run "analysis"
    [
      ( "golden",
        [ Alcotest.test_case "lint --json schema" `Quick test_lint_json_golden ]
      );
      ( "passes",
        [
          Alcotest.test_case "unused clock" `Quick test_unused_clock;
          Alcotest.test_case "never-reset clock" `Quick
            test_never_reset_clock;
          Alcotest.test_case "dead var" `Quick test_dead_var;
          Alcotest.test_case "range overflow" `Quick test_range_overflow;
          Alcotest.test_case "unreachable location" `Quick
            test_unreachable_location;
          Alcotest.test_case "invariant misuse" `Quick test_invariant_misuse;
          Alcotest.test_case "urgent clock guard" `Quick
            test_urgent_clock_guard;
          Alcotest.test_case "channel peer" `Quick test_channel_peer;
          Alcotest.test_case "committed cycle" `Quick test_committed_cycle;
          Alcotest.test_case "zeno cycle" `Quick test_zeno_cycle;
          Alcotest.test_case "merged query clock" `Quick
            test_merged_query_clock;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "generated networks clean" `Quick
            test_generated_baseline;
          Alcotest.test_case "example models clean" `Quick
            test_examples_baseline;
        ] );
      ( "reduction-differential",
        [
          Alcotest.test_case "wcrt agrees on model zoo" `Quick
            test_reduction_agrees_on_models;
          Alcotest.test_case "verdicts agree on examples" `Quick
            test_reduction_agrees_on_examples;
          QCheck_alcotest.to_alcotest test_reduction_random;
          QCheck_alcotest.to_alcotest test_lint_total_random;
        ] );
    ]
