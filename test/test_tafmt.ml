(* Tests for the textual .ta format: lexer, parser, elaboration and
   checking parsed models end to end. *)

module L = Ita_tafmt.Lexer
module P = Ita_tafmt.Parser
module E = Ita_tafmt.Elaborate
module Ast = Ita_tafmt.Ast
open Ita_ta

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let lx = L.of_string "clock x // comment\n  edge A -> B when x <= 5" in
  let toks = List.init 9 (fun _ -> L.next lx) in
  Alcotest.(check bool) "token stream" true
    (toks
    = [
        L.KW "clock";
        L.IDENT "x";
        L.KW "edge";
        L.IDENT "A";
        L.PUNCT "->";
        L.IDENT "B";
        L.KW "when";
        L.IDENT "x";
        L.PUNCT "<=";
      ])

let test_lexer_numbers () =
  let lx = L.of_string "42 -7" in
  Alcotest.(check bool) "int" true (L.next lx = L.INT 42);
  Alcotest.(check bool) "negative int" true (L.next lx = L.INT (-7));
  Alcotest.(check bool) "eof" true (L.next lx = L.EOF)

let test_lexer_error () =
  let lx = L.of_string "x @ y" in
  ignore (L.next lx);
  match L.next lx with
  | _ -> Alcotest.fail "expected lex error"
  | exception L.Lex_error { line = 1; _ } -> ()

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let two_phase_src =
  {|
clock x y
process P {
  init loc L0
  loc L1 inv x <= 4
  committed loc L2
  edge L0 -> L1 when x >= 1 && x <= 2 do x := 0
  edge L1 -> L2 when x == 4
}
query reach P.L2 && y >= 6
query sup y at P.L2
|}

let test_parse_structure () =
  let decls = P.parse_string two_phase_src in
  Alcotest.(check int) "four declarations" 4 (List.length decls);
  match decls with
  | [ Ast.Clocks [ "x"; "y" ]; Ast.Process p; Ast.Query (Ast.Reach _);
      Ast.Query (Ast.Sup _) ] ->
      Alcotest.(check int) "locations" 3 (List.length p.Ast.locs);
      Alcotest.(check int) "edges" 2 (List.length p.Ast.edges)
  | _ -> Alcotest.fail "unexpected declaration shapes"

let test_parse_expressions () =
  let decls = P.parse_string "var n 0 9 0\nprocess P { init loc A edge A -> A when n * 2 + 1 == 3 && !(n > 4) do n := n + 1 }" in
  match decls with
  | [ Ast.Var _; Ast.Process { Ast.edges = [ e ]; _ } ] ->
      Alcotest.(check bool) "guard parsed" true (e.Ast.edge_guard <> None);
      Alcotest.(check int) "one update" 1 (List.length e.Ast.edge_updates)
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_error_line () =
  match P.parse_string "clock x\nprocess {" with
  | _ -> Alcotest.fail "expected error"
  | exception P.Parse_error { line = 2; _ } -> ()
  | exception P.Parse_error { line; _ } ->
      Alcotest.failf "error on wrong line %d" line

(* ------------------------------------------------------------------ *)
(* Elaboration and end-to-end checking                                 *)
(* ------------------------------------------------------------------ *)

let test_elaborate_two_phase () =
  let { E.net; queries; _ } = E.elaborate (P.parse_string two_phase_src) in
  Alcotest.(check int) "two clocks" 2 (Network.n_clocks net);
  Alcotest.(check int) "one component" 1 (Network.n_components net);
  match queries with
  | [ E.Reach_q q6; E.Sup_q { clock; at } ] -> (
      (match Ita_mc.Reach.reach net q6 with
      | Ita_mc.Reach.Reachable _ -> ()
      | _ -> Alcotest.fail "y >= 6 should be reachable");
      match Ita_mc.Wcrt.sup net ~at ~clock with
      | Ita_mc.Wcrt.Sup { value; _ } -> Alcotest.(check int) "sup" 6 value
      | _ -> Alcotest.fail "sup should be found")
  | _ -> Alcotest.fail "expected two queries"

let test_elaborate_sync_and_urgent () =
  let src =
    {|
clock z
var flag 0 1 0
urgent broadcast chan hurry
process U {
  init loc L0
  loc L1
  edge L0 -> L1 when flag == 1 sync hurry!
}
process T {
  init loc M0 inv z <= 5
  loc M1
  edge M0 -> M1 when z == 5 do flag := 1
}
query reach U.L0 && T.M1 && z > 5
|}
  in
  let { E.net; queries; _ } = E.elaborate (P.parse_string src) in
  match queries with
  | [ E.Reach_q q ] -> (
      match Ita_mc.Reach.reach net q with
      | Ita_mc.Reach.Unreachable _ -> ()
      | _ -> Alcotest.fail "urgency must pin z at 5")
  | _ -> Alcotest.fail "expected one query"

let test_elaborate_errors () =
  let expect_err src =
    match E.elaborate (P.parse_string src) with
    | _ -> Alcotest.fail "expected Elab_error"
    | exception E.Elab_error _ -> ()
  in
  (* unknown identifier *)
  expect_err "process P { init loc A edge A -> A when nope == 1 }";
  (* clock used as integer *)
  expect_err "clock x\nvar n 0 9 0\nprocess P { init loc A edge A -> A do n := x }";
  (* clock compared to clock *)
  expect_err "clock x y\nprocess P { init loc A edge A -> A when x <= y }";
  (* clock under disjunction *)
  expect_err
    "clock x\nvar n 0 9 0\nprocess P { init loc A edge A -> A when x <= 3 || n == 1 }";
  (* two init locations *)
  expect_err "process P { init loc A init loc B }"

(* tests run from _build/default/test under dune, or from the repo root
   when the executable is invoked directly *)
let model_path name =
  let candidates =
    [ "../examples/models/" ^ name; "examples/models/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "%s not found" name

let test_fischer () =
  let path = model_path "fischer.ta" in
  begin
    let { E.net; queries; _ } = E.load_file path in
    match queries with
    | [ E.Reach_q mutex; E.Reach_q live1; E.Reach_q live2; E.Deadlock_q ] ->
        (match Ita_mc.Reach.reach net mutex with
        | Ita_mc.Reach.Unreachable _ -> ()
        | _ -> Alcotest.fail "mutual exclusion violated");
        List.iter
          (fun q ->
            match Ita_mc.Reach.reach net q with
            | Ita_mc.Reach.Reachable _ -> ()
            | _ -> Alcotest.fail "process cannot reach its critical section")
          [ live1; live2 ];
        (* the protocol is also deadlock-free *)
        let dead = ref false in
        (match
           Ita_mc.Reach.explore net ~on_store:(fun cfg ->
               if Ita_ta.Semantics.successors net cfg = [] then dead := true)
         with
        | `Complete _ -> ()
        | `Budget_exhausted _ -> Alcotest.fail "exploration incomplete");
        Alcotest.(check bool) "deadlock-free" false !dead
    | _ -> Alcotest.fail "expected four queries"
  end

let test_train_gate () =
  let path = model_path "train_gate.ta" in
  let { E.net; queries; _ } = E.load_file path in
  (match queries with
  | [ E.Reach_q unsafe1; E.Reach_q unsafe2; E.Reach_q good; E.Deadlock_q ] ->
      List.iter
        (fun q ->
          match Ita_mc.Reach.reach net q with
          | Ita_mc.Reach.Unreachable _ -> ()
          | _ -> Alcotest.fail "train in crossing with the gate not down")
        [ unsafe1; unsafe2 ];
      (match Ita_mc.Reach.reach net good with
      | Ita_mc.Reach.Reachable _ -> ()
      | _ -> Alcotest.fail "the train never crosses")
  | _ -> Alcotest.fail "expected four queries")

let test_load_example_file () =
  (* the example shipped in examples/models must stay green *)
  let path = model_path "two_phase.ta" in
  begin
    let { E.net; queries; _ } = E.load_file path in
    Alcotest.(check int) "three queries" 3 (List.length queries);
    Alcotest.(check int) "one component" 1 (Network.n_components net)
  end

let () =
  Alcotest.run "tafmt"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "expressions" `Quick test_parse_expressions;
          Alcotest.test_case "error line" `Quick test_parse_error_line;
        ] );
      ( "elaborate",
        [
          Alcotest.test_case "two-phase end to end" `Quick
            test_elaborate_two_phase;
          Alcotest.test_case "sync and urgency" `Quick
            test_elaborate_sync_and_urgent;
          Alcotest.test_case "errors" `Quick test_elaborate_errors;
          Alcotest.test_case "example file" `Quick test_load_example_file;
          Alcotest.test_case "fischer protocol" `Quick test_fischer;
          Alcotest.test_case "train gate" `Quick test_train_gate;
        ] );
    ]
