(* Query-directed model reduction (Slice): unit tests of the cone and
   the quasi-equal merge on hand-built networks, and differential
   suites showing that slicing changes no verdict and no WCRT — on the
   model zoo, on the shipped example models, on the radionav case
   study and on random automata checked against a concrete-walk
   oracle — across all three abstractions and 1/4 worker domains. *)

open Ita_ta
open Ita_mc
module Slice = Ita_analysis.Slice
module Dbm = Ita_dbm.Dbm
module R = Ita_casestudy.Radionav
module E = Ita_tafmt.Elaborate

let loc = Models.loc
let edge = Models.edge

let verdict = function
  | Reach.Reachable _ -> "reachable"
  | Reach.Unreachable _ -> "unreachable"
  | Reach.Budget_exhausted _ -> "budget"

let sup_fp ?(initial_ceiling = 64) ?(max_ceiling = 256) ?abstraction ?domains
    ~slicing net ~at ~clock () =
  match
    Wcrt.sup ?abstraction ?domains ~slicing ~initial_ceiling ~max_ceiling net
      ~at ~clock
  with
  | Wcrt.Sup { value; kind; _ } ->
      Printf.sprintf "sup %d %s" value
        (match kind with
        | Wcrt.Attained -> "attained"
        | Wcrt.Approached -> "approached")
  | Wcrt.Goal_unreachable _ -> "unreachable"
  | Wcrt.Sup_budget_exhausted _ -> "budget"
  | Wcrt.Sup_unbounded _ -> "unbounded"

(* ------------------------------------------------------------------ *)
(* Hand-built networks                                                 *)
(* ------------------------------------------------------------------ *)

(* P (queried) handshakes with R; Q is an island — Normal locations,
   no invariants, no synchronization, its own clock and variable — so
   the cone must remove Q, its clock and its variable while keeping
   the sync peer R. *)
let island_net () =
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  let z = Network.Builder.clock b "z" in
  let v = Network.Builder.int_var b "v" ~lo:0 ~hi:3 ~init:0 in
  let c = Network.Builder.channel b "c" Channel.Binary ~urgent:false in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P"
       ~locations:
         [
           loc "L0";
           loc "L1" ~invariant:(Guard.clock_le x 5);
           loc "L2" ~kind:Automaton.Committed;
         ]
       ~edges:
         [
           edge 0 1 ~sync:(Automaton.Send c) ~update:(Update.reset x);
           edge 1 2 ~guard:(Guard.clock_ge x 3);
         ]
       ~initial:0);
  Network.Builder.add_automaton b
    (Automaton.make ~name:"Q"
       ~locations:[ loc "K0" ]
       ~edges:
         [
           edge 0 0
             ~guard:(Guard.clock_ge z 2)
             ~update:(Update.reset z @ Update.set v (Expr.Int 1));
         ]
       ~initial:0);
  Network.Builder.add_automaton b
    (Automaton.make ~name:"R"
       ~locations:[ loc "M0"; loc "M1" ]
       ~edges:[ edge 0 1 ~sync:(Automaton.Recv c); edge 1 0 ]
       ~initial:0);
  (Network.Builder.build b, x, z, v)

let test_island_cone () =
  let net, x, z, v = island_net () in
  let at = Query.at net ~comp:"P" ~loc:"L2" in
  let sl, snet, _ = Reach.slice_query Reach.CoiMerge net at in
  Alcotest.(check (list int)) "Q removed" [ 1 ] sl.Slice.removed_comps;
  Alcotest.(check (list int)) "z removed" [ z ] sl.Slice.removed_clocks;
  Alcotest.(check (list int)) "v removed" [ v ] sl.Slice.removed_vars;
  Alcotest.(check bool) "not identity" false sl.Slice.identity;
  Alcotest.(check (option int)) "P mapped" (Some 0) (Slice.map_comp sl 0);
  Alcotest.(check (option int)) "Q unmapped" None (Slice.map_comp sl 1);
  Alcotest.(check (option int)) "R mapped" (Some 1) (Slice.map_comp sl 2);
  Alcotest.(check (option int)) "x kept" (Some 1) (Slice.map_clock sl x);
  Alcotest.(check (option int)) "z dropped" None (Slice.map_clock sl z);
  Alcotest.(check int) "two automata left" 2
    (Array.length snet.Network.automata);
  Alcotest.(check int) "one clock left" 2
    (Array.length snet.Network.clock_names);
  (* the verdict and the unmapped witness must look like the original
     network's: full-width location vector, Q frozen at its initial
     location, goal zone at the original DBM dimension *)
  List.iter
    (fun slicing ->
      match Reach.reach ~slicing net at with
      | Reach.Reachable { witness; goal_zone; _ } ->
          let last = List.nth witness (List.length witness - 1) in
          let locs = last.Reach.state.Semantics.locs in
          Alcotest.(check int) "witness width" 3 (Array.length locs);
          Alcotest.(check int) "P at L2" 2 locs.(0);
          Alcotest.(check int) "Q frozen at K0" 0 locs.(1);
          Alcotest.(check int) "goal zone dimension" 3 (Dbm.dim goal_zone)
      | _ -> Alcotest.fail "goal should be reachable")
    [ Reach.Off; Reach.Coi; Reach.CoiMerge ]

let test_island_lint_cone () =
  let net, _, _, _ = island_net () in
  let module D = Ita_analysis.Diagnostic in
  let module Lint = Ita_analysis.Lint in
  let cone_findings fs = D.by_pass D.Outside_cone fs in
  (* without observed components there is no query, hence no pass *)
  Alcotest.(check int) "no query, no cone findings" 0
    (List.length (cone_findings (Lint.run net)));
  let fs = cone_findings (Lint.run ~observed_comps:[ 0 ] net) in
  Alcotest.(check int) "one cone finding" 1 (List.length fs);
  match fs with
  | [ d ] ->
      Alcotest.(check string) "hint severity" "hint"
        (D.severity_name d.D.severity);
      Alcotest.(check bool) "at Q" true (d.D.site = D.Automaton_site 1)
  | _ -> assert false

(* A single component whose clocks x and y are always reset together:
   CoiMerge must merge y into x (one DBM dimension less) and change
   neither verdicts nor sups. *)
let twin_net () =
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  let y = Network.Builder.clock b "y" in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"M"
       ~locations:
         [ loc "A"; loc "B" ~invariant:(Guard.clock_le x 4); loc "C" ]
       ~edges:
         [
           edge 0 1 ~update:(Update.reset x @ Update.reset y);
           edge 1 2 ~guard:(Guard.conj (Guard.clock_ge x 2) (Guard.clock_ge y 2));
           edge 2 0 ~update:(Update.reset x @ Update.reset y);
         ]
       ~initial:0);
  (Network.Builder.build b, x, y)

let test_twin_merge () =
  let net, x, y = twin_net () in
  let at = Query.at net ~comp:"M" ~loc:"C" in
  let sl, snet, _ = Reach.slice_query Reach.CoiMerge ~extra_clocks:[ y ] net at in
  Alcotest.(check bool) "y merged into x" true (sl.Slice.merged = [ (y, x) ]);
  Alcotest.(check int) "one clock left" 2
    (Array.length snet.Network.clock_names);
  Alcotest.(check (option int)) "y maps to x's slot" (Slice.map_clock sl x)
    (Slice.map_clock sl y);
  (* Coi alone must not merge *)
  let sl', _, _ = Reach.slice_query Reach.Coi ~extra_clocks:[ y ] net at in
  Alcotest.(check bool) "coi keeps both" true (sl'.Slice.merged = []);
  (* sup over the merged-away clock still answers, identically *)
  let base = sup_fp ~slicing:Reach.Off net ~at ~clock:y () in
  List.iter
    (fun slicing ->
      Alcotest.(check string) "sup y unchanged" base
        (sup_fp ~slicing net ~at ~clock:y ()))
    [ Reach.Coi; Reach.CoiMerge ];
  (* the unmapped goal zone must pin the merged clocks equal *)
  match Reach.reach ~slicing:Reach.CoiMerge net at with
  | Reach.Reachable { goal_zone; _ } ->
      Alcotest.(check int) "goal zone dimension" 3 (Dbm.dim goal_zone);
      Alcotest.(check bool) "x = y in the unmapped zone" true
        (Dbm.get goal_zone x y = Ita_dbm.Bound.le 0
        && Dbm.get goal_zone y x = Ita_dbm.Bound.le 0)
  | _ -> Alcotest.fail "C should be reachable"

(* The bench's station family in miniature: a measured server with a
   quasi-equal clock pair plus sporadic clients outside the cone.  The
   strict-win claim of the benchmark, pinned as a test: same sup,
   strictly fewer explored states, strictly fewer clocks. *)
let station_net n =
  let b = Network.Builder.create () in
  let y = Network.Builder.clock b "y" in
  let y2 = Network.Builder.clock b "y2" in
  let clocks =
    Array.init n (fun i -> Network.Builder.clock b (Printf.sprintf "x%d" i))
  in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"Station"
       ~locations:
         [
           loc "Idle";
           loc "Busy" ~invariant:(Guard.clock_le y 10);
           loc "Done" ~kind:Automaton.Committed;
         ]
       ~edges:
         [
           edge 0 1 ~update:(Update.reset y @ Update.reset y2);
           edge 1 2
             ~guard:(Guard.conj (Guard.clock_ge y 5) (Guard.clock_ge y2 5));
           edge 2 0;
         ]
       ~initial:0);
  for i = 0 to n - 1 do
    let x = clocks.(i) in
    Network.Builder.add_automaton b
      (Automaton.make
         ~name:(Printf.sprintf "C%d" i)
         ~locations:[ loc "L" ]
         ~edges:
           [ edge 0 0 ~guard:(Guard.clock_ge x (3 + (2 * i))) ~update:(Update.reset x) ]
         ~initial:0)
  done;
  Network.Builder.build b

let test_station_strict_win () =
  let net = station_net 3 in
  let at = Query.at net ~comp:"Station" ~loc:"Done" in
  let clock = 1 (* y *) in
  let run slicing =
    match Wcrt.sup ~slicing ~domains:1 net ~at ~clock with
    | Wcrt.Sup { value; stats; _ } -> (value, stats.Reach.explored)
    | _ -> Alcotest.fail "expected a finite sup"
  in
  let v_off, n_off = run Reach.Off in
  let v_on, n_on = run Reach.CoiMerge in
  Alcotest.(check int) "same WCRT" v_off v_on;
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer states (%d < %d)" n_on n_off)
    true (n_on < n_off);
  let sl, snet, _ = Reach.slice_query Reach.CoiMerge ~extra_clocks:[ clock ] net at in
  Alcotest.(check int) "all clients removed" 3
    (List.length sl.Slice.removed_comps);
  Alcotest.(check bool) "y2 merged" true (sl.Slice.merged = [ (2, 1) ]);
  Alcotest.(check int) "clocks 6 -> 2" 2
    (Array.length snet.Network.clock_names)

(* Every component of the handshake is in the cone of a query on S
   (R is S's binary peer), so the slice must be the identity — same
   network, same exploration, byte-identical stats. *)
let test_identity () =
  let net = fst (Models.handshake ()) in
  let at = Query.at net ~comp:"S" ~loc:"P1" in
  let sl, snet, at' = Reach.slice_query Reach.CoiMerge net at in
  Alcotest.(check bool) "identity" true sl.Slice.identity;
  Alcotest.(check bool) "same network" true (snet == net);
  Alcotest.(check bool) "same query" true (at' == at);
  let explored slicing =
    match Reach.reach ~slicing ~domains:1 net at with
    | Reach.Reachable { stats; _ } -> stats.Reach.explored
    | _ -> Alcotest.fail "reachable"
  in
  Alcotest.(check int) "byte-identical exploration" (explored Reach.Off)
    (explored Reach.CoiMerge)

(* pp_report smoke: the report must mention the removals and carry the
   resolver's provenance prefix *)
let test_report () =
  let net, _, _, _ = island_net () in
  let at = Query.at net ~comp:"P" ~loc:"L2" in
  let sl, _, _ = Reach.slice_query Reach.CoiMerge net at in
  let resolve = function
    | Ita_analysis.Diagnostic.Automaton_site i ->
        Some (Printf.sprintf "model.ta:%d:1" (i + 1))
    | _ -> None
  in
  let report = Format.asprintf "%a" (Slice.pp_report ~resolve) sl in
  let has needle =
    let nl = String.length needle and rl = String.length report in
    let rec at i =
      if i + nl > rl then false
      else String.sub report i nl = needle || at (i + 1)
    in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "report mentions %S" needle)
        true (has needle))
    [ "model.ta:2:1"; "Q"; "z"; "v" ]

(* ------------------------------------------------------------------ *)
(* Differential: the model zoo, all modes x abstractions x domains     *)
(* ------------------------------------------------------------------ *)

let zoo () =
  [
    ("two-phase", (let net, _, _ = Models.two_phase () in net));
    ("urgent-gate", fst (Models.urgent_gate ()));
    ("committed-gate", fst (Models.committed_gate ()));
    ("handshake", fst (Models.handshake ()));
    ("broadcast", Models.broadcast_pair ());
    ("island", (let net, _, _, _ = island_net () in net));
    ("twin", (let net, _, _ = twin_net () in net));
  ]

let check_net_differential name net =
  let n_clocks = Array.length net.Network.clock_names in
  Array.iter
    (fun (a : Automaton.t) ->
      Array.iter
        (fun (l : Automaton.location) ->
          let at =
            Query.at net ~comp:a.Automaton.name ~loc:l.Automaton.loc_name
          in
          for x = 1 to n_clocks - 1 do
            List.iter
              (fun c ->
                let q = Query.with_guard at (Guard.clock_ge x c) in
                let base =
                  verdict (Reach.reach ~slicing:Reach.Off ~domains:1 net q)
                in
                List.iter
                  (fun (slicing, abstraction, d) ->
                    Alcotest.(check string)
                      (Printf.sprintf "%s: verdict %s >= %d at %s.%s" name
                         net.Network.clock_names.(x) c a.Automaton.name
                         l.Automaton.loc_name)
                      base
                      (verdict
                         (Reach.reach ~slicing ~abstraction ~domains:d net q)))
                  [
                    (Reach.Coi, Reach.ExtraM, 1);
                    (Reach.Coi, Reach.ExtraLU, 1);
                    (Reach.Coi, Reach.LuSim, 1);
                    (Reach.CoiMerge, Reach.ExtraM, 1);
                    (Reach.CoiMerge, Reach.ExtraLU, 1);
                    (Reach.CoiMerge, Reach.LuSim, 1);
                    (Reach.CoiMerge, Reach.ExtraLU, 4);
                    (Reach.CoiMerge, Reach.LuSim, 4);
                  ])
              [ 1; 7 ];
            let base = sup_fp ~slicing:Reach.Off ~domains:1 net ~at ~clock:x () in
            List.iter
              (fun (slicing, abstraction, d) ->
                Alcotest.(check string)
                  (Printf.sprintf "%s: sup %s at %s.%s" name
                     net.Network.clock_names.(x) a.Automaton.name
                     l.Automaton.loc_name)
                  base
                  (sup_fp ~slicing ~abstraction ~domains:d net ~at ~clock:x ()))
              [
                (Reach.Coi, Reach.ExtraM, 1);
                (Reach.Coi, Reach.ExtraLU, 1);
                (Reach.CoiMerge, Reach.ExtraM, 1);
                (Reach.CoiMerge, Reach.ExtraLU, 1);
                (Reach.CoiMerge, Reach.LuSim, 1);
                (Reach.CoiMerge, Reach.ExtraLU, 4);
              ]
          done)
        a.Automaton.locations)
    net.Network.automata

let test_zoo_differential () =
  List.iter (fun (name, net) -> check_net_differential name net) (zoo ())

let test_station_differential () =
  check_net_differential "station" (station_net 2)

(* ------------------------------------------------------------------ *)
(* Differential: the shipped example models' own queries               *)
(* ------------------------------------------------------------------ *)

let model_path name =
  let candidates =
    [ "../examples/models/" ^ name; "examples/models/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "%s not found" name

let test_examples_differential () =
  List.iter
    (fun file ->
      let { E.net; queries; _ } = E.load_file (model_path file) in
      List.iteri
        (fun i q ->
          match q with
          | E.Reach_q q ->
              let base = verdict (Reach.reach ~slicing:Reach.Off net q) in
              List.iter
                (fun slicing ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s query %d" file i)
                    base
                    (verdict (Reach.reach ~slicing net q)))
                [ Reach.Coi; Reach.CoiMerge ]
          | E.Sup_q { clock; at } ->
              let base =
                sup_fp ~initial_ceiling:1_000_000 ~max_ceiling:(1 lsl 40)
                  ~slicing:Reach.Off net ~at ~clock ()
              in
              List.iter
                (fun slicing ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s sup query %d" file i)
                    base
                    (sup_fp ~initial_ceiling:1_000_000 ~max_ceiling:(1 lsl 40)
                       ~slicing net ~at ~clock ()))
                [ Reach.Coi; Reach.CoiMerge ]
          | E.Deadlock_q -> ())
        queries)
    [ "fischer.ta"; "train_gate.ta"; "two_phase.ta" ]

(* ------------------------------------------------------------------ *)
(* Differential: the radionav case study's validated cells             *)
(* ------------------------------------------------------------------ *)

let test_radionav_differential () =
  List.iter
    (fun (scen, req, expected) ->
      let sys = R.system R.Al_tmc R.Po in
      List.iter
        (fun slicing ->
          match
            (Ita_core.Analyze.wcrt ~slicing sys ~scenario:scen
               ~requirement:req)
              .Ita_core.Analyze.outcome
          with
          | Ita_core.Analyze.Exact_wcrt v ->
              Alcotest.(check int)
                (Printf.sprintf "%s/%s" scen req)
                expected v
          | _ -> Alcotest.failf "%s/%s: expected exact WCRT" scen req)
        [ Reach.Off; Reach.Coi; Reach.CoiMerge ])
    [ ("AddressLookup", "E2E", 79_075); ("HandleTMC", "TMC", 172_106) ]

(* ------------------------------------------------------------------ *)
(* Random automata: a queried component plus a removable island, with
   a concrete-walk oracle on the ORIGINAL network — any goal the walk
   hits must be reachable in the sliced exploration too.               *)
(* ------------------------------------------------------------------ *)

let gen_random_island_net =
  let open QCheck2.Gen in
  let gen_atom clock =
    let* rel = oneofl [ Guard.Lt; Guard.Le; Guard.Ge; Guard.Gt; Guard.Eq ] in
    let* c = int_range 0 8 in
    return (Guard.clock_rel clock rel (Expr.Int c))
  in
  let* nl = int_range 2 4 in
  let* invariants =
    list_repeat nl
      (let* inv = bool in
       let* c = int_range 1 8 in
       return (if inv then Guard.clock_le 1 c else Guard.tt))
  in
  let* n_edges = int_range nl (2 * nl) in
  let* p_edges =
    list_repeat n_edges
      (let* src = int_range 0 (nl - 1) and* dst = int_range 0 (nl - 1) in
       let* use_g = bool in
       let* g = gen_atom 1 in
       let* reset = bool in
       return
         (edge src dst
            ~guard:(if use_g then g else Guard.tt)
            ~update:(if reset then Update.reset 1 else [])))
  in
  (* the island: self-loops over its own clock, Normal locations only,
     so it is provably outside any cone rooted at P *)
  let* q_edges =
    let* lo = int_range 1 5 in
    return [ edge 0 0 ~guard:(Guard.clock_ge 2 lo) ~update:(Update.reset 2) ]
  in
  let b = Network.Builder.create () in
  let _x = Network.Builder.clock b "x" in
  let _z = Network.Builder.clock b "z" in
  let locations =
    List.mapi
      (fun i inv -> loc (Printf.sprintf "L%d" i) ~invariant:inv)
      invariants
  in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P" ~locations ~edges:p_edges ~initial:0);
  Network.Builder.add_automaton b
    (Automaton.make ~name:"Q" ~locations:[ loc "K0" ] ~edges:q_edges
       ~initial:0);
  return (Network.Builder.build b, nl)

(* Concrete.random_walk fires any enabled edge; random nets have edges
   into locations whose invariant then fails, which the symbolic
   engine drops as empty zones — skip those, as test_par does. *)
let safe_walk net ~seed ~steps ~max_step_delay =
  let rng = Ita_util.Prng.create seed in
  let fire c label =
    match Concrete.apply net c (Concrete.Fire label) with
    | c' -> Some c'
    | exception Invalid_argument _ -> None
  in
  let rec go c k acc =
    if k = 0 then List.rev acc
    else
      let dmax =
        match Concrete.max_delay net c with
        | None -> max_step_delay
        | Some m -> min m max_step_delay
      in
      let d = if dmax > 0 then Ita_util.Prng.int rng (dmax + 1) else 0 in
      let c = if d > 0 then Concrete.apply net c (Concrete.Delay d) else c in
      let acc = if d > 0 then c :: acc else acc in
      match List.filter_map (fire c) (Concrete.fireable net c) with
      | [] -> if d = 0 then List.rev acc else go c (k - 1) acc
      | succs ->
          let c' = List.nth succs (Ita_util.Prng.int rng (List.length succs)) in
          go c' (k - 1) (c' :: acc)
  in
  go (Concrete.initial net) steps []

let test_random_island =
  QCheck2.Test.make ~count:60
    ~name:"sliced verdicts agree with unsliced and with concrete walks"
    QCheck2.Gen.(triple gen_random_island_net (int_range 0 10) (int_range 1 10_000))
    (fun ((net, nl), c, seed) ->
      let ok = ref true in
      let walk = safe_walk net ~seed ~steps:40 ~max_step_delay:7 in
      for l = 0 to nl - 1 do
        let at = Query.at net ~comp:"P" ~loc:(Printf.sprintf "L%d" l) in
        let q = Query.with_guard at (Guard.clock_ge 1 c) in
        let base = verdict (Reach.reach ~slicing:Reach.Off net q) in
        List.iter
          (fun slicing ->
            List.iter
              (fun abstraction ->
                if
                  verdict (Reach.reach ~slicing ~abstraction net q) <> base
                then ok := false)
              [ Reach.ExtraM; Reach.ExtraLU; Reach.LuSim ])
          [ Reach.Coi; Reach.CoiMerge ];
        (* the oracle: a concrete state of the ORIGINAL network hitting
           the goal forces the sliced verdict to be reachable *)
        let concretely_hit =
          List.exists
            (fun (cc : Concrete.t) ->
              cc.Concrete.locs.(0) = l && cc.Concrete.clocks.(1) >= c)
            walk
        in
        if
          concretely_hit
          && verdict (Reach.reach ~slicing:Reach.CoiMerge net q) <> "reachable"
        then ok := false
      done;
      (* the island must actually be sliced away whenever the query
         does not observe it *)
      let at = Query.at net ~comp:"P" ~loc:"L0" in
      let sl, _, _ = Reach.slice_query Reach.CoiMerge net at in
      if sl.Slice.removed_comps <> [ 1 ] then ok := false;
      !ok)

let () =
  Alcotest.run "slice"
    [
      ( "unit",
        [
          Alcotest.test_case "island cone" `Quick test_island_cone;
          Alcotest.test_case "island lint pass" `Quick test_island_lint_cone;
          Alcotest.test_case "quasi-equal merge" `Quick test_twin_merge;
          Alcotest.test_case "station strict win" `Quick
            test_station_strict_win;
          Alcotest.test_case "identity fast path" `Quick test_identity;
          Alcotest.test_case "report provenance" `Quick test_report;
        ] );
      ( "differential",
        [
          Alcotest.test_case "model zoo" `Quick test_zoo_differential;
          Alcotest.test_case "station family" `Quick
            test_station_differential;
          Alcotest.test_case "example models" `Quick
            test_examples_differential;
          Alcotest.test_case "radionav cells" `Slow
            test_radionav_differential;
        ] );
      ( "random",
        [ QCheck_alcotest.to_alcotest test_random_island ] );
    ]
