(* Dataflow-engine tests: the semantic lint passes on the shipped demo
   model (findings the purely syntactic passes cannot see), qcheck
   soundness of the inferred intervals against concrete random walks,
   and the flow-refined LU bounds as a pure optimization — identical
   verdicts and WCRT values with the refinement on and off. *)

open Ita_ta
module Flow = Ita_analysis.Flow
module D = Ita_analysis.Diagnostic
module Lint = Ita_analysis.Lint
module Reach = Ita_mc.Reach
module Wcrt = Ita_mc.Wcrt
module Query = Ita_mc.Query
module E = Ita_tafmt.Elaborate

let loc = Models.loc
let edge = Models.edge

(* ------------------------------------------------------------------ *)
(* The shipped demo: dead edge, always-true guard and write-write race,
   all invisible to the syntactic passes.                              *)
(* ------------------------------------------------------------------ *)

let demo_path () =
  match
    List.find_opt Sys.file_exists [ "flow_demo.ta"; "test/flow_demo.ta" ]
  with
  | Some p -> p
  | None -> Alcotest.fail "flow_demo.ta not found"

let observed_of_queries queries =
  let clocks = ref [] and vars = ref [] in
  let add_guard (g : Guard.t) =
    List.iter
      (fun (a : Guard.atom) ->
        clocks := a.Guard.clock :: !clocks;
        vars := Expr.ivars a.Guard.bound @ !vars)
      g.Guard.clocks;
    vars := Expr.bvars g.Guard.data @ !vars
  in
  List.iter
    (function
      | E.Deadlock_q -> ()
      | E.Reach_q q -> add_guard q.Query.guard
      | E.Sup_q { clock; at } ->
          clocks := clock :: !clocks;
          add_guard at.Query.guard)
    queries;
  (!clocks, !vars)

let test_demo_semantic_passes () =
  let { E.net; queries; _ } = E.load_file (demo_path ()) in
  let observed_clocks, observed_vars = observed_of_queries queries in
  let findings = Lint.run ~observed_clocks ~observed_vars net in
  (* one dead edge (m == 3 at L1) plus the location it orphans *)
  Alcotest.(check int)
    "dead-edge findings" 2
    (List.length (D.by_pass D.Dead_edge findings));
  if D.by_pass D.Trivial_guard findings = [] then
    Alcotest.fail "expected always-true-guard hints";
  (match D.by_pass D.Sync_write_race findings with
  | [ d ] ->
      Alcotest.(check string)
        "race severity" "warning"
        (D.severity_name d.D.severity)
  | l -> Alcotest.failf "expected one sync-write-race, got %d" (List.length l));
  (* every warning-or-worse finding comes from a semantic pass: the
     syntactic linter alone accepts this model *)
  List.iter
    (fun (d : D.t) ->
      if
        D.compare_severity d.D.severity D.Warning >= 0
        && not (List.mem d.D.pass [ D.Dead_edge; D.Trivial_guard; D.Sync_write_race ])
      then Alcotest.failf "unexpected syntactic warning: %s" (D.pass_name d.D.pass))
    findings

let test_demo_intervals () =
  let { E.net; _ } = E.load_file (demo_path ()) in
  let fa = Flow.analyze net in
  let var name =
    let names = net.Network.var_names in
    let rec go i = if names.(i) = name then i else go (i + 1) in
    go 0
  in
  let m = var "m" and v = var "v" in
  Alcotest.(check bool) "L2 flow-unreachable" false (Flow.reachable fa 0 2);
  (match Flow.env_at fa 0 1 with
  | Some env -> Alcotest.(check (pair int int)) "m at A.L1" (1, 1) env.(m)
  | None -> Alcotest.fail "A.L1 should be reachable");
  let g = Flow.global_ranges fa in
  Alcotest.(check (pair int int)) "global m" (0, 1) g.(m);
  Alcotest.(check (pair int int)) "global v" (0, 2) g.(v);
  (* v is written on both sides of the handshake: unstable everywhere *)
  Alcotest.(check bool) "v unstable for A" false (Flow.stable_var fa 0 v);
  Alcotest.(check bool) "m stable for A" true (Flow.stable_var fa 0 m)

(* ------------------------------------------------------------------ *)
(* Interval soundness: on random networks, every variable valuation a
   concrete random walk visits lies inside the inferred per-location
   interval of every component and inside the global ranges.  Updates
   are self-clamping (Ite-guarded), so walks never trip the runtime
   range check and the declared range stays deliberately loose — the
   analysis has something real to tighten.                             *)
(* ------------------------------------------------------------------ *)

let build_random ~n_locs ~hi ~init ~sync ~edges =
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  let v = Network.Builder.int_var b "v" ~lo:0 ~hi ~init in
  let c =
    if sync then Some (Network.Builder.channel b "c" Channel.Binary ~urgent:false)
    else None
  in
  let bump =
    Update.set v Expr.(Ite (Cmp (Lt, Var v, Int hi), Add (Var v, Int 1), Var v))
  in
  let drop =
    Update.set v Expr.(Ite (Cmp (Gt, Var v, Int 0), Sub (Var v, Int 1), Var v))
  in
  let guard_of gk k =
    match gk with
    | 0 -> Guard.tt
    | 1 -> Guard.data Expr.(Cmp (Le, Var v, Int k))
    | 2 -> Guard.data Expr.(Cmp (Ge, Var v, Int k))
    | _ -> Guard.clock_ge x 1
  in
  let update_of uk k =
    match uk with
    | 0 -> Update.none
    | 1 -> Update.set v (Expr.Int k)
    | 2 -> bump
    | _ -> drop
  in
  let a_edges =
    List.map
      (fun ((src, dst), (gk, (uk, k))) ->
        edge src dst ~guard:(guard_of gk k) ~update:(update_of uk k))
      edges
    @
    match c with
    | Some ch ->
        [
          edge 0 0 ~sync:(Automaton.Send ch) ~guard:(Guard.clock_ge x 1)
            ~update:(Update.reset x);
        ]
    | None -> []
  in
  let locations = List.init n_locs (fun i -> loc (Printf.sprintf "L%d" i)) in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"A" ~locations ~edges:a_edges ~initial:0);
  (match c with
  | Some ch ->
      Network.Builder.add_automaton b
        (Automaton.make ~name:"B" ~locations:[ loc "M" ]
           ~edges:[ edge 0 0 ~sync:(Automaton.Recv ch) ~update:bump ]
           ~initial:0)
  | None -> ());
  Network.Builder.build b

let gen_random_flow_net =
  let open QCheck2.Gen in
  let* n_locs = int_range 2 4 in
  let* hi = int_range 1 6 in
  let* init = int_range 0 hi in
  let* sync = bool in
  let* edges =
    list_size (int_range 3 6)
      (pair
         (pair (int_range 0 (n_locs - 1)) (int_range 0 (n_locs - 1)))
         (pair (int_range 0 3) (pair (int_range 0 3) (int_range 0 hi))))
  in
  return (build_random ~n_locs ~hi ~init ~sync ~edges)

let interval_sound net seed =
  let fa = Flow.analyze net in
  let g = Flow.global_ranges fa in
  let within ranges (env : int array) =
    let ok = ref true in
    Array.iteri
      (fun v x ->
        let lo, hi = ranges.(v) in
        if x < lo || x > hi then ok := false)
      env;
    !ok
  in
  let walk = Concrete.random_walk net ~seed ~steps:50 ~max_step_delay:4 in
  List.for_all
    (fun (_, (c : Concrete.t)) ->
      within g c.Concrete.env
      && Array.for_all (fun i -> i)
           (Array.init
              (Array.length net.Network.automata)
              (fun i ->
                Flow.reachable fa i c.Concrete.locs.(i)
                &&
                match Flow.env_at fa i c.Concrete.locs.(i) with
                | None -> false
                | Some env -> within env c.Concrete.env)))
    walk

let test_intervals_sound =
  QCheck2.Test.make ~count:80
    ~name:"concrete valuations lie inside inferred intervals"
    QCheck2.Gen.(pair gen_random_flow_net (int_range 1 10_000))
    (fun (net, seed) -> interval_sound net seed)

(* ------------------------------------------------------------------ *)
(* Flow-refined LU differential: turning the refinement off must change
   no reachability verdict and no WCRT value — only state counts.      *)
(* ------------------------------------------------------------------ *)

let verdict = function
  | Reach.Reachable _ -> "reachable"
  | Reach.Unreachable _ -> "unreachable"
  | Reach.Budget_exhausted _ -> "budget"

let sup_fingerprint ?(initial_ceiling = 64) ?(max_ceiling = 256) ~bounds net
    ~at ~clock =
  match Wcrt.sup ~bounds ~initial_ceiling ~max_ceiling net ~at ~clock with
  | Wcrt.Sup { value; kind; _ } ->
      Printf.sprintf "sup %d %s" value
        (match kind with
        | Wcrt.Attained -> "attained"
        | Wcrt.Approached -> "approached")
  | Wcrt.Goal_unreachable _ -> "unreachable"
  | Wcrt.Sup_budget_exhausted _ -> "budget"
  | Wcrt.Sup_unbounded _ -> "unbounded"

let check_net_bounds_agree name net =
  let n_clocks = Array.length net.Network.clock_names in
  Array.iter
    (fun (a : Automaton.t) ->
      Array.iter
        (fun (l : Automaton.location) ->
          let at =
            Query.at net ~comp:a.Automaton.name ~loc:l.Automaton.loc_name
          in
          for x = 1 to n_clocks - 1 do
            let off = sup_fingerprint ~bounds:Reach.Static net ~at ~clock:x in
            let on = sup_fingerprint ~bounds:Reach.Flow net ~at ~clock:x in
            Alcotest.(check string)
              (Printf.sprintf "%s: sup %s at %s.%s" name
                 net.Network.clock_names.(x) a.Automaton.name
                 l.Automaton.loc_name)
              off on
          done)
        a.Automaton.locations)
    net.Network.automata

let test_bounds_agree_on_models () =
  List.iter
    (fun (name, net) -> check_net_bounds_agree name net)
    [
      ("two-phase", (let net, _, _ = Models.two_phase () in net));
      ("urgent-gate", fst (Models.urgent_gate ()));
      ("committed-gate", fst (Models.committed_gate ()));
      ("handshake", fst (Models.handshake ()));
      ("broadcast", Models.broadcast_pair ());
    ]

let model_path name =
  let candidates =
    [ "../examples/models/" ^ name; "examples/models/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "%s not found" name

let test_bounds_agree_on_examples () =
  List.iter
    (fun file ->
      let { E.net; queries; _ } = E.load_file (model_path file) in
      List.iteri
        (fun i q ->
          match q with
          | E.Reach_q q ->
              let off = verdict (Reach.reach ~bounds:Reach.Static net q) in
              let on = verdict (Reach.reach ~bounds:Reach.Flow net q) in
              Alcotest.(check string)
                (Printf.sprintf "%s query %d" file i)
                off on
          | E.Sup_q { clock; at } ->
              let off = sup_fingerprint ~bounds:Reach.Static net ~at ~clock in
              let on = sup_fingerprint ~bounds:Reach.Flow net ~at ~clock in
              Alcotest.(check string)
                (Printf.sprintf "%s sup query %d" file i)
                off on
          | E.Deadlock_q -> ())
        queries)
    [ "fischer.ta"; "train_gate.ta"; "two_phase.ta" ]

(* Refined bounds may only tighten, and complete explorations never
   grow: on random networks the flow run explores at most as many
   states as the static run, with both complete.                       *)
let test_bounds_never_hurt =
  QCheck2.Test.make ~count:40
    ~name:"flow-refined bounds never explore more states"
    gen_random_flow_net
    (fun net ->
      (* explored counts are only comparable on the sequential engine:
         pin domains so TAMC_DOMAINS cannot make them schedule-dependent *)
      let count bounds =
        match
          Reach.explore ~bounds ~budget:(Reach.states 200_000) ~domains:1 net
            ~on_store:(fun _ -> ())
        with
        | `Complete s -> Some s.Reach.explored
        | `Budget_exhausted _ -> None
      in
      match (count Reach.Flow, count Reach.Static) with
      | Some flow, Some static -> flow <= static
      | _ -> false)

let () =
  Alcotest.run "flow"
    [
      ( "semantic-lint",
        [
          Alcotest.test_case "demo model fires the semantic passes" `Quick
            test_demo_semantic_passes;
          Alcotest.test_case "demo model intervals" `Quick test_demo_intervals;
        ] );
      ( "soundness",
        [ QCheck_alcotest.to_alcotest test_intervals_sound ] );
      ( "bounds-differential",
        [
          Alcotest.test_case "wcrt agrees on model zoo" `Quick
            test_bounds_agree_on_models;
          Alcotest.test_case "verdicts agree on examples" `Quick
            test_bounds_agree_on_examples;
          QCheck_alcotest.to_alcotest test_bounds_never_hurt;
        ] );
    ]
