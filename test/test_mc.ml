(* Tests for the model checker: reachability verdicts, search orders,
   traces and the WCRT drivers, all on models with known answers. *)

open Ita_ta
open Ita_mc
module Bound = Ita_dbm.Bound

let guard_y_ge y c = Guard.clock_ge y c

(* ------------------------------------------------------------------ *)
(* Reachability on the two-phase model: at L2, y in [5, 6]             *)
(* ------------------------------------------------------------------ *)

let reach_two_phase order c =
  let net, _x, y = Models.two_phase () in
  let q = Query.with_guard (Query.at net ~comp:"P" ~loc:"L2") (guard_y_ge y c) in
  Reach.reach ~order net q

let test_reachable order () =
  match reach_two_phase order 6 with
  | Reach.Reachable { witness; _ } ->
      Alcotest.(check int) "witness has 3 states" 3 (List.length witness)
  | _ -> Alcotest.fail "y >= 6 should be reachable at L2"

let test_unreachable order () =
  match reach_two_phase order 7 with
  | Reach.Unreachable _ -> ()
  | _ -> Alcotest.fail "y >= 7 should be unreachable at L2"

let test_goal_zone () =
  (* goal-zone exactness is an ExtraM property: Extra+LU may blur the
     upper bound of a clock above its (query-bumped) L constant, which
     is sound for verdicts but coarsens the returned zone *)
  let net, _x, y = Models.two_phase () in
  let q = Query.at net ~comp:"P" ~loc:"L2" in
  let q = Query.with_guard q (guard_y_ge y 5) in
  match Reach.reach ~abstraction:Reach.ExtraM net q with
  | Reach.Reachable { goal_zone; _ } ->
      Alcotest.(check bool) "goal zone bounded by 6" true
        (Bound.compare (Ita_dbm.Dbm.sup goal_zone y) (Bound.le 6) <= 0)
  | _ -> Alcotest.fail "should be reachable"

let test_goal_zone_lu () =
  (* under the default Extra+LU the verdict is identical and the goal
     zone still contains every exact goal valuation ([y] up to 6),
     though possibly more *)
  let net, _x, y = Models.two_phase () in
  let q = Query.at net ~comp:"P" ~loc:"L2" in
  let q = Query.with_guard q (guard_y_ge y 5) in
  match Reach.reach net q with
  | Reach.Reachable { goal_zone; _ } ->
      Alcotest.(check bool) "goal zone covers the exact sup" true
        (Bound.compare (Bound.le 6) (Ita_dbm.Dbm.sup goal_zone y) <= 0)
  | _ -> Alcotest.fail "should be reachable"

let test_budget () =
  let net, _x, y = Models.two_phase () in
  let q = Query.with_guard (Query.at net ~comp:"P" ~loc:"L2") (guard_y_ge y 7) in
  match Reach.reach ~budget:(Reach.states 1) net q with
  | Reach.Budget_exhausted _ -> ()
  | _ -> Alcotest.fail "budget of 1 state must be exhausted"

(* ------------------------------------------------------------------ *)
(* WCRT drivers                                                        *)
(* ------------------------------------------------------------------ *)

let test_sup_two_phase () =
  let net, _x, y = Models.two_phase () in
  match Wcrt.sup net ~at:(Query.at net ~comp:"P" ~loc:"L2") ~clock:y with
  | Wcrt.Sup { value; kind; _ } ->
      Alcotest.(check int) "sup y = 6" 6 value;
      Alcotest.(check bool) "attained" true (kind = Wcrt.Attained)
  | _ -> Alcotest.fail "sup should be found"

let test_sup_unreachable_goal () =
  let net, _z = Models.handshake () in
  (* S.P1 is reachable, but let's query a location that is not: R.Q1
     with S.P1 never coexist *)
  let q =
    Query.conj (Query.at net ~comp:"S" ~loc:"P1") (Query.at net ~comp:"R" ~loc:"Q1")
  in
  let z = Network.clock_index net "z" in
  match Wcrt.sup net ~at:q ~clock:z with
  | Wcrt.Goal_unreachable _ -> ()
  | _ -> Alcotest.fail "P1 && Q1 should be unreachable"

let test_sup_needs_ceiling_growth () =
  (* with a tiny initial ceiling the driver must retry and still land
     on the exact answer *)
  let net, _x, y = Models.two_phase () in
  match
    Wcrt.sup ~initial_ceiling:2 net
      ~at:(Query.at net ~comp:"P" ~loc:"L2")
      ~clock:y
  with
  | Wcrt.Sup { value; _ } -> Alcotest.(check int) "sup y = 6" 6 value
  | _ -> Alcotest.fail "sup should be found"

let test_binary_search () =
  let net, _x, y = Models.two_phase () in
  let r =
    Wcrt.binary_search ~hi:8 net
      ~at:(Query.at net ~comp:"P" ~loc:"L2")
      ~clock:y
  in
  Alcotest.(check (option int)) "lower = 6" (Some 6) r.Wcrt.lower;
  Alcotest.(check (option int)) "upper = 7" (Some 7) r.Wcrt.upper

let test_binary_search_agrees_with_sup =
  QCheck2.Test.make ~count:20 ~name:"binary search = sup on random deadlines"
    QCheck2.Gen.(int_range 1 6)
    (fun ub ->
      (* vary the upper guard bound of the first edge: sup becomes
         ub + 4 *)
      let b = Network.Builder.create () in
      let x = Network.Builder.clock b "x" in
      let y = Network.Builder.clock b "y" in
      let p =
        Automaton.make ~name:"P"
          ~locations:
            [
              Models.loc "L0";
              Models.loc "L1" ~invariant:(Guard.clock_le x 4);
              Models.loc "L2" ~kind:Automaton.Committed;
            ]
          ~edges:
            [
              Models.edge 0 1 ~guard:(Guard.clock_le x ub)
                ~update:(Update.reset x);
              Models.edge 1 2 ~guard:(Guard.clock_eq x 4);
            ]
          ~initial:0
      in
      Network.Builder.add_automaton b p;
      let net = Network.Builder.build b in
      let at = Query.at net ~comp:"P" ~loc:"L2" in
      let sup_val =
        match Wcrt.sup net ~at ~clock:y with
        | Wcrt.Sup { value; _ } -> value
        | _ -> -1
      in
      let bs = Wcrt.binary_search ~hi:4 net ~at ~clock:y in
      sup_val = ub + 4 && bs.Wcrt.lower = Some sup_val)

let test_probe_lower () =
  let net, _x, y = Models.two_phase () in
  let r =
    Wcrt.probe_lower ~order:Reach.Dfs net
      ~at:(Query.at net ~comp:"P" ~loc:"L2")
      ~clock:y ~budget:Reach.no_budget ~start:1 ~step:1
  in
  Alcotest.(check (option int)) "probe climbs to 6" (Some 6) r.Wcrt.lower

(* ------------------------------------------------------------------ *)
(* WCRT drivers under exhausted budgets                                *)
(* ------------------------------------------------------------------ *)

let test_binary_search_budget_starved () =
  (* one state is never enough even to decide c = 0: the search must
     stop immediately and admit it knows nothing *)
  let net, _x, y = Models.two_phase () in
  let r =
    Wcrt.binary_search ~budget:(Reach.states 1) ~hi:8 net
      ~at:(Query.at net ~comp:"P" ~loc:"L2")
      ~clock:y
  in
  Alcotest.(check (option int)) "no lower bound" None r.Wcrt.lower;
  Alcotest.(check (option int)) "no upper bound" None r.Wcrt.upper;
  Alcotest.(check int) "stopped after the first probe" 1 r.Wcrt.runs

let test_binary_search_budget_sound =
  QCheck2.Test.make ~count:30 ~name:"binary search sound under any budget"
    QCheck2.Gen.(int_range 1 8)
    (fun b ->
      (* whatever partial bounds survive the budget must bracket the
         true sup (6, first unreachable 7) *)
      let net, _x, y = Models.two_phase () in
      let r =
        Wcrt.binary_search ~budget:(Reach.states b) ~hi:8 net
          ~at:(Query.at net ~comp:"P" ~loc:"L2")
          ~clock:y
      in
      let lower_ok =
        match r.Wcrt.lower with None -> true | Some l -> l >= 0 && l <= 6
      in
      let upper_ok =
        match r.Wcrt.upper with None -> true | Some u -> u >= 7
      in
      let ordered =
        match (r.Wcrt.lower, r.Wcrt.upper) with
        | Some l, Some u -> l < u
        | _ -> true
      in
      r.Wcrt.runs >= 1 && lower_ok && upper_ok && ordered)

let test_sup_budget_exhausted () =
  let net, _x, y = Models.two_phase () in
  match
    Wcrt.sup ~budget:(Reach.states 1) net
      ~at:(Query.at net ~comp:"P" ~loc:"L2")
      ~clock:y
  with
  | Wcrt.Sup_budget_exhausted { observed; _ } -> (
      (* anything observed before the cut-off is a sound lower bound *)
      match observed with
      | None -> ()
      | Some v ->
          Alcotest.(check bool) "observed <= true sup" true (v <= 6))
  | _ -> Alcotest.fail "a one-state budget must exhaust"

let test_probe_lower_monotone =
  QCheck2.Test.make ~count:50 ~name:"probe_lower climbs to start + k*step"
    QCheck2.Gen.(pair (int_range 0 6) (int_range 1 4))
    (fun (start, step) ->
      (* goal && y >= c is reachable exactly for c <= 6, so the climb
         must end on the largest start + i*step below that line *)
      let net, _x, y = Models.two_phase () in
      let r =
        Wcrt.probe_lower ~order:Reach.Dfs net
          ~at:(Query.at net ~comp:"P" ~loc:"L2")
          ~clock:y ~budget:Reach.no_budget ~start ~step
      in
      r.Wcrt.lower = Some (start + (step * ((6 - start) / step))))

(* ------------------------------------------------------------------ *)
(* Search orders agree on verdicts                                     *)
(* ------------------------------------------------------------------ *)

let test_orders_agree () =
  let orders = [ Reach.Bfs; Reach.Dfs; Reach.Random_dfs 42; Reach.Random_dfs 7 ] in
  List.iter
    (fun order ->
      (match reach_two_phase order 6 with
      | Reach.Reachable _ -> ()
      | _ -> Alcotest.fail "reachable verdict must not depend on order");
      match reach_two_phase order 7 with
      | Reach.Unreachable _ -> ()
      | _ -> Alcotest.fail "unreachable verdict must not depend on order")
    orders

(* ------------------------------------------------------------------ *)
(* Urgency and committed end-to-end                                    *)
(* ------------------------------------------------------------------ *)

let test_urgent_reach () =
  let net, z = Models.urgent_gate () in
  (* while U has not yet taken its urgent edge, time may not pass
     beyond the moment the flag was raised (z == 5) *)
  let pending =
    Query.conj (Query.at net ~comp:"U" ~loc:"L0") (Query.at net ~comp:"T" ~loc:"M1")
  in
  (match Reach.reach net (Query.with_guard pending (Guard.clock_ge z 5)) with
  | Reach.Reachable _ -> ()
  | _ -> Alcotest.fail "flag raised at z == 5 must be reachable");
  match Reach.reach net (Query.with_guard pending (Guard.clock_gt z 5)) with
  | Reach.Unreachable _ -> ()
  | _ -> Alcotest.fail "urgency must pin z to exactly 5"

let test_committed_reach () =
  let net, w = Models.committed_gate () in
  let at_k1 = Query.at net ~comp:"A" ~loc:"K1" in
  (* K1 is entered at w == 3 and is committed, so time never passes
     there *)
  (match Reach.reach net (Query.with_guard at_k1 (Guard.clock_eq w 3)) with
  | Reach.Reachable _ -> ()
  | _ -> Alcotest.fail "A.K1 at w == 3 must be reachable");
  (match Reach.reach net (Query.with_guard at_k1 (Guard.clock_gt w 3)) with
  | Reach.Unreachable _ -> ()
  | _ -> Alcotest.fail "committed location must stop time");
  (* B may move before A commits, so B.N1 && A.K1 is reachable in that
     order — the blocking of B *while* A is committed is covered by the
     successor-level test in test_ta *)
  let q =
    Query.conj (Query.at net ~comp:"B" ~loc:"N1") (Query.at net ~comp:"A" ~loc:"K1")
  in
  match Reach.reach net q with
  | Reach.Reachable _ -> ()
  | _ -> Alcotest.fail "B-then-A interleaving must exist"

(* ------------------------------------------------------------------ *)
(* Witness sanity: consecutive states connected, first is initial      *)
(* ------------------------------------------------------------------ *)

let test_witness_structure () =
  let net, _x, y = Models.two_phase () in
  let q = Query.with_guard (Query.at net ~comp:"P" ~loc:"L2") (guard_y_ge y 6) in
  match Reach.reach net q with
  | Reach.Reachable { witness; _ } -> (
      match witness with
      | { via = None; state = s0 } :: rest ->
          Alcotest.(check int) "starts at L0" 0 s0.Semantics.locs.(0);
          List.iter
            (fun { Reach.via; _ } ->
              if via = None then Alcotest.fail "only the root lacks a label")
            rest
      | _ -> Alcotest.fail "witness must start with the initial state")
  | _ -> Alcotest.fail "should be reachable"

(* ------------------------------------------------------------------ *)
(* Concrete-vs-symbolic cross-validation: every state visited by a
   random concrete execution must be covered by some explored zone
   with the same discrete part.  This exercises the entire abstraction
   stack: delay closure, urgency, committedness, broadcast semantics,
   extrapolation and active-clock reduction.                           *)
(* ------------------------------------------------------------------ *)

(* A concrete valuation as a one-point zone, for simulation-aware
   coverage checks. *)
let point_zone v =
  let z = Ita_dbm.Dbm.zero (Array.length v - 1) in
  for i = 1 to Array.length v - 1 do
    Ita_dbm.Dbm.reset z i v.(i)
  done;
  z

let symbolic_cover net =
  let store = Hashtbl.create 256 in
  (match
     Reach.explore net ~on_store:(fun (cfg : Semantics.config) ->
         let key = (cfg.Semantics.state.Semantics.locs, cfg.Semantics.state.Semantics.env) in
         let zones = try Hashtbl.find store key with Not_found -> [] in
         Hashtbl.replace store key (cfg.Semantics.zone :: zones))
   with
  | `Complete _ -> ()
  | `Budget_exhausted _ -> Alcotest.fail "exploration should complete");
  (* Under [LuSim] (e.g. the TAMC_ABSTRACTION=lusim CI leg) stored
     zones are exact and pruned up to a◁LU simulation, so a concrete
     state need only be covered up to a◁LU of some stored zone — the
     point-zone le_lu test, over the same flow-refined bounds the
     engine subsumed with.  Under the extrapolations, stored zones are
     supersets of the exact ones and plain membership must hold. *)
  let lusim_net =
    match Reach.default_abstraction () with
    | Reach.LuSim ->
        Some (Ita_analysis.Flow.(refine_lu (analyze net) net))
    | Reach.ExtraM | Reach.ExtraLU -> None
  in
  fun (c : Concrete.t) ->
    (* the engine pins dead clocks at 0; normalize the concrete
       valuation the same way before testing membership *)
    let n = Array.length net.Network.clock_names in
    let n_comp = Array.length net.Network.automata in
    let clocks = Array.copy c.Concrete.clocks in
    for x = 1 to n - 1 do
      let live =
        net.Network.pinned.(x)
        || Array.exists
             (fun i -> net.Network.active.(i).(c.Concrete.locs.(i)).(x))
             (Array.init n_comp (fun i -> i))
      in
      if not live then clocks.(x) <- 0
    done;
    match Hashtbl.find_opt store (c.Concrete.locs, c.Concrete.env) with
    | None -> false
    | Some zones -> (
        List.exists (fun z -> Ita_dbm.Dbm.satisfies z clocks) zones
        ||
        match lusim_net with
        | None -> false
        | Some rnet ->
            let st =
              { Semantics.locs = c.Concrete.locs; env = c.Concrete.env }
            in
            let l, u = Semantics.lu_bounds rnet st in
            let pt = point_zone clocks in
            List.exists (fun z -> Ita_dbm.Dbm.le_lu l u pt z) zones)

let walk_covered net seed =
  let covered = symbolic_cover net in
  let walk = Concrete.random_walk net ~seed ~steps:40 ~max_step_delay:7 in
  List.for_all (fun (_, c) -> covered c) walk

let prop_concrete_covered name net =
  QCheck2.Test.make ~count:25 ~name:("concrete runs covered: " ^ name)
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed -> walk_covered net seed)

let generated_mini () =
  (* a small generated architecture network, so the whole Gen pipeline
     is cross-validated too *)
  let open Ita_core in
  let cpu =
    Resource.processor "CPU" ~mips:1.0 ~policy:Resource.Priority_preemptive
  in
  let hi =
    Scenario.make ~name:"Hi"
      ~trigger:(Eventmodel.Periodic { period = 10; offset = 0 })
      ~band:Scenario.High
      ~steps:[ Scenario.Compute { op = "h"; resource = "CPU"; instructions = 2.0 } ]
      ~requirements:[]
  in
  let lo =
    Scenario.make ~name:"Lo"
      ~trigger:(Eventmodel.Sporadic { min_separation = 25 })
      ~band:Scenario.Low
      ~steps:[ Scenario.Compute { op = "l"; resource = "CPU"; instructions = 8.0 } ]
      ~requirements:[]
  in
  let sys =
    Sysmodel.make ~name:"mini" ~resources:[ cpu ] ~scenarios:[ hi; lo ]
      ~queue_bound:3 ()
  in
  (Gen.generate sys).Gen.net

let coverage_suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_concrete_covered "two-phase" (let net, _, _ = Models.two_phase () in net);
      prop_concrete_covered "urgent-gate" (fst (Models.urgent_gate ()));
      prop_concrete_covered "handshake" (fst (Models.handshake ()));
      prop_concrete_covered "broadcast" (Models.broadcast_pair ());
      prop_concrete_covered "generated-mini" (generated_mini ());
    ]

(* ------------------------------------------------------------------ *)
(* ExtraM vs Extra+LU differential testing: the coarser abstraction
   must never change a reachability verdict or a WCRT value — ExtraM
   is the oracle ExtraLU is checked against.                           *)
(* ------------------------------------------------------------------ *)

let verdict = function
  | Reach.Reachable _ -> "reachable"
  | Reach.Unreachable _ -> "unreachable"
  | Reach.Budget_exhausted _ -> "budget"

let sup_fingerprint ?(initial_ceiling = 64) ?(max_ceiling = 256) net ~at ~clock
    abstraction =
  (* tiny ceilings: an unbounded clock would otherwise enumerate one
     zone per time unit up to the ceiling before extrapolation merges
     them, and the fingerprint only has to be identical across
     abstractions — model constants here are all well below 64 *)
  match Wcrt.sup ~abstraction ~initial_ceiling ~max_ceiling net ~at ~clock with
  | Wcrt.Sup { value; kind; _ } ->
      Printf.sprintf "sup %d %s" value
        (match kind with Wcrt.Attained -> "attained" | Wcrt.Approached -> "approached")
  | Wcrt.Goal_unreachable _ -> "unreachable"
  | Wcrt.Sup_budget_exhausted _ -> "budget"
  | Wcrt.Sup_unbounded _ -> "unbounded"

(* Every location of every component, every clock: all three
   abstractions must report the same sup outcome. *)
let check_net_wcrt_agrees name net =
  let n_clocks = Array.length net.Network.clock_names in
  Array.iteri
    (fun _ (a : Automaton.t) ->
      Array.iter
        (fun (l : Automaton.location) ->
          let at = Query.at net ~comp:a.Automaton.name ~loc:l.Automaton.loc_name in
          for x = 1 to n_clocks - 1 do
            let m = sup_fingerprint net ~at ~clock:x Reach.ExtraM in
            let lu = sup_fingerprint net ~at ~clock:x Reach.ExtraLU in
            let ls = sup_fingerprint net ~at ~clock:x Reach.LuSim in
            Alcotest.(check string)
              (Printf.sprintf "%s: sup %s at %s.%s" name
                 net.Network.clock_names.(x) a.Automaton.name
                 l.Automaton.loc_name)
              m lu;
            Alcotest.(check string)
              (Printf.sprintf "%s: lusim sup %s at %s.%s" name
                 net.Network.clock_names.(x) a.Automaton.name
                 l.Automaton.loc_name)
              lu ls
          done)
        a.Automaton.locations)
    net.Network.automata

let test_wcrt_agrees_on_models () =
  let nets =
    [
      ("two-phase", (let net, _, _ = Models.two_phase () in net));
      ("urgent-gate", fst (Models.urgent_gate ()));
      ("committed-gate", fst (Models.committed_gate ()));
      ("handshake", fst (Models.handshake ()));
      ("broadcast", Models.broadcast_pair ());
    ]
  in
  List.iter (fun (name, net) -> check_net_wcrt_agrees name net) nets

let test_verdicts_agree_on_examples () =
  (* run every query shipped with the example models under both
     abstractions *)
  let module E = Ita_tafmt.Elaborate in
  let model_path name =
    let candidates =
      [ "../examples/models/" ^ name; "examples/models/" ^ name ]
    in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.failf "%s not found" name
  in
  List.iter
    (fun file ->
      let { E.net; queries; _ } = E.load_file (model_path file) in
      List.iteri
        (fun i q ->
          match q with
          | E.Reach_q q ->
              let m = verdict (Reach.reach ~abstraction:Reach.ExtraM net q) in
              let lu = verdict (Reach.reach ~abstraction:Reach.ExtraLU net q) in
              let ls = verdict (Reach.reach ~abstraction:Reach.LuSim net q) in
              Alcotest.(check string)
                (Printf.sprintf "%s query %d" file i)
                m lu;
              Alcotest.(check string)
                (Printf.sprintf "%s query %d (lusim)" file i)
                lu ls
          | E.Sup_q { clock; at } ->
              let m = sup_fingerprint net ~at ~clock Reach.ExtraM in
              let lu = sup_fingerprint net ~at ~clock Reach.ExtraLU in
              let ls = sup_fingerprint net ~at ~clock Reach.LuSim in
              Alcotest.(check string)
                (Printf.sprintf "%s sup query %d" file i)
                m lu;
              Alcotest.(check string)
                (Printf.sprintf "%s sup query %d (lusim)" file i)
                lu ls
          | E.Deadlock_q -> ())
        queries)
    [ "fischer.ta"; "train_gate.ta"; "two_phase.ta" ]

(* Random diagonal-free automata: two clocks, a handful of locations,
   random guards / invariants / resets.  Upper-bound invariants only,
   so the initial valuation always satisfies them.                     *)
let gen_random_net =
  let open QCheck2.Gen in
  let gen_atom clock =
    let* rel = oneofl [ Guard.Lt; Guard.Le; Guard.Ge; Guard.Gt; Guard.Eq ] in
    let* c = int_range 0 8 in
    return (Guard.clock_rel clock rel (Expr.Int c))
  in
  let gen_guard =
    let* use_x = bool and* use_y = bool in
    let* gx = gen_atom 1 and* gy = gen_atom 2 in
    return
      (Guard.conj
         (if use_x then gx else Guard.tt)
         (if use_y then gy else Guard.tt))
  in
  let* nl = int_range 2 4 in
  let* invariants =
    list_repeat nl
      (let* inv = bool in
       let* c = int_range 1 8 in
       return (if inv then Guard.clock_le 1 c else Guard.tt))
  in
  let* n_edges = int_range nl (2 * nl) in
  let* edges =
    list_repeat n_edges
      (let* src = int_range 0 (nl - 1) and* dst = int_range 0 (nl - 1) in
       let* guard = gen_guard in
       let* reset_x = bool and* reset_y = bool in
       let update =
         List.concat
           [
             (if reset_x then Update.reset 1 else []);
             (if reset_y then Update.reset 2 else []);
           ]
       in
       return (Models.edge src dst ~guard ~update))
  in
  let b = Network.Builder.create () in
  let _x = Network.Builder.clock b "x" in
  let _y = Network.Builder.clock b "y" in
  let locations =
    List.mapi
      (fun i inv -> Models.loc (Printf.sprintf "L%d" i) ~invariant:inv)
      invariants
  in
  Network.Builder.add_automaton b
    (Automaton.make ~name:"P" ~locations ~edges ~initial:0);
  return (Network.Builder.build b, nl)

let test_random_nets_agree =
  QCheck2.Test.make ~count:60
    ~name:"ExtraM, Extra+LU and LuSim verdicts agree on random automata"
    QCheck2.Gen.(pair gen_random_net (int_range 0 10))
    (fun ((net, nl), c) ->
      (* reachability of every location with y >= c, plus the sup of
         both clocks at every location, must be abstraction-invariant *)
      let ok = ref true in
      for l = 0 to nl - 1 do
        let at = Query.at net ~comp:"P" ~loc:(Printf.sprintf "L%d" l) in
        let q = Query.with_guard at (Guard.clock_ge 2 c) in
        let m = verdict (Reach.reach ~abstraction:Reach.ExtraM net q) in
        let lu = verdict (Reach.reach ~abstraction:Reach.ExtraLU net q) in
        let ls = verdict (Reach.reach ~abstraction:Reach.LuSim net q) in
        if m <> lu || lu <> ls then ok := false;
        for x = 1 to 2 do
          let fp = sup_fingerprint net ~at ~clock:x in
          let lu = fp Reach.ExtraLU in
          if fp Reach.ExtraM <> lu || fp Reach.LuSim <> lu then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Satellite: the operator knobs — pure parsers, and the TAMC_*
   environment fallbacks.  Unset, blank and invalid values must all
   resolve to the same built-in default (invalid ones additionally
   warn on stderr; the fallback itself is what these tests pin).       *)

let with_env var value f =
  let saved = Sys.getenv_opt var in
  Unix.putenv var value;
  (* [env_knob] treats a blank value exactly like an unset one, so
     restoring to "" is a faithful undo even when the variable was
     absent before (putenv cannot unset). *)
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv var (match saved with Some s -> s | Option.None -> ""))
    f

let test_parse_domains () =
  let ok input expected =
    Alcotest.(check bool)
      (Printf.sprintf "parse_domains %S" input)
      true
      (Reach.parse_domains input = Ok expected)
  and err input =
    Alcotest.(check bool)
      (Printf.sprintf "parse_domains %S rejected" input)
      true
      (match Reach.parse_domains input with Error _ -> true | Ok _ -> false)
  in
  ok "1" 1;
  ok " 8 " 8;
  ok "16" 16;
  err "0";
  err "-3";
  err "two";
  err ""

let test_parse_abstraction () =
  let ok input expected =
    Alcotest.(check bool)
      (Printf.sprintf "parse_abstraction %S" input)
      true
      (Reach.parse_abstraction input = Ok expected)
  and err input =
    Alcotest.(check bool)
      (Printf.sprintf "parse_abstraction %S rejected" input)
      true
      (match Reach.parse_abstraction input with
      | Error _ -> true
      | Ok _ -> false)
  in
  ok "extram" Reach.ExtraM;
  ok "ExtraLU" Reach.ExtraLU;
  ok " lusim " Reach.LuSim;
  err "extra+lu";
  err "m";
  err ""

let test_parse_slicing () =
  let ok input expected =
    Alcotest.(check bool)
      (Printf.sprintf "parse_slicing %S" input)
      true
      (Reach.parse_slicing input = Ok expected)
  and err input =
    Alcotest.(check bool)
      (Printf.sprintf "parse_slicing %S rejected" input)
      true
      (match Reach.parse_slicing input with Error _ -> true | Ok _ -> false)
  in
  ok "off" Reach.Off;
  ok "COI" Reach.Coi;
  ok " CoiMerge " Reach.CoiMerge;
  err "cone";
  err "on";
  err ""

let test_default_domains_env () =
  let fallback = max 1 (Domain.recommended_domain_count ()) in
  with_env "TAMC_DOMAINS" "3" (fun () ->
      Alcotest.(check int) "honored" 3 (Reach.default_domains ()));
  List.iter
    (fun bad ->
      with_env "TAMC_DOMAINS" bad (fun () ->
          Alcotest.(check int)
            (Printf.sprintf "%S falls back like unset" bad)
            fallback
            (Reach.default_domains ())))
    [ ""; "  "; "0"; "-2"; "bogus" ]

let test_default_abstraction_env () =
  with_env "TAMC_ABSTRACTION" "lusim" (fun () ->
      Alcotest.(check bool) "honored" true
        (Reach.default_abstraction () = Reach.LuSim));
  List.iter
    (fun bad ->
      with_env "TAMC_ABSTRACTION" bad (fun () ->
          Alcotest.(check bool)
            (Printf.sprintf "%S falls back to extralu" bad)
            true
            (Reach.default_abstraction () = Reach.ExtraLU)))
    [ ""; "extra+lu"; "none" ]

let test_default_slicing_env () =
  with_env "TAMC_SLICING" "off" (fun () ->
      Alcotest.(check bool) "honored" true
        (Reach.default_slicing () = Reach.Off));
  List.iter
    (fun bad ->
      with_env "TAMC_SLICING" bad (fun () ->
          Alcotest.(check bool)
            (Printf.sprintf "%S falls back to coimerge" bad)
            true
            (Reach.default_slicing () = Reach.CoiMerge)))
    [ ""; "banana"; "merge" ]

let () =
  Alcotest.run "mc"
    [
      ( "knobs",
        [
          Alcotest.test_case "parse domains" `Quick test_parse_domains;
          Alcotest.test_case "parse abstraction" `Quick test_parse_abstraction;
          Alcotest.test_case "parse slicing" `Quick test_parse_slicing;
          Alcotest.test_case "TAMC_DOMAINS fallback" `Quick
            test_default_domains_env;
          Alcotest.test_case "TAMC_ABSTRACTION fallback" `Quick
            test_default_abstraction_env;
          Alcotest.test_case "TAMC_SLICING fallback" `Quick
            test_default_slicing_env;
        ] );
      ( "reach",
        [
          Alcotest.test_case "reachable (bfs)" `Quick (test_reachable Reach.Bfs);
          Alcotest.test_case "reachable (dfs)" `Quick (test_reachable Reach.Dfs);
          Alcotest.test_case "reachable (rdfs)" `Quick
            (test_reachable (Reach.Random_dfs 1));
          Alcotest.test_case "unreachable (bfs)" `Quick
            (test_unreachable Reach.Bfs);
          Alcotest.test_case "unreachable (dfs)" `Quick
            (test_unreachable Reach.Dfs);
          Alcotest.test_case "goal zone" `Quick test_goal_zone;
          Alcotest.test_case "goal zone (extralu)" `Quick test_goal_zone_lu;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "orders agree" `Quick test_orders_agree;
          Alcotest.test_case "witness structure" `Quick test_witness_structure;
        ] );
      ( "wcrt",
        [
          Alcotest.test_case "sup" `Quick test_sup_two_phase;
          Alcotest.test_case "sup unreachable goal" `Quick
            test_sup_unreachable_goal;
          Alcotest.test_case "sup ceiling growth" `Quick
            test_sup_needs_ceiling_growth;
          Alcotest.test_case "binary search" `Quick test_binary_search;
          QCheck_alcotest.to_alcotest test_binary_search_agrees_with_sup;
          Alcotest.test_case "probe lower" `Quick test_probe_lower;
          Alcotest.test_case "binary search starved" `Quick
            test_binary_search_budget_starved;
          QCheck_alcotest.to_alcotest test_binary_search_budget_sound;
          Alcotest.test_case "sup budget exhausted" `Quick
            test_sup_budget_exhausted;
          QCheck_alcotest.to_alcotest test_probe_lower_monotone;
        ] );
      ( "semantics-e2e",
        [
          Alcotest.test_case "urgent" `Quick test_urgent_reach;
          Alcotest.test_case "committed" `Quick test_committed_reach;
        ] );
      ("concrete-coverage", coverage_suite);
      ( "abstraction-differential",
        [
          Alcotest.test_case "wcrt agrees on test models" `Quick
            test_wcrt_agrees_on_models;
          Alcotest.test_case "verdicts agree on example files" `Quick
            test_verdicts_agree_on_examples;
          QCheck_alcotest.to_alcotest test_random_nets_agree;
        ] );
    ]
