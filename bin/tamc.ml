(* tamc: a small standalone model checker for .ta files — check the
   file's reach/sup queries or dump the parsed network. *)

open Cmdliner
module Reach = Ita_mc.Reach
module Wcrt = Ita_mc.Wcrt
module E = Ita_tafmt.Elaborate

let order_conv =
  let parse = function
    | "bfs" -> Ok Reach.Bfs
    | "dfs" -> Ok Reach.Dfs
    | "rdfs" -> Ok (Reach.Random_dfs 1)
    | s -> Error (`Msg (Printf.sprintf "unknown order %S" s))
  in
  let print ppf o =
    Format.pp_print_string ppf
      (match o with
      | Reach.Bfs -> "bfs"
      | Reach.Dfs -> "dfs"
      | Reach.Random_dfs _ -> "rdfs")
  in
  Arg.conv (parse, print)

let abstraction_conv =
  let parse = function
    | "extram" -> Ok Reach.ExtraM
    | "extralu" -> Ok Reach.ExtraLU
    | "lusim" -> Ok Reach.LuSim
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown abstraction %S (extram, extralu or lusim)"
               s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Reach.ExtraM -> "extram"
      | Reach.ExtraLU -> "extralu"
      | Reach.LuSim -> "lusim")
  in
  Arg.conv (parse, print)

let slicing_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Reach.parse_slicing s) in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | Reach.Off -> "off"
      | Reach.Coi -> "coi"
      | Reach.CoiMerge -> "coimerge")
  in
  Arg.conv (parse, print)

let slicing_arg =
  Arg.(
    value
    & opt slicing_conv (Reach.default_slicing ())
    & info [ "slicing" ]
        ~doc:
          "query-directed model reduction before exploring: coimerge \
           (cone-of-influence slice plus quasi-equal clock merging), coi \
           (slice only) or off (oracle); default: the TAMC_SLICING \
           environment variable, else coimerge")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ta")

let load ?validate path =
  try Ok (E.load_file ?validate path) with
  | E.Elab_error m -> Error (Printf.sprintf "%s: %s" path m)
  | Ita_tafmt.Parser.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)
  | Ita_tafmt.Lexer.Lex_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)
  | Ita_ta.Network.Invalid_model m ->
      Error (Printf.sprintf "%s: invalid model: %s" path m)

let run_check path order budget trace domains abstraction slicing =
  match load path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; queries; _ } ->
      if queries = [] then begin
        print_endline "no queries in file";
        0
      end
      else begin
        let budget =
          match budget with
          | None -> Reach.no_budget
          | Some n -> Reach.states n
        in
        let failed = ref 0 in
        List.iteri
          (fun i q ->
            match q with
            | E.Deadlock_q -> (
                Format.printf "query %d: deadlock ... @?" i;
                let dead = ref None in
                let result =
                  Reach.explore ~order ~budget ~abstraction ?domains net
                    ~on_store:(fun cfg ->
                      if
                        !dead = None
                        && Ita_ta.Semantics.successors net cfg = []
                      then dead := Some cfg.Ita_ta.Semantics.state)
                in
                match (!dead, result) with
                | Some st, _ ->
                    Format.printf "DEADLOCK at ";
                    Ita_ta.Semantics.pp_state net Format.std_formatter st;
                    Format.printf "@."
                | None, `Complete stats ->
                    Format.printf "deadlock-free (%a)@." Reach.pp_stats stats
                | None, `Budget_exhausted stats ->
                    incr failed;
                    Format.printf "UNKNOWN: budget exhausted (%a)@."
                      Reach.pp_stats stats)
            | E.Reach_q q -> (
                Format.printf "query %d: reach %a ... @?" i
                  (Ita_mc.Query.pp net) q;
                match
                  Reach.reach ~order ~budget ~abstraction ?domains ~slicing net
                    q
                with
                | Reach.Reachable { witness; stats; _ } ->
                    Format.printf "REACHABLE (%a)@." Reach.pp_stats stats;
                    if trace then Reach.pp_witness net Format.std_formatter witness
                | Reach.Unreachable stats ->
                    Format.printf "unreachable (%a)@." Reach.pp_stats stats
                | Reach.Budget_exhausted stats ->
                    incr failed;
                    Format.printf "UNKNOWN: budget exhausted (%a)@."
                      Reach.pp_stats stats)
            | E.Sup_q { clock; at } -> (
                Format.printf "query %d: sup %s at %a ... @?" i
                  net.Ita_ta.Network.clock_names.(clock)
                  (Ita_mc.Query.pp net) at;
                match
                  Wcrt.sup ~order ~abstraction ?domains ~slicing net ~at ~clock
                with
                | Wcrt.Sup { value; kind; stats } ->
                    Format.printf "%d%s (%a)@." value
                      (match kind with
                      | Wcrt.Attained -> ""
                      | Wcrt.Approached -> " (approached)")
                      Reach.pp_stats stats
                | Wcrt.Goal_unreachable stats ->
                    Format.printf "location unreachable (%a)@." Reach.pp_stats
                      stats
                | Wcrt.Sup_unbounded { ceiling; stats } ->
                    Format.printf "unbounded (beyond %d; %a)@." ceiling
                      Reach.pp_stats stats
                | Wcrt.Sup_budget_exhausted { observed; stats } ->
                    incr failed;
                    Format.printf "UNKNOWN: budget exhausted (saw %s; %a)@."
                      (match observed with
                      | Some v -> string_of_int v
                      | None -> "nothing")
                      Reach.pp_stats stats))
          queries;
        if !failed > 0 then 2 else 0
      end

let check_cmd =
  let budget =
    Arg.(value & opt (some int) None & info [ "budget-states" ] ~doc:"state cap")
  in
  let order =
    Arg.(value & opt order_conv Reach.Bfs & info [ "order" ] ~doc:"bfs/dfs/rdfs")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"print witness traces")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:
            "worker domains for the exploration (default: the \
             TAMC_DOMAINS environment variable, else the machine's core \
             count); 1 selects the sequential engine")
  in
  let abstraction =
    Arg.(
      value
      & opt abstraction_conv (Reach.default_abstraction ())
      & info [ "abstraction" ]
          ~doc:
            "zone abstraction: extralu, lusim (store unextrapolated \
             zones, subsume with the a<|LU simulation — coarsest) or \
             extram (oracle); default: the TAMC_ABSTRACTION environment \
             variable, else extralu")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"run the queries of a .ta file")
    Term.(
      const run_check $ file_arg $ order $ budget $ trace $ domains
      $ abstraction $ slicing_arg)

let run_show path =
  match load path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; _ } ->
      Ita_ta.Pretty.pp_network Format.std_formatter net;
      Format.print_newline ();
      0

let show_cmd =
  Cmd.v
    (Cmd.info "show" ~doc:"print the parsed network")
    Term.(const run_show $ file_arg)

(* lint: run the static analyzer on the file's network, mapping each
   finding back to its declaration's source position.  The file is
   elaborated without the builder's urgent/broadcast guard checks so
   those turn into diagnostics instead of a hard failure. *)

module D = Ita_analysis.Diagnostic
module Lint = Ita_analysis.Lint

let severity_conv =
  let parse = function
    | "hint" -> Ok D.Hint
    | "info" -> Ok D.Info
    | "warning" -> Ok D.Warning
    | "error" -> Ok D.Error
    | s -> Error (`Msg (Printf.sprintf "unknown severity %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (D.severity_name s) in
  Arg.conv (parse, print)

(* Clocks and variables the file's queries mention are observed from
   outside the model and must not count as unused/dead. *)
let observed_of_queries queries =
  let comps = ref [] and clocks = ref [] and vars = ref [] in
  let add_guard (g : Ita_ta.Guard.t) =
    List.iter
      (fun (a : Ita_ta.Guard.atom) ->
        clocks := a.Ita_ta.Guard.clock :: !clocks;
        vars := Ita_ta.Expr.ivars a.Ita_ta.Guard.bound @ !vars)
      g.Ita_ta.Guard.clocks;
    vars := Ita_ta.Expr.bvars g.Ita_ta.Guard.data @ !vars
  in
  let add_comps (q : Ita_mc.Query.t) =
    comps := List.map fst q.Ita_mc.Query.comp_locs @ !comps
  in
  List.iter
    (function
      | E.Deadlock_q -> ()
      | E.Reach_q q ->
          add_comps q;
          add_guard q.Ita_mc.Query.guard
      | E.Sup_q { clock; at } ->
          clocks := clock :: !clocks;
          add_comps at;
          add_guard at.Ita_mc.Query.guard)
    queries;
  (List.sort_uniq compare !comps, !clocks, !vars)

(* map diagnostic sites to source positions through the elaborator's
   source map; shared by lint (file:line:col prefixes, deterministic
   ordering) and flow (per-location annotations) *)
let site_pos (srcmap : E.srcmap) = function
  | D.Automaton_site i -> Some srcmap.E.proc_pos.(i)
  | D.Location_site { comp; loc } -> Some srcmap.E.loc_pos.(comp).(loc)
  | D.Edge_site { comp; edge } -> Some srcmap.E.edge_pos.(comp).(edge)
  | D.Network_site | D.Clock_site _ | D.Var_site _ | D.Channel_site _ -> None

let run_lint path fail_on json =
  match load ~validate:false path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; queries; srcmap } ->
      let observed_comps, observed_clocks, observed_vars =
        observed_of_queries queries
      in
      let findings =
        Lint.run ~observed_comps ~observed_clocks ~observed_vars net
      in
      let pos_str { Ita_tafmt.Ast.line; col } =
        Printf.sprintf "%s:%d:%d" path line col
      in
      let resolve site = Option.map pos_str (site_pos srcmap site) in
      let pos site =
        Option.map
          (fun { Ita_tafmt.Ast.line; col } -> (line, col))
          (site_pos srcmap site)
      in
      if json then print_string (Lint.to_json ~resolve ~pos net findings)
      else Lint.pp_report ~resolve ~pos net Format.std_formatter findings;
      if
        List.exists
          (fun (d : D.t) -> D.compare_severity d.D.severity fail_on >= 0)
          findings
      then 1
      else 0

let lint_cmd =
  let fail_on =
    Arg.(
      value
      & opt severity_conv D.Error
      & info [ "fail-on" ]
          ~doc:"lowest severity that makes the exit code nonzero \
                (hint/info/warning/error)")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"machine-readable report on stdout instead of the human format")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"static well-formedness analysis of a .ta file's network")
    Term.(const run_lint $ file_arg $ fail_on $ json)

(* flow: print the abstract-interpretation results — per-location
   variable intervals (with source positions) and the inferred global
   ranges. *)

let run_flow path =
  match load path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; srcmap; _ } ->
      let fa = Ita_analysis.Flow.analyze net in
      let pos_str { Ita_tafmt.Ast.line; col } =
        Printf.sprintf "%s:%d:%d" path line col
      in
      let resolve = function
        | `Automaton i -> Some (pos_str srcmap.E.proc_pos.(i))
        | `Location (i, l) -> Some (pos_str srcmap.E.loc_pos.(i).(l))
      in
      Ita_analysis.Flow.pp ~resolve fa Format.std_formatter ();
      0

let flow_cmd =
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "abstract-interpretation dataflow analysis of a .ta file: \
          per-location variable intervals and global ranges")
    Term.(const run_flow $ file_arg)

(* slice: report what the query-directed reduction removes or merges,
   each removal mapped back to its declaration's source position. *)

let run_slice path slicing =
  match load path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; queries; srcmap } ->
      let pos_str { Ita_tafmt.Ast.line; col } =
        Printf.sprintf "%s:%d:%d" path line col
      in
      let resolve site = Option.map pos_str (site_pos srcmap site) in
      if queries = [] then begin
        print_endline "no queries in file";
        0
      end
      else begin
        List.iteri
          (fun i q ->
            match q with
            | E.Deadlock_q ->
                Format.printf
                  "query %d: deadlock — whole-network property, not sliced@." i
            | E.Reach_q q ->
                Format.printf "query %d: reach %a@." i (Ita_mc.Query.pp net) q;
                let sl, _, _ = Reach.slice_query slicing net q in
                Ita_analysis.Slice.pp_report ~resolve Format.std_formatter sl
            | E.Sup_q { clock; at } ->
                Format.printf "query %d: sup %s at %a@." i
                  net.Ita_ta.Network.clock_names.(clock)
                  (Ita_mc.Query.pp net) at;
                let sl, _, _ =
                  Reach.slice_query slicing ~extra_clocks:[ clock ] net at
                in
                Ita_analysis.Slice.pp_report ~resolve Format.std_formatter sl)
          queries;
        0
      end

let slice_cmd =
  Cmd.v
    (Cmd.info "slice"
       ~doc:
         "report the query-directed model reduction: components, clocks \
          and variables outside each query's cone of influence, \
          quasi-equal clock merges and dead edges, with source positions")
    Term.(const run_slice $ file_arg $ slicing_arg)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "tamc" ~doc:"timed-automata model checker for .ta files")
          [ check_cmd; show_cmd; slice_cmd; lint_cmd; flow_cmd ]))
