(* tamc: a small standalone model checker for .ta files — check the
   file's reach/sup queries (optionally emitting verdict certificates),
   certify a previously emitted certificate with the independent
   checker, or dump the parsed network. *)

open Cmdliner
module Reach = Ita_mc.Reach
module Wcrt = Ita_mc.Wcrt
module Cert = Ita_cert.Cert
module Cert_emit = Ita_mc.Cert_emit
module E = Ita_tafmt.Elaborate

let order_conv =
  let parse = function
    | "bfs" -> Ok Reach.Bfs
    | "dfs" -> Ok Reach.Dfs
    | "rdfs" -> Ok (Reach.Random_dfs 1)
    | s -> Error (`Msg (Printf.sprintf "unknown order %S" s))
  in
  let print ppf o =
    Format.pp_print_string ppf
      (match o with
      | Reach.Bfs -> "bfs"
      | Reach.Dfs -> "dfs"
      | Reach.Random_dfs _ -> "rdfs")
  in
  Arg.conv (parse, print)

let abstraction_conv =
  let parse = function
    | "extram" -> Ok Reach.ExtraM
    | "extralu" -> Ok Reach.ExtraLU
    | "lusim" -> Ok Reach.LuSim
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown abstraction %S (extram, extralu or lusim)"
               s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Reach.ExtraM -> "extram"
      | Reach.ExtraLU -> "extralu"
      | Reach.LuSim -> "lusim")
  in
  Arg.conv (parse, print)

let slicing_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Reach.parse_slicing s) in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | Reach.Off -> "off"
      | Reach.Coi -> "coi"
      | Reach.CoiMerge -> "coimerge")
  in
  Arg.conv (parse, print)

let slicing_arg =
  Arg.(
    value
    & opt slicing_conv (Reach.default_slicing ())
    & info [ "slicing" ]
        ~doc:
          "query-directed model reduction before exploring: coimerge \
           (cone-of-influence slice plus quasi-equal clock merging), coi \
           (slice only) or off (oracle); default: the TAMC_SLICING \
           environment variable, else coimerge")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ta")

let load ?validate path =
  try Ok (E.load_file ?validate path) with
  | E.Elab_error m -> Error (Printf.sprintf "%s: %s" path m)
  | Ita_tafmt.Parser.Parse_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)
  | Ita_tafmt.Lexer.Lex_error { line; message } ->
      Error (Printf.sprintf "%s:%d: %s" path line message)
  | Ita_ta.Network.Invalid_model m ->
      Error (Printf.sprintf "%s: invalid model: %s" path m)

let run_check path order budget trace domains abstraction slicing cert_out =
  match load path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; queries; _ } ->
      if queries = [] then begin
        print_endline "no queries in file";
        0
      end
      else begin
        let budget =
          match budget with
          | None -> Reach.no_budget
          | Some n -> Reach.states n
        in
        let failed = ref 0 in
        (* per-query certificates, in file order; queries whose verdict
           cannot be certified (deadlock probes, exhausted budgets,
           unbounded sups) are skipped with a note.  TAMC_CERT
           additionally re-validates each certificate in process the
           moment it is emitted. *)
        let self_certify =
          match Sys.getenv_opt "TAMC_CERT" with
          | None -> false
          | Some s -> ( match String.trim s with "" | "0" -> false | _ -> true)
        in
        let want_cert = cert_out <> None || self_certify in
        let certs = ref [] in
        let certify ~goal (qc : Cert.query_cert) =
          certs := qc :: !certs;
          if self_certify then
            match Cert.check net ~goal qc with
            | Ok _ -> Format.printf "query %d: self-certified@." qc.Cert.index
            | Error f ->
                incr failed;
                Format.printf "query %d: certificate REJECTED [%s] %s@."
                  qc.Cert.index
                  (Cert.obligation_name f.Cert.obligation)
                  f.Cert.message
        in
        let skip_cert i what =
          if want_cert then
            Format.printf "query %d: note: %s, not certified@." i what
        in
        List.iteri
          (fun i q ->
            match q with
            | E.Deadlock_q -> (
                Format.printf "query %d: deadlock ... @?" i;
                let dead = ref None in
                let result =
                  Reach.explore ~order ~budget ~abstraction ?domains net
                    ~on_store:(fun cfg ->
                      if
                        !dead = None
                        && Ita_ta.Semantics.successors net cfg = []
                      then dead := Some cfg.Ita_ta.Semantics.state)
                in
                skip_cert i "deadlock queries have no certificate format";
                match (!dead, result) with
                | Some st, _ ->
                    Format.printf "DEADLOCK at ";
                    Ita_ta.Semantics.pp_state net Format.std_formatter st;
                    Format.printf "@."
                | None, `Complete stats ->
                    Format.printf "deadlock-free (%a)@." Reach.pp_stats stats
                | None, `Budget_exhausted stats ->
                    incr failed;
                    Format.printf "UNKNOWN: budget exhausted (%a)@."
                      Reach.pp_stats stats)
            | E.Reach_q q -> (
                Format.printf "query %d: reach %a ... @?" i
                  (Ita_mc.Query.pp net) q;
                let last_snap = ref None in
                let snap =
                  if want_cert then Some (fun s -> last_snap := Some s)
                  else None
                in
                match
                  Reach.reach ~order ~budget ~abstraction ?domains ~slicing
                    ?snap net q
                with
                | Reach.Reachable { witness; stats; _ } ->
                    Format.printf "REACHABLE (%a)@." Reach.pp_stats stats;
                    if trace then
                      Reach.pp_witness net Format.std_formatter witness;
                    if want_cert then
                      certify
                        ~goal:(Cert_emit.goal_of_query q)
                        (Cert_emit.of_witness ~index:i
                           (List.filter_map
                              (fun (s : Reach.step) -> s.Reach.via)
                              witness))
                | Reach.Unreachable stats -> (
                    Format.printf "unreachable (%a)@." Reach.pp_stats stats;
                    match !last_snap with
                    | Some s ->
                        certify
                          ~goal:(Cert_emit.goal_of_query q)
                          (Cert_emit.of_snapshot ~index:i
                             ~verdict:Cert.Unreachable s)
                    | None -> ())
                | Reach.Budget_exhausted stats ->
                    incr failed;
                    skip_cert i "no verdict";
                    Format.printf "UNKNOWN: budget exhausted (%a)@."
                      Reach.pp_stats stats)
            | E.Sup_q { clock; at } -> (
                Format.printf "query %d: sup %s at %a ... @?" i
                  net.Ita_ta.Network.clock_names.(clock)
                  (Ita_mc.Query.pp net) at;
                let last_snap = ref None in
                let snap =
                  if want_cert then Some (fun s -> last_snap := Some s)
                  else None
                in
                match
                  Wcrt.sup ~order ~abstraction ?domains ~slicing ?snap net ~at
                    ~clock
                with
                | Wcrt.Sup { value; kind; stats } -> (
                    Format.printf "%d%s (%a)@." value
                      (match kind with
                      | Wcrt.Attained -> ""
                      | Wcrt.Approached -> " (approached)")
                      Reach.pp_stats stats;
                    match !last_snap with
                    | Some s ->
                        let kind =
                          match kind with
                          | Wcrt.Attained -> Cert.Attained
                          | Wcrt.Approached -> Cert.Approached
                        in
                        certify
                          ~goal:(Cert_emit.goal_of_query at)
                          (Cert_emit.of_snapshot ~index:i
                             ~verdict:(Cert.Sup { clock; value; kind })
                             s)
                    | None -> if want_cert then skip_cert i "no snapshot surfaced")
                | Wcrt.Goal_unreachable stats ->
                    skip_cert i "goal unreachable: sup has no value to certify";
                    Format.printf "location unreachable (%a)@." Reach.pp_stats
                      stats
                | Wcrt.Sup_unbounded { ceiling; stats } ->
                    incr failed;
                    skip_cert i "no bounded verdict";
                    Format.printf "unbounded (beyond %d; %a)@." ceiling
                      Reach.pp_stats stats
                | Wcrt.Sup_budget_exhausted { observed; stats } ->
                    incr failed;
                    skip_cert i "no verdict";
                    Format.printf "UNKNOWN: budget exhausted (saw %s; %a)@."
                      (match observed with
                      | Some v -> string_of_int v
                      | None -> "nothing")
                      Reach.pp_stats stats))
          queries;
        (match cert_out with
        | None -> ()
        | Some path ->
            let t = Cert_emit.make net (List.rev !certs) in
            Cert.save path t;
            Format.printf "wrote %d certificate(s) to %s@."
              (List.length !certs) path);
        if !failed > 0 then 2 else 0
      end

let check_cmd =
  let budget =
    Arg.(value & opt (some int) None & info [ "budget-states" ] ~doc:"state cap")
  in
  let order =
    Arg.(value & opt order_conv Reach.Bfs & info [ "order" ] ~doc:"bfs/dfs/rdfs")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"print witness traces")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:
            "worker domains for the exploration (default: the \
             TAMC_DOMAINS environment variable, else the machine's core \
             count); 1 selects the sequential engine")
  in
  let abstraction =
    Arg.(
      value
      & opt abstraction_conv (Reach.default_abstraction ())
      & info [ "abstraction" ]
          ~doc:
            "zone abstraction: extralu, lusim (store unextrapolated \
             zones, subsume with the a<|LU simulation — coarsest) or \
             extram (oracle); default: the TAMC_ABSTRACTION environment \
             variable, else extralu")
  in
  let cert_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert" ]
          ~doc:
            "write an independently checkable certificate for every \
             certified verdict to $(docv); verify it with $(b,tamc \
             certify)"
          ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"run the queries of a .ta file")
    Term.(
      const run_check $ file_arg $ order $ budget $ trace $ domains
      $ abstraction $ slicing_arg $ cert_out)

(* certify: re-elaborate the model from source and verify a previously
   emitted certificate with the independent checker ([Ita_cert]).
   Exit codes: 0 = everything certified; 1 = I/O or usage errors; 3-9 =
   the first failed obligation ([Cert.exit_code]): format 3,
   fingerprint 4, mask 5, initiation 6, consecution 7, judgment 8,
   witness 9. *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let run_certify path cert_path json =
  match load path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; queries; _ } -> (
      match Cert.load cert_path with
      | Error f ->
          if json then
            Printf.printf
              "{\"certificate\": %s, \"fingerprint-ok\": false, \
               \"results\": [{\"status\": \"failed\", \"obligation\": %s, \
               \"detail\": %s}]}\n"
              (json_string cert_path)
              (json_string (Cert.obligation_name f.Cert.obligation))
              (json_string f.Cert.message)
          else
            Printf.printf "FAILED [%s] %s\n"
              (Cert.obligation_name f.Cert.obligation)
              f.Cert.message;
          Cert.exit_code f.Cert.obligation
      | Ok t ->
          let fp_ok = Cert.fingerprint net = t.Cert.fingerprint in
          let queries = Array.of_list queries in
          let results =
            if not fp_ok then []
            else
              List.map
                (fun (qc : Cert.query_cert) ->
                  let i = qc.Cert.index in
                  let mismatch m =
                    Error { Cert.obligation = Cert.Format; message = m }
                  in
                  let r =
                    if i < 0 || i >= Array.length queries then
                      mismatch
                        (Printf.sprintf "the model has no query %d" i)
                    else
                      match (queries.(i), qc.Cert.verdict) with
                      | E.Reach_q q, (Cert.Unreachable | Cert.Reachable _) ->
                          Cert.check net ~goal:(Cert_emit.goal_of_query q) qc
                      | E.Sup_q { clock; at }, Cert.Sup { clock = c; _ }
                        when c = clock ->
                          Cert.check net ~goal:(Cert_emit.goal_of_query at) qc
                      | E.Deadlock_q, _ ->
                          mismatch "deadlock queries have no certificates"
                      | (E.Reach_q _ | E.Sup_q _), _ ->
                          mismatch
                            "the certified verdict does not match the query's \
                             kind"
                  in
                  (i, r))
                t.Cert.queries
          in
          if json then begin
            let result_json (i, r) =
              match r with
              | Ok (st : Cert.stats) ->
                  Printf.sprintf
                    "{\"query\": %d, \"status\": \"ok\", \"states\": %d, \
                     \"zones\": %d}"
                    i st.Cert.checked_states st.Cert.checked_zones
              | Error (f : Cert.failure) ->
                  Printf.sprintf
                    "{\"query\": %d, \"status\": \"failed\", \"obligation\": \
                     %s, \"detail\": %s}"
                    i
                    (json_string (Cert.obligation_name f.Cert.obligation))
                    (json_string f.Cert.message)
            in
            Printf.printf
              "{\"certificate\": %s, \"fingerprint-ok\": %b, \"results\": \
               [%s]}\n"
              (json_string cert_path) fp_ok
              (String.concat ", " (List.map result_json results))
          end
          else begin
            if not fp_ok then
              Printf.printf
                "FAILED [fingerprint] the certificate was produced for a \
                 different model\n"
            else
              List.iter
                (fun (i, r) ->
                  match r with
                  | Ok (st : Cert.stats) ->
                      if st.Cert.checked_states = 0 then
                        Printf.printf "query %d: certified (witness replay)\n"
                          i
                      else
                        Printf.printf
                          "query %d: certified (%d states, %d successor \
                           checks)\n"
                          i st.Cert.checked_states st.Cert.checked_zones
                  | Error (f : Cert.failure) ->
                      Printf.printf "query %d: FAILED [%s] %s\n" i
                        (Cert.obligation_name f.Cert.obligation)
                        f.Cert.message)
                results
          end;
          if not fp_ok then Cert.exit_code Cert.Fingerprint
          else
            let first_failure =
              List.find_map
                (fun (_, r) ->
                  match r with
                  | Ok _ -> None
                  | Error (f : Cert.failure) -> Some f.Cert.obligation)
                results
            in
            (match first_failure with
            | Some o -> Cert.exit_code o
            | None -> 0))

let certify_cmd =
  let cert_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "cert" ] ~doc:"the certificate file to verify" ~docv:"FILE")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"machine-readable verdict on stdout instead of the human format")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "verify a certificate emitted by $(b,tamc check --cert) with the \
          independent checker: the model is re-elaborated from source and \
          every stored invariant is re-validated with naive reference \
          semantics, sharing no exploration code with the engine")
    Term.(const run_certify $ file_arg $ cert_arg $ json)

let run_show path =
  match load path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; _ } ->
      Ita_ta.Pretty.pp_network Format.std_formatter net;
      Format.print_newline ();
      0

let show_cmd =
  Cmd.v
    (Cmd.info "show" ~doc:"print the parsed network")
    Term.(const run_show $ file_arg)

(* lint: run the static analyzer on the file's network, mapping each
   finding back to its declaration's source position.  The file is
   elaborated without the builder's urgent/broadcast guard checks so
   those turn into diagnostics instead of a hard failure. *)

module D = Ita_analysis.Diagnostic
module Lint = Ita_analysis.Lint

let severity_conv =
  let parse = function
    | "hint" -> Ok D.Hint
    | "info" -> Ok D.Info
    | "warning" -> Ok D.Warning
    | "error" -> Ok D.Error
    | s -> Error (`Msg (Printf.sprintf "unknown severity %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (D.severity_name s) in
  Arg.conv (parse, print)

(* Clocks and variables the file's queries mention are observed from
   outside the model and must not count as unused/dead. *)
let observed_of_queries queries =
  let comps = ref [] and clocks = ref [] and vars = ref [] in
  let add_guard (g : Ita_ta.Guard.t) =
    List.iter
      (fun (a : Ita_ta.Guard.atom) ->
        clocks := a.Ita_ta.Guard.clock :: !clocks;
        vars := Ita_ta.Expr.ivars a.Ita_ta.Guard.bound @ !vars)
      g.Ita_ta.Guard.clocks;
    vars := Ita_ta.Expr.bvars g.Ita_ta.Guard.data @ !vars
  in
  let add_comps (q : Ita_mc.Query.t) =
    comps := List.map fst q.Ita_mc.Query.comp_locs @ !comps
  in
  List.iter
    (function
      | E.Deadlock_q -> ()
      | E.Reach_q q ->
          add_comps q;
          add_guard q.Ita_mc.Query.guard
      | E.Sup_q { clock; at } ->
          clocks := clock :: !clocks;
          add_comps at;
          add_guard at.Ita_mc.Query.guard)
    queries;
  (List.sort_uniq compare !comps, !clocks, !vars)

(* map diagnostic sites to source positions through the elaborator's
   source map; shared by lint (file:line:col prefixes, deterministic
   ordering) and flow (per-location annotations) *)
let site_pos (srcmap : E.srcmap) = function
  | D.Automaton_site i -> Some srcmap.E.proc_pos.(i)
  | D.Location_site { comp; loc } -> Some srcmap.E.loc_pos.(comp).(loc)
  | D.Edge_site { comp; edge } -> Some srcmap.E.edge_pos.(comp).(edge)
  | D.Network_site | D.Clock_site _ | D.Var_site _ | D.Channel_site _ -> None

let run_lint path fail_on json =
  match load ~validate:false path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; queries; srcmap } ->
      let observed_comps, observed_clocks, observed_vars =
        observed_of_queries queries
      in
      let findings =
        Lint.run ~observed_comps ~observed_clocks ~observed_vars net
      in
      let pos_str { Ita_tafmt.Ast.line; col } =
        Printf.sprintf "%s:%d:%d" path line col
      in
      let resolve site = Option.map pos_str (site_pos srcmap site) in
      let pos site =
        Option.map
          (fun { Ita_tafmt.Ast.line; col } -> (line, col))
          (site_pos srcmap site)
      in
      if json then print_string (Lint.to_json ~resolve ~pos net findings)
      else Lint.pp_report ~resolve ~pos net Format.std_formatter findings;
      if
        List.exists
          (fun (d : D.t) -> D.compare_severity d.D.severity fail_on >= 0)
          findings
      then 1
      else 0

let lint_cmd =
  let fail_on =
    Arg.(
      value
      & opt severity_conv D.Error
      & info [ "fail-on" ]
          ~doc:"lowest severity that makes the exit code nonzero \
                (hint/info/warning/error)")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"machine-readable report on stdout instead of the human format")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"static well-formedness analysis of a .ta file's network")
    Term.(const run_lint $ file_arg $ fail_on $ json)

(* flow: print the abstract-interpretation results — per-location
   variable intervals (with source positions) and the inferred global
   ranges. *)

let run_flow path =
  match load path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; srcmap; _ } ->
      let fa = Ita_analysis.Flow.analyze net in
      let pos_str { Ita_tafmt.Ast.line; col } =
        Printf.sprintf "%s:%d:%d" path line col
      in
      let resolve = function
        | `Automaton i -> Some (pos_str srcmap.E.proc_pos.(i))
        | `Location (i, l) -> Some (pos_str srcmap.E.loc_pos.(i).(l))
      in
      Ita_analysis.Flow.pp ~resolve fa Format.std_formatter ();
      0

let flow_cmd =
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "abstract-interpretation dataflow analysis of a .ta file: \
          per-location variable intervals and global ranges")
    Term.(const run_flow $ file_arg)

(* slice: report what the query-directed reduction removes or merges,
   each removal mapped back to its declaration's source position. *)

let run_slice path slicing =
  match load path with
  | Error m ->
      prerr_endline m;
      1
  | Ok { E.net; queries; srcmap } ->
      let pos_str { Ita_tafmt.Ast.line; col } =
        Printf.sprintf "%s:%d:%d" path line col
      in
      let resolve site = Option.map pos_str (site_pos srcmap site) in
      if queries = [] then begin
        print_endline "no queries in file";
        0
      end
      else begin
        List.iteri
          (fun i q ->
            match q with
            | E.Deadlock_q ->
                Format.printf
                  "query %d: deadlock — whole-network property, not sliced@." i
            | E.Reach_q q ->
                Format.printf "query %d: reach %a@." i (Ita_mc.Query.pp net) q;
                let sl, _, _ = Reach.slice_query slicing net q in
                Ita_analysis.Slice.pp_report ~resolve Format.std_formatter sl
            | E.Sup_q { clock; at } ->
                Format.printf "query %d: sup %s at %a@." i
                  net.Ita_ta.Network.clock_names.(clock)
                  (Ita_mc.Query.pp net) at;
                let sl, _, _ =
                  Reach.slice_query slicing ~extra_clocks:[ clock ] net at
                in
                Ita_analysis.Slice.pp_report ~resolve Format.std_formatter sl)
          queries;
        0
      end

let slice_cmd =
  Cmd.v
    (Cmd.info "slice"
       ~doc:
         "report the query-directed model reduction: components, clocks \
          and variables outside each query's cone of influence, \
          quasi-equal clock merges and dead edges, with source positions")
    Term.(const run_slice $ file_arg $ slicing_arg)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "tamc" ~doc:"timed-automata model checker for .ta files")
          [ check_cmd; certify_cmd; show_cmd; slice_cmd; lint_cmd; flow_cmd ]))
