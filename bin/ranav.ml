(* ranav: analyze the in-car radio navigation case study with the four
   techniques of the paper — timed-automata model checking (this
   library's core), discrete-event simulation (POOSL stand-in),
   busy-window analysis (SymTA/S stand-in) and modular performance
   analysis (MPA stand-in). *)

open Cmdliner
open Ita_core
module R = Ita_casestudy.Radionav
module Reach = Ita_mc.Reach

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                             *)
(* ------------------------------------------------------------------ *)

let combo_conv =
  let parse = function
    | "cv" -> Ok R.Cv_tmc
    | "al" -> Ok R.Al_tmc
    | s -> Error (`Msg (Printf.sprintf "unknown combo %S (cv or al)" s))
  in
  let print ppf c =
    Format.pp_print_string ppf (match c with R.Cv_tmc -> "cv" | R.Al_tmc -> "al")
  in
  Arg.conv (parse, print)

let column_conv =
  let parse = function
    | "po" -> Ok R.Po
    | "pno" -> Ok R.Pno
    | "sp" -> Ok R.Sp
    | "pj" -> Ok R.Pj
    | "bur" -> Ok R.Bur
    | s -> Error (`Msg (Printf.sprintf "unknown column %S" s))
  in
  let print ppf c = Format.pp_print_string ppf (R.column_name c) in
  Arg.conv (parse, print)

let order_conv =
  let parse = function
    | "bfs" -> Ok Reach.Bfs
    | "dfs" -> Ok Reach.Dfs
    | "rdfs" -> Ok (Reach.Random_dfs 1)
    | s -> Error (`Msg (Printf.sprintf "unknown order %S" s))
  in
  let print ppf o =
    Format.pp_print_string ppf
      (match o with
      | Reach.Bfs -> "bfs"
      | Reach.Dfs -> "dfs"
      | Reach.Random_dfs _ -> "rdfs")
  in
  Arg.conv (parse, print)

let abstraction_conv =
  let parse = function
    | "extram" -> Ok Reach.ExtraM
    | "extralu" -> Ok Reach.ExtraLU
    | "lusim" -> Ok Reach.LuSim
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown abstraction %S (extram, extralu or lusim)"
               s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Reach.ExtraM -> "extram"
      | Reach.ExtraLU -> "extralu"
      | Reach.LuSim -> "lusim")
  in
  Arg.conv (parse, print)

let abstraction_arg =
  Arg.(
    value
    & opt abstraction_conv (Reach.default_abstraction ())
    & info [ "abstraction" ]
        ~doc:
          "zone abstraction: extralu (default), lusim (store \
           unextrapolated zones, subsume with the a<|LU simulation — \
           coarsest) or extram (oracle)")

let bounds_conv =
  let parse = function
    | "flow" -> Ok Reach.Flow
    | "static" -> Ok Reach.Static
    | s -> Error (`Msg (Printf.sprintf "unknown bounds %S (flow or static)" s))
  in
  let print ppf b =
    Format.pp_print_string ppf
      (match b with Reach.Flow -> "flow" | Reach.Static -> "static")
  in
  Arg.conv (parse, print)

let bounds_arg =
  Arg.(
    value
    & opt bounds_conv Reach.Flow
    & info [ "bounds" ]
        ~doc:
          "extrapolation-bound source: flow (default, refined by the \
           dataflow analysis) or static (the builder's one-shot scan)")

let slicing_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Reach.parse_slicing s) in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | Reach.Off -> "off"
      | Reach.Coi -> "coi"
      | Reach.CoiMerge -> "coimerge")
  in
  Arg.conv (parse, print)

let slicing_arg =
  Arg.(
    value
    & opt slicing_conv (Reach.default_slicing ())
    & info [ "slicing" ]
        ~doc:
          "query-directed model reduction before exploring: coimerge \
           (default; cone-of-influence slice plus quasi-equal clock \
           merging), coi (slice only) or off (oracle)")

(* the parser above cannot know the seed yet; thread it in here *)
let seeded_order order seed =
  match order with Reach.Random_dfs _ -> Reach.Random_dfs seed | o -> o

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~doc:"PRNG seed for the rdfs search order")

let combo_arg =
  Arg.(value & opt combo_conv R.Cv_tmc & info [ "combo" ] ~doc:"cv or al")

let column_arg =
  Arg.(value & opt column_conv R.Pno & info [ "column" ] ~doc:"po/pno/sp/pj/bur")

let order_arg =
  Arg.(value & opt order_conv Reach.Bfs & info [ "order" ] ~doc:"bfs/dfs/rdfs")

let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "budget-states" ] ~doc:"state budget for structured testing")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~doc:
          "worker domains for the zone exploration (default: the \
           TAMC_DOMAINS environment variable, else the machine's core \
           count); 1 selects the sequential engine")

(* ------------------------------------------------------------------ *)
(* wcrt                                                                *)
(* ------------------------------------------------------------------ *)

let run_wcrt combo column scenario requirement order seed budget probe_start_ms
    abstraction bounds domains slicing certify cert_out =
  let order = seeded_order order seed in
  let sys = R.system combo column in
  let method_ =
    match budget with
    | None -> Analyze.Exhaustive
    | Some states ->
        Analyze.Structured_testing
          {
            order = (match order with Reach.Bfs -> Reach.Dfs | o -> o);
            budget = Reach.states states;
            start = Units.us_of_ms probe_start_ms;
            step = Units.us_of_ms 10.0;
          }
  in
  let r =
    Analyze.wcrt ~method_ ~order ~abstraction ~bounds ?domains ~slicing
      ~certify ?cert_out sys ~scenario ~requirement
  in
  Format.printf "%s %s/%s [%s]: uncontended %a ms, wcrt %a ms (%d states, %.2fs)@."
    (match combo with R.Cv_tmc -> "cv" | R.Al_tmc -> "al")
    scenario requirement (R.column_name column) Units.pp_ms
    r.Analyze.uncontended_us Analyze.pp_outcome r.Analyze.outcome
    r.Analyze.explored r.Analyze.elapsed;
  (match cert_out with
  | Some path when r.Analyze.certified <> None || not certify ->
      Format.printf "wrote certificate to %s@." path
  | _ -> ());
  match r.Analyze.certified with
  | None ->
      if certify then
        Format.printf
          "not certified: no exact WCRT verdict to build an invariant from@."
  | Some (Ok st) ->
      Format.printf "certified (%d states, %d successor checks)@."
        st.Ita_cert.Cert.checked_states st.Ita_cert.Cert.checked_zones
  | Some (Error f) ->
      Format.printf "certificate REJECTED [%s] %s@."
        (Ita_cert.Cert.obligation_name f.Ita_cert.Cert.obligation)
        f.Ita_cert.Cert.message;
      exit (Ita_cert.Cert.exit_code f.Ita_cert.Cert.obligation)

let wcrt_cmd =
  let scenario =
    Arg.(value & opt string "HandleTMC" & info [ "scenario" ] ~doc:"scenario name")
  in
  let requirement =
    Arg.(value & opt string "TMC" & info [ "requirement" ] ~doc:"requirement name")
  in
  let probe_start =
    Arg.(
      value & opt float 100.0
      & info [ "probe-start-ms" ] ~doc:"first probed bound (ms)")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "re-validate the WCRT verdict in process with the independent \
             certificate checker (naive reference semantics, no shared \
             exploration code); a rejected certificate exits with the failed \
             obligation's code")
  in
  let cert_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert" ]
          ~doc:
            "also write the WCRT certificate to $(docv) for offline \
             validation"
          ~docv:"FILE")
  in
  Cmd.v (Cmd.info "wcrt" ~doc:"model-check one requirement")
    Term.(
      const run_wcrt $ combo_arg $ column_arg $ scenario $ requirement
      $ order_arg $ seed_arg $ budget_arg $ probe_start $ abstraction_arg
      $ bounds_arg $ domains_arg $ slicing_arg $ certify $ cert_out)

(* ------------------------------------------------------------------ *)
(* table1                                                              *)
(* ------------------------------------------------------------------ *)

(* The ChangeVolume-combination pno/sp cells and all pj/bur cells have
   state spaces that defeated UPPAAL too; like the paper we fall back
   to budgeted depth-first lower-bound probing for them unless the
   caller forces exhaustiveness. *)
let analyze_cell ?(force_exhaustive = false) (row : R.row) column ~budget =
  let sys = R.system row.R.combo column in
  let expensive =
    (row.R.combo = R.Cv_tmc && column <> R.Po)
    || ((column = R.Pj || column = R.Bur) && row.R.requirement = "TMC")
  in
  let probe states =
    let start =
      match (row.R.combo, row.R.requirement) with
      | R.Cv_tmc, "TMC" -> 350_000
      | _, "TMC" -> 172_106
      | _, _ -> 14_080
    in
    Analyze.Structured_testing
      {
        order = Reach.Dfs;
        budget = Reach.states states;
        start;
        step = 25_000;
      }
  in
  let method_ =
    match (budget, expensive && not force_exhaustive) with
    | Some states, _ -> probe states
    | None, true -> probe 60_000
    | None, false -> Analyze.Exhaustive
  in
  Analyze.wcrt ~method_ sys ~scenario:row.R.scenario
    ~requirement:row.R.requirement

let run_table1 columns budget rows_filter full =
  let columns =
    if columns = [] then [ R.Po; R.Pno; R.Sp; R.Pj; R.Bur ] else columns
  in
  Format.printf
    "Table 1: worst-case response times (ms), per environment model@.";
  Format.printf "%-32s" "Requirement";
  List.iter (fun c -> Format.printf " %12s" (R.column_name c)) columns;
  Format.printf "@.";
  List.iteri
    (fun i (row : R.row) ->
      if rows_filter = [] || List.mem i rows_filter then begin
        Format.printf "%-32s" row.R.label;
        List.iter
          (fun c ->
            let r = analyze_cell ~force_exhaustive:full row c ~budget in
            Format.printf " %12s"
              (Format.asprintf "%a" Analyze.pp_outcome r.Analyze.outcome))
          columns;
        Format.printf "@."
      end)
    R.table1_rows

let table1_cmd =
  let columns =
    Arg.(
      value
      & opt (list column_conv) []
      & info [ "columns" ] ~doc:"subset of po,pno,sp,pj,bur (default all)")
  in
  let rows =
    Arg.(
      value & opt (list int) []
      & info [ "rows" ] ~doc:"row indices to compute (default all)")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"exhaustive search even on the huge cells (hours)")
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"regenerate the paper's Table 1 (WCRT per event model)")
    Term.(const run_table1 $ columns $ budget_arg $ rows $ full)

(* ------------------------------------------------------------------ *)
(* table2                                                              *)
(* ------------------------------------------------------------------ *)

let run_table2 budget runs horizon_s =
  let horizon_us = int_of_float (horizon_s *. 1e6) in
  Format.printf
    "Table 2: WCRT (ms) - model checking vs simulation vs analytic bounds@.";
  Format.printf "%-32s %10s %10s %10s %10s %10s@." "Requirement" "mc(po)"
    "mc(pno)" "sim(pno)" "symta(pno)" "mpa(pno)";
  List.iter
    (fun (row : R.row) ->
      let cell col =
        let r = analyze_cell row col ~budget in
        Format.asprintf "%a" Analyze.pp_outcome r.Analyze.outcome
      in
      let mc_po = cell R.Po in
      let mc_pno = cell R.Pno in
      let sys_pno = R.system row.R.combo R.Pno in
      let sim =
        Format.asprintf "%a" Units.pp_ms
          (Ita_sim.Engine.max_response ~runs ~horizon_us sys_pno
             ~scenario:row.R.scenario ~requirement:row.R.requirement)
      in
      let analytic bound =
        match
          bound sys_pno ~scenario:row.R.scenario
            ~requirement:row.R.requirement
        with
        | Ok v -> Format.asprintf "%a" Units.pp_ms v
        | Error _ -> "diverged"
      in
      let symta =
        analytic (fun sys -> Ita_symta.Sysanalysis.wcrt_bound sys)
      in
      let mpa = analytic (fun sys -> Ita_rtc.Gpc.wcrt_bound sys) in
      Format.printf "%-32s %10s %10s %10s %10s %10s@." row.R.label mc_po
        mc_pno sim symta mpa)
    R.table1_rows

let table2_cmd =
  let runs =
    Arg.(value & opt int 10 & info [ "runs" ] ~doc:"simulation runs (seeds)")
  in
  let horizon =
    Arg.(
      value & opt float 60.0
      & info [ "horizon-s" ] ~doc:"simulated seconds per run")
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"regenerate the paper's Table 2 (tool comparison)")
    Term.(const run_table2 $ budget_arg $ runs $ horizon)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let run_simulate combo column runs horizon_s =
  let sys = R.system combo column in
  let horizon_us = int_of_float (horizon_s *. 1e6) in
  let table = Hashtbl.create 8 in
  for seed = 1 to runs do
    let stats = Ita_sim.Engine.run ~seed ~horizon_us sys in
    List.iter
      (fun (s : Ita_sim.Engine.sample) ->
        let key = (s.Ita_sim.Engine.scenario, s.Ita_sim.Engine.requirement) in
        let cur = try Hashtbl.find table key with Not_found -> (0, 0, 0) in
        let n, total, worst = cur in
        Hashtbl.replace table key
          ( n + 1,
            total + s.Ita_sim.Engine.response_us,
            max worst s.Ita_sim.Engine.response_us ))
      stats.Ita_sim.Engine.samples
  done;
  Format.printf "%d runs of %.1fs simulated time each@." runs horizon_s;
  Hashtbl.iter
    (fun (scen, req) (n, total, worst) ->
      Format.printf "%-14s %-4s: %7d samples, mean %a ms, max %a ms@." scen req
        n Units.pp_ms (total / max 1 n) Units.pp_ms worst)
    table

let simulate_cmd =
  let runs = Arg.(value & opt int 20 & info [ "runs" ] ~doc:"seeds") in
  let horizon =
    Arg.(value & opt float 60.0 & info [ "horizon-s" ] ~doc:"seconds per run")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"discrete-event simulation (POOSL baseline)")
    Term.(const run_simulate $ combo_arg $ column_arg $ runs $ horizon)

(* ------------------------------------------------------------------ *)
(* show-model                                                          *)
(* ------------------------------------------------------------------ *)

let run_show_model combo column measure =
  let sys = R.system combo column in
  let measure =
    Option.map
      (fun scen ->
        let s = Sysmodel.scenario sys scen in
        let req = List.hd s.Scenario.requirements in
        (scen, req))
      measure
  in
  let gen = Gen.generate ?measure sys in
  Ita_ta.Pretty.pp_network Format.std_formatter gen.Gen.net;
  Format.print_newline ()

let show_model_cmd =
  let measure =
    Arg.(
      value
      & opt (some string) None
      & info [ "measure" ] ~doc:"scenario whose measuring automaton to include")
  in
  Cmd.v
    (Cmd.info "show-model"
       ~doc:"print the generated timed-automata network (Figures 4-9)")
    Term.(const run_show_model $ combo_arg $ column_arg $ measure)

(* ------------------------------------------------------------------ *)
(* sweep (extension: the parameter sweep the paper says UPPAAL lacks)  *)
(* ------------------------------------------------------------------ *)

let run_sweep combo column kbps_list budget =
  Format.printf
    "HandleTMC WCRT (ms) vs bus bandwidth - all four techniques@.";
  Format.printf "%8s %12s %12s %12s %12s@." "kbps" "mc" "sim" "symta" "mpa";
  List.iter
    (fun kbps ->
      let base = R.system combo column in
      let resources =
        List.map
          (fun (r : Resource.t) ->
            if Resource.is_link r then
              Resource.link r.Resource.name ~kbps
                ~policy:r.Resource.policy
            else r)
          base.Sysmodel.resources
      in
      let sys = { base with Sysmodel.resources } in
      let mc =
        let method_ =
          match budget with
          | None -> Analyze.Exhaustive
          | Some states ->
              Analyze.Structured_testing
                {
                  order = Reach.Dfs;
                  budget = Reach.states states;
                  start = 100_000;
                  step = 25_000;
                }
        in
        let r =
          Analyze.wcrt ~method_ sys ~scenario:"HandleTMC" ~requirement:"TMC"
        in
        Format.asprintf "%a" Analyze.pp_outcome r.Analyze.outcome
      in
      let sim =
        Format.asprintf "%a" Units.pp_ms
          (Ita_sim.Engine.max_response ~runs:5 ~horizon_us:30_000_000 sys
             ~scenario:"HandleTMC" ~requirement:"TMC")
      in
      let bound_cell b =
        match b with
        | Ok v -> Format.asprintf "%a" Units.pp_ms v
        | Error _ -> "diverged"
      in
      let symta =
        bound_cell
          (Ita_symta.Sysanalysis.wcrt_bound sys ~scenario:"HandleTMC"
             ~requirement:"TMC")
      in
      let mpa =
        bound_cell
          (Ita_rtc.Gpc.wcrt_bound sys ~scenario:"HandleTMC" ~requirement:"TMC")
      in
      Format.printf "%8.0f %12s %12s %12s %12s@." kbps mc sim symta mpa)
    kbps_list

let sweep_cmd =
  let kbps =
    Arg.(
      value
      & opt (list float) [ 48.0; 60.0; 72.0; 96.0; 120.0 ]
      & info [ "kbps" ] ~doc:"bus bandwidths to sweep")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "bus-bandwidth design-space sweep with all four techniques (the \
          parameter sweep the paper notes UPPAAL could not do)")
    Term.(const run_sweep $ combo_arg $ column_arg $ kbps $ budget_arg)

(* ------------------------------------------------------------------ *)
(* explore: design-space exploration over architecture candidates      *)
(* ------------------------------------------------------------------ *)

let technique_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Ita_dse.Job.technique_of_string s)
  in
  let print ppf t = Format.pp_print_string ppf (Ita_dse.Job.technique_name t) in
  Arg.conv (parse, print)

let run_explore combo column scenario requirement techniques mmi_mips rad_mips
    nav_mips bus_kbps decode_on jobs timeout_s cache_dir no_cache mc_states
    mc_seconds mc_abstraction mc_bounds mc_domains mc_slicing mc_certify
    sim_runs sim_horizon_s inject_crash isolation =
  let open Ita_dse in
  let space =
    Spaces.radionav ~combo ~column ~mmi_mips ~rad_mips ~nav_mips ~bus_kbps
      ~decode_on ()
  in
  let cache = if no_cache then None else Some (Cache.create ~dir:cache_dir) in
  let budget =
    {
      Job.mc_states;
      mc_seconds;
      mc_abstraction;
      mc_bounds;
      mc_domains;
      mc_slicing;
      mc_certify;
      sim_runs;
      sim_horizon_us = int_of_float (sim_horizon_s *. 1e6);
    }
  in
  let report =
    Explore.run ?isolation ?jobs ?timeout_s ?cache ~budget ?inject_crash space
      ~techniques ~scenario ~requirement
  in
  Format.printf "%a@." Explore.pp report

let explore_cmd =
  let scenario =
    Arg.(
      value & opt string "HandleTMC"
      & info [ "scenario" ] ~doc:"measured scenario")
  in
  let requirement =
    Arg.(
      value & opt string "TMC" & info [ "requirement" ] ~doc:"measured requirement")
  in
  let techniques =
    Arg.(
      value
      & opt (list technique_conv)
          Ita_dse.Job.[ Mc; Sim; Symta; Rtc ]
      & info [ "techniques" ] ~doc:"subset of mc,sim,symta,rtc")
  in
  let levels name doc default =
    Arg.(value & opt (list float) default & info [ name ] ~doc)
  in
  let mmi = levels "mmi-mips" "MMI speed levels (empty: keep 22)" [] in
  let rad = levels "rad-mips" "RAD speed levels" [ 11.0; 22.0 ] in
  let nav = levels "nav-mips" "NAV speed levels (empty: keep 113)" [] in
  let bus = levels "bus-kbps" "bus baud levels" [ 48.0; 72.0; 96.0; 120.0 ] in
  let decode_on =
    Arg.(
      value & opt (list string) []
      & info [ "decode-on" ]
          ~doc:"also try mapping DecodeTMC onto these processors (e.g. NAV,RAD)")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~doc:"worker processes (default: core count)")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) (Some 600.0)
      & info [ "timeout-s" ] ~doc:"per-job wall-clock limit in seconds")
  in
  let cache_dir =
    Arg.(
      value & opt string "_dse_cache"
      & info [ "cache-dir" ] ~doc:"on-disk result cache directory")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"disable the result cache")
  in
  let mc_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "mc-states" ] ~doc:"state budget per model-checking job")
  in
  let mc_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "mc-seconds" ] ~doc:"time budget per model-checking job")
  in
  let mc_certify =
    Arg.(
      value & flag
      & info [ "mc-certify" ]
          ~doc:
            "re-validate every exact model-checking verdict with the \
             independent certificate checker before it enters the Pareto \
             front; rejected certificates demote the cell to failed")
  in
  let sim_runs =
    Arg.(value & opt int 5 & info [ "sim-runs" ] ~doc:"simulation seeds per job")
  in
  let sim_horizon =
    Arg.(
      value & opt float 30.0
      & info [ "sim-horizon-s" ] ~doc:"simulated seconds per simulation seed")
  in
  let inject_crash =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-crash" ]
          ~doc:"(fault injection) kill the worker of flat job $(docv)"
          ~docv:"N")
  in
  let mc_domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "mc-domains" ]
          ~doc:
            "worker domains inside each model-checking job (default: 1 \
             under --isolation domains, engine default otherwise)")
  in
  let isolation =
    let isolation_conv =
      let parse = function
        | "auto" -> Ok None
        | "fork" -> Ok (Some `Processes)
        | "domains" -> Ok (Some `Domains)
        | s ->
            Error (`Msg (Printf.sprintf "unknown isolation %S (auto/fork/domains)" s))
      in
      let print ppf = function
        | None -> Format.pp_print_string ppf "auto"
        | Some `Processes -> Format.pp_print_string ppf "fork"
        | Some `Domains -> Format.pp_print_string ppf "domains"
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value & opt isolation_conv None
      & info [ "isolation" ]
          ~doc:
            "job dispatch: fork (one child process per job; required for \
             --timeout-s and --inject-crash), domains (one shared domain \
             pool; --timeout-s is ignored), or auto (fork when a timeout \
             or fault injection is requested, else domains)")
  in
  (* the shared cv/pno defaults would make the exhaustive mc jobs hit
     the paper's state-explosion cells; default to the tractable
     AddressLookup/periodic-offset configuration instead *)
  let combo =
    Arg.(value & opt combo_conv R.Al_tmc & info [ "combo" ] ~doc:"cv or al")
  in
  let column =
    Arg.(
      value & opt column_conv R.Po & info [ "column" ] ~doc:"po/pno/sp/pj/bur")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "design-space exploration: sweep architecture candidates through \
          the analysis techniques in parallel, with on-disk memoization, \
          and report the feasible set and Pareto frontier")
    Term.(
      const run_explore $ combo $ column $ scenario $ requirement
      $ techniques $ mmi $ rad $ nav $ bus $ decode_on $ jobs $ timeout
      $ cache_dir $ no_cache $ mc_states $ mc_seconds $ abstraction_arg
      $ bounds_arg $ mc_domains $ slicing_arg $ mc_certify $ sim_runs
      $ sim_horizon $ inject_crash $ isolation)

(* ------------------------------------------------------------------ *)
(* lint: static analysis of the generated networks                     *)
(* ------------------------------------------------------------------ *)

module Lint = Ita_analysis.Lint
module Diag = Ita_analysis.Diagnostic

let severity_conv =
  let parse = function
    | "hint" -> Ok Diag.Hint
    | "info" -> Ok Diag.Info
    | "warning" -> Ok Diag.Warning
    | "error" -> Ok Diag.Error
    | s -> Error (`Msg (Printf.sprintf "unknown severity %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Diag.severity_name s) in
  Arg.conv (parse, print)

let combo_name = function R.Cv_tmc -> "cv" | R.Al_tmc -> "al"

(* Lint every generated network: for each combination x environment
   column, the plain network and each Table-1 measured variant (the
   measuring automaton and observer clock included).  Findings at or
   above the threshold make the exit code nonzero. *)
let run_lint combos columns fail_on verbose json =
  let combos = if combos = [] then [ R.Cv_tmc; R.Al_tmc ] else combos in
  let columns =
    if columns = [] then [ R.Po; R.Pno; R.Sp; R.Pj; R.Bur ] else columns
  in
  let checked = ref 0 and flagged = ref 0 in
  let reports = ref [] in
  let lint_net label ?observer net =
    incr checked;
    let observed_clocks =
      match observer with
      | Some o -> [ o.Gen.obs_clock ]
      | None -> []
    in
    let observed_comps =
      match observer with
      | Some o ->
          List.map fst o.Gen.seen.Ita_mc.Query.comp_locs
          |> List.sort_uniq compare
      | None -> []
    in
    let findings = Lint.run ~observed_comps ~observed_clocks net in
    if json then begin
      if findings <> [] then reports := (label, net, findings) :: !reports
    end
    else if
      findings <> []
      && (verbose
         || Diag.compare_severity
              (Option.value ~default:Diag.Hint (Diag.worst findings))
              Diag.Info
            > 0)
    then begin
      Format.printf "-- %s --@." label;
      Lint.pp_report net Format.std_formatter findings
    end;
    List.iter
      (fun (d : Diag.t) ->
        if Diag.compare_severity d.Diag.severity fail_on >= 0 then
          incr flagged)
      findings
  in
  List.iter
    (fun combo ->
      List.iter
        (fun column ->
          let sys = R.system combo column in
          let label suffix =
            Printf.sprintf "%s/%s%s" (combo_name combo)
              (R.column_name column) suffix
          in
          lint_net (label "") (Gen.generate sys).Gen.net;
          List.iter
            (fun (row : R.row) ->
              if row.R.combo = combo then begin
                let s = Sysmodel.scenario sys row.R.scenario in
                let req = Scenario.requirement s row.R.requirement in
                let gen = Gen.generate ~measure:(row.R.scenario, req) sys in
                lint_net
                  (label
                     (Printf.sprintf " measuring %s/%s" row.R.scenario
                        row.R.requirement))
                  ?observer:gen.Gen.observer gen.Gen.net
              end)
            R.table1_rows)
        columns)
    combos;
  if json then begin
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n  \"networks\": [";
    List.iteri
      (fun i (label, net, findings) ->
        Buffer.add_string buf (if i > 0 then ",\n    " else "\n    ");
        Buffer.add_string buf (Printf.sprintf {|{"label": %S, "report": |} label);
        Buffer.add_string buf (String.trim (Lint.to_json net findings));
        Buffer.add_string buf "}")
      (List.rev !reports);
    Buffer.add_string buf (if !reports = [] then "],\n" else "\n  ],\n");
    Buffer.add_string buf
      (Printf.sprintf {|  "checked": %d, "flagged": %d, "fail_on": %S|}
         !checked !flagged
         (Diag.severity_name fail_on));
    Buffer.add_string buf "\n}\n";
    print_string (Buffer.contents buf)
  end
  else
    Format.printf "linted %d generated networks: %d finding%s at %s or above@."
      !checked !flagged
      (if !flagged = 1 then "" else "s")
      (Diag.severity_name fail_on);
  if !flagged > 0 then exit 1

let lint_cmd =
  let combos =
    Arg.(
      value
      & opt (list combo_conv) []
      & info [ "combos" ] ~doc:"subset of cv,al (default both)")
  in
  let columns =
    Arg.(
      value
      & opt (list column_conv) []
      & info [ "columns" ] ~doc:"subset of po,pno,sp,pj,bur (default all)")
  in
  let fail_on =
    Arg.(
      value
      & opt severity_conv Diag.Error
      & info [ "fail-on" ]
          ~doc:"lowest severity that makes the exit code nonzero")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"also print reports that are info-only")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"machine-readable report on stdout instead of the human format")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"run the static analyzer over every generated network")
    Term.(const run_lint $ combos $ columns $ fail_on $ verbose $ json)

(* ------------------------------------------------------------------ *)
(* ablation: scheduler policies                                        *)
(* ------------------------------------------------------------------ *)

let run_ablation column =
  Format.printf
    "Scheduler ablation (%s): K2A/A2V under processor and bus policies@."
    (R.column_name column);
  let variants =
    [
      ("preemptive cpus + preemptive bus", Resource.Priority_preemptive,
       Resource.Priority_preemptive);
      ("preemptive cpus + nonpreemptive bus", Resource.Priority_preemptive,
       Resource.Priority_nonpreemptive);
      ("nonpreemptive cpus + nonpreemptive bus",
       Resource.Priority_nonpreemptive, Resource.Priority_nonpreemptive);
    ]
  in
  List.iter
    (fun (label, cpu_policy, bus_policy) ->
      let base = R.system R.Cv_tmc column in
      let resources =
        List.map
          (fun (r : Resource.t) ->
            { r with Resource.policy = (if Resource.is_link r then bus_policy else cpu_policy) })
          base.Sysmodel.resources
      in
      let sys = { base with Sysmodel.resources } in
      let cell req =
        let r =
          Analyze.wcrt sys ~scenario:"ChangeVolume" ~requirement:req
        in
        Format.asprintf "%a" Analyze.pp_outcome r.Analyze.outcome
      in
      Format.printf "%-42s K2A=%s A2V=%s@." label (cell "K2A") (cell "A2V"))
    variants

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation-sched"
       ~doc:"compare scheduling policies (paper Figure 4 vs Figure 5 models)")
    Term.(const run_ablation $ column_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "timed-automata analysis of the radio navigation case study" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ranav" ~doc)
          [
            wcrt_cmd;
            table1_cmd;
            table2_cmd;
            simulate_cmd;
            show_model_cmd;
            sweep_cmd;
            explore_cmd;
            lint_cmd;
            ablation_cmd;
          ]))
