(* Event arrival models matter: the same architecture under the five
   environment columns of the paper's Table 1, for the HandleTMC
   requirement next to AddressLookup.

   po (synchronous periodic) gives the smallest worst case; releasing
   the offsets (pno), then the periods (sp), then adding jitter (pj)
   and bursts (bur) each uncover strictly worse schedules.  The pj and
   bur columns use the paper's "structured testing" fallback: a
   budgeted depth-first hunt for counterexamples, which yields lower
   bounds ("> value").

   Run with: dune exec examples/bursty_gate.exe *)

open Ita_core
module R = Ita_casestudy.Radionav
module Reach = Ita_mc.Reach

let () =
  Format.printf "HandleTMC (+ AddressLookup) WCRT per event model:@.";
  List.iter
    (fun column ->
      let sys = R.system R.Al_tmc column in
      let method_ =
        match column with
        | R.Po | R.Pno | R.Sp -> Analyze.Exhaustive
        | R.Pj | R.Bur ->
            Analyze.Structured_testing
              {
                order = Reach.Dfs;
                budget = Reach.states 150_000;
                start = 172_106;
                step = 25_000;
              }
      in
      let r = Analyze.wcrt ~method_ sys ~scenario:"HandleTMC" ~requirement:"TMC" in
      Format.printf "  %-4s: %10s ms  (%d states, %.2fs)@."
        (R.column_name column)
        (Format.asprintf "%a" Analyze.pp_outcome r.Analyze.outcome)
        r.Analyze.explored r.Analyze.elapsed)
    [ R.Po; R.Pno; R.Sp; R.Pj; R.Bur ]
