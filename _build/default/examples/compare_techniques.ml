(* The paper's Table 2 in miniature: one requirement (HandleTMC next
   to AddressLookup, pno), four techniques — exhaustive model checking,
   discrete-event simulation, busy-window analysis, real-time calculus.

   The expected shape (paper Section 5): simulation finds less than the
   model checker (it samples behaviors), the analytic techniques find
   more (they are conservative).

   Run with: dune exec examples/compare_techniques.exe *)

open Ita_core
module R = Ita_casestudy.Radionav

let scenario = "HandleTMC"
let requirement = "TMC"

let () =
  let sys = R.system R.Al_tmc R.Pno in

  (* 1. model checking: exact *)
  let mc =
    let r = Analyze.wcrt sys ~scenario ~requirement in
    match r.Analyze.outcome with
    | Analyze.Exact_wcrt v -> v
    | Analyze.Wcrt_lower_bound v -> v
    | Analyze.No_response -> 0
  in

  (* 2. simulation: max over sampled schedules *)
  let sim =
    let worst = ref 0 in
    for seed = 1 to 20 do
      let stats = Ita_sim.Engine.run ~seed ~horizon_us:60_000_000 sys in
      List.iter
        (fun (s : Ita_sim.Engine.sample) ->
          if s.Ita_sim.Engine.scenario = scenario
             && s.Ita_sim.Engine.requirement = requirement
          then worst := max !worst s.Ita_sim.Engine.response_us)
        stats.Ita_sim.Engine.samples
    done;
    !worst
  in

  (* 3. busy-window analysis: conservative *)
  let symta =
    let t = Ita_symta.Sysanalysis.analyze sys in
    Ita_symta.Sysanalysis.wcrt t sys ~scenario ~requirement
  in

  (* 4. real-time calculus: conservative *)
  let mpa =
    let t = Ita_rtc.Gpc.analyze sys in
    Ita_rtc.Gpc.wcrt t sys ~scenario ~requirement
  in

  Format.printf "HandleTMC worst-case response time, four ways:@.";
  Format.printf "  simulation (20 seeds) : %a ms@." Units.pp_ms sim;
  Format.printf "  model checking        : %a ms  (exact)@." Units.pp_ms mc;
  Format.printf "  busy-window (SymTA/S) : %a ms@." Units.pp_ms symta;
  Format.printf "  calculus (MPA)        : %a ms@." Units.pp_ms mpa;
  if sim <= mc && mc <= symta && mc <= mpa then
    Format.printf "shape holds: simulation <= exact <= analytic bounds@."
  else
    Format.printf "SHAPE VIOLATION - investigate!@."
