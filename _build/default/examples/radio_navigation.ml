(* The paper's case study end to end: describe the in-car radio
   navigation architecture, generate its timed-automata network
   automatically, and model-check two timeliness requirements of the
   AddressLookup + HandleTMC combination (the fast half of Table 1).

   Run with: dune exec examples/radio_navigation.exe *)

open Ita_core
module R = Ita_casestudy.Radionav

let () =
  let sys = R.system R.Al_tmc R.Pno in
  Format.printf "%a@." Sysmodel.pp sys;

  (* what does the generated network look like? *)
  let gen = Gen.generate sys in
  Format.printf "generated %d automata over %d clocks and %d variables@.@."
    (Ita_ta.Network.n_components gen.Gen.net)
    (Ita_ta.Network.n_clocks gen.Gen.net)
    (Array.length gen.Gen.net.Ita_ta.Network.var_names);

  (* exact worst-case response times *)
  let report scenario requirement =
    let r = Analyze.wcrt sys ~scenario ~requirement in
    let s = Sysmodel.scenario sys scenario in
    let req = Scenario.requirement s requirement in
    Format.printf
      "%-14s %-4s: uncontended %a ms, worst case %a ms%s (%d states, %.2fs)@."
      scenario requirement Units.pp_ms r.Analyze.uncontended_us
      Analyze.pp_outcome r.Analyze.outcome
      (match req.Scenario.budget_us with
      | Some budget ->
          let met =
            match r.Analyze.outcome with
            | Analyze.Exact_wcrt v -> v < budget
            | Analyze.Wcrt_lower_bound v -> v < budget
            | Analyze.No_response -> false
          in
          Printf.sprintf " [budget %.0f ms: %s]"
            (Units.ms_of_us budget)
            (if met then "met" else "VIOLATED/UNKNOWN")
      | None -> "")
      r.Analyze.explored r.Analyze.elapsed
  in
  report "AddressLookup" "E2E";
  report "HandleTMC" "TMC";

  (* or ask the paper's question directly: does the product work, given
     the stated timeliness budgets? *)
  Format.printf "@.budget check:@.";
  List.iter
    (fun r -> Format.printf "  %a@." Analyze.pp_budget_report r)
    (Analyze.check_budgets sys)
