(* Quickstart: build a two-clock timed automaton by hand, explore it,
   and extract a worst-case bound — the smallest end-to-end tour of the
   library (network builder -> reachability -> sup query).

   The automaton is a gate that opens between 1 and 2 time units after
   a request and must close again exactly 4 units later; we ask how
   late "closed" can be relative to the request.

   Run with: dune exec examples/quickstart.exe *)

open Ita_ta
module Query = Ita_mc.Query
module Reach = Ita_mc.Reach
module Wcrt = Ita_mc.Wcrt

let () =
  (* declarations *)
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  let y = Network.Builder.clock b "y" in

  (* one automaton: requested --[1 <= x <= 2]--> open --[x == 4]--> closed *)
  let loc ?(kind = Automaton.Normal) ?(invariant = Guard.tt) loc_name =
    { Automaton.loc_name; invariant; kind }
  in
  let gate =
    Automaton.make ~name:"Gate"
      ~locations:
        [
          loc "requested";
          loc "open" ~invariant:(Guard.clock_le x 4);
          (* committed: time stops here, so [y] reads the total delay *)
          loc "closed" ~kind:Automaton.Committed;
        ]
      ~edges:
        [
          {
            Automaton.src = 0;
            dst = 1;
            guard = Guard.conj (Guard.clock_ge x 1) (Guard.clock_le x 2);
            sync = Automaton.NoSync;
            update = Update.reset x;
          };
          {
            Automaton.src = 1;
            dst = 2;
            guard = Guard.clock_eq x 4;
            sync = Automaton.NoSync;
            update = Update.none;
          };
        ]
      ~initial:0
  in
  Network.Builder.add_automaton b gate;
  let net = Network.Builder.build b in

  (* print the model *)
  Format.printf "%a@." Pretty.pp_network net;

  (* reachability: can the gate close later than 6 after the request? *)
  let closed = Query.at net ~comp:"Gate" ~loc:"closed" in
  let late = Query.with_guard closed (Guard.clock_gt y 6) in
  (match Reach.reach net late with
  | Reach.Unreachable stats ->
      Format.printf "closing later than 6 is impossible (%a)@."
        Reach.pp_stats stats
  | Reach.Reachable _ | Reach.Budget_exhausted _ ->
      Format.printf "unexpected: closing later than 6 seems possible?!@.");

  (* the exact worst case, in one sup query *)
  match Wcrt.sup net ~at:closed ~clock:y with
  | Wcrt.Sup { value; _ } ->
      Format.printf "worst-case closing time: %d (expected 6)@." value
  | Wcrt.Goal_unreachable _ | Wcrt.Sup_budget_exhausted _
  | Wcrt.Sup_unbounded _ ->
      Format.printf "unexpected sup outcome@."
