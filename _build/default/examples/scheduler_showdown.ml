(* Using the library on a system that is NOT the paper's case study: a
   small two-processor controller, analyzed under non-preemptive and
   preemptive scheduling (the paper's Figure 4 vs Figure 5 encodings).

   A 10 ms control loop shares its CPU with a sporadic logger that
   hogs the CPU for 30 ms; the control command then crosses a link to
   an actuator CPU.  Preemption rescues the control deadline from the
   logger's long blocks.

   Run with: dune exec examples/scheduler_showdown.exe *)

open Ita_core

let us = Units.us_of_ms

let system cpu_policy =
  let cpu = Resource.processor "CPU" ~mips:10.0 ~policy:cpu_policy in
  let act = Resource.processor "ACT" ~mips:10.0 ~policy:cpu_policy in
  let link =
    Resource.link "LINK" ~kbps:256.0 ~policy:Resource.Priority_nonpreemptive
  in
  let control =
    Scenario.make ~name:"Control"
      ~trigger:(Eventmodel.Periodic_unknown_offset { period = us 10.0 })
      ~band:Scenario.High
      ~steps:
        [
          (* 2 ms of computation at 10 MIPS *)
          Scenario.Compute
            { op = "ComputeLaw"; resource = "CPU"; instructions = 2e4 };
          (* 32 bytes at 256 kbps = 1 ms *)
          Scenario.Transfer { msg = "Command"; resource = "LINK"; bytes = 32 };
          Scenario.Compute
            { op = "Actuate"; resource = "ACT"; instructions = 1e4 };
        ]
      ~requirements:
        [
          {
            Scenario.req_name = "loop";
            from_step = None;
            to_step = 2;
            budget_us = Some (us 10.0);
          };
        ]
  in
  let logger =
    Scenario.make ~name:"Logger"
      ~trigger:(Eventmodel.Sporadic { min_separation = us 50.0 })
      ~band:Scenario.Low
      ~steps:
        [
          (* 30 ms of bookkeeping *)
          Scenario.Compute
            { op = "FlushLog"; resource = "CPU"; instructions = 3e5 };
        ]
      ~requirements:[]
  in
  (* the non-preemptive variant backlogs several control activations
     behind a log flush: size the queues for it *)
  Sysmodel.make ~name:"controller" ~resources:[ cpu; act; link ]
    ~scenarios:[ control; logger ] ~queue_bound:8 ()

let () =
  List.iter
    (fun (label, policy) ->
      let sys = system policy in
      let r = Analyze.wcrt sys ~scenario:"Control" ~requirement:"loop" in
      let verdict =
        match r.Analyze.outcome with
        | Analyze.Exact_wcrt v -> if v < us 10.0 then "deadline met" else "DEADLINE MISSED"
        | Analyze.Wcrt_lower_bound _ | Analyze.No_response -> "unknown"
      in
      Format.printf "%-28s control loop worst case: %a ms -> %s@." label
        Analyze.pp_outcome r.Analyze.outcome verdict)
    [
      ("non-preemptive (Figure 4):", Resource.Priority_nonpreemptive);
      ("preemptive (Figure 5):", Resource.Priority_preemptive);
    ]
