examples/compare_techniques.mli:
