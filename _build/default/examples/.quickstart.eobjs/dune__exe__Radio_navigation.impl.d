examples/radio_navigation.ml: Analyze Array Format Gen Ita_casestudy Ita_core Ita_ta List Printf Scenario Sysmodel Units
