examples/compare_techniques.ml: Analyze Format Ita_casestudy Ita_core Ita_rtc Ita_sim Ita_symta List Units
