examples/bursty_gate.mli:
