examples/scheduler_showdown.ml: Analyze Eventmodel Format Ita_core List Resource Scenario Sysmodel Units
