examples/quickstart.ml: Automaton Format Guard Ita_mc Ita_ta Network Pretty Update
