examples/radio_navigation.mli:
