examples/quickstart.mli:
