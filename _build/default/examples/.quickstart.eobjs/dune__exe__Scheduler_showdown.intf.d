examples/scheduler_showdown.mli:
