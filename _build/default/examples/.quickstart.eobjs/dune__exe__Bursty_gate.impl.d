examples/bursty_gate.ml: Analyze Format Ita_casestudy Ita_core Ita_mc List
