(* Tests for the discrete-event simulator: the calendar queue, the
   dispatcher (including preemption), and statistical sanity. *)

open Ita_core
module Calendar = Ita_sim.Calendar
module Engine = Ita_sim.Engine

(* ------------------------------------------------------------------ *)
(* Calendar                                                            *)
(* ------------------------------------------------------------------ *)

let test_calendar_order () =
  let c = Calendar.create () in
  Calendar.schedule c ~time:5 "c";
  Calendar.schedule c ~time:1 "a";
  Calendar.schedule c ~time:3 "b";
  Alcotest.(check (option int)) "peek" (Some 1) (Calendar.peek_time c);
  let pops = List.init 3 (fun _ -> Option.get (Calendar.pop c)) in
  Alcotest.(check (list (pair int string)))
    "sorted" [ (1, "a"); (3, "b"); (5, "c") ] pops;
  Alcotest.(check bool) "empty" true (Calendar.is_empty c)

let test_calendar_fifo_ties () =
  let c = Calendar.create () in
  Calendar.schedule c ~time:2 "first";
  Calendar.schedule c ~time:2 "second";
  Calendar.schedule c ~time:2 "third";
  let pops = List.init 3 (fun _ -> snd (Option.get (Calendar.pop c))) in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] pops

let test_calendar_causality () =
  let c = Calendar.create () in
  Calendar.schedule c ~time:10 ();
  ignore (Calendar.pop c);
  Alcotest.check_raises "no scheduling into the past"
    (Invalid_argument "Calendar.schedule: time 5 < now 10") (fun () ->
      Calendar.schedule c ~time:5 ())

let prop_calendar_sorted =
  QCheck2.Test.make ~count:200 ~name:"pops are time-sorted"
    QCheck2.Gen.(list_size (int_range 0 50) (int_range 0 1000))
    (fun times ->
      let c = Calendar.create () in
      List.iter (fun t -> Calendar.schedule c ~time:t t) times;
      let rec drain last =
        match Calendar.pop c with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain 0)

(* ------------------------------------------------------------------ *)
(* Engine on known systems                                             *)
(* ------------------------------------------------------------------ *)

let solo_system trigger =
  let cpu =
    Resource.processor "CPU" ~mips:10.0 ~policy:Resource.Priority_preemptive
  in
  let s =
    Scenario.make ~name:"Solo" ~trigger ~band:Scenario.High
      ~steps:[ Scenario.Compute { op = "f"; resource = "CPU"; instructions = 2e4 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  Sysmodel.make ~name:"solo" ~resources:[ cpu ] ~scenarios:[ s ] ()

let test_solo_periodic () =
  (* one 2 ms job every 10 ms: every response is exactly 2 ms *)
  let sys = solo_system (Eventmodel.Periodic { period = 10_000; offset = 0 }) in
  let stats = Engine.run ~seed:7 ~horizon_us:100_000 sys in
  (* arrivals at 0, 10, ..., 100 ms; the one at 100 ms completes past
     the horizon, so 10 samples *)
  Alcotest.(check int) "10 completed samples in [0, 100 ms]" 10
    (List.length stats.Engine.samples);
  List.iter
    (fun (s : Engine.sample) ->
      Alcotest.(check int) "uncontended response" 2000 s.Engine.response_us)
    stats.Engine.samples;
  (* busy accounting: 10 completed jobs of 2 ms *)
  Alcotest.(check int) "cpu busy time" 20_000
    (List.assoc "CPU" stats.Engine.busy_us)

let test_determinism () =
  let sys = solo_system (Eventmodel.Periodic_jitter { period = 10_000; jitter = 5_000 }) in
  let r1 = Engine.run ~seed:42 ~horizon_us:200_000 sys in
  let r2 = Engine.run ~seed:42 ~horizon_us:200_000 sys in
  Alcotest.(check int) "same seed, same sample count"
    (List.length r1.Engine.samples)
    (List.length r2.Engine.samples);
  List.iter2
    (fun (a : Engine.sample) (b : Engine.sample) ->
      Alcotest.(check int) "same responses" a.Engine.response_us
        b.Engine.response_us)
    r1.Engine.samples r2.Engine.samples

let showdown policy =
  let cpu = Resource.processor "CPU" ~mips:10.0 ~policy in
  let hi =
    Scenario.make ~name:"Hi"
      ~trigger:(Eventmodel.Periodic { period = 10_000; offset = 0 })
      ~band:Scenario.High
      ~steps:[ Scenario.Compute { op = "h"; resource = "CPU"; instructions = 2e4 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  let lo =
    Scenario.make ~name:"Lo"
      ~trigger:(Eventmodel.Periodic { period = 50_000; offset = 1_000 })
      ~band:Scenario.Low
      ~steps:[ Scenario.Compute { op = "l"; resource = "CPU"; instructions = 3e5 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  Sysmodel.make ~name:"showdown" ~resources:[ cpu ] ~scenarios:[ hi; lo ]
    ~queue_bound:8 ()

let max_response stats scenario =
  List.fold_left
    (fun acc (s : Engine.sample) ->
      if s.Engine.scenario = scenario then max acc s.Engine.response_us else acc)
    0 stats.Engine.samples

let test_preemption () =
  (* the low job starts at 1 ms and runs 30 ms; preemptively, the high
     job (every 10 ms) is never delayed; non-preemptively it waits *)
  let p = Engine.run ~seed:1 ~horizon_us:200_000 (showdown Resource.Priority_preemptive) in
  Alcotest.(check int) "preemptive: high never blocked" 2000
    (max_response p "Hi");
  (* work conservation: the low job still completes (response grows by
     the preemptions, three 2 ms highs per 10 ms window) *)
  Alcotest.(check bool) "low job still completes" true
    (max_response p "Lo" >= 30_000);
  let np =
    Engine.run ~seed:1 ~horizon_us:200_000 (showdown Resource.Priority_nonpreemptive)
  in
  Alcotest.(check bool) "non-preemptive: high blocked by low" true
    (max_response np "Hi" > 20_000)

let test_from_step_window () =
  (* requirement measured from an intermediate step *)
  let cpu = Resource.processor "CPU" ~mips:10.0 ~policy:Resource.Priority_preemptive in
  let wire = Resource.link "WIRE" ~kbps:80.0 ~policy:Resource.Priority_nonpreemptive in
  let s =
    Scenario.make ~name:"Chain"
      ~trigger:(Eventmodel.Periodic { period = 50_000; offset = 0 })
      ~band:Scenario.High
      ~steps:
        [
          Scenario.Compute { op = "a"; resource = "CPU"; instructions = 2e4 };
          Scenario.Transfer { msg = "m"; resource = "WIRE"; bytes = 10 };
          Scenario.Compute { op = "b"; resource = "CPU"; instructions = 1e4 };
        ]
      ~requirements:
        [
          { Scenario.req_name = "tail"; from_step = Some 0; to_step = 2; budget_us = None };
        ]
  in
  let sys = Sysmodel.make ~name:"chain" ~resources:[ cpu; wire ] ~scenarios:[ s ] () in
  let stats = Engine.run ~seed:3 ~horizon_us:200_000 sys in
  (* tail = transfer (1 ms) + compute (1 ms) *)
  List.iter
    (fun (smp : Engine.sample) ->
      Alcotest.(check int) "tail window" 2000 smp.Engine.response_us)
    stats.Engine.samples

let () =
  Alcotest.run "sim"
    [
      ( "calendar",
        [
          Alcotest.test_case "order" `Quick test_calendar_order;
          Alcotest.test_case "fifo ties" `Quick test_calendar_fifo_ties;
          Alcotest.test_case "causality" `Quick test_calendar_causality;
          QCheck_alcotest.to_alcotest prop_calendar_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "solo periodic" `Quick test_solo_periodic;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "preemption" `Quick test_preemption;
          Alcotest.test_case "from-step window" `Quick test_from_step_window;
        ] );
    ]
