(* Tests for the busy-window analysis: event streams, single-resource
   response times against classical textbook examples, and the
   system-level fixpoint. *)

open Ita_core
module Ev = Ita_symta.Evstream
module Bw = Ita_symta.Busywindow
module Sa = Ita_symta.Sysanalysis

(* ------------------------------------------------------------------ *)
(* Event streams                                                       *)
(* ------------------------------------------------------------------ *)

let test_eta_periodic () =
  let s = { Ev.period = 10; jitter = 0; dmin = 10 } in
  Alcotest.(check int) "eta+(0)" 0 (Ev.eta_plus s 0);
  Alcotest.(check int) "eta+(1)" 1 (Ev.eta_plus s 1);
  Alcotest.(check int) "eta+(10)" 1 (Ev.eta_plus s 10);
  Alcotest.(check int) "eta+(11)" 2 (Ev.eta_plus s 11);
  Alcotest.(check int) "eta-(25)" 2 (Ev.eta_minus s 25)

let test_eta_jitter () =
  let s = { Ev.period = 10; jitter = 15; dmin = 0 } in
  (* burst: ceil((1 + 15) / 10) = 2 events can coincide *)
  Alcotest.(check int) "burst of 2" 2 (Ev.eta_plus s 1);
  Alcotest.(check int) "eta+(6)" 3 (Ev.eta_plus s 6);
  (* with a separation of 3, at most ceil(d/3) in (0, d] *)
  let s' = { s with Ev.dmin = 3 } in
  Alcotest.(check int) "dmin caps burst" 1 (Ev.eta_plus s' 1);
  Alcotest.(check int) "dmin caps eta(6)" 2 (Ev.eta_plus s' 6)

let test_delta_min () =
  let s = { Ev.period = 10; jitter = 15; dmin = 2 } in
  Alcotest.(check int) "q=1" 0 (Ev.delta_min s 1);
  (* periodic part: (3-1)*10 - 15 = 5; separation part: (3-1)*2 = 4 *)
  Alcotest.(check int) "q=3" 5 (Ev.delta_min s 3);
  Alcotest.(check int) "q=2: separation dominates" 2 (Ev.delta_min s 2)

let prop_eta_monotone =
  QCheck2.Test.make ~count:300 ~name:"eta_plus is monotone"
    QCheck2.Gen.(tup4 (int_range 1 50) (int_range 0 100) (int_range 0 10) (int_range 0 200))
    (fun (p, j, d, delta) ->
      let s = { Ev.period = p; jitter = j; dmin = d } in
      Ev.eta_plus s delta <= Ev.eta_plus s (delta + 1))

let prop_delta_min_inverse =
  QCheck2.Test.make ~count:300 ~name:"eta_plus (delta_min q) covers q events"
    QCheck2.Gen.(tup3 (int_range 1 50) (int_range 0 100) (int_range 1 20))
    (fun (p, j, q) ->
      let s = { Ev.period = p; jitter = j; dmin = 0 } in
      (* q events can really arrive within delta_min(q) (closed window,
         so the open-window eta at delta+1 must reach q) *)
      Ev.eta_plus s (Ev.delta_min s q + 1) >= q)

(* ------------------------------------------------------------------ *)
(* Busy windows                                                        *)
(* ------------------------------------------------------------------ *)

let task ?(group = "g") ?(step = 0) ?(pending = 0) ?(prefix = 0) name wcet
    period band =
  {
    Bw.task_name = name;
    group;
    step_index = step;
    chain_pending = pending;
    prefix_response = prefix;
    delta_jitter = 0;
    block_quantum = wcet;
    wcet;
    stream = { Ev.period; jitter = 0; dmin = period };
    cross_stream = { Ev.period; jitter = 0; dmin = 0 };
    band;
  }

let r_of name responses =
  (List.find (fun (r : Bw.response) -> r.Bw.task.Bw.task_name = name) responses)
    .Bw.r_max

let test_single_task () =
  let rs = Bw.analyze Bw.Preemptive [ task "t" 3 10 Scenario.High ] in
  Alcotest.(check int) "alone: R = C" 3 (r_of "t" rs)

let test_two_bands_preemptive () =
  (* textbook: high (C=2, P=10) and low (C=5, P=20), different groups *)
  let hi = task ~group:"a" "hi" 2 10 Scenario.High in
  let lo = task ~group:"b" "lo" 5 20 Scenario.Low in
  let rs = Bw.analyze Bw.Preemptive [ hi; lo ] in
  Alcotest.(check int) "high unaffected" 2 (r_of "hi" rs);
  (* low: w = 5 + ceil(w/10)*2 -> w = 7 *)
  Alcotest.(check int) "low: 5 + one preemption" 7 (r_of "lo" rs)

let test_nonpreemptive_blocking () =
  let hi = task ~group:"a" "hi" 2 10 Scenario.High in
  let lo = task ~group:"b" "lo" 5 20 Scenario.Low in
  let rs = Bw.analyze Bw.Nonpreemptive [ hi; lo ] in
  (* high pays the low block: 5 + 2 *)
  Alcotest.(check int) "high blocked once" 7 (r_of "hi" rs)

let test_multiple_activations () =
  (* two high tasks at utilization 0.9: the busy window spans several
     of the task's own activations *)
  let a = task ~group:"a" "a" 5 10 Scenario.High in
  let b = task ~group:"b" "b" 4 10 Scenario.High in
  let rs = Bw.analyze Bw.Preemptive [ a; b ] in
  (* w(q) = 5q + 4*ceil(w/10); q=1: 9, eta_a(9)=1 -> stop.
     Response = 9. *)
  Alcotest.(check int) "a" 9 (r_of "a" rs);
  Alcotest.(check int) "b" 9 (r_of "b" rs)

let test_unschedulable () =
  let a = task ~group:"a" "a" 6 10 Scenario.High in
  let b = task ~group:"b" "b" 6 10 Scenario.High in
  match Bw.analyze Bw.Preemptive [ a; b ] with
  | _ -> Alcotest.fail "utilization 1.2 must diverge"
  | exception Bw.Unschedulable _ -> ()

let test_precedence_no_collision () =
  (* same group, downstream rival with no backlog: zero interference —
     the AddressLookup phenomenon *)
  let first = task ~group:"g" ~step:0 "first" 2 100 Scenario.High in
  let last = task ~group:"g" ~step:1 "last" 50 100 Scenario.High in
  let rs = Bw.analyze Bw.Preemptive [ first; last ] in
  Alcotest.(check int) "downstream rival ignored" 2 (r_of "first" rs);
  (* the upstream rival's execution for the shared event precedes the
     window, and the next event is a full period away: no collision *)
  Alcotest.(check int) "upstream execution precedes window" 50 (r_of "last" rs);
  (* with pipeline backlog, newer events' upstream steps do land in
     the window *)
  let last' = task ~group:"g" ~step:1 ~prefix:60 "lastp" 50 100 Scenario.High in
  let rs' = Bw.analyze Bw.Preemptive [ first; last' ] in
  Alcotest.(check int) "bunched upstream counted" 52 (r_of "lastp" rs')

(* ------------------------------------------------------------------ *)
(* System level                                                        *)
(* ------------------------------------------------------------------ *)

let test_sysanalysis_solo () =
  let cpu = Resource.processor "CPU" ~mips:10.0 ~policy:Resource.Priority_preemptive in
  let s =
    Scenario.make ~name:"Solo"
      ~trigger:(Eventmodel.Periodic_unknown_offset { period = 100_000 })
      ~band:Scenario.High
      ~steps:
        [
          Scenario.Compute { op = "a"; resource = "CPU"; instructions = 2e4 };
          Scenario.Compute { op = "b"; resource = "CPU"; instructions = 1e4 };
        ]
      ~requirements:
        [ { Scenario.req_name = "e2e"; from_step = None; to_step = 1; budget_us = None } ]
  in
  let sys = Sysmodel.make ~name:"solo" ~resources:[ cpu ] ~scenarios:[ s ] () in
  let t = Sa.analyze sys in
  Alcotest.(check int) "solo chain = sum of wcets" 3000
    (Sa.wcrt t sys ~scenario:"Solo" ~requirement:"e2e")

let test_sysanalysis_case_study () =
  let sys = Ita_casestudy.Radionav.system Ita_casestudy.Radionav.Al_tmc
      Ita_casestudy.Radionav.Pno
  in
  let t = Sa.analyze sys in
  let al = Sa.wcrt t sys ~scenario:"AddressLookup" ~requirement:"E2E" in
  let tmc = Sa.wcrt t sys ~scenario:"HandleTMC" ~requirement:"TMC" in
  (* conservative w.r.t. the model checker's exact values *)
  Alcotest.(check bool) "al >= 79075" true (al >= 79_075);
  Alcotest.(check bool) "tmc >= 239081" true (tmc >= 239_081);
  (* and not wildly so (within 2x) *)
  Alcotest.(check bool) "al within 2x" true (al <= 2 * 79_075);
  Alcotest.(check bool) "tmc within 2x" true (tmc <= 2 * 239_081)

let () =
  Alcotest.run "symta"
    [
      ( "evstream",
        [
          Alcotest.test_case "periodic eta" `Quick test_eta_periodic;
          Alcotest.test_case "jitter eta" `Quick test_eta_jitter;
          Alcotest.test_case "delta_min" `Quick test_delta_min;
          QCheck_alcotest.to_alcotest prop_eta_monotone;
          QCheck_alcotest.to_alcotest prop_delta_min_inverse;
        ] );
      ( "busywindow",
        [
          Alcotest.test_case "single task" `Quick test_single_task;
          Alcotest.test_case "two bands preemptive" `Quick test_two_bands_preemptive;
          Alcotest.test_case "nonpreemptive blocking" `Quick
            test_nonpreemptive_blocking;
          Alcotest.test_case "multiple activations" `Quick
            test_multiple_activations;
          Alcotest.test_case "unschedulable" `Quick test_unschedulable;
          Alcotest.test_case "precedence" `Quick test_precedence_no_collision;
        ] );
      ( "sysanalysis",
        [
          Alcotest.test_case "solo chain" `Quick test_sysanalysis_solo;
          Alcotest.test_case "case study bounds" `Quick
            test_sysanalysis_case_study;
        ] );
    ]
