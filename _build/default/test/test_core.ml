(* Tests for the architecture-modeling core: units, event models,
   scenarios, system models, the TA generator and the analysis
   driver. *)

open Ita_core
module Reach = Ita_mc.Reach

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

let test_units () =
  (* the case-study constants, rounded to nearest us (see DESIGN.md) *)
  Alcotest.(check int) "1e5 instr at 22 MIPS" 4545
    (Units.us_of_instructions ~instructions:1e5 ~mips:22.0);
  Alcotest.(check int) "5e5 at 22" 22727
    (Units.us_of_instructions ~instructions:5e5 ~mips:22.0);
  Alcotest.(check int) "1e6 at 11" 90909
    (Units.us_of_instructions ~instructions:1e6 ~mips:11.0);
  Alcotest.(check int) "5e6 at 113 rounds up" 44248
    (Units.us_of_instructions ~instructions:5e6 ~mips:113.0);
  Alcotest.(check int) "4 B at 72 kbps" 444 (Units.us_of_bytes ~bytes:4 ~kbps:72.0);
  Alcotest.(check int) "64 B at 72 kbps" 7111
    (Units.us_of_bytes ~bytes:64 ~kbps:72.0);
  Alcotest.(check string) "ms formatting" "79.075"
    (Format.asprintf "%a" Units.pp_ms 79075);
  Alcotest.(check int) "ms of us round trip" 31250 (Units.us_of_ms 31.25)

(* ------------------------------------------------------------------ *)
(* Event models                                                        *)
(* ------------------------------------------------------------------ *)

let test_eventmodel_validate () =
  let ok m = Alcotest.(check bool) "valid" true (Eventmodel.validate m = Ok ()) in
  let bad m =
    Alcotest.(check bool) "invalid" true (Result.is_error (Eventmodel.validate m))
  in
  ok (Eventmodel.Periodic { period = 10; offset = 0 });
  bad (Eventmodel.Periodic { period = 0; offset = 0 });
  bad (Eventmodel.Periodic { period = 10; offset = -1 });
  ok (Eventmodel.Periodic_jitter { period = 10; jitter = 10 });
  bad (Eventmodel.Periodic_jitter { period = 10; jitter = 11 });
  ok (Eventmodel.Bursty { period = 10; jitter = 20; min_separation = 0 });
  bad (Eventmodel.Bursty { period = 10; jitter = 10; min_separation = 0 })

let test_eventmodel_pjd () =
  Alcotest.(check (triple int int int))
    "sporadic" (7, 0, 7)
    (Eventmodel.pjd (Eventmodel.Sporadic { min_separation = 7 }));
  Alcotest.(check (triple int int int))
    "bursty" (10, 25, 2)
    (Eventmodel.pjd
       (Eventmodel.Bursty { period = 10; jitter = 25; min_separation = 2 }));
  Alcotest.(check int) "backlog of J=2P" 3
    (Eventmodel.max_backlog
       (Eventmodel.Bursty { period = 10; jitter = 25; min_separation = 0 }));
  Alcotest.(check int) "backlog of periodic" 1
    (Eventmodel.max_backlog (Eventmodel.Periodic { period = 10; offset = 3 }))

(* ------------------------------------------------------------------ *)
(* Scenario and system validation                                      *)
(* ------------------------------------------------------------------ *)

let cpu = Resource.processor "CPU" ~mips:1.0 ~policy:Resource.Priority_preemptive
let wire = Resource.link "WIRE" ~kbps:8.0 ~policy:Resource.Priority_nonpreemptive

let mini_scenario ?(trigger = Eventmodel.Sporadic { min_separation = 100_000 })
    ?(requirements = []) steps =
  Scenario.make ~name:"S" ~trigger ~band:Scenario.High ~steps ~requirements

let test_scenario_validation () =
  let compute = Scenario.Compute { op = "f"; resource = "CPU"; instructions = 1e3 } in
  let xfer = Scenario.Transfer { msg = "m"; resource = "WIRE"; bytes = 1 } in
  let valid s = Scenario.validate ~resources:[ cpu; wire ] s in
  Alcotest.(check bool) "ok" true (valid (mini_scenario [ compute; xfer ]) = Ok ());
  Alcotest.(check bool) "unknown resource" true
    (Result.is_error
       (valid
          (mini_scenario
             [ Scenario.Compute { op = "f"; resource = "GPU"; instructions = 1.0 } ])));
  Alcotest.(check bool) "compute on a link" true
    (Result.is_error
       (valid
          (mini_scenario
             [ Scenario.Compute { op = "f"; resource = "WIRE"; instructions = 1.0 } ])));
  Alcotest.(check bool) "empty scenario" true
    (Result.is_error (valid (mini_scenario [])));
  Alcotest.(check bool) "requirement range" true
    (Result.is_error
       (valid
          (mini_scenario [ compute ]
             ~requirements:
               [ { Scenario.req_name = "r"; from_step = None; to_step = 3; budget_us = None } ])));
  Alcotest.(check bool) "from after to" true
    (Result.is_error
       (valid
          (mini_scenario [ compute; xfer ]
             ~requirements:
               [ { Scenario.req_name = "r"; from_step = Some 1; to_step = 1; budget_us = None } ])))

let test_sysmodel_durations () =
  let s =
    mini_scenario
      [
        Scenario.Compute { op = "f"; resource = "CPU"; instructions = 2e3 };
        Scenario.Transfer { msg = "m"; resource = "WIRE"; bytes = 1 };
      ]
  in
  let m = Sysmodel.make ~name:"m" ~resources:[ cpu; wire ] ~scenarios:[ s ] () in
  (* 2e3 instructions at 1 MIPS = 2000 us; 8 bits at 8 kbps = 1000 us *)
  Alcotest.(check int) "uncontended" 3000
    (Sysmodel.uncontended_us m s ~from_step:None ~to_step:1);
  Alcotest.(check int) "window from step 0" 1000
    (Sysmodel.uncontended_us m s ~from_step:(Some 0) ~to_step:1);
  Alcotest.(check int) "jobs on cpu" 1 (List.length (Sysmodel.jobs_on m cpu));
  let m' = Sysmodel.with_trigger m "S" (Eventmodel.Periodic { period = 5; offset = 0 }) in
  Alcotest.(check int) "with_trigger replaces" 5
    (Eventmodel.period (Sysmodel.scenario m' "S").Scenario.trigger)

(* ------------------------------------------------------------------ *)
(* Generator structure                                                 *)
(* ------------------------------------------------------------------ *)

open Ita_ta

let showdown_system policy =
  let cpu = Resource.processor "CPU" ~mips:10.0 ~policy in
  let hi =
    Scenario.make ~name:"Hi"
      ~trigger:(Eventmodel.Periodic_unknown_offset { period = 10_000 })
      ~band:Scenario.High
      ~steps:[ Scenario.Compute { op = "h"; resource = "CPU"; instructions = 2e4 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  let lo =
    Scenario.make ~name:"Lo"
      ~trigger:(Eventmodel.Sporadic { min_separation = 50_000 })
      ~band:Scenario.Low
      ~steps:[ Scenario.Compute { op = "l"; resource = "CPU"; instructions = 3e5 } ]
      ~requirements:[]
  in
  Sysmodel.make ~name:"showdown" ~resources:[ cpu ] ~scenarios:[ hi; lo ]
    ~queue_bound:8 ()

let test_gen_nonpreemptive_shape () =
  let sys = showdown_system Resource.Priority_nonpreemptive in
  let gen = Gen.generate sys in
  let cpu_auto = gen.Gen.net.Network.automata.(0) in
  (* Figure 4 shape: idle + one busy location per job *)
  Alcotest.(check int) "idle + 2 busy" 3 (Array.length cpu_auto.Automaton.locations);
  Alcotest.(check int) "2 claim + 2 complete edges" 4
    (Array.length cpu_auto.Automaton.edges);
  (* priority guard: the Low claim must check the High queue *)
  let low_claim =
    Array.to_list cpu_auto.Automaton.edges
    |> List.find (fun (e : Automaton.edge) ->
           e.Automaton.src = 0
           && (Automaton.location cpu_auto e.Automaton.dst).Automaton.loc_name
              = "busy_Lo_l")
  in
  let guard_mentions_hi_queue =
    List.mem (Network.var_index gen.Gen.net "q_Hi_0")
      (Expr.bvars low_claim.Automaton.guard.Guard.data)
  in
  Alcotest.(check bool) "low claim guarded by high queue" true
    guard_mentions_hi_queue

let test_gen_preemptive_shape () =
  let sys = showdown_system Resource.Priority_preemptive in
  let gen = Gen.generate sys in
  let cpu_auto = gen.Gen.net.Network.automata.(0) in
  (* Figure 5 shape: idle + busy_h + busy_l + pre_{l,h} *)
  Alcotest.(check int) "idle + 2 busy + 1 pre" 4
    (Array.length cpu_auto.Automaton.locations);
  Alcotest.(check bool) "has a D variable" true
    (match Network.var_index gen.Gen.net "CPU_D" with
    | _ -> true
    | exception Not_found -> false)

let test_gen_measuring_variant () =
  let sys = showdown_system Resource.Priority_preemptive in
  let s = Sysmodel.scenario sys "Hi" in
  let req = Scenario.requirement s "r" in
  let gen = Gen.generate ~measure:("Hi", req) sys in
  (match gen.Gen.observer with
  | None -> Alcotest.fail "no observer generated"
  | Some obs ->
      Alcotest.(check bool) "observer clock exists" true (obs.Gen.obs_clock > 0));
  let env = gen.Gen.net.Network.automata.(Network.component_index gen.Gen.net "ENV_Hi") in
  Alcotest.(check bool) "has a seen location" true
    (match Automaton.find_location env "seen" with
    | _ -> true
    | exception Not_found -> false);
  Alcotest.(check bool) "seen is committed" true
    ((Automaton.location env (Automaton.find_location env "seen")).Automaton.kind
    = Automaton.Committed)

let test_gen_hurry_urgent () =
  let sys = showdown_system Resource.Priority_nonpreemptive in
  let gen = Gen.generate sys in
  let hurry =
    Array.to_list gen.Gen.net.Network.channels
    |> List.find (fun (c : Channel.t) -> c.Channel.name = "hurry")
  in
  Alcotest.(check bool) "hurry is urgent broadcast" true
    (hurry.Channel.urgent && hurry.Channel.kind = Channel.Broadcast)

(* ------------------------------------------------------------------ *)
(* End-to-end analysis on small systems with known answers             *)
(* ------------------------------------------------------------------ *)

let test_analyze_uncontended () =
  (* single scenario, no rivals: WCRT = sum of durations, everywhere *)
  let s =
    Scenario.make ~name:"Only"
      ~trigger:(Eventmodel.Periodic_unknown_offset { period = 100_000 })
      ~band:Scenario.High
      ~steps:
        [
          Scenario.Compute { op = "a"; resource = "CPU"; instructions = 2e4 };
          Scenario.Transfer { msg = "m"; resource = "WIRE"; bytes = 1 };
          Scenario.Compute { op = "b"; resource = "CPU"; instructions = 1e4 };
        ]
      ~requirements:
        [
          { Scenario.req_name = "e2e"; from_step = None; to_step = 2; budget_us = None };
          { Scenario.req_name = "tail"; from_step = Some 0; to_step = 2; budget_us = None };
        ]
  in
  let cpu = Resource.processor "CPU" ~mips:10.0 ~policy:Resource.Priority_preemptive in
  let m = Sysmodel.make ~name:"solo" ~resources:[ cpu; wire ] ~scenarios:[ s ] () in
  let r = Analyze.wcrt m ~scenario:"Only" ~requirement:"e2e" in
  Alcotest.(check int) "uncontended field" 4000 r.Analyze.uncontended_us;
  (match r.Analyze.outcome with
  | Analyze.Exact_wcrt v -> Alcotest.(check int) "e2e = sum" 4000 v
  | _ -> Alcotest.fail "expected exact result");
  let r = Analyze.wcrt m ~scenario:"Only" ~requirement:"tail" in
  match r.Analyze.outcome with
  | Analyze.Exact_wcrt v -> Alcotest.(check int) "tail window" 2000 v
  | _ -> Alcotest.fail "expected exact result"

let test_analyze_nonpreemptive_blocking () =
  (* the showdown example: high job of 2 ms blocked by a 30 ms low job *)
  let exact sys =
    match (Analyze.wcrt sys ~scenario:"Hi" ~requirement:"r").Analyze.outcome with
    | Analyze.Exact_wcrt v -> v
    | _ -> Alcotest.fail "expected exact"
  in
  let np = exact (showdown_system Resource.Priority_nonpreemptive) in
  let p = exact (showdown_system Resource.Priority_preemptive) in
  Alcotest.(check int) "preemptive: just its own 2 ms" 2000 p;
  (* non-preemptive: 30 ms block + backlog of its own activations *)
  Alcotest.(check bool) "non-preemptive far worse" true (np >= 30_000);
  Alcotest.(check bool) "but bounded by block + backlog drain" true (np <= 36_000)

let test_analyze_binary_search_agrees () =
  let sys = showdown_system Resource.Priority_preemptive in
  let r1 = Analyze.wcrt sys ~scenario:"Hi" ~requirement:"r" in
  let r2 =
    Analyze.wcrt ~method_:(Analyze.Binary { hi = 4000 }) sys ~scenario:"Hi"
      ~requirement:"r"
  in
  match (r1.Analyze.outcome, r2.Analyze.outcome) with
  | Analyze.Exact_wcrt a, Analyze.Exact_wcrt b ->
      Alcotest.(check int) "sup = binary search" a b
  | _ -> Alcotest.fail "expected exact results"

let test_queue_overflow_detected () =
  (* utilization 1.0: backlog grows without bound; the bounded counters
     must catch it rather than silently drop events *)
  let s =
    Scenario.make ~name:"Sat"
      ~trigger:(Eventmodel.Periodic { period = 1000; offset = 0 })
      ~band:Scenario.High
      ~steps:[ Scenario.Compute { op = "w"; resource = "CPU"; instructions = 2e4 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  let cpu = Resource.processor "CPU" ~mips:10.0 ~policy:Resource.Priority_preemptive in
  let m = Sysmodel.make ~name:"sat" ~resources:[ cpu ] ~scenarios:[ s ] ~queue_bound:3 () in
  match Analyze.wcrt m ~scenario:"Sat" ~requirement:"r" with
  | _ -> Alcotest.fail "expected Out_of_range"
  | exception Ita_ta.Update.Out_of_range _ -> ()

(* ------------------------------------------------------------------ *)
(* TDMA: all four engines must agree on the textbook bound             *)
(* ------------------------------------------------------------------ *)

(* One 3 us job on a TDMA resource with a 5 us slot in a 10 us cycle:
   worst case 8 us (arrive just as the window closes, or get caught by
   the blackout mid-job). *)
let tdma_system () =
  let cpu =
    Resource.processor "CPU" ~mips:1.0
      ~policy:(Resource.Tdma { slot_us = 5; cycle_us = 10 })
  in
  let s =
    Scenario.make ~name:"Job"
      ~trigger:(Eventmodel.Sporadic { min_separation = 50 })
      ~band:Scenario.High
      ~steps:[ Scenario.Compute { op = "j"; resource = "CPU"; instructions = 3.0 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  Sysmodel.make ~name:"tdma" ~resources:[ cpu ] ~scenarios:[ s ] ()

let test_tdma_mc () =
  let sys = tdma_system () in
  match (Analyze.wcrt sys ~scenario:"Job" ~requirement:"r").Analyze.outcome with
  | Analyze.Exact_wcrt v -> Alcotest.(check int) "mc: slot miss + work" 8 v
  | _ -> Alcotest.fail "expected exact result"

let test_tdma_symta () =
  let sys = tdma_system () in
  let t = Ita_symta.Sysanalysis.analyze sys in
  Alcotest.(check int) "symta agrees" 8
    (Ita_symta.Sysanalysis.wcrt t sys ~scenario:"Job" ~requirement:"r")

let test_tdma_rtc () =
  let sys = tdma_system () in
  let t = Ita_rtc.Gpc.analyze sys in
  Alcotest.(check int) "rtc agrees" 8
    (Ita_rtc.Gpc.wcrt t sys ~scenario:"Job" ~requirement:"r")

let test_tdma_sim () =
  let sys = tdma_system () in
  let worst = ref 0 in
  for seed = 1 to 20 do
    let stats = Ita_sim.Engine.run ~seed ~horizon_us:5_000 sys in
    List.iter
      (fun (smp : Ita_sim.Engine.sample) ->
        worst := max !worst smp.Ita_sim.Engine.response_us;
        Alcotest.(check bool) "sim below the bound" true
          (smp.Ita_sim.Engine.response_us <= 8))
      stats.Ita_sim.Engine.samples
  done;
  (* the blackout must actually bite in some schedule *)
  Alcotest.(check bool) "sim sees a blackout" true (!worst > 3)

let test_tdma_generator_shape () =
  let sys = tdma_system () in
  let gen = Gen.generate sys in
  let cpu_auto = gen.Gen.net.Ita_ta.Network.automata.(0) in
  (* win_idle, blackout_idle, busy, pre *)
  Alcotest.(check int) "4 locations" 4
    (Array.length cpu_auto.Automaton.locations);
  Alcotest.(check bool) "has a slot clock" true
    (match Network.clock_index gen.Gen.net "CPU_s" with
    | _ -> true
    | exception Not_found -> false)

(* ------------------------------------------------------------------ *)
(* The Figure 8 bursty generator: with J = 2P the release backlog
   peaks at exactly ceil(J/P) + 1 = 3 pending events                   *)
(* ------------------------------------------------------------------ *)

let test_bursty_backlog () =
  let cpu =
    Resource.processor "CPU" ~mips:10.0 ~policy:Resource.Priority_preemptive
  in
  let s =
    Scenario.make ~name:"B"
      ~trigger:(Eventmodel.Bursty { period = 10_000; jitter = 20_000; min_separation = 0 })
      ~band:Scenario.High
      ~steps:[ Scenario.Compute { op = "w"; resource = "CPU"; instructions = 1e4 } ]
      ~requirements:[]
  in
  let sys =
    Sysmodel.make ~name:"burst" ~resources:[ cpu ] ~scenarios:[ s ]
      ~queue_bound:6 ()
  in
  let gen = Gen.generate sys in
  let pending = Network.var_index gen.Gen.net "B_pending" in
  let reach_pending c =
    Ita_mc.Reach.reach gen.Gen.net
      {
        Ita_mc.Query.comp_locs = [];
        guard = Guard.data Expr.(Cmp (Ge, Var pending, Int c));
      }
  in
  (match reach_pending 3 with
  | Ita_mc.Reach.Reachable _ -> ()
  | _ -> Alcotest.fail "a burst of 3 overlapping windows must be possible");
  match reach_pending 4 with
  | Ita_mc.Reach.Unreachable _ -> ()
  | _ -> Alcotest.fail "with J = 2P at most 3 releases can be pending"

(* With J = P two consecutive releases can coincide (window boundary)
   but never three; a fast consumer keeps the queue at the release
   burst. *)
let env_probe trigger ~instructions =
  let cpu =
    Resource.processor "CPU" ~mips:10.0 ~policy:Resource.Priority_preemptive
  in
  let s =
    Scenario.make ~name:"E" ~trigger ~band:Scenario.High
      ~steps:[ Scenario.Compute { op = "w"; resource = "CPU"; instructions } ]
      ~requirements:[]
  in
  let sys =
    Sysmodel.make ~name:"envp" ~resources:[ cpu ] ~scenarios:[ s ]
      ~queue_bound:6 ()
  in
  let gen = Gen.generate sys in
  let q0 = Gen.queue_var gen ~scenario:"E" ~step:0 in
  fun c ->
    Ita_mc.Reach.reach gen.Gen.net
      {
        Ita_mc.Query.comp_locs = [];
        guard = Guard.data Expr.(Cmp (Ge, Var q0, Int c));
      }

let test_jitter_coincidence () =
  let probe =
    env_probe
      (Eventmodel.Periodic_jitter { period = 10_000; jitter = 10_000 })
      ~instructions:1e4
  in
  (match probe 2 with
  | Ita_mc.Reach.Reachable _ -> ()
  | _ -> Alcotest.fail "J = P: two releases can coincide");
  match probe 3 with
  | Ita_mc.Reach.Unreachable _ -> ()
  | _ -> Alcotest.fail "J = P: three pending releases are impossible"

let test_sporadic_separation () =
  let probe =
    env_probe
      (Eventmodel.Sporadic { min_separation = 10_000 })
      ~instructions:1e4 (* 1 ms of work, drained well within the gap *)
  in
  match probe 2 with
  | Ita_mc.Reach.Unreachable _ -> ()
  | _ -> Alcotest.fail "sporadic separation must prevent queue build-up"

(* ------------------------------------------------------------------ *)
(* Segmented links: one frame of blocking instead of a whole message   *)
(* ------------------------------------------------------------------ *)

(* 8 kbps link: an 8-byte frame takes 8 ms.  A high-priority 8-byte
   message behind a low-priority 64-byte message waits for one frame
   (segmented) or the whole message (plain priority). *)
let segmented_system policy =
  let bus = Resource.link "BUS" ~kbps:8.0 ~policy in
  let hi =
    Scenario.make ~name:"Hi"
      ~trigger:(Eventmodel.Sporadic { min_separation = 200_000 })
      ~band:Scenario.High
      ~steps:[ Scenario.Transfer { msg = "h"; resource = "BUS"; bytes = 8 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  let lo =
    Scenario.make ~name:"Lo"
      ~trigger:(Eventmodel.Sporadic { min_separation = 500_000 })
      ~band:Scenario.Low
      ~steps:[ Scenario.Transfer { msg = "l"; resource = "BUS"; bytes = 64 } ]
      ~requirements:[]
  in
  Sysmodel.make ~name:"seg" ~resources:[ bus ] ~scenarios:[ hi; lo ] ()

let exact_hi sys =
  match (Analyze.wcrt sys ~scenario:"Hi" ~requirement:"r").Analyze.outcome with
  | Analyze.Exact_wcrt v -> v
  | _ -> Alcotest.fail "expected exact"

let test_segmented_mc () =
  let plain = exact_hi (segmented_system Resource.Priority_nonpreemptive) in
  Alcotest.(check int) "plain: whole-message block" 72_000 plain;
  let seg =
    exact_hi
      (segmented_system (Resource.Priority_segmented { frame_bytes = 8 }))
  in
  Alcotest.(check int) "segmented: one-frame block" 16_000 seg

let test_segmented_symta () =
  let wcrt sys =
    let t = Ita_symta.Sysanalysis.analyze sys in
    Ita_symta.Sysanalysis.wcrt t sys ~scenario:"Hi" ~requirement:"r"
  in
  Alcotest.(check int) "plain" 72_000
    (wcrt (segmented_system Resource.Priority_nonpreemptive));
  Alcotest.(check int) "segmented" 16_000
    (wcrt (segmented_system (Resource.Priority_segmented { frame_bytes = 8 })))

let test_segmented_sim () =
  let sys = segmented_system (Resource.Priority_segmented { frame_bytes = 8 }) in
  for seed = 1 to 10 do
    let stats = Ita_sim.Engine.run ~seed ~horizon_us:5_000_000 sys in
    List.iter
      (fun (smp : Ita_sim.Engine.sample) ->
        if smp.Ita_sim.Engine.scenario = "Hi" then
          Alcotest.(check bool) "sim below mc bound" true
            (smp.Ita_sim.Engine.response_us <= 16_000))
      stats.Ita_sim.Engine.samples
  done

let test_segmented_low_still_completes () =
  (* the 64-byte message still goes through (8 frames, possibly
     interleaved with high frames) *)
  let sys = segmented_system (Resource.Priority_segmented { frame_bytes = 8 }) in
  let sys =
    {
      sys with
      Sysmodel.scenarios =
        List.map
          (fun (sc : Scenario.t) ->
            if sc.Scenario.name = "Lo" then
              {
                sc with
                Scenario.requirements =
                  [
                    {
                      Scenario.req_name = "r";
                      from_step = None;
                      to_step = 0;
                      budget_us = None;
                    };
                  ];
              }
            else sc)
          sys.Sysmodel.scenarios;
    }
  in
  match (Analyze.wcrt sys ~scenario:"Lo" ~requirement:"r").Analyze.outcome with
  | Analyze.Exact_wcrt v ->
      (* 8 frames of its own + at most one high message per gap *)
      Alcotest.(check bool) "low bounded" true (v >= 64_000 && v <= 96_000)
  | _ -> Alcotest.fail "expected exact"

let () =
  Alcotest.run "core"
    [
      ("units", [ Alcotest.test_case "conversions" `Quick test_units ]);
      ( "eventmodel",
        [
          Alcotest.test_case "validate" `Quick test_eventmodel_validate;
          Alcotest.test_case "pjd/backlog" `Quick test_eventmodel_pjd;
        ] );
      ( "scenario/sysmodel",
        [
          Alcotest.test_case "scenario validation" `Quick test_scenario_validation;
          Alcotest.test_case "durations" `Quick test_sysmodel_durations;
        ] );
      ( "gen",
        [
          Alcotest.test_case "nonpreemptive shape" `Quick test_gen_nonpreemptive_shape;
          Alcotest.test_case "preemptive shape" `Quick test_gen_preemptive_shape;
          Alcotest.test_case "measuring variant" `Quick test_gen_measuring_variant;
          Alcotest.test_case "hurry urgent broadcast" `Quick test_gen_hurry_urgent;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "uncontended" `Quick test_analyze_uncontended;
          Alcotest.test_case "blocking" `Quick test_analyze_nonpreemptive_blocking;
          Alcotest.test_case "binary agrees with sup" `Quick
            test_analyze_binary_search_agrees;
          Alcotest.test_case "queue overflow detected" `Quick
            test_queue_overflow_detected;
        ] );
      ( "tdma",
        [
          Alcotest.test_case "model checker" `Quick test_tdma_mc;
          Alcotest.test_case "busy window" `Quick test_tdma_symta;
          Alcotest.test_case "calculus" `Quick test_tdma_rtc;
          Alcotest.test_case "simulation" `Quick test_tdma_sim;
          Alcotest.test_case "generator shape" `Quick test_tdma_generator_shape;
        ] );
      ( "eventmodels",
        [
          Alcotest.test_case "bursty backlog bound" `Quick test_bursty_backlog;
          Alcotest.test_case "jitter coincidence" `Quick test_jitter_coincidence;
          Alcotest.test_case "sporadic separation" `Quick
            test_sporadic_separation;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "check_budgets verdicts" `Quick
            (fun () ->
              (* the 10 ms control loop of the scheduler example: met
                 with preemption, violated without *)
              let report policy =
                let cpu = Resource.processor "CPU" ~mips:10.0 ~policy in
                let s =
                  Scenario.make ~name:"Loop"
                    ~trigger:(Eventmodel.Periodic_unknown_offset { period = 20_000 })
                    ~band:Scenario.High
                    ~steps:
                      [ Scenario.Compute { op = "c"; resource = "CPU"; instructions = 2e4 } ]
                    ~requirements:
                      [
                        {
                          Scenario.req_name = "dl";
                          from_step = None;
                          to_step = 0;
                          budget_us = Some 10_000;
                        };
                      ]
                in
                let lo =
                  Scenario.make ~name:"Noise"
                    ~trigger:(Eventmodel.Sporadic { min_separation = 100_000 })
                    ~band:Scenario.Low
                    ~steps:
                      [ Scenario.Compute { op = "n"; resource = "CPU"; instructions = 3e5 } ]
                    ~requirements:[]
                in
                let sys =
                  Sysmodel.make ~name:"b" ~resources:[ cpu ]
                    ~scenarios:[ s; lo ] ~queue_bound:8 ()
                in
                match Analyze.check_budgets sys with
                | [ r ] -> r.Analyze.verdict
                | _ -> Alcotest.fail "expected one budgeted requirement"
              in
              Alcotest.(check bool) "preemptive meets" true
                (report Resource.Priority_preemptive = Analyze.Met);
              Alcotest.(check bool) "nonpreemptive violates" true
                (report Resource.Priority_nonpreemptive = Analyze.Violated));
        ] );
      ( "segmented",
        [
          Alcotest.test_case "model checker" `Quick test_segmented_mc;
          Alcotest.test_case "busy window" `Quick test_segmented_symta;
          Alcotest.test_case "simulation" `Quick test_segmented_sim;
          Alcotest.test_case "low completes" `Quick
            test_segmented_low_still_completes;
        ] );
    ]
