(* Tests for the real-time-calculus substrate: curves, min-plus
   operators and the GPC composition. *)

open Ita_core
module Curve = Ita_rtc.Curve
module Minplus = Ita_rtc.Minplus
module Gpc = Ita_rtc.Gpc

let horizon = 1_000

(* ------------------------------------------------------------------ *)
(* Curves                                                              *)
(* ------------------------------------------------------------------ *)

let test_upper_pjd () =
  (* closed-window convention: alpha(0) is the instantaneous burst *)
  let a = Curve.upper_pjd ~period:10 ~jitter:0 ~dmin:0 in
  Alcotest.(check int) "alpha(0)" 1 (Curve.eval a 0);
  Alcotest.(check int) "alpha(9)" 1 (Curve.eval a 9);
  Alcotest.(check int) "alpha(10)" 2 (Curve.eval a 10);
  let b = Curve.upper_pjd ~period:10 ~jitter:15 ~dmin:0 in
  Alcotest.(check int) "jitter burst at 0" 2 (Curve.eval b 0);
  let c = Curve.upper_pjd ~period:10 ~jitter:15 ~dmin:3 in
  Alcotest.(check int) "dmin caps the burst" 1 (Curve.eval c 0);
  Alcotest.(check int) "dmin: two events 3 apart" 2 (Curve.eval c 3)

let test_lower_pjd () =
  let a = Curve.lower_pjd ~period:10 ~jitter:5 in
  Alcotest.(check int) "alpha-(5)" 0 (Curve.eval a 5);
  Alcotest.(check int) "alpha-(15)" 1 (Curve.eval a 15);
  Alcotest.(check int) "alpha-(26)" 2 (Curve.eval a 26)

let test_curve_algebra () =
  let r = Curve.rate 2 in
  Alcotest.(check int) "rate" 14 (Curve.eval r 7);
  let k = Curve.constant 5 in
  let s = Curve.add r k in
  Alcotest.(check int) "add" 19 (Curve.eval s 7);
  let m = Curve.min_c r (Curve.constant 6) in
  Alcotest.(check int) "min small d" 4 (Curve.eval m 2);
  Alcotest.(check int) "min large d" 6 (Curve.eval m 100);
  let sh = Curve.shift_left r 3 in
  Alcotest.(check int) "shift" 8 (Curve.eval sh 1)

let prop_upper_monotone =
  QCheck2.Test.make ~count:300 ~name:"upper_pjd monotone"
    QCheck2.Gen.(tup4 (int_range 1 40) (int_range 0 80) (int_range 0 8) (int_range 0 200))
    (fun (p, j, d, x) ->
      let a = Curve.upper_pjd ~period:p ~jitter:j ~dmin:d in
      Curve.eval a x <= Curve.eval a (x + 1))

(* ------------------------------------------------------------------ *)
(* Min-plus operators                                                  *)
(* ------------------------------------------------------------------ *)

let test_horizontal_deviation () =
  (* one event of demand 5 on a unit-rate server: delay 5 *)
  let demand = Curve.scale (Curve.upper_pjd ~period:100 ~jitter:0 ~dmin:0) 5 in
  let service = Curve.rate 1 in
  Alcotest.(check int) "single job" 5
    (Minplus.horizontal_deviation ~horizon ~demand ~service);
  (* overload within the horizon: no bound *)
  let heavy = Curve.scale (Curve.upper_pjd ~period:2 ~jitter:0 ~dmin:0) 5 in
  Alcotest.(check bool) "overload detected" true
    (Minplus.horizontal_deviation ~horizon ~demand:heavy ~service = max_int)

let test_leftover () =
  (* unit rate minus one 5-unit job per 10: leftover has 5 per 10 *)
  let hi = Curve.scale (Curve.upper_pjd ~period:10 ~jitter:0 ~dmin:0) 5 in
  let left = Minplus.leftover ~horizon ~service:(Curve.rate 1) ~demand:hi in
  (* sup at lambda = 9 (just before the second event): 9 - 5 = 4 *)
  Alcotest.(check int) "leftover at 10" 4 (Curve.eval left 10);
  Alcotest.(check int) "leftover at 20" 9 (Curve.eval left 20);
  Alcotest.(check int) "leftover never negative" 0 (Curve.eval left 0)

let test_conv_deconv () =
  let f = Curve.rate 2 and g = Curve.rate 3 in
  let c = Minplus.conv ~horizon f g in
  (* conv of two rates = the smaller rate *)
  Alcotest.(check int) "conv rates" 20 (Curve.eval c 10);
  let a = Curve.upper_pjd ~period:10 ~jitter:0 ~dmin:0 in
  let d = Minplus.deconv ~horizon a (Curve.lower_pjd ~period:10 ~jitter:0) in
  (* deconvolution only widens *)
  Alcotest.(check bool) "deconv dominates" true (Curve.eval d 10 >= Curve.eval a 10)

let prop_leftover_bounded =
  QCheck2.Test.make ~count:100 ~name:"leftover within [0, service]"
    QCheck2.Gen.(tup3 (int_range 1 30) (int_range 1 10) (int_range 0 300))
    (fun (p, c, x) ->
      let demand = Curve.scale (Curve.upper_pjd ~period:p ~jitter:0 ~dmin:0) c in
      let left = Minplus.leftover ~horizon ~service:(Curve.rate 1) ~demand in
      let v = Curve.eval left x in
      0 <= v && v <= x)

(* ------------------------------------------------------------------ *)
(* GPC on systems with known answers                                   *)
(* ------------------------------------------------------------------ *)

let test_gpc_solo () =
  let cpu = Resource.processor "CPU" ~mips:10.0 ~policy:Resource.Priority_preemptive in
  let s =
    Scenario.make ~name:"Solo"
      ~trigger:(Eventmodel.Periodic_unknown_offset { period = 100_000 })
      ~band:Scenario.High
      ~steps:
        [ Scenario.Compute { op = "a"; resource = "CPU"; instructions = 2e4 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  let sys = Sysmodel.make ~name:"solo" ~resources:[ cpu ] ~scenarios:[ s ] () in
  let t = Gpc.analyze sys in
  Alcotest.(check int) "solo delay = wcet" 2000
    (Gpc.wcrt t sys ~scenario:"Solo" ~requirement:"r")

let test_gpc_two_bands () =
  let cpu = Resource.processor "CPU" ~mips:10.0 ~policy:Resource.Priority_preemptive in
  let hi =
    Scenario.make ~name:"Hi"
      ~trigger:(Eventmodel.Periodic_unknown_offset { period = 10_000 })
      ~band:Scenario.High
      ~steps:[ Scenario.Compute { op = "h"; resource = "CPU"; instructions = 2e4 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  let lo =
    Scenario.make ~name:"Lo"
      ~trigger:(Eventmodel.Sporadic { min_separation = 20_000 })
      ~band:Scenario.Low
      ~steps:[ Scenario.Compute { op = "l"; resource = "CPU"; instructions = 5e4 } ]
      ~requirements:
        [ { Scenario.req_name = "r"; from_step = None; to_step = 0; budget_us = None } ]
  in
  let sys = Sysmodel.make ~name:"duo" ~resources:[ cpu ] ~scenarios:[ hi; lo ] () in
  let t = Gpc.analyze sys in
  Alcotest.(check int) "high unaffected by low" 2000
    (Gpc.wcrt t sys ~scenario:"Hi" ~requirement:"r");
  (* low on leftover service: 5 + one 2 ms preemption = 7 ms, the
     busy-window answer; the curve analysis must agree *)
  Alcotest.(check int) "low on leftover" 7000
    (Gpc.wcrt t sys ~scenario:"Lo" ~requirement:"r")

let test_gpc_backlog () =
  let sys = Ita_casestudy.Radionav.system Ita_casestudy.Radionav.Al_tmc
      Ita_casestudy.Radionav.Pno
  in
  let t = Gpc.analyze sys in
  List.iter
    (fun (st : Gpc.step_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s backlog sane" st.Gpc.scenario st.Gpc.step_name)
        true
        (st.Gpc.backlog >= 0 && st.Gpc.backlog <= 8))
    t.Gpc.steps

let () =
  Alcotest.run "rtc"
    [
      ( "curve",
        [
          Alcotest.test_case "upper pjd" `Quick test_upper_pjd;
          Alcotest.test_case "lower pjd" `Quick test_lower_pjd;
          Alcotest.test_case "algebra" `Quick test_curve_algebra;
          QCheck_alcotest.to_alcotest prop_upper_monotone;
        ] );
      ( "minplus",
        [
          Alcotest.test_case "horizontal deviation" `Quick
            test_horizontal_deviation;
          Alcotest.test_case "leftover" `Quick test_leftover;
          Alcotest.test_case "conv/deconv" `Quick test_conv_deconv;
          QCheck_alcotest.to_alcotest prop_leftover_bounded;
        ] );
      ( "gpc",
        [
          Alcotest.test_case "solo" `Quick test_gpc_solo;
          Alcotest.test_case "two bands" `Quick test_gpc_two_bands;
          Alcotest.test_case "backlog sanity" `Quick test_gpc_backlog;
        ] );
    ]
