(* Small hand-built networks with known answers, shared by the ta and
   mc test suites. *)

open Ita_ta

let tt = Guard.tt

let loc ?(kind = Automaton.Normal) ?(invariant = tt) loc_name =
  { Automaton.loc_name; invariant; kind }

let edge ?(guard = tt) ?(sync = Automaton.NoSync) ?(update = Update.none) src
    dst =
  { Automaton.src; guard; sync; update; dst }

(* Two-phase automaton: L0 --(1 <= x <= 2, x := 0)--> L1 (inv x <= 4)
   --(x == 4)--> L2.  Clock [y] is never reset, so on *entering* L2 it
   ranges over [5, 6]: the canonical sup-query example.  L2 is
   committed so that time stops there — exactly like the paper's [seen]
   location of the measuring automaton; otherwise [y] would keep
   growing at L2 and its sup would rightly be infinite. *)
let two_phase () =
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  let y = Network.Builder.clock b "y" in
  let p =
    Automaton.make ~name:"P"
      ~locations:
        [
          loc "L0";
          loc "L1" ~invariant:(Guard.clock_le x 4);
          loc "L2" ~kind:Automaton.Committed;
        ]
      ~edges:
        [
          edge 0 1
            ~guard:(Guard.conj (Guard.clock_ge x 1) (Guard.clock_le x 2))
            ~update:(Update.reset x);
          edge 1 2 ~guard:(Guard.clock_eq x 4);
        ]
      ~initial:0
  in
  Network.Builder.add_automaton b p;
  let net = Network.Builder.build b in
  (net, x, y)

(* Urgency: T sets [flag] at z == 5; U's urgent [hurry!] edge is then
   enabled, so time may not pass until U moves. *)
let urgent_gate () =
  let b = Network.Builder.create () in
  let z = Network.Builder.clock b "z" in
  let flag = Network.Builder.int_var b "flag" ~lo:0 ~hi:1 ~init:0 in
  let hurry = Network.Builder.channel b "hurry" Channel.Broadcast ~urgent:true in
  let u =
    Automaton.make ~name:"U"
      ~locations:[ loc "L0"; loc "L1" ]
      ~edges:
        [
          edge 0 1
            ~guard:(Guard.data Expr.(Cmp (Eq, Var flag, Int 1)))
            ~sync:(Automaton.Send hurry);
        ]
      ~initial:0
  in
  let t =
    Automaton.make ~name:"T"
      ~locations:[ loc "M0" ~invariant:(Guard.clock_le z 5); loc "M1" ]
      ~edges:
        [
          edge 0 1 ~guard:(Guard.clock_eq z 5)
            ~update:(Update.set flag (Expr.Int 1));
        ]
      ~initial:0
  in
  Network.Builder.add_automaton b u;
  Network.Builder.add_automaton b t;
  (Network.Builder.build b, z)

(* Committed: while A sits in committed K1, the unrelated B may not
   move. *)
let committed_gate () =
  let b = Network.Builder.create () in
  let w = Network.Builder.clock b "w" in
  let a =
    Automaton.make ~name:"A"
      ~locations:
        [
          loc "K0" ~invariant:(Guard.clock_le w 3);
          loc "K1" ~kind:Automaton.Committed;
          loc "K2";
        ]
      ~edges:[ edge 0 1 ~guard:(Guard.clock_eq w 3); edge 1 2 ]
      ~initial:0
  in
  let bb =
    Automaton.make ~name:"B"
      ~locations:[ loc "N0"; loc "N1" ]
      ~edges:[ edge 0 1 ]
      ~initial:0
  in
  Network.Builder.add_automaton b a;
  Network.Builder.add_automaton b bb;
  (Network.Builder.build b, w)

(* Binary handshake: S moves iff R has reached its listening
   location. *)
let handshake () =
  let b = Network.Builder.create () in
  let z = Network.Builder.clock b "z" in
  let c = Network.Builder.channel b "c" Channel.Binary ~urgent:false in
  let s =
    Automaton.make ~name:"S"
      ~locations:[ loc "P0"; loc "P1" ]
      ~edges:[ edge 0 1 ~sync:(Automaton.Send c) ]
      ~initial:0
  in
  let r =
    Automaton.make ~name:"R"
      ~locations:[ loc "Q0"; loc "Q1"; loc "Q2" ]
      ~edges:
        [
          edge 0 1 ~guard:(Guard.clock_ge z 2);
          edge 1 2 ~sync:(Automaton.Recv c);
        ]
      ~initial:0
  in
  Network.Builder.add_automaton b s;
  Network.Builder.add_automaton b r;
  (Network.Builder.build b, z)

(* Broadcast: one sender, two receivers of which only one is enabled;
   the disabled one must not block and must not move. *)
let broadcast_pair () =
  let b = Network.Builder.create () in
  let ok = Network.Builder.int_var b "ok" ~lo:0 ~hi:1 ~init:1 in
  let c = Network.Builder.channel b "bc" Channel.Broadcast ~urgent:false in
  let s =
    Automaton.make ~name:"S"
      ~locations:[ loc "P0"; loc "P1" ]
      ~edges:[ edge 0 1 ~sync:(Automaton.Send c) ]
      ~initial:0
  in
  let recv name guard =
    Automaton.make ~name
      ~locations:[ loc "R0"; loc "R1" ]
      ~edges:[ edge 0 1 ~sync:(Automaton.Recv c) ~guard ]
      ~initial:0
  in
  Network.Builder.add_automaton b s;
  Network.Builder.add_automaton b
    (recv "REN" (Guard.data Expr.(Cmp (Eq, Var ok, Int 1))));
  Network.Builder.add_automaton b
    (recv "RDIS" (Guard.data Expr.(Cmp (Eq, Var ok, Int 0))));
  Network.Builder.build b
