test/test_dbm.mli:
