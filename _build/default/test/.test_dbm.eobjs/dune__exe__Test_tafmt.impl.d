test/test_tafmt.ml: Alcotest Ita_mc Ita_ta Ita_tafmt List Network Sys
