test/test_tafmt.mli:
