test/test_core.ml: Alcotest Analyze Array Automaton Channel Eventmodel Expr Format Gen Guard Ita_core Ita_mc Ita_rtc Ita_sim Ita_symta Ita_ta List Network Resource Result Scenario Sysmodel Units
