test/test_symta.ml: Alcotest Eventmodel Ita_casestudy Ita_core Ita_symta List QCheck2 QCheck_alcotest Resource Scenario Sysmodel
