test/test_casestudy.ml: Alcotest Analyze Eventmodel Ita_casestudy Ita_core Ita_rtc Ita_sim Ita_symta List Printf Sysmodel
