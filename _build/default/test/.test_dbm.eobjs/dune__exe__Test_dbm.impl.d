test/test_dbm.ml: Alcotest Array Ita_dbm List QCheck2 QCheck_alcotest
