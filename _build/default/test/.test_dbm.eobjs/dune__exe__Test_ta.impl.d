test/test_ta.ml: Alcotest Array Automaton Channel Expr Guard Ita_dbm Ita_ta List Models Network QCheck2 QCheck_alcotest Semantics Update
