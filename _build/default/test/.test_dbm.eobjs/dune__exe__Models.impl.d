test/models.ml: Automaton Channel Expr Guard Ita_ta Network Update
