test/test_sim.ml: Alcotest Eventmodel Ita_core Ita_sim List Option QCheck2 QCheck_alcotest Resource Scenario Sysmodel
