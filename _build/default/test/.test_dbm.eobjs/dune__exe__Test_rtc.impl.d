test/test_rtc.ml: Alcotest Eventmodel Ita_casestudy Ita_core Ita_rtc List Printf QCheck2 QCheck_alcotest Resource Scenario Sysmodel
