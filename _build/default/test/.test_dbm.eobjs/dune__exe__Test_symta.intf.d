test/test_symta.mli:
