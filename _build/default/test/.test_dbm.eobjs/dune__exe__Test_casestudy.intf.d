test/test_casestudy.mli:
