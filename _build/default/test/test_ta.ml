(* Tests for the timed-automata formalism: expressions, guards,
   updates, network construction and the symbolic successor relation. *)

open Ita_ta
module Dbm = Ita_dbm.Dbm
module Bound = Ita_dbm.Bound

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let test_expr_eval () =
  let env = [| 3; -2 |] in
  let e = Expr.(Add (Mul (Var 0, Int 4), Neg (Var 1))) in
  Alcotest.(check int) "3*4 - (-2)" 14 (Expr.eval env e);
  let b = Expr.(And (Cmp (Gt, Var 0, Int 0), Not (Cmp (Eq, Var 1, Int 0)))) in
  Alcotest.(check bool) "bool eval" true (Expr.eval_bool env b);
  let ite = Expr.(Ite (Cmp (Lt, Var 1, Int 0), Int 1, Int 2)) in
  Alcotest.(check int) "ite" 1 (Expr.eval env ite)

let test_expr_division () =
  Alcotest.(check int) "div" 3 (Expr.eval [||] (Expr.Div (Int 7, Int 2)));
  Alcotest.check_raises "div by zero"
    (Expr.Division_by_zero (Expr.Div (Expr.Int 1, Expr.Int 0)))
    (fun () -> ignore (Expr.eval [||] (Expr.Div (Expr.Int 1, Expr.Int 0))))

let test_expr_interval () =
  let ranges = [| (0, 10); (-5, 5) |] in
  let lo, hi = Expr.interval ranges Expr.(Add (Var 0, Var 1)) in
  Alcotest.(check (pair int int)) "add" (-5, 15) (lo, hi);
  let lo, hi = Expr.interval ranges Expr.(Mul (Var 0, Var 1)) in
  Alcotest.(check (pair int int)) "mul" (-50, 50) (lo, hi);
  let lo, hi = Expr.interval ranges Expr.(Sub (Int 0, Var 0)) in
  Alcotest.(check (pair int int)) "sub" (-10, 0) (lo, hi)

let test_expr_interval_sound =
  QCheck2.Test.make ~count:300 ~name:"interval encloses eval"
    QCheck2.Gen.(tup2 (int_range 0 10) (int_range (-5) 5))
    (fun (a, b) ->
      let ranges = [| (0, 10); (-5, 5) |] in
      let env = [| a; b |] in
      let exprs =
        Expr.
          [
            Add (Var 0, Var 1);
            Sub (Mul (Var 0, Var 1), Int 3);
            Ite (Cmp (Ge, Var 1, Int 0), Var 0, Neg (Var 0));
          ]
      in
      List.for_all
        (fun e ->
          let lo, hi = Expr.interval ranges e in
          let v = Expr.eval env e in
          lo <= v && v <= hi)
        exprs)

(* ------------------------------------------------------------------ *)
(* Guards and updates                                                  *)
(* ------------------------------------------------------------------ *)

let test_guard_apply () =
  let env = [| 7 |] in
  let z = Dbm.zero 1 in
  Dbm.up z;
  (* x <= v where v = 7 from the environment *)
  Guard.apply env (Guard.clock_rel 1 Guard.Le (Expr.Var 0)) z;
  Alcotest.(check int) "sup picked up variable bound" (Bound.le 7 :> int)
    (Dbm.sup z 1 :> int)

let test_guard_max_constant () =
  let g =
    Guard.conj
      (Guard.clock_le 1 40)
      (Guard.clock_rel 1 Guard.Ge (Expr.Var 0))
  in
  Alcotest.(check int) "max over var range" 100
    (Guard.max_constant [| (0, 100) |] g 1);
  Alcotest.(check int) "other clock unconstrained" 0
    (Guard.max_constant [| (0, 100) |] g 2)

let test_update_sequential () =
  let ranges = [| (0, 10); (0, 10) |] in
  let env = [| 1; 2 |] in
  let u =
    Update.seq
      [
        Update.set 0 Expr.(Add (Var 0, Int 1));
        Update.set 1 Expr.(Mul (Var 0, Int 3)) (* sees the new value *);
      ]
  in
  Update.apply_env ~ranges env u;
  Alcotest.(check (pair int int)) "sequential" (2, 6) (env.(0), env.(1))

let test_update_out_of_range () =
  let ranges = [| (0, 3) |] in
  let env = [| 3 |] in
  Alcotest.check_raises "overflow"
    (Update.Out_of_range { var = 0; value = 4 })
    (fun () -> Update.apply_env ~ranges env (Update.incr 0))

(* ------------------------------------------------------------------ *)
(* Builder validation                                                  *)
(* ------------------------------------------------------------------ *)

let build_with_urgent_clock_guard () =
  let b = Network.Builder.create () in
  let x = Network.Builder.clock b "x" in
  let c = Network.Builder.channel b "u" Channel.Binary ~urgent:true in
  let a =
    Automaton.make ~name:"A"
      ~locations:[ Models.loc "L0"; Models.loc "L1" ]
      ~edges:
        [
          Models.edge 0 1 ~guard:(Guard.clock_ge x 1)
            ~sync:(Automaton.Send c);
        ]
      ~initial:0
  in
  Network.Builder.add_automaton b a;
  ignore (Network.Builder.build b)

let test_validation () =
  (match build_with_urgent_clock_guard () with
  | () -> Alcotest.fail "expected Invalid_model"
  | exception Network.Invalid_model _ -> ());
  let b = Network.Builder.create () in
  ignore (Network.Builder.clock b "x");
  (match Network.Builder.clock b "x" with
  | _ -> Alcotest.fail "duplicate clock accepted"
  | exception Network.Invalid_model _ -> ());
  match Network.Builder.int_var b "v" ~lo:0 ~hi:1 ~init:5 with
  | _ -> Alcotest.fail "bad init accepted"
  | exception Network.Invalid_model _ -> ()

let test_extrapolation_constants () =
  let net, x, y = Models.two_phase () in
  Alcotest.(check int) "k(x) from guards/invariants" 4 net.Network.k.(x);
  Alcotest.(check int) "k(y): unconstrained" 0 net.Network.k.(y);
  let net' = Network.bump_clock_bound net y 99 in
  Alcotest.(check int) "bumped" 99 net'.Network.k.(y);
  Alcotest.(check int) "original untouched" 0 net.Network.k.(y)

(* ------------------------------------------------------------------ *)
(* Symbolic semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_initial_delay_closed () =
  let net, x, y = Models.two_phase () in
  (* clock y is only observed by queries: unpinned it is normalized
     away by active-clock reduction *)
  let c = Semantics.initial net in
  Alcotest.(check bool) "x unbounded" true
    (Bound.is_infinity (Dbm.sup c.Semantics.zone x));
  Alcotest.(check int) "unpinned y normalized to 0" (Bound.le 0 :> int)
    (Dbm.sup c.Semantics.zone y :> int);
  (* pinning y (as every query does) keeps it tracked *)
  let net = Network.bump_clock_bound net y 1 in
  let c = Semantics.initial net in
  Alcotest.(check bool) "pinned y unbounded" true
    (Bound.is_infinity (Dbm.sup c.Semantics.zone y));
  Alcotest.(check int) "x - y == 0" (Bound.le 0 :> int)
    (Dbm.get c.Semantics.zone x y :> int)

let test_successors_two_phase () =
  let net, x, _y = Models.two_phase () in
  let c0 = Semantics.initial net in
  match Semantics.successors net c0 with
  | [ (Semantics.Internal { comp = 0; edge = 0 }, c1) ] -> (
      (* after L0 -> L1, x in [0, 4] by the invariant *)
      Alcotest.(check int) "x <= 4 in L1" (Bound.le 4 :> int)
        (Dbm.sup c1.Semantics.zone x :> int);
      match Semantics.successors net c1 with
      | [ (Semantics.Internal { comp = 0; edge = 1 }, c2) ] ->
          Alcotest.(check int) "at L2" 2 c2.Semantics.state.Semantics.locs.(0)
      | l -> Alcotest.failf "expected one successor of L1, got %d" (List.length l))
  | l -> Alcotest.failf "expected one successor, got %d" (List.length l)

let test_urgency_blocks_delay () =
  let net, _z = Models.urgent_gate () in
  let c0 = Semantics.initial net in
  (* find the successor where T sets the flag *)
  let after_t =
    List.find_map
      (fun (_, c) ->
        if c.Semantics.state.Semantics.env.(0) = 1 then Some c else None)
      (Semantics.successors net c0)
  in
  match after_t with
  | None -> Alcotest.fail "T never fired"
  | Some c ->
      Alcotest.(check bool) "urgent sync disables delay" false
        (Semantics.delay_allowed net c.Semantics.state)

let test_committed_blocks_others () =
  let net, _w = Models.committed_gate () in
  let c0 = Semantics.initial net in
  Alcotest.(check bool) "initially both may move" true
    (List.length (Semantics.successors net c0) = 2);
  let at_k1 =
    List.find_map
      (fun (_, c) ->
        if c.Semantics.state.Semantics.locs.(0) = 1 then Some c else None)
      (Semantics.successors net c0)
  in
  match at_k1 with
  | None -> Alcotest.fail "A never reached K1"
  | Some c -> (
      Alcotest.(check bool) "committed: no delay" false
        (Semantics.delay_allowed net c.Semantics.state);
      match Semantics.successors net c with
      | [ (Semantics.Internal { comp = 0; edge = 1 }, _) ] -> ()
      | l ->
          Alcotest.failf "expected only A's edge from committed, got %d"
            (List.length l))

let test_handshake_pairs () =
  let net, _z = Models.handshake () in
  let c0 = Semantics.initial net in
  (* only R's internal move is possible initially: S must wait *)
  (match Semantics.successors net c0 with
  | [ (Semantics.Internal { comp = 1; edge = 0 }, c1) ] -> (
      match Semantics.successors net c1 with
      | [ (Semantics.Sync { sender = 0, 0; receivers = [ (1, 1) ]; _ }, c2) ]
        ->
          Alcotest.(check int) "S at P1" 1
            c2.Semantics.state.Semantics.locs.(0);
          Alcotest.(check int) "R at Q2" 2
            c2.Semantics.state.Semantics.locs.(1)
      | l -> Alcotest.failf "expected the handshake, got %d" (List.length l))
  | l -> Alcotest.failf "expected only R's move, got %d" (List.length l))

let test_broadcast () =
  let net = Models.broadcast_pair () in
  let c0 = Semantics.initial net in
  match Semantics.successors net c0 with
  | [ (Semantics.Sync { receivers; _ }, c1) ] ->
      Alcotest.(check int) "one receiver participates" 1
        (List.length receivers);
      Alcotest.(check int) "enabled receiver moved" 1
        c1.Semantics.state.Semantics.locs.(1);
      Alcotest.(check int) "disabled receiver stayed" 0
        c1.Semantics.state.Semantics.locs.(2)
  | l -> Alcotest.failf "expected one broadcast, got %d" (List.length l)

let () =
  Alcotest.run "ta"
    [
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "division" `Quick test_expr_division;
          Alcotest.test_case "interval" `Quick test_expr_interval;
          QCheck_alcotest.to_alcotest test_expr_interval_sound;
        ] );
      ( "guard/update",
        [
          Alcotest.test_case "apply with variable bound" `Quick
            test_guard_apply;
          Alcotest.test_case "max constant" `Quick test_guard_max_constant;
          Alcotest.test_case "sequential update" `Quick test_update_sequential;
          Alcotest.test_case "out of range" `Quick test_update_out_of_range;
        ] );
      ( "network",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "extrapolation constants" `Quick
            test_extrapolation_constants;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "initial delay-closed" `Quick
            test_initial_delay_closed;
          Alcotest.test_case "two-phase successors" `Quick
            test_successors_two_phase;
          Alcotest.test_case "urgency blocks delay" `Quick
            test_urgency_blocks_delay;
          Alcotest.test_case "committed blocks others" `Quick
            test_committed_blocks_others;
          Alcotest.test_case "binary handshake" `Quick test_handshake_pairs;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
        ] );
    ]
