(* Regression tests pinning the case study to its validated numbers
   (see EXPERIMENTS.md).  Only cells that analyze in well under a
   second are pinned here; the slow ChangeVolume-combination cells are
   exercised by the bench harness instead. *)

open Ita_core
module R = Ita_casestudy.Radionav

let exact sys ~scenario ~requirement =
  match (Analyze.wcrt sys ~scenario ~requirement).Analyze.outcome with
  | Analyze.Exact_wcrt v -> v
  | Analyze.Wcrt_lower_bound _ -> Alcotest.fail "expected exact, got bound"
  | Analyze.No_response -> Alcotest.fail "no response"

let test_parameters () =
  let sys = R.system R.Al_tmc R.Po in
  let al = Sysmodel.scenario sys "AddressLookup" in
  (* the paper-pinning identity: rounded-us AddressLookup chain *)
  Alcotest.(check int) "AddressLookup uncontended = 79.075 ms" 79_075
    (Sysmodel.uncontended_us sys al ~from_step:None ~to_step:4);
  let tmc = Sysmodel.scenario sys "HandleTMC" in
  Alcotest.(check int) "HandleTMC uncontended = 172.106 ms" 172_106
    (Sysmodel.uncontended_us sys tmc ~from_step:None ~to_step:4)

let test_al_po () =
  let sys = R.system R.Al_tmc R.Po in
  Alcotest.(check int) "AddressLookup po = paper's 79.075" 79_075
    (exact sys ~scenario:"AddressLookup" ~requirement:"E2E");
  Alcotest.(check int) "HandleTMC po = paper's 172.106" 172_106
    (exact sys ~scenario:"HandleTMC" ~requirement:"TMC")

let test_tmc_pno_sp () =
  (* paper: 239.080; we compute 239.081 (1 us of publication rounding) *)
  let pno = R.system R.Al_tmc R.Pno in
  Alcotest.(check int) "HandleTMC pno" 239_081
    (exact pno ~scenario:"HandleTMC" ~requirement:"TMC");
  let sp = R.system R.Al_tmc R.Sp in
  Alcotest.(check int) "HandleTMC sp = pno (paper agrees)" 239_081
    (exact sp ~scenario:"HandleTMC" ~requirement:"TMC")

let test_al_invariance () =
  (* "AddressLookup ... remains constant since it has priority" *)
  List.iter
    (fun col ->
      let sys = R.system R.Al_tmc col in
      Alcotest.(check int)
        (Printf.sprintf "AddressLookup %s" (R.column_name col))
        79_075
        (exact sys ~scenario:"AddressLookup" ~requirement:"E2E"))
    [ R.Po; R.Pno; R.Pj; R.Bur ]

let test_cv_po_tmc () =
  let sys = R.system R.Cv_tmc R.Po in
  (* paper 357.133 with its (unpublished) MMI arbitration; ours is the
     nondeterministic-within-band reading: 373.859 *)
  Alcotest.(check int) "HandleTMC (+ChangeVolume) po" 373_859
    (exact sys ~scenario:"HandleTMC" ~requirement:"TMC")

let test_sim_below_mc () =
  (* Table 2's shape: simulation never exceeds the model checker *)
  let sys = R.system R.Al_tmc R.Pno in
  let mc = exact sys ~scenario:"HandleTMC" ~requirement:"TMC" in
  for seed = 1 to 5 do
    let stats = Ita_sim.Engine.run ~seed ~horizon_us:30_000_000 sys in
    List.iter
      (fun (s : Ita_sim.Engine.sample) ->
        if s.Ita_sim.Engine.scenario = "HandleTMC" then
          Alcotest.(check bool)
            (Printf.sprintf "seed %d below mc" seed)
            true
            (s.Ita_sim.Engine.response_us <= mc))
      stats.Ita_sim.Engine.samples
  done

let test_analytic_above_mc () =
  (* ... and the analytic techniques never fall below it *)
  let sys = R.system R.Al_tmc R.Pno in
  let mc = exact sys ~scenario:"HandleTMC" ~requirement:"TMC" in
  let symta =
    let t = Ita_symta.Sysanalysis.analyze sys in
    Ita_symta.Sysanalysis.wcrt t sys ~scenario:"HandleTMC" ~requirement:"TMC"
  in
  let mpa =
    let t = Ita_rtc.Gpc.analyze sys in
    Ita_rtc.Gpc.wcrt t sys ~scenario:"HandleTMC" ~requirement:"TMC"
  in
  Alcotest.(check bool) "symta >= mc" true (symta >= mc);
  Alcotest.(check bool) "mpa >= mc" true (mpa >= mc)

let test_mpa_matches_paper () =
  (* three of the paper's five MPA cells are reproduced to within
     publication rounding; pin them *)
  let mpa combo scen req =
    let sys = R.system combo R.Pno in
    let t = Ita_rtc.Gpc.analyze sys in
    Ita_rtc.Gpc.wcrt t sys ~scenario:scen ~requirement:req
  in
  let close expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "MPA %d within 20 us of paper's %d" actual expected)
      true
      (abs (actual - expected) <= 20)
  in
  close 390_086 (mpa R.Cv_tmc "HandleTMC" "TMC");
  close 265_849 (mpa R.Al_tmc "HandleTMC" "TMC");
  close 84_066 (mpa R.Al_tmc "AddressLookup" "E2E")

let test_columns () =
  Alcotest.(check string) "po" "po" (R.column_name R.Po);
  (match R.trigger R.Bur ~period:10 with
  | Eventmodel.Bursty { period = 10; jitter = 20; min_separation = 0 } -> ()
  | _ -> Alcotest.fail "bur trigger must be J = 2P, D = 0");
  match R.trigger R.Pj ~period:10 with
  | Eventmodel.Periodic_jitter { period = 10; jitter = 10 } -> ()
  | _ -> Alcotest.fail "pj trigger must be J = P"

let () =
  Alcotest.run "casestudy"
    [
      ( "parameters",
        [
          Alcotest.test_case "uncontended chains" `Quick test_parameters;
          Alcotest.test_case "table columns" `Quick test_columns;
        ] );
      ( "pinned cells",
        [
          Alcotest.test_case "al combo, po" `Quick test_al_po;
          Alcotest.test_case "tmc pno/sp" `Quick test_tmc_pno_sp;
          Alcotest.test_case "addresslookup invariance" `Slow test_al_invariance;
          Alcotest.test_case "cv combo, po (tmc)" `Quick test_cv_po_tmc;
        ] );
      ( "cross-technique shape",
        [
          Alcotest.test_case "sim below mc" `Slow test_sim_below_mc;
          Alcotest.test_case "analytics above mc" `Quick test_analytic_above_mc;
          Alcotest.test_case "mpa matches paper cells" `Quick
            test_mpa_matches_paper;
        ] );
    ]
