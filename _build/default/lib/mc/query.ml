open Ita_ta

type t = { comp_locs : (int * int) list; guard : Guard.t }

let tt = { comp_locs = []; guard = Guard.tt }

let at net ~comp ~loc =
  let c = Network.component_index net comp in
  let l = Automaton.find_location net.Network.automata.(c) loc in
  { comp_locs = [ (c, l) ]; guard = Guard.tt }

let conj q1 q2 =
  { comp_locs = q1.comp_locs @ q2.comp_locs; guard = Guard.conj q1.guard q2.guard }

let with_guard q g = { q with guard = Guard.conj q.guard g }

let clock_constants (net : Network.t) q =
  List.map
    (fun (a : Guard.atom) ->
      let lo, hi = Expr.interval net.Network.var_ranges a.Guard.bound in
      (a.Guard.clock, max (abs lo) (abs hi)))
    q.guard.Guard.clocks

let pp (net : Network.t) ppf q =
  let first = ref true in
  let sep () = if !first then first := false else Format.fprintf ppf " && " in
  List.iter
    (fun (c, l) ->
      sep ();
      let a = net.Network.automata.(c) in
      Format.fprintf ppf "%s.%s" a.Automaton.name
        (Automaton.location a l).Automaton.loc_name)
    q.comp_locs;
  if (not (Guard.is_trivial q.guard)) || !first then begin
    sep ();
    Guard.pp ~clock_names:net.Network.clock_names
      ~var_names:net.Network.var_names ppf q.guard
  end
