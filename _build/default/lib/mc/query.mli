(** Reachability goals: "some component is at a given location and this
    guard (clock and data constraints) holds".

    This is the fragment of UPPAAL's query language the paper uses:
    [E<> p] directly, and [A[] (seen -> y < C)] as the unreachability
    of [seen && y >= C] (Property 1 of the paper). *)

open Ita_ta

type t = {
  comp_locs : (int * int) list;
      (** required (component, location) pairs; empty = any location *)
  guard : Guard.t;
}

val tt : t
val at : Network.t -> comp:string -> loc:string -> t
(** @raise Not_found on unknown names. *)

val conj : t -> t -> t
val with_guard : t -> Guard.t -> t

val clock_constants : Network.t -> t -> (Guard.clock * int) list
(** Constants the query compares clocks against; the checker bumps the
    extrapolation bounds with these to stay sound. *)

val pp : Network.t -> Format.formatter -> t -> unit
