lib/mc/reach.mli: Format Guard Ita_ta Network Query Semantics
