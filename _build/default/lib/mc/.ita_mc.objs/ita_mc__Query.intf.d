lib/mc/query.mli: Format Guard Ita_ta Network
