lib/mc/wcrt.mli: Guard Ita_ta Network Query Reach
