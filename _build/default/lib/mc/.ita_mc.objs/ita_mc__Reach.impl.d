lib/mc/reach.ml: Array Format Hashtbl Ita_dbm Ita_ta Ita_util List Network Query Queue Semantics Unix
