lib/mc/query.ml: Array Automaton Expr Format Guard Ita_ta List Network
