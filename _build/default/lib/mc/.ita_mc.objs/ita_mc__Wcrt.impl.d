lib/mc/wcrt.ml: Guard Ita_dbm Ita_ta Query Reach Semantics
