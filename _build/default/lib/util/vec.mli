(** Minimal growable array, used for the model checker's node store. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val push : 'a t -> 'a -> int
(** [push v x] appends and returns the index of [x]. *)

val iter : ('a -> unit) -> 'a t -> unit
