lib/util/vec.mli:
