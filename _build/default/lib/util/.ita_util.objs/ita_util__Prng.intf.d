lib/util/prng.mli:
