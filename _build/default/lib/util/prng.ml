type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = { state = next g }

let int g n =
  assert (n > 0);
  (* [to_int] keeps the low 63 bits, so mask the sign bit explicitly *)
  let v = Int64.to_int (next g) land max_int in
  v mod n

let float g x =
  let v = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (next g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
