type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length v = v.len

let get v i =
  assert (i >= 0 && i < v.len);
  v.data.(i)

let push v x =
  if v.len = Array.length v.data then begin
    let cap = max 16 (2 * v.len) in
    let data = Array.make cap x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done
