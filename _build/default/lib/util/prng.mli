(** Small deterministic pseudo-random number generator (splitmix64).

    Used by the random-depth-first search order of the model checker
    and by the discrete-event simulator.  Independent of [Stdlib.Random]
    so that analyses are reproducible across OCaml versions and other
    library users. *)

type t

val create : int -> t
(** [create seed]; equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val int : t -> int -> int
(** [int g n] is uniform in [[0, n)]. [n] must be positive. *)

val float : t -> float -> float
(** [float g x] is uniform in [[0, x)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
