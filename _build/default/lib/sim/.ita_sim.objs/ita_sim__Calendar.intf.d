lib/sim/calendar.mli:
