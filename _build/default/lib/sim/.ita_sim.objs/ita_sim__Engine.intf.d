lib/sim/engine.mli: Ita_core
