lib/sim/engine.ml: Array Calendar Eventmodel Hashtbl Ita_core Ita_util List Queue Resource Scenario Sysmodel Units
