lib/sim/calendar.ml: Array Printf
