(** Event calendar: a binary min-heap on (time, insertion sequence),
    so simultaneous events pop in insertion order (deterministic
    runs). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val schedule : 'a t -> time:int -> 'a -> unit
(** [time] must not precede the last popped time (no causality
    violations); checked with an assertion. *)

val pop : 'a t -> (int * 'a) option
(** Earliest event with its time. *)

val peek_time : 'a t -> int option
