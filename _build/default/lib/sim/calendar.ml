type 'a entry = { at : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable now : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0; now = 0 }
let is_empty c = c.len = 0
let size c = c.len

let lt e1 e2 = e1.at < e2.at || (e1.at = e2.at && e1.seq < e2.seq)

let swap c i j =
  let tmp = c.heap.(i) in
  c.heap.(i) <- c.heap.(j);
  c.heap.(j) <- tmp

let rec sift_up c i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt c.heap.(i) c.heap.(parent) then begin
      swap c i parent;
      sift_up c parent
    end
  end

let rec sift_down c i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < c.len && lt c.heap.(l) c.heap.(!smallest) then smallest := l;
  if r < c.len && lt c.heap.(r) c.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap c i !smallest;
    sift_down c !smallest
  end

let schedule c ~time payload =
  if time < c.now then
    invalid_arg
      (Printf.sprintf "Calendar.schedule: time %d < now %d" time c.now);
  let entry = { at = time; seq = c.next_seq; payload } in
  c.next_seq <- c.next_seq + 1;
  if c.len = Array.length c.heap then begin
    let cap = max 64 (2 * c.len) in
    let heap = Array.make cap entry in
    Array.blit c.heap 0 heap 0 c.len;
    c.heap <- heap
  end;
  c.heap.(c.len) <- entry;
  c.len <- c.len + 1;
  sift_up c (c.len - 1)

let pop c =
  if c.len = 0 then None
  else begin
    let top = c.heap.(0) in
    c.len <- c.len - 1;
    if c.len > 0 then begin
      c.heap.(0) <- c.heap.(c.len);
      sift_down c 0
    end;
    c.now <- top.at;
    Some (top.at, top.payload)
  end

let peek_time c = if c.len = 0 then None else Some c.heap.(0).at
