lib/casestudy/radionav.mli: Eventmodel Ita_core Resource Scenario Sysmodel
