lib/casestudy/radionav.ml: Eventmodel Ita_core Printf Resource Scenario Sysmodel
