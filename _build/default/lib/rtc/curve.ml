type t = {
  eval_fn : int -> int;
  bp_fn : horizon:int -> int list;
  cache : (int, int) Hashtbl.t;
}
(* Derived curves (leftover, deconvolution, ...) evaluate their
   operands at many repeated abscissae; the per-curve cache turns the
   nested compositions built by the GPC layer from exponential into
   linear work. *)

let eval c d =
  let d = max 0 d in
  match Hashtbl.find_opt c.cache d with
  | Some v -> v
  | None ->
      let v = c.eval_fn d in
      Hashtbl.add c.cache d v;
      v

let raw eval_fn bp_fn = { eval_fn; bp_fn; cache = Hashtbl.create 256 }

let dedup_sorted l =
  let rec go = function
    | a :: b :: rest -> if a = b then go (b :: rest) else a :: go (b :: rest)
    | l -> l
  in
  go l

(* Each raw breakpoint also contributes its predecessor and successor,
   so that one-sided limits of staircases are sampled. *)
let widen ~horizon pts =
  List.concat_map (fun p -> [ p - 1; p; p + 1 ]) pts
  |> List.filter (fun p -> p >= 0 && p <= horizon)
  |> List.cons 0
  |> List.cons horizon
  |> List.sort_uniq compare

let breakpoints c ~horizon = widen ~horizon (c.bp_fn ~horizon)

let make ~eval ~breakpoints = raw (fun d -> eval (max 0 d)) breakpoints
let zero = raw (fun _ -> 0) (fun ~horizon:_ -> [])
let constant k = raw (fun _ -> k) (fun ~horizon:_ -> [])
let rate r = raw (fun d -> r * d) (fun ~horizon:_ -> [])


let upper_pjd ~period ~jitter ~dmin =
  (* closed-window convention: alpha(0) is the instantaneous burst, so
     horizontal deviations see the arriving job's full demand (the
     half-open convention would silently serve one time unit before the
     burst lands) *)
  let eval_fn d =
    if d < 0 then 0
    else
      let periodic = ((d + jitter) / period) + 1 in
      let by_sep = if dmin > 0 then (d / dmin) + 1 else max_int in
      min periodic by_sep
  in
  let bp_fn ~horizon =
    let rec steps k acc =
      let p = (k * period) - jitter in
      if p > horizon then acc
      else steps (k + 1) (if p >= 0 then p :: acc else acc)
    in
    let sep_steps =
      if dmin > 0 then
        let rec go k acc =
          let p = k * dmin in
          if p > horizon then acc else go (k + 1) (p :: acc)
        in
        go 1 []
      else []
    in
    steps 0 [] @ sep_steps
  in
  raw eval_fn bp_fn

let lower_pjd ~period ~jitter =
  let eval_fn d = if d <= jitter then 0 else (d - jitter) / period in
  let bp_fn ~horizon =
    let rec steps k acc =
      let p = (k * period) + jitter in
      if p > horizon then acc else steps (k + 1) (p :: acc)
    in
    steps 1 []
  in
  raw eval_fn bp_fn

let scale c k = raw (fun d -> k * eval c d) c.bp_fn

let merge_bps c1 c2 ~horizon =
  List.merge compare
    (List.sort compare (c1.bp_fn ~horizon))
    (List.sort compare (c2.bp_fn ~horizon))
  |> dedup_sorted

let add c1 c2 =
  raw
    (fun d -> eval c1 d + eval c2 d)
    (fun ~horizon -> merge_bps c1 c2 ~horizon)

let min_c c1 c2 =
  raw
    (fun d -> min (eval c1 d) (eval c2 d))
    (fun ~horizon -> merge_bps c1 c2 ~horizon)

let clamp0 c = raw (fun d -> max 0 (eval c d)) c.bp_fn

let shift_left c s =
  raw
    (fun d -> eval c (d + s))
    (fun ~horizon ->
      List.map (fun p -> max 0 (p - s)) (c.bp_fn ~horizon:(horizon + s)))
