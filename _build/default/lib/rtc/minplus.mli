(** Min-plus / max-plus operators on curves, evaluated over breakpoint
    candidates (exact for the staircase / piecewise-linear curves of
    this library).

    All operators take a [horizon]: the largest window the analysis
    will ever inspect.  It must dominate the longest busy period; the
    {!Gpc} layer picks it from the system's periods and checks
    plausibility. *)

val horizontal_deviation :
  horizon:int -> demand:Curve.t -> service:Curve.t -> int
(** [h(demand, service)]: the delay bound
    [sup_x inf {tau >= 0 | service (x + tau) >= demand x}];
    the classic RTC worst-case delay through a greedy component.
    Returns [max_int] when the service never catches up within the
    horizon. *)

val vertical_deviation :
  horizon:int -> demand:Curve.t -> service:Curve.t -> int
(** Backlog bound [sup_x (demand x - service x)]. *)

val leftover : horizon:int -> service:Curve.t -> demand:Curve.t -> Curve.t
(** Remaining lower service curve after a greedy component consumed
    [demand]: [beta'(d) = sup_{0 <= l <= d} (beta l - alpha l)],
    clamped at 0. *)

val conv : horizon:int -> Curve.t -> Curve.t -> Curve.t
(** Min-plus convolution [(f (+) g) d = inf_{0<=l<=d} f l + g (d-l)]. *)

val deconv : horizon:int -> Curve.t -> Curve.t -> Curve.t
(** Min-plus deconvolution
    [(f (/) g) d = sup_{u >= 0} f (d + u) - g u], with [u] ranging over
    the horizon. *)
