let candidates ~horizon c1 c2 =
  List.sort_uniq compare
    (Curve.breakpoints c1 ~horizon @ Curve.breakpoints c2 ~horizon)

let horizontal_deviation ~horizon ~demand ~service =
  let cands = candidates ~horizon demand service in
  (* inf {tau | service (x + tau) >= d} by binary search on monotone
     service *)
  let catch_up x d =
    if Curve.eval service (x + horizon) < d then None
    else begin
      let lo = ref 0 and hi = ref horizon in
      while !hi - !lo > 0 do
        let mid = !lo + ((!hi - !lo) / 2) in
        if Curve.eval service (x + mid) >= d then hi := mid else lo := mid + 1
      done;
      Some !hi
    end
  in
  let worst = ref 0 in
  let overflow = ref false in
  List.iter
    (fun x ->
      match catch_up x (Curve.eval demand x) with
      | Some tau -> if tau > !worst then worst := tau
      | None -> overflow := true)
    cands;
  if !overflow then max_int else !worst

let vertical_deviation ~horizon ~demand ~service =
  let cands = candidates ~horizon demand service in
  List.fold_left
    (fun acc x -> max acc (Curve.eval demand x - Curve.eval service x))
    0 cands

(* sup_{0 <= l <= d} (service l - demand l), clamped at 0.  Both curves
   are piecewise linear between their corners, so the sup over [0, d]
   is attained at a corner or at d itself; a prefix-max over the sorted
   corners makes evaluation logarithmic. *)
let leftover ~horizon ~service ~demand =
  let cands = Array.of_list (candidates ~horizon service demand) in
  let prefix = Array.make (Array.length cands) 0 in
  let best = ref min_int in
  Array.iteri
    (fun i x ->
      let v = Curve.eval service x - Curve.eval demand x in
      if v > !best then best := v;
      prefix.(i) <- !best)
    cands;
  let eval d =
    (* largest candidate index <= d *)
    let lo = ref 0 and hi = ref (Array.length cands - 1) in
    let at_corner =
      if Array.length cands = 0 || cands.(0) > d then min_int
      else begin
        while !hi - !lo > 0 do
          let mid = !lo + ((!hi - !lo + 1) / 2) in
          if cands.(mid) <= d then lo := mid else hi := mid - 1
        done;
        prefix.(!lo)
      end
    in
    let at_d = Curve.eval service d - Curve.eval demand d in
    max 0 (max at_corner at_d)
  in
  Curve.make ~eval ~breakpoints:(fun ~horizon:h ->
      List.filter (fun p -> p <= h) (Array.to_list cands))

let conv ~horizon f g =
  let cands = candidates ~horizon f g in
  let eval d =
    let best = ref (Curve.eval f 0 + Curve.eval g d) in
    List.iter
      (fun l ->
        if l <= d then begin
          let v = Curve.eval f l + Curve.eval g (d - l) in
          if v < !best then best := v
        end)
      (d :: cands);
    !best
  in
  Curve.make ~eval ~breakpoints:(fun ~horizon:h ->
      List.filter (fun p -> p <= h) cands)

let deconv ~horizon f g =
  let cands = candidates ~horizon f g in
  let eval d =
    List.fold_left
      (fun acc u -> max acc (Curve.eval f (d + u) - Curve.eval g u))
      (Curve.eval f d) cands
  in
  Curve.make ~eval ~breakpoints:(fun ~horizon:h ->
      List.filter (fun p -> p <= h) cands)
