lib/rtc/minplus.mli: Curve
