lib/rtc/curve.mli:
