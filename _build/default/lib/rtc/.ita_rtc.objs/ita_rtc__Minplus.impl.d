lib/rtc/minplus.ml: Array Curve List
