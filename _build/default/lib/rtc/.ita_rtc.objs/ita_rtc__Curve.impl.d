lib/rtc/curve.ml: Hashtbl List
