lib/rtc/gpc.ml: Curve Eventmodel Format Hashtbl Ita_core List Minplus Resource Scenario Sysmodel
