lib/rtc/gpc.mli: Format Ita_core
