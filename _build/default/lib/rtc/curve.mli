(** Arrival and service curves for Modular Performance Analysis
    (real-time calculus).

    A curve maps window length [delta] (microseconds) to an amount —
    events for arrival curves, execution/transfer microseconds for
    service and demand curves.  Curves are monotone with
    [eval c 0 >= 0].

    Representation: an evaluation function plus a breakpoint
    generator.  All min-plus operators in {!Minplus} evaluate extrema
    over the union of the operands' breakpoints, which is exact for
    the staircase and piecewise-linear curves this library builds
    (extrema of differences of such curves occur at their corners —
    we include each corner and its immediate neighbours). *)

type t

val eval : t -> int -> int
(** Monotone; [eval c d = eval c 0] for [d <= 0]. *)

val breakpoints : t -> horizon:int -> int list
(** Sorted candidate abscissae in [[0, horizon]], always including 0
    and [horizon]. *)

val make : eval:(int -> int) -> breakpoints:(horizon:int -> int list) -> t

val zero : t

val constant : int -> t
(** [constant k] is [k] for every window, including 0-length ones —
    pending backlog demand. *)

val rate : int -> t
(** Full service at [r] units per microsecond; use [rate 1] for a
    dedicated resource in work units. *)

val upper_pjd : period:int -> jitter:int -> dmin:int -> t
(** Standard upper staircase arrival curve, closed-window convention:
    [alpha^u(d) = min(floor((d + J) / P) + 1, floor(d / D) + 1)] (the
    second term only when [dmin > 0]), so [alpha^u(0)] is the maximal
    instantaneous burst. *)

val lower_pjd : period:int -> jitter:int -> t
(** Lower staircase [alpha^l(d) = max(0, floor((d - J) / P))]. *)

val scale : t -> int -> t
(** [scale c k] multiplies values by [k] — events to work units. *)

val add : t -> t -> t
val min_c : t -> t -> t
val clamp0 : t -> t
(** Pointwise [max 0]. *)

val shift_left : t -> int -> t
(** [shift_left c s] is [fun d -> eval c (d + s)]: the
    jitter-propagation transform for output arrival curves. *)
