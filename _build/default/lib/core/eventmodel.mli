(** Event arrival models for the environment actors (paper Section 3.3).

    The five shapes used in the paper's Table 1, in its order:

    - [Periodic { period; offset }] — strictly periodic with a known
      offset ("po"); the paper's synchronous case uses offset 0.
    - [Periodic_unknown_offset] — strictly periodic, phase chosen
      nondeterministically in [[0, period]] ("pno").
    - [Sporadic] — only a minimal inter-arrival time ("sp").
    - [Periodic_jitter { period; jitter }] with [jitter <= period]
      ("pj"): event [k] occurs within
      [[k * period, k * period + jitter]].
    - [Bursty { period; jitter; min_separation }] with
      [jitter > period] ("bur"): same release windows, which now
      overlap, bounded below by the separation time.

    All times are integer microseconds. *)

type t =
  | Periodic of { period : int; offset : int }
  | Periodic_unknown_offset of { period : int }
  | Sporadic of { min_separation : int }
  | Periodic_jitter of { period : int; jitter : int }
  | Bursty of { period : int; jitter : int; min_separation : int }

val validate : t -> (unit, string) result

val pjd : t -> int * int * int
(** [(period, jitter, min_separation)] — the standard three-parameter
    characterization used by the SymTA/S-style and MPA-style analyses.
    [Sporadic p] maps to [(p, 0, p)]; unknown offset does not change
    the parameters. *)

val period : t -> int

val max_backlog : t -> int
(** How many releases can be simultaneously pending
    ([floor (jitter / period) + 1]); sizes the generated counters. *)

val name : t -> string
(** Short tag, matching the paper's column heads: po, pno, sp, pj,
    bur. *)

val pp : Format.formatter -> t -> unit
