(** Application scenarios: annotated UML sequence diagrams flattened to
    a linear chain of steps (paper Figures 2 and 3).

    A step is either a computation on a processor (worst-case
    instruction count) or a message transfer over a link (payload
    size).  Events flow through the chain in order; each step has a
    FIFO queue of pending activations, abstracted as a counter in the
    generated model.

    [band] is the scenario's priority band: [High] scenarios win
    arbitration on [Priority_*] resources and preempt on
    [Priority_preemptive] ones (in the case study, ChangeVolume and
    AddressLookup are [High], HandleTMC is [Low] — paper Section 4). *)

type band = High | Low

type step =
  | Compute of { op : string; resource : string; instructions : float }
  | Transfer of { msg : string; resource : string; bytes : int }

type requirement = {
  req_name : string;
  from_step : int option;
      (** measure from completion of this step; [None] = from event
          arrival *)
  to_step : int;  (** measure to completion of this step *)
  budget_us : int option;  (** the stated timeliness requirement *)
}

type t = {
  name : string;
  trigger : Eventmodel.t;
  band : band;
  steps : step list;
  requirements : requirement list;
}

val make :
  name:string ->
  trigger:Eventmodel.t ->
  band:band ->
  steps:step list ->
  requirements:requirement list ->
  t

val step_name : step -> string
val step_resource : step -> string
val n_steps : t -> int

val requirement : t -> string -> requirement
(** @raise Not_found on an unknown requirement name. *)

val end_to_end_requirement : ?budget_us:int -> name:string -> t -> requirement
(** Arrival-to-last-step-completion requirement. *)

val validate : resources:Resource.t list -> t -> (unit, string) result
(** Steps reference known resources of the right kind; requirement
    indices are in range and ordered. *)

val pp : Format.formatter -> t -> unit
