(** Hardware resources of a deployment diagram: processors and
    communication links (paper Figure 1).

    Each resource is generated into one timed automaton (paper
    Sections 3.1 and 3.2).  The scheduling policy picks the template:

    - [Nondet_nonpreemptive]: the paper's Figure 4 — any pending job
      may claim the resource, runs to completion (also the Figure 6 bus
      template, which resembles simple serial buses like RS-485);
    - [Priority_nonpreemptive]: Figure 4/6 plus priority guards — a
      lower-band job may only start when no higher-band job is pending
      (the paper's CAN-like bus arbitration);
    - [Priority_preemptive]: the Figure 5 two-band pattern — a pending
      higher-band job immediately suspends the running lower-band job,
      whose remaining work is tracked in the [D] variable; higher-band
      jobs do not preempt each other;
    - [Tdma]: the resource is live only during a window of [slot_us]
      at the start of every [cycle_us] (a TDMA bus slot, or an
      ARINC-653-style time partition of a processor).  Jobs are
      admitted with priority guards but do not preempt each other; a
      job running into the blackout is suspended and resumes at the
      next window (encoded with the Figure 5 remaining-work trick,
      the blackout acting as a fixed-length preemptor — the TDMA
      modeling the paper points to via Perathoner et al.). *)

type policy =
  | Nondet_nonpreemptive
  | Priority_nonpreemptive
  | Priority_preemptive
  | Tdma of { slot_us : int; cycle_us : int }
  | Priority_segmented of { frame_bytes : int }
      (** links only: messages are broken into frames of [frame_bytes]
          and re-arbitrated at every frame boundary, so a large
          low-priority message blocks a high-priority one for at most
          one frame — the starvation-avoiding protocols the paper
          calls "less trivial" to encode (Section 3.2). *)

type kind =
  | Processor of { mips : float }
  | Link of { kbps : float }

type t = { name : string; kind : kind; policy : policy }

val processor : string -> mips:float -> policy:policy -> t
(** @raise Invalid_argument on a [Tdma] policy with
    [slot_us <= 0 || slot_us >= cycle_us]. *)

val link : string -> kbps:float -> policy:policy -> t
(** Same validation as {!processor}. *)

val is_link : t -> bool
val pp : Format.formatter -> t -> unit
