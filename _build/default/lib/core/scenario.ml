type band = High | Low

type step =
  | Compute of { op : string; resource : string; instructions : float }
  | Transfer of { msg : string; resource : string; bytes : int }

type requirement = {
  req_name : string;
  from_step : int option;
  to_step : int;
  budget_us : int option;
}

type t = {
  name : string;
  trigger : Eventmodel.t;
  band : band;
  steps : step list;
  requirements : requirement list;
}

let make ~name ~trigger ~band ~steps ~requirements =
  { name; trigger; band; steps; requirements }

let step_name = function
  | Compute { op; _ } -> op
  | Transfer { msg; _ } -> msg

let step_resource = function
  | Compute { resource; _ } -> resource
  | Transfer { resource; _ } -> resource

let n_steps s = List.length s.steps

let requirement s name =
  List.find (fun r -> r.req_name = name) s.requirements

let end_to_end_requirement ?budget_us ~name s =
  { req_name = name; from_step = None; to_step = n_steps s - 1; budget_us }

let validate ~resources s =
  let ( let* ) r f = Result.bind r f in
  let* () = Eventmodel.validate s.trigger in
  let* () =
    if s.steps = [] then Error (s.name ^ ": no steps") else Ok ()
  in
  let find_resource name =
    List.find_opt (fun (r : Resource.t) -> r.Resource.name = name) resources
  in
  let check_step st =
    match (st, find_resource (step_resource st)) with
    | _, None ->
        Error
          (Printf.sprintf "%s: step %s uses unknown resource %s" s.name
             (step_name st) (step_resource st))
    | Compute _, Some r
      when (match r.Resource.policy with
           | Resource.Priority_segmented _ -> true
           | Resource.Nondet_nonpreemptive | Resource.Priority_nonpreemptive
           | Resource.Priority_preemptive | Resource.Tdma _ ->
               false) ->
        Error
          (Printf.sprintf "%s: computation %s on a segmented (link) policy"
             s.name (step_name st))
    | Compute _, Some r when Resource.is_link r ->
        Error
          (Printf.sprintf "%s: computation %s mapped to a link" s.name
             (step_name st))
    | Transfer _, Some r when not (Resource.is_link r) ->
        Error
          (Printf.sprintf "%s: transfer %s mapped to a processor" s.name
             (step_name st))
    | _, Some _ -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc st -> Result.bind acc (fun () -> check_step st))
      (Ok ()) s.steps
  in
  let n = n_steps s in
  let check_req r =
    if r.to_step < 0 || r.to_step >= n then
      Error (Printf.sprintf "%s/%s: to_step out of range" s.name r.req_name)
    else
      match r.from_step with
      | None -> Ok ()
      | Some f ->
          if f < 0 || f >= r.to_step then
            Error
              (Printf.sprintf "%s/%s: from_step must precede to_step" s.name
                 r.req_name)
          else Ok ()
  in
  List.fold_left
    (fun acc r -> Result.bind acc (fun () -> check_req r))
    (Ok ()) s.requirements

let pp ppf s =
  Format.fprintf ppf "@[<v2>%s (%a, %s):@," s.name Eventmodel.pp s.trigger
    (match s.band with High -> "high" | Low -> "low");
  List.iteri
    (fun i st ->
      match st with
      | Compute { op; resource; instructions } ->
          Format.fprintf ppf "%d. %s @@ %s (%.0f instr)@," i op resource
            instructions
      | Transfer { msg; resource; bytes } ->
          Format.fprintf ppf "%d. %s over %s (%d bytes)@," i msg resource bytes)
    s.steps;
  Format.fprintf ppf "@]"
