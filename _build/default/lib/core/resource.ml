type policy =
  | Nondet_nonpreemptive
  | Priority_nonpreemptive
  | Priority_preemptive
  | Tdma of { slot_us : int; cycle_us : int }
  | Priority_segmented of { frame_bytes : int }

type kind = Processor of { mips : float } | Link of { kbps : float }
type t = { name : string; kind : kind; policy : policy }

let check_policy name = function
  | Tdma { slot_us; cycle_us } ->
      if slot_us <= 0 || slot_us >= cycle_us then
        invalid_arg
          (Printf.sprintf "%s: TDMA needs 0 < slot (%d) < cycle (%d)" name
             slot_us cycle_us)
  | Priority_segmented { frame_bytes } ->
      if frame_bytes <= 0 then
        invalid_arg (Printf.sprintf "%s: frame size must be positive" name)
  | Nondet_nonpreemptive | Priority_nonpreemptive | Priority_preemptive -> ()

let processor name ~mips ~policy =
  check_policy name policy;
  { name; kind = Processor { mips }; policy }

let link name ~kbps ~policy =
  check_policy name policy;
  { name; kind = Link { kbps }; policy }
let is_link r = match r.kind with Link _ -> true | Processor _ -> false

let pp ppf r =
  let policy_s = function
    | Nondet_nonpreemptive -> "nondet"
    | Priority_nonpreemptive -> "prio"
    | Priority_preemptive -> "prio-preemptive"
    | Tdma { slot_us; cycle_us } ->
        Printf.sprintf "tdma %d/%d" slot_us cycle_us
    | Priority_segmented { frame_bytes } ->
        Printf.sprintf "prio, %d-byte frames" frame_bytes
  in
  match r.kind with
  | Processor { mips } ->
      Format.fprintf ppf "%s: %.0f MIPS (%s)" r.name mips (policy_s r.policy)
  | Link { kbps } ->
      Format.fprintf ppf "%s: %.0f kbps (%s)" r.name kbps (policy_s r.policy)
