(** Time base and physical-quantity conversions.

    All generated models use integer {b microseconds}, with physical
    durations rounded to the nearest microsecond.  This reproduces the
    original study's time base: with round-to-nearest microsecond
    constants, the uncontended AddressLookup chain of the case study is
    4545 + 444 + 44248 + 7111 + 22727 = 79075 us = 79.075 ms — exactly
    the value of the paper's Tables 1 and 2. *)

val us_of_instructions : instructions:float -> mips:float -> int
(** Execution time of [instructions] on a [mips]
    million-instructions-per-second processor, in rounded
    microseconds.  This is the paper's deliberately coarse
    instructions/capacity approximation (Section 3.1). *)

val us_of_bytes : bytes:int -> kbps:float -> int
(** Transfer time of [bytes] over a [kbps] kilobit-per-second link in
    rounded microseconds (8 bits per byte, no protocol overhead). *)

val us_of_ms : float -> int
val ms_of_us : int -> float

val pp_ms : Format.formatter -> int -> unit
(** Print a microsecond count as milliseconds with three decimals,
    the paper's table format (e.g. [357133] as ["357.133"]). *)
