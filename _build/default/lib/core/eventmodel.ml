type t =
  | Periodic of { period : int; offset : int }
  | Periodic_unknown_offset of { period : int }
  | Sporadic of { min_separation : int }
  | Periodic_jitter of { period : int; jitter : int }
  | Bursty of { period : int; jitter : int; min_separation : int }

let validate = function
  | Periodic { period; offset } ->
      if period <= 0 then Error "periodic: period must be positive"
      else if offset < 0 then Error "periodic: negative offset"
      else Ok ()
  | Periodic_unknown_offset { period } ->
      if period <= 0 then Error "periodic: period must be positive" else Ok ()
  | Sporadic { min_separation } ->
      if min_separation <= 0 then Error "sporadic: separation must be positive"
      else Ok ()
  | Periodic_jitter { period; jitter } ->
      if period <= 0 then Error "pj: period must be positive"
      else if jitter < 0 then Error "pj: negative jitter"
      else if jitter > period then
        Error "pj: jitter exceeds period; use Bursty"
      else Ok ()
  | Bursty { period; jitter; min_separation } ->
      if period <= 0 then Error "bursty: period must be positive"
      else if jitter <= period then
        Error "bursty: jitter must exceed period; use Periodic_jitter"
      else if min_separation < 0 then Error "bursty: negative separation"
      else Ok ()

let pjd = function
  | Periodic { period; _ } | Periodic_unknown_offset { period } ->
      (period, 0, period)
  | Sporadic { min_separation } -> (min_separation, 0, min_separation)
  | Periodic_jitter { period; jitter } -> (period, jitter, 0)
  | Bursty { period; jitter; min_separation } -> (period, jitter, min_separation)

let period = function
  | Periodic { period; _ }
  | Periodic_unknown_offset { period }
  | Periodic_jitter { period; _ }
  | Bursty { period; _ } ->
      period
  | Sporadic { min_separation } -> min_separation

let max_backlog t =
  let p, j, _ = pjd t in
  (j / p) + 1

let name = function
  | Periodic _ -> "po"
  | Periodic_unknown_offset _ -> "pno"
  | Sporadic _ -> "sp"
  | Periodic_jitter _ -> "pj"
  | Bursty _ -> "bur"

let pp ppf = function
  | Periodic { period; offset } ->
      Format.fprintf ppf "periodic(P=%d, F=%d)" period offset
  | Periodic_unknown_offset { period } ->
      Format.fprintf ppf "periodic(P=%d, unknown offset)" period
  | Sporadic { min_separation } -> Format.fprintf ppf "sporadic(P=%d)" min_separation
  | Periodic_jitter { period; jitter } ->
      Format.fprintf ppf "periodic-jitter(P=%d, J=%d)" period jitter
  | Bursty { period; jitter; min_separation } ->
      Format.fprintf ppf "bursty(P=%d, J=%d, D=%d)" period jitter min_separation
