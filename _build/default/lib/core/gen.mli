(** Automatic construction of the UPPAAL-style timed-automata network
    from an architecture model — the paper's Section 3 patterns, and
    its conclusion's "should be automated" future work.

    The generated network contains:

    - one automaton per resource, following Figure 4 (nondeterministic
      non-preemptive), Figure 4 + priority guards / Figure 6 (priority
      non-preemptive, the bus pattern) or Figure 5 (two-band fixed
      priority preemptive with the remaining-work variable [D]);
    - one automaton per scenario actor, following Figure 7 (a-d) and
      Figure 8, generating events into the first step's pending
      counter;
    - per-(scenario, step) pending counters [q_<scen>_<k>] — the
      paper's [rec], [setvolume], ... globals — incremented by the
      upstream completion and decremented when the resource claims the
      job, all moved along by the urgent [hurry!] greediness idiom;
    - when a measurement is requested, the measured scenario's actor is
      replaced by its measuring variant (Figure 9, generalized to
      arbitrary arrival models and to requirements that start at an
      intermediate step completion, like the case study's A2V): it
      nondeterministically tags one event, counts in-flight responses
      with [n]/[m], resets the observer clock at the window start and
      enters the committed [seen] location when the tagged response
      arrives. *)

open Ita_ta

type observer = {
  obs_clock : Guard.clock;  (** the measuring automaton's [y] *)
  seen : Ita_mc.Query.t;  (** "the measuring automaton is at [seen]" *)
}

type t = {
  net : Network.t;
  observer : observer option;
  sys : Sysmodel.t;
}

val generate : ?measure:string * Scenario.requirement -> Sysmodel.t -> t
(** [generate ~measure:(scenario_name, requirement) sys].  Without
    [measure], all actors are plain generators (useful for plain
    reachability / deadlock-style queries).

    @raise Network.Invalid_model on inconsistent input. *)

val queue_var : t -> scenario:string -> step:int -> Expr.var
(** The pending counter of a step, for custom queries. *)
