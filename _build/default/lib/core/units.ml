let round_nearest x = int_of_float (Float.round x)

let us_of_instructions ~instructions ~mips =
  assert (instructions >= 0.0 && mips > 0.0);
  round_nearest (instructions /. mips)

let us_of_bytes ~bytes ~kbps =
  assert (bytes >= 0 && kbps > 0.0);
  round_nearest (float_of_int (bytes * 8) /. kbps *. 1000.0)

let us_of_ms ms = round_nearest (ms *. 1000.0)
let ms_of_us us = float_of_int us /. 1000.0
let pp_ms ppf us = Format.fprintf ppf "%.3f" (ms_of_us us)
