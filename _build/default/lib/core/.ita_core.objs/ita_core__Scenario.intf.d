lib/core/scenario.mli: Eventmodel Format Resource
