lib/core/sysmodel.ml: Format List Resource Result Scenario Units
