lib/core/gen.ml: Automaton Channel Eventmodel Expr Guard Hashtbl Ita_mc Ita_ta List Network Option Printf Resource Scenario Sysmodel Units Update
