lib/core/eventmodel.mli: Format
