lib/core/units.ml: Float Format
