lib/core/analyze.ml: Format Gen Ita_mc List Reach Scenario Sysmodel Units Wcrt
