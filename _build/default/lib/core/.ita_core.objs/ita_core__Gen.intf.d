lib/core/gen.mli: Expr Guard Ita_mc Ita_ta Network Scenario Sysmodel
