lib/core/scenario.ml: Eventmodel Format List Printf Resource Result
