lib/core/eventmodel.ml: Format
