lib/core/resource.ml: Format Printf
