lib/core/sysmodel.mli: Eventmodel Format Resource Scenario
