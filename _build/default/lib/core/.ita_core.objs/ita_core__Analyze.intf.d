lib/core/analyze.mli: Format Ita_mc Reach Sysmodel
