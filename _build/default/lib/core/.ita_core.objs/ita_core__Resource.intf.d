lib/core/resource.mli: Format
