(** Name resolution and translation from the parsed {!Ast.t} to a
    checkable {!Ita_ta.Network.t} plus its queries. *)

open Ita_ta

exception Elab_error of string

type query =
  | Reach_q of Ita_mc.Query.t
  | Sup_q of { clock : Guard.clock; at : Ita_mc.Query.t }
  | Deadlock_q

type t = { net : Network.t; queries : query list }

val elaborate : Ast.t -> t
(** @raise Elab_error on unresolved names, clock constraints under
    disjunction/negation, or comparisons between two clocks.
    @raise Network.Invalid_model via the builder's static checks. *)

val load_file : string -> t
(** Parse and elaborate. *)
