lib/tafmt/parser.mli: Ast
