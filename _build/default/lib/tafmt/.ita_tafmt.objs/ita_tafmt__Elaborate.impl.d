lib/tafmt/elaborate.ml: Array Ast Automaton Channel Expr Guard Hashtbl Ita_mc Ita_ta List Network Parser Printf String Update
