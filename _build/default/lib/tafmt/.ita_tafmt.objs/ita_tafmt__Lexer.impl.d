lib/tafmt/lexer.ml: List Printf String
