lib/tafmt/ast.mli:
