lib/tafmt/lexer.mli:
