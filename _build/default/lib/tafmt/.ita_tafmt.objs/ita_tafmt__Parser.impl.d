lib/tafmt/parser.ml: Ast Lexer List Printf
