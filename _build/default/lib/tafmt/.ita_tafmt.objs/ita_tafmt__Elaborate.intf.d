lib/tafmt/elaborate.mli: Ast Guard Ita_mc Ita_ta Network
