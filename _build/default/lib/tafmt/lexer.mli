(** Hand-written lexer for the .ta format. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** reserved word *)
  | PUNCT of string  (** operators and punctuation *)
  | EOF

exception Lex_error of { line : int; message : string }

type t

val of_string : string -> t
val line : t -> int
val peek : t -> token
val next : t -> token
(** Consumes and returns the current token. *)
