(** Recursive-descent parser for the .ta format. *)

exception Parse_error of { line : int; message : string }

val parse_string : string -> Ast.t
(** @raise Parse_error and @raise Lexer.Lex_error on bad input. *)

val parse_file : string -> Ast.t
(** @raise Sys_error when the file cannot be read. *)
