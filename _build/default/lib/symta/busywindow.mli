(** Classical busy-window response-time analysis on one resource
    (Tindell/Lehoczky style, the technique underlying SymTA/S).

    A resource hosts a set of tasks, each with a worst-case execution
    time, an activating event stream and a priority band.  The analysis
    returns, per task, a conservative worst-case response time
    accounting for:

    - preemption (or, non-preemptively, queueing) by higher-band tasks;
    - interference by other tasks of the same band;
    - on non-preemptive resources, blocking by one maximal lower-band
      execution already in progress;
    - multiple pending activations of the task itself (q-activation
      busy windows).

    Same-band interference is precedence-aware, the key to matching
    what SymTA/S actually computes on scenario chains: two steps of the
    same scenario are activated by the same event in pipeline order, so

    - a {e downstream} rival (later step of the same chain) can only
      be pending on behalf of an {e earlier} event: at most the
      scenario's pipeline backlog [ceil (R_chain / P) - 1] instances;
    - an {e upstream} rival is only re-activated by {e later} events;
      counting arrivals since the shared event over the window opened
      [prefix_response] after it — [eta_trigger(w + prefix) - 1] —
      covers both its backlog and fresh arrivals;
    - rivals from {e other} scenarios interfere with their trigger
      stream widened by their chain's response spread.

    Activation streams are the scenario triggers; accumulated chain
    jitter enters only through the backlog and cross-stream terms.
    Propagating jitter into a step's own stream — textbook holistic
    analysis — lets FIFO pipelines at high utilization amplify their
    own jitter without bound (the q-th activation's earliest arrival
    collapses to the critical instant), which is why that formulation
    diverges on this case study. *)

type task = {
  task_name : string;
  group : string;  (** scenario name *)
  step_index : int;  (** position in the scenario chain *)
  chain_pending : int;
      (** the group's pipeline backlog [ceil (R_chain / P) - 1],
          from the enclosing fixpoint's previous round *)
  prefix_response : int;
      (** sum of this chain's responses before this step (previous
          round); offsets the window for upstream-rival arrivals *)
  delta_jitter : int;
      (** release bunching of this task's own activations (upstream
          response spread, capped at one period by the caller): applied
          to [delta_min] in the q-activation analysis only, so the
          global fixpoint stays bounded *)
  block_quantum : int;
      (** longest uninterruptible run of this task: its WCET, or a
          single frame on segmented links *)
  wcet : int;
  stream : Evstream.t;  (** own activation: the scenario trigger *)
  cross_stream : Evstream.t;
      (** how this task interferes with other scenarios: trigger
          widened by the chain's response spread *)
  band : Ita_core.Scenario.band;
}

type discipline = Preemptive | Nonpreemptive

type response = {
  task : task;
  r_min : int;  (** best case: the bare WCET *)
  r_max : int;
  busy_windows : int;  (** activations examined before the window closed *)
}

exception Unschedulable of string
(** Raised when a busy window keeps growing (utilization at or above
    one), after a divergence cutoff. *)

val analyze : discipline -> task list -> response list
(** Responses in input order. *)
