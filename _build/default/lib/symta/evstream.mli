(** Standard event streams in the (P, J, D) parametrization, as used by
    SymTA/S-style compositional scheduling analysis.

    The arrival functions bound how many events can fall in any
    half-open window of length [delta]:

    - upper: [eta_plus delta = min(ceil((delta + J) / P),
      floor((delta - 1) / D) + 1)] (second term only when [D > 0]);
    - lower: [eta_minus delta = max(0, floor((delta - J) / P))].

    Output streams of an analyzed task inherit the input period with
    jitter increased by the response-time spread (jitter
    propagation). *)

type t = { period : int; jitter : int; dmin : int }

val of_eventmodel : Ita_core.Eventmodel.t -> t

val eta_plus : t -> int -> int
(** [eta_plus s delta] for [delta >= 0]; [eta_plus s 0] is the maximal
    burst that can arrive "at once" (within an epsilon window). *)

val eta_minus : t -> int -> int

val delta_min : t -> int -> int
(** [delta_min s q] is the minimal time in which [q] events can
    arrive: the pseudo-inverse of [eta_plus], i.e. the earliest arrival
    of the [q]-th event of a burst relative to the first.  [q >= 1]. *)

val propagate : t -> response_min:int -> response_max:int -> t
(** Output stream after a task with the given best/worst response:
    same period, jitter widened by the response spread, [dmin] kept
    conservatively at 0 unless the input had slack. *)

val pp : Format.formatter -> t -> unit
