lib/symta/busywindow.ml: Evstream Ita_core List Scenario
