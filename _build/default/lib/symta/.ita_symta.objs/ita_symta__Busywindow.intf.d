lib/symta/busywindow.mli: Evstream Ita_core
