lib/symta/sysanalysis.mli: Evstream Format Ita_core
