lib/symta/sysanalysis.ml: Array Busywindow Eventmodel Evstream Format Hashtbl Ita_core List Printf Resource Scenario String Sys Sysmodel Units
