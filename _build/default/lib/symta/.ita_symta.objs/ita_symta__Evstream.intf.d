lib/symta/evstream.mli: Format Ita_core
