lib/symta/evstream.ml: Format Ita_core
