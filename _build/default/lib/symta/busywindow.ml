open Ita_core

type task = {
  task_name : string;
  group : string;
  step_index : int;
  chain_pending : int;
  prefix_response : int;
  delta_jitter : int;
      (* release bunching of this task's own activations (upstream
         response spread, capped at one period): tightens delta_min in
         the q-activation analysis without touching the eta windows *)
  block_quantum : int;
      (* longest uninterruptible run: the wcet, or one frame on
         segmented links *)
  wcet : int;
  stream : Evstream.t;
  cross_stream : Evstream.t;
  band : Scenario.band;
}

type discipline = Preemptive | Nonpreemptive

type response = {
  task : task;
  r_min : int;
  r_max : int;
  busy_windows : int;
}

exception Unschedulable of string

let lower_band t = t.band = Scenario.Low

(* Tasks that can take the resource from task [i]: higher bands always,
   the same band by queueing. *)
let interferers tasks i =
  List.filter
    (fun t ->
      t != i && (t.band = i.band || (t.band = Scenario.High && lower_band i)))
    tasks

let blocking discipline tasks i =
  match discipline with
  | Preemptive -> 0
  | Nonpreemptive ->
      (* one lower-band job may already occupy the resource; same-band
         jobs are covered by the interference term *)
      List.fold_left
        (fun acc t ->
          if t.band = Scenario.Low && i.band = Scenario.High then
            max acc t.block_quantum
          else acc)
        0 tasks

(* How many executions of rival [t] can delay task [i] within a busy
   window of length [w]: see the interface. *)
let rival_count i t w =
  if t.group = i.group then
    let backlog = t.chain_pending in
    if t.step_index < i.step_index then
      (* the victim's window opens [prefix_response] after the shared
         event's arrival; events arriving since then (excluding the
         shared event itself, whose upstream execution precedes the
         window) cover both the backlog and fresh arrivals *)
      max 0 (Evstream.eta_plus t.stream (w + i.prefix_response) - 1)
    else backlog
  else Evstream.eta_plus t.cross_stream w

let divergence_cutoff = 1 lsl 40

(* Smallest fixpoint of [w = base + interference w] by iteration. *)
let fix ~base ~interference name =
  let rec go w =
    let w' = base + interference w in
    if w' = w then w
    else if w' > divergence_cutoff then
      raise (Unschedulable (name ^ ": busy window diverges"))
    else go w'
  in
  go base

let analyze discipline tasks =
  let analyze_task i =
    let ifs = interferers tasks i in
    let b = blocking discipline tasks i in
    let interference w =
      List.fold_left (fun acc t -> acc + (rival_count i t w * t.wcet)) 0 ifs
    in
    (* q-activation busy windows until the window no longer covers the
       (q+1)-th activation of the task itself *)
    let rec windows q worst =
      if q > 1024 then
        raise (Unschedulable (i.task_name ^ ": unbounded backlog"))
      else begin
        let w = fix ~base:(b + (q * i.wcet)) ~interference i.task_name in
        let bunched =
          if i.delta_jitter = 0 then i.stream
          else
            {
              i.stream with
              Evstream.jitter = i.stream.Evstream.jitter + i.delta_jitter;
              (* bunched activations also lose the trigger's minimal
                 separation *)
              dmin = 0;
            }
        in
        let response = w - Evstream.delta_min bunched q in
        let worst = max worst response in
        if Evstream.eta_plus i.stream w > q then windows (q + 1) worst
        else (worst, q)
      end
    in
    let r_max, busy_windows = windows 1 0 in
    { task = i; r_min = i.wcet; r_max; busy_windows }
  in
  List.map analyze_task tasks
