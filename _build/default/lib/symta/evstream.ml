type t = { period : int; jitter : int; dmin : int }

let of_eventmodel em =
  let period, jitter, dmin = Ita_core.Eventmodel.pjd em in
  { period; jitter; dmin }

let ceil_div a b = if a <= 0 then 0 else ((a - 1) / b) + 1

(* Arrivals in a half-open window [t, t + delta): the Tindell
   interference term. *)
let eta_plus s delta =
  if delta <= 0 then 0
  else
    let periodic = ceil_div (delta + s.jitter) s.period in
    let by_sep = if s.dmin > 0 then ((delta - 1) / s.dmin) + 1 else max_int in
    min periodic by_sep

let eta_minus s delta =
  if delta <= s.jitter then 0 else (delta - s.jitter) / s.period

let delta_min s q =
  assert (q >= 1);
  let by_period = max 0 (((q - 1) * s.period) - s.jitter) in
  let by_sep = (q - 1) * s.dmin in
  max by_period by_sep

let propagate s ~response_min ~response_max =
  assert (response_max >= response_min);
  { s with jitter = s.jitter + (response_max - response_min); dmin = 0 }

let pp ppf s =
  Format.fprintf ppf "(P=%d, J=%d, D=%d)" s.period s.jitter s.dmin
