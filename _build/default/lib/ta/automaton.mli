(** A single timed-automaton component of a network.

    Locations carry an invariant and a kind: [Urgent] locations forbid
    delay; [Committed] locations additionally require the next discrete
    transition to leave some committed location (UPPAAL semantics).
    Edges carry a guard, an optional channel synchronization and an
    update. *)

type loc_kind = Normal | Urgent | Committed

type location = {
  loc_name : string;
  invariant : Guard.t;
  kind : loc_kind;
}

type sync = NoSync | Send of Channel.id | Recv of Channel.id

type edge = {
  src : int;
  guard : Guard.t;
  sync : sync;
  update : Update.t;
  dst : int;
}

type t = {
  name : string;
  locations : location array;
  edges : edge array;
  outgoing : int list array;  (** edge indices grouped by source location *)
  initial : int;
}

val make :
  name:string -> locations:location list -> edges:edge list -> initial:int -> t

val location : t -> int -> location
val edge : t -> int -> edge
val out_edges : t -> int -> int list
val find_location : t -> string -> int
(** @raise Not_found when no location has that name. *)
