type t = { locs : int array; env : int array; clocks : int array }
type move = Delay of int | Fire of Semantics.label

let to_discrete c = { Semantics.locs = c.locs; env = c.env }

let initial (net : Network.t) =
  {
    locs = Array.map (fun (a : Automaton.t) -> a.Automaton.initial) net.Network.automata;
    env = Array.copy net.Network.var_init;
    clocks = Array.make (Array.length net.Network.clock_names) 0;
  }

(* Slack before some invariant's upper bound; lower-bound invariant
   atoms never constrain delay. *)
let invariant_slack (net : Network.t) c =
  let slack = ref None in
  let tighten d = match !slack with
    | None -> slack := Some d
    | Some d' -> if d < d' then slack := Some d
  in
  Array.iteri
    (fun i l ->
      let inv = (Automaton.location net.Network.automata.(i) l).Automaton.invariant in
      List.iter
        (fun (a : Guard.atom) ->
          let bound = Expr.eval c.env a.Guard.bound in
          let v = c.clocks.(a.Guard.clock) in
          match a.Guard.rel with
          | Guard.Le | Guard.Eq -> tighten (bound - v)
          | Guard.Lt -> tighten (bound - v - 1)
          | Guard.Ge | Guard.Gt -> ())
        inv.Guard.clocks)
    c.locs;
  !slack

let max_delay net c =
  if not (Semantics.delay_allowed net (to_discrete c)) then Some 0
  else
    match invariant_slack net c with
    | None -> None
    | Some d -> Some (max 0 d)

let edge_enabled (net : Network.t) c (i, ei) =
  let e = Automaton.edge net.Network.automata.(i) ei in
  Guard.data_holds c.env e.Automaton.guard
  && Guard.sat_clocks c.env e.Automaton.guard c.clocks

(* Mirrors Semantics.successors' enumeration, on the concrete
   valuation. *)
let fireable (net : Network.t) c =
  let n = Array.length net.Network.automata in
  let committed =
    Array.exists
      (fun i ->
        (Automaton.location net.Network.automata.(i) c.locs.(i)).Automaton.kind
        = Automaton.Committed)
      (Array.init n (fun i -> i))
  in
  let committed_ok parts =
    (not committed)
    || List.exists
         (fun (i, ei) ->
           let e = Automaton.edge net.Network.automata.(i) ei in
           (Automaton.location net.Network.automata.(i) e.Automaton.src).Automaton.kind
           = Automaton.Committed)
         parts
  in
  let out i pred =
    let a = net.Network.automata.(i) in
    List.filter
      (fun ei -> pred (Automaton.edge a ei) && edge_enabled net c (i, ei))
      (Automaton.out_edges a c.locs.(i))
  in
  let acc = ref [] in
  let emit label parts = if committed_ok parts then acc := label :: !acc in
  for i = 0 to n - 1 do
    List.iter
      (fun ei ->
        emit (Semantics.Internal { comp = i; edge = ei }) [ (i, ei) ])
      (out i (fun e -> e.Automaton.sync = Automaton.NoSync))
  done;
  Array.iteri
    (fun ch (chan : Channel.t) ->
      match chan.Channel.kind with
      | Channel.Binary ->
          for i = 0 to n - 1 do
            List.iter
              (fun se ->
                for j = 0 to n - 1 do
                  if j <> i then
                    List.iter
                      (fun re ->
                        emit
                          (Semantics.Sync
                             { chan = ch; sender = (i, se); receivers = [ (j, re) ] })
                          [ (i, se); (j, re) ])
                      (out j (fun e -> e.Automaton.sync = Automaton.Recv ch))
                done)
              (out i (fun e -> e.Automaton.sync = Automaton.Send ch))
          done
      | Channel.Broadcast ->
          for i = 0 to n - 1 do
            List.iter
              (fun se ->
                (* receivers are forced; per component pick each enabled
                   edge choice *)
                let choices = ref [ [] ] in
                for j = n - 1 downto 0 do
                  if j <> i then begin
                    let recvs = out j (fun e -> e.Automaton.sync = Automaton.Recv ch) in
                    if recvs <> [] then
                      choices :=
                        List.concat_map
                          (fun rest -> List.map (fun re -> (j, re) :: rest) recvs)
                          !choices
                  end
                done;
                List.iter
                  (fun recvs ->
                    emit
                      (Semantics.Sync { chan = ch; sender = (i, se); receivers = recvs })
                      ((i, se) :: recvs))
                  !choices)
              (out i (fun e -> e.Automaton.sync = Automaton.Send ch))
          done)
    net.Network.channels;
  List.rev !acc

(* Assignments run strictly in order: a clock reset may read variables
   assigned earlier in the same update list. *)
let apply_updates (net : Network.t) env clocks parts =
  List.iter
    (fun (i, ei) ->
      let e = Automaton.edge net.Network.automata.(i) ei in
      List.iter
        (fun assign ->
          match assign with
          | Update.Reset_clock (x, ex) -> clocks.(x) <- Expr.eval env ex
          | Update.Set_var _ ->
              Update.apply_env ~ranges:net.Network.var_ranges env [ assign ])
        e.Automaton.update)
    parts

let invariants_hold (net : Network.t) c =
  Array.for_all
    (fun i ->
      let inv =
        (Automaton.location net.Network.automata.(i) c.locs.(i)).Automaton.invariant
      in
      Guard.sat_clocks c.env inv c.clocks && Guard.data_holds c.env inv)
    (Array.init (Array.length c.locs) (fun i -> i))

let apply (net : Network.t) c move =
  match move with
  | Delay d ->
      if d < 0 then invalid_arg "Concrete.apply: negative delay";
      (match max_delay net c with
      | Some m when d > m -> invalid_arg "Concrete.apply: delay forbidden"
      | Some _ | None -> ());
      let clocks = Array.mapi (fun i v -> if i = 0 then 0 else v + d) c.clocks in
      { c with clocks }
  | Fire label ->
      let parts =
        match label with
        | Semantics.Internal { comp; edge } -> [ (comp, edge) ]
        | Semantics.Sync { sender; receivers; _ } -> sender :: receivers
      in
      if
        not
          (List.for_all (fun p -> edge_enabled net c p) parts
          && List.mem label (fireable net c))
      then invalid_arg "Concrete.apply: transition not enabled";
      let env = Array.copy c.env in
      let clocks = Array.copy c.clocks in
      let locs = Array.copy c.locs in
      (* updates first (sequential, sender first), then location moves *)
      apply_updates net env clocks parts;
      List.iter
        (fun (i, ei) ->
          locs.(i) <- (Automaton.edge net.Network.automata.(i) ei).Automaton.dst)
        parts;
      let c' = { locs; env; clocks } in
      if not (invariants_hold net c') then
        invalid_arg "Concrete.apply: target invariant violated";
      c'

let random_walk net ~seed ~steps ~max_step_delay =
  let rng = Ita_util.Prng.create seed in
  let rec go c k acc =
    if k = 0 then List.rev acc
    else begin
      (* random admissible delay *)
      let dmax =
        match max_delay net c with
        | None -> max_step_delay
        | Some m -> min m max_step_delay
      in
      let d = if dmax > 0 then Ita_util.Prng.int rng (dmax + 1) else 0 in
      let c = if d > 0 then apply net c (Delay d) else c in
      let acc = if d > 0 then (Delay d, c) :: acc else acc in
      match fireable net c with
      | [] ->
          if d = 0 then List.rev acc (* deadlock *)
          else go c (k - 1) acc
      | moves ->
          let label = List.nth moves (Ita_util.Prng.int rng (List.length moves)) in
          let c' = apply net c (Fire label) in
          go c' (k - 1) ((Fire label, c') :: acc)
    end
  in
  go (initial net) steps []
