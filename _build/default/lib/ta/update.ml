module Dbm = Ita_dbm.Dbm

type assign =
  | Reset_clock of Guard.clock * Expr.iexp
  | Set_var of Expr.var * Expr.iexp

type t = assign list

exception Out_of_range of { var : Expr.var; value : int }

let none = []
let reset x = [ Reset_clock (x, Expr.Int 0) ]
let set v e = [ Set_var (v, e) ]
let incr v = [ Set_var (v, Expr.Add (Expr.Var v, Expr.Int 1)) ]
let decr v = [ Set_var (v, Expr.Sub (Expr.Var v, Expr.Int 1)) ]
let seq = List.concat

let set_checked ~ranges env v value =
  let lo, hi = ranges.(v) in
  if value < lo || value > hi then raise (Out_of_range { var = v; value });
  env.(v) <- value

let apply ~ranges env z u =
  let step = function
    | Reset_clock (x, e) ->
        let value = Expr.eval env e in
        assert (value >= 0);
        Dbm.reset z x value
    | Set_var (v, e) -> set_checked ~ranges env v (Expr.eval env e)
  in
  List.iter step u

let apply_env ~ranges env u =
  let step = function
    | Reset_clock _ -> ()
    | Set_var (v, e) -> set_checked ~ranges env v (Expr.eval env e)
  in
  List.iter step u

let reset_values env u =
  List.filter_map
    (function
      | Reset_clock (x, e) -> Some (x, Expr.eval env e)
      | Set_var _ -> None)
    u

let pp ~clock_names ~var_names ppf u =
  let first = ref true in
  let sep () = if !first then first := false else Format.fprintf ppf ", " in
  let step = function
    | Reset_clock (x, e) ->
        sep ();
        Format.fprintf ppf "%s = %a" clock_names.(x)
          (Expr.pp_iexp var_names) e
    | Set_var (v, e) ->
        sep ();
        Format.fprintf ppf "%s = %a" var_names.(v)
          (Expr.pp_iexp var_names) e
  in
  List.iter step u
