(** Concrete execution of a network: integer-valued clocks, explicit
    delays and discrete moves.

    This is the ground-truth semantics the zone-based engine abstracts:
    a configuration is a location vector, a variable valuation and an
    integer clock valuation.  Its two uses:

    - random walks cross-validate the symbolic engine (every visited
      concrete state must be covered by some explored zone — see the
      test suite);
    - quick interactive simulation of hand-written models.

    Integer delays only: for the closed guards this library generates
    (and any model whose constants are integers), integer time points
    suffice to hit every location/guard combination reachable at
    integer-commensurate times; the random walk is a sound sampler of
    real behaviors either way. *)

type t = {
  locs : int array;
  env : int array;
  clocks : int array;  (** index 0 is the constant reference clock *)
}

type move =
  | Delay of int
  | Fire of Semantics.label

val initial : Network.t -> t

val max_delay : Network.t -> t -> int option
(** Largest integer delay permitted by invariants, urgency and
    committedness; [None] when unbounded. *)

val fireable : Network.t -> t -> Semantics.label list
(** Discrete transitions enabled right now (guards evaluated on the
    concrete valuation, committed filtering applied). *)

val apply : Network.t -> t -> move -> t
(** @raise Invalid_argument on a move that is not allowed. *)

val random_walk :
  Network.t -> seed:int -> steps:int -> max_step_delay:int -> (move * t) list
(** Alternate random admissible delays and random enabled transitions,
    starting from {!initial}; stops early in a deadlock.  Returns the
    visited states after each move, most recent last. *)
