(** Synchronization channels.

    [Binary] channels pair one sender ([c!]) with exactly one receiver
    ([c?]); both block until a partner is available.  [Broadcast]
    channels never block the sender: every component with an enabled
    receiving edge participates, possibly none.

    An [urgent] channel forbids delay whenever a synchronization on it
    is enabled; following UPPAAL, edges synchronizing on an urgent
    channel must not carry clock guards (checked by
    {!Network.Builder.build}).  The paper's [hurry!] greediness idiom
    is an urgent broadcast channel with no receivers. *)

type kind = Binary | Broadcast

type id = int

type t = { name : string; kind : kind; urgent : bool }
