type kind = Binary | Broadcast
type id = int
type t = { name : string; kind : kind; urgent : bool }
