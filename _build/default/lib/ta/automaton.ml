type loc_kind = Normal | Urgent | Committed

type location = {
  loc_name : string;
  invariant : Guard.t;
  kind : loc_kind;
}

type sync = NoSync | Send of Channel.id | Recv of Channel.id

type edge = {
  src : int;
  guard : Guard.t;
  sync : sync;
  update : Update.t;
  dst : int;
}

type t = {
  name : string;
  locations : location array;
  edges : edge array;
  outgoing : int list array;
  initial : int;
}

let make ~name ~locations ~edges ~initial =
  let locations = Array.of_list locations in
  let edges = Array.of_list edges in
  let outgoing = Array.make (Array.length locations) [] in
  Array.iteri
    (fun i e ->
      assert (e.src >= 0 && e.src < Array.length locations);
      assert (e.dst >= 0 && e.dst < Array.length locations);
      outgoing.(e.src) <- i :: outgoing.(e.src))
    edges;
  (* keep declaration order for deterministic exploration *)
  Array.iteri (fun l es -> outgoing.(l) <- List.rev es) outgoing;
  assert (initial >= 0 && initial < Array.length locations);
  { name; locations; edges; outgoing; initial }

let location a i = a.locations.(i)
let edge a i = a.edges.(i)
let out_edges a l = a.outgoing.(l)

let find_location a name =
  let found = ref (-1) in
  Array.iteri
    (fun i l -> if l.loc_name = name && !found < 0 then found := i)
    a.locations;
  if !found < 0 then raise Not_found else !found
