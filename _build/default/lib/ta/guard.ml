module Dbm = Ita_dbm.Dbm
module Bound = Ita_dbm.Bound

type clock = int
type rel = Lt | Le | Ge | Gt | Eq
type atom = { clock : clock; rel : rel; bound : Expr.iexp }
type t = { clocks : atom list; data : Expr.bexp }

let tt = { clocks = []; data = Expr.True }
let clock_rel clock rel bound = { clocks = [ { clock; rel; bound } ]; data = Expr.True }
let clock_le c v = clock_rel c Le (Expr.Int v)
let clock_lt c v = clock_rel c Lt (Expr.Int v)
let clock_ge c v = clock_rel c Ge (Expr.Int v)
let clock_gt c v = clock_rel c Gt (Expr.Int v)
let clock_eq c v = clock_rel c Eq (Expr.Int v)
let data b = { clocks = []; data = b }

let conj g1 g2 =
  {
    clocks = g1.clocks @ g2.clocks;
    data =
      (match (g1.data, g2.data) with
      | Expr.True, d | d, Expr.True -> d
      | d1, d2 -> Expr.And (d1, d2));
  }

let is_trivial g = g.clocks = [] && g.data = Expr.True
let data_holds env g = Expr.eval_bool env g.data

let apply env g z =
  let constrain_atom { clock; rel; bound } =
    let c = Expr.eval env bound in
    match rel with
    | Le -> Dbm.constrain z clock 0 (Bound.le c)
    | Lt -> Dbm.constrain z clock 0 (Bound.lt c)
    | Ge -> Dbm.constrain z 0 clock (Bound.le (-c))
    | Gt -> Dbm.constrain z 0 clock (Bound.lt (-c))
    | Eq ->
        Dbm.constrain z clock 0 (Bound.le c);
        Dbm.constrain z 0 clock (Bound.le (-c))
  in
  List.iter constrain_atom g.clocks

let sat_clocks env g v =
  let sat_atom { clock; rel; bound } =
    let c = Expr.eval env bound in
    let x = v.(clock) in
    match rel with
    | Le -> x <= c
    | Lt -> x < c
    | Ge -> x >= c
    | Gt -> x > c
    | Eq -> x = c
  in
  List.for_all sat_atom g.clocks

let max_constant ranges g x =
  let atom_k acc a =
    if a.clock <> x then acc
    else
      let lo, hi = Expr.interval ranges a.bound in
      max acc (max (abs lo) (abs hi))
  in
  List.fold_left atom_k 0 g.clocks

let pp ~clock_names ~var_names ppf g =
  let rel_s = function
    | Lt -> "<"
    | Le -> "<="
    | Ge -> ">="
    | Gt -> ">"
    | Eq -> "=="
  in
  let first = ref true in
  let sep () = if !first then first := false else Format.fprintf ppf " && " in
  let atom a =
    sep ();
    Format.fprintf ppf "%s %s %a" clock_names.(a.clock) (rel_s a.rel)
      (Expr.pp_iexp var_names) a.bound
  in
  List.iter atom g.clocks;
  if g.data <> Expr.True then begin
    sep ();
    Expr.pp_bexp var_names ppf g.data
  end;
  if !first then Format.pp_print_string ppf "true"
