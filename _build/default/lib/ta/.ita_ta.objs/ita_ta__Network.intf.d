lib/ta/network.mli: Automaton Channel Expr Format Guard
