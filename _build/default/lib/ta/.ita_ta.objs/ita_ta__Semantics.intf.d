lib/ta/semantics.mli: Channel Format Guard Ita_dbm Network
