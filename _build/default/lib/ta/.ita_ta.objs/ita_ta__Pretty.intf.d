lib/ta/pretty.mli: Automaton Channel Format Network
