lib/ta/semantics.ml: Array Automaton Channel Format Guard Hashtbl Ita_dbm List Network Update
