lib/ta/channel.mli:
