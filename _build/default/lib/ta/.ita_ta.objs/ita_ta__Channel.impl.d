lib/ta/channel.ml:
