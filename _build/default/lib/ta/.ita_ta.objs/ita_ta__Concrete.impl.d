lib/ta/concrete.ml: Array Automaton Channel Expr Guard Ita_util List Network Semantics Update
