lib/ta/automaton.mli: Channel Guard Update
