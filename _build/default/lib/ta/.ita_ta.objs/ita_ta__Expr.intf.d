lib/ta/expr.mli: Format
