lib/ta/guard.ml: Array Expr Format Ita_dbm List
