lib/ta/pretty.ml: Array Automaton Channel Format Guard List Network Update
