lib/ta/concrete.mli: Network Semantics
