lib/ta/update.ml: Array Expr Format Guard Ita_dbm List
