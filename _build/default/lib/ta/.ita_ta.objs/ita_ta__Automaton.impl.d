lib/ta/automaton.ml: Array Channel Guard List Update
