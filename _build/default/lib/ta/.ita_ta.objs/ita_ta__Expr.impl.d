lib/ta/expr.ml: Array Format List
