lib/ta/network.ml: Array Automaton Channel Expr Format Guard List Update
