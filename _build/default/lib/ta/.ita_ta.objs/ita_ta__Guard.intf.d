lib/ta/guard.mli: Expr Format Ita_dbm
