lib/ta/update.mli: Expr Format Guard Ita_dbm
