let pp_sync ~(channels : Channel.t array) ppf = function
  | Automaton.NoSync -> ()
  | Automaton.Send c -> Format.fprintf ppf " %s!" channels.(c).Channel.name
  | Automaton.Recv c -> Format.fprintf ppf " %s?" channels.(c).Channel.name

let pp_automaton ~clock_names ~var_names ~channels ppf (a : Automaton.t) =
  Format.fprintf ppf "@[<v2>automaton %s:@," a.Automaton.name;
  Array.iteri
    (fun i (l : Automaton.location) ->
      let kind =
        match l.Automaton.kind with
        | Automaton.Normal -> ""
        | Automaton.Urgent -> " urgent"
        | Automaton.Committed -> " committed"
      in
      Format.fprintf ppf "@[<h>loc %s%s%s" l.Automaton.loc_name kind
        (if i = a.Automaton.initial then " (initial)" else "");
      if not (Guard.is_trivial l.Automaton.invariant) then
        Format.fprintf ppf "  inv: %a"
          (Guard.pp ~clock_names ~var_names)
          l.Automaton.invariant;
      Format.fprintf ppf "@]@,";
      List.iter
        (fun ei ->
          let e = Automaton.edge a ei in
          Format.fprintf ppf "@[<h>  -> %s"
            (Automaton.location a e.Automaton.dst).Automaton.loc_name;
          if not (Guard.is_trivial e.Automaton.guard) then
            Format.fprintf ppf "  when %a"
              (Guard.pp ~clock_names ~var_names)
              e.Automaton.guard;
          pp_sync ~channels ppf e.Automaton.sync;
          if e.Automaton.update <> Update.none then
            Format.fprintf ppf "  do %a"
              (Update.pp ~clock_names ~var_names)
              e.Automaton.update;
          Format.fprintf ppf "@]@,")
        (Automaton.out_edges a i))
    a.Automaton.locations;
  Format.fprintf ppf "@]"

let pp_network ppf (net : Network.t) =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "clocks:";
  Array.iteri
    (fun i c -> if i > 0 then Format.fprintf ppf " %s" c)
    net.Network.clock_names;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun v name ->
      let lo, hi = net.Network.var_ranges.(v) in
      Format.fprintf ppf "var %s : [%d, %d] = %d@," name lo hi
        net.Network.var_init.(v))
    net.Network.var_names;
  Array.iter
    (fun (c : Channel.t) ->
      Format.fprintf ppf "chan %s%s%s@," c.Channel.name
        (match c.Channel.kind with
        | Channel.Broadcast -> " broadcast"
        | Channel.Binary -> "")
        (if c.Channel.urgent then " urgent" else ""))
    net.Network.channels;
  Array.iter
    (fun a ->
      pp_automaton ~clock_names:net.Network.clock_names
        ~var_names:net.Network.var_names ~channels:net.Network.channels ppf a;
      Format.fprintf ppf "@,")
    net.Network.automata;
  Format.fprintf ppf "@]"
