(** Edge updates: a sequence of clock resets and integer-variable
    assignments, applied left to right (UPPAAL's sequential update
    semantics, so [x = 0, D = D + AV] reads the pre-assignment [D]). *)

type assign =
  | Reset_clock of Guard.clock * Expr.iexp
      (** [Reset_clock (x, e)]: the clock is set to the (non-negative)
          current value of [e]. *)
  | Set_var of Expr.var * Expr.iexp

type t = assign list

exception Out_of_range of { var : Expr.var; value : int }
(** Raised when an assignment leaves a variable's declared range —
    a modeling error, mirroring UPPAAL's bounded-integer semantics. *)

val none : t
val reset : Guard.clock -> t
val set : Expr.var -> Expr.iexp -> t
val incr : Expr.var -> t
val decr : Expr.var -> t
val seq : t list -> t

val apply :
  ranges:(int * int) array -> int array -> Ita_dbm.Dbm.t -> t -> unit
(** [apply ~ranges env z u] mutates [env] and [z] in place.  Raises
    {!Out_of_range} when a variable leaves its range. *)

val apply_env : ranges:(int * int) array -> int array -> t -> unit
(** Variable assignments only (used by the checker's delay-free
    enabledness tests and by the simulator). *)

val reset_values : int array -> t -> (Guard.clock * int) list
(** The clock resets of [u] with their values under [env], in order. *)

val pp : clock_names:string array -> var_names:string array ->
  Format.formatter -> t -> unit
