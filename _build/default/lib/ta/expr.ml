type var = int

type iexp =
  | Int of int
  | Var of var
  | Add of iexp * iexp
  | Sub of iexp * iexp
  | Mul of iexp * iexp
  | Div of iexp * iexp
  | Neg of iexp
  | Ite of bexp * iexp * iexp

and bexp =
  | True
  | False
  | Cmp of cmp * iexp * iexp
  | And of bexp * bexp
  | Or of bexp * bexp
  | Not of bexp

and cmp = Eq | Ne | Lt | Le | Gt | Ge

exception Division_by_zero of iexp

let rec eval env = function
  | Int c -> c
  | Var v -> env.(v)
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) as e ->
      let d = eval env b in
      if d = 0 then raise (Division_by_zero e) else eval env a / d
  | Neg a -> -eval env a
  | Ite (c, a, b) -> if eval_bool env c then eval env a else eval env b

and eval_bool env = function
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> (
      let x = eval env a and y = eval env b in
      match op with
      | Eq -> x = y
      | Ne -> x <> y
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y)
  | And (a, b) -> eval_bool env a && eval_bool env b
  | Or (a, b) -> eval_bool env a || eval_bool env b
  | Not a -> not (eval_bool env a)

let rec interval ranges = function
  | Int c -> (c, c)
  | Var v -> ranges.(v)
  | Add (a, b) ->
      let la, ha = interval ranges a and lb, hb = interval ranges b in
      (la + lb, ha + hb)
  | Sub (a, b) ->
      let la, ha = interval ranges a and lb, hb = interval ranges b in
      (la - hb, ha - lb)
  | Mul (a, b) ->
      let la, ha = interval ranges a and lb, hb = interval ranges b in
      let cands = [ la * lb; la * hb; ha * lb; ha * hb ] in
      (List.fold_left min max_int cands, List.fold_left max min_int cands)
  | Div (a, _) ->
      (* conservative: |a / b| <= |a| for |b| >= 1 *)
      let la, ha = interval ranges a in
      let m = max (abs la) (abs ha) in
      (-m, m)
  | Neg a ->
      let la, ha = interval ranges a in
      (-ha, -la)
  | Ite (_, a, b) ->
      let la, ha = interval ranges a and lb, hb = interval ranges b in
      (min la lb, max ha hb)

let rec ivars = function
  | Int _ -> []
  | Var v -> [ v ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> ivars a @ ivars b
  | Neg a -> ivars a
  | Ite (c, a, b) -> bvars c @ ivars a @ ivars b

and bvars = function
  | True | False -> []
  | Cmp (_, a, b) -> ivars a @ ivars b
  | And (a, b) | Or (a, b) -> bvars a @ bvars b
  | Not a -> bvars a

let string_of_cmp = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_iexp names ppf = function
  | Int c -> Format.pp_print_int ppf c
  | Var v -> Format.pp_print_string ppf names.(v)
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" (pp_iexp names) a (pp_iexp names) b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" (pp_iexp names) a (pp_iexp names) b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" (pp_iexp names) a (pp_iexp names) b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" (pp_iexp names) a (pp_iexp names) b
  | Neg a -> Format.fprintf ppf "-%a" (pp_iexp names) a
  | Ite (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" (pp_bexp names) c (pp_iexp names) a
        (pp_iexp names) b

and pp_bexp names ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" (pp_iexp names) a (string_of_cmp op)
        (pp_iexp names) b
  | And (a, b) ->
      Format.fprintf ppf "(%a && %a)" (pp_bexp names) a (pp_bexp names) b
  | Or (a, b) ->
      Format.fprintf ppf "(%a || %a)" (pp_bexp names) a (pp_bexp names) b
  | Not a -> Format.fprintf ppf "!%a" (pp_bexp names) a
