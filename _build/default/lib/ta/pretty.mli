(** Human-readable dumps of networks and automata — the textual
    counterpart of the paper's Figures 4 to 9, produced from the
    generated model so the encoding can be inspected and reviewed. *)

val pp_automaton :
  clock_names:string array ->
  var_names:string array ->
  channels:Channel.t array ->
  Format.formatter ->
  Automaton.t ->
  unit

val pp_network : Format.formatter -> Network.t -> unit
(** Declarations (clocks, variables with ranges, channels) followed by
    every automaton. *)
