(** Integer and boolean expressions over bounded integer variables.

    Variables are identified by their index in the network's variable
    environment (an [int array]); name resolution happens in
    {!Network.Builder}.  Expressions appear in edge guards, location
    invariants (as clock-bound right-hand sides) and updates. *)

type var = int
(** Index into the integer-variable environment. *)

type iexp =
  | Int of int
  | Var of var
  | Add of iexp * iexp
  | Sub of iexp * iexp
  | Mul of iexp * iexp
  | Div of iexp * iexp
  | Neg of iexp
  | Ite of bexp * iexp * iexp

and bexp =
  | True
  | False
  | Cmp of cmp * iexp * iexp
  | And of bexp * bexp
  | Or of bexp * bexp
  | Not of bexp

and cmp = Eq | Ne | Lt | Le | Gt | Ge

exception Division_by_zero of iexp

val eval : int array -> iexp -> int
(** [eval env e]; raises {!Division_by_zero} on a zero divisor. *)

val eval_bool : int array -> bexp -> bool

val interval : (int * int) array -> iexp -> int * int
(** [interval ranges e] is a conservative [(lo, hi)] enclosure of [e]
    given per-variable ranges; used to derive static clock-extrapolation
    constants from guards whose right-hand sides mention variables. *)

val ivars : iexp -> var list
val bvars : bexp -> var list

val pp_iexp : string array -> Format.formatter -> iexp -> unit
val pp_bexp : string array -> Format.formatter -> bexp -> unit
(** Printers take the variable-name table. *)
