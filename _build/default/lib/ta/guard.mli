(** Edge guards and location invariants: a conjunction of diagonal-free
    clock constraints [x ~ e] (the right-hand side may mention integer
    variables, as in the paper's preemptive-scheduler invariant
    [x <= D]) and a data predicate over integer variables.

    Diagonal constraints ([x - y ~ c]) are deliberately excluded: the
    paper's models never need them and their absence keeps classical
    maximal-constant extrapolation sound. *)

type clock = int

type rel = Lt | Le | Ge | Gt | Eq

type atom = { clock : clock; rel : rel; bound : Expr.iexp }

type t = { clocks : atom list; data : Expr.bexp }

val tt : t
(** The trivially true guard. *)

val clock_rel : clock -> rel -> Expr.iexp -> t
val clock_le : clock -> int -> t
val clock_lt : clock -> int -> t
val clock_ge : clock -> int -> t
val clock_gt : clock -> int -> t
val clock_eq : clock -> int -> t
val data : Expr.bexp -> t
val conj : t -> t -> t

val is_trivial : t -> bool

val data_holds : int array -> t -> bool
(** Evaluate only the data part. *)

val apply : int array -> t -> Ita_dbm.Dbm.t -> unit
(** [apply env g z] intersects [z] with the clock constraints of [g],
    with bounds evaluated under [env].  Does not test the data part. *)

val sat_clocks : int array -> t -> int array -> bool
(** [sat_clocks env g v] tests the clock part against the concrete
    clock valuation [v] (testing / simulation oracle). *)

val max_constant : (int * int) array -> t -> clock -> int
(** [max_constant ranges g x] is the largest absolute constant that the
    clock atoms of [g] can compare [x] against, given variable ranges;
    [0] when [x] is unconstrained.  Feeds extrapolation. *)

val pp : clock_names:string array -> var_names:string array ->
  Format.formatter -> t -> unit
