(** Finite unions of zones.

    The model checker itself stores zones per discrete state, but a few
    clients (tests, sup-queries, trace widening) need a set-of-zones
    abstraction with redundancy elimination.  A federation is a list of
    non-empty canonical DBMs over the same clock set; the represented
    set is their union. *)

type t

val empty : int -> t
(** [empty n] is the empty federation over [n] clocks. *)

val of_dbm : Dbm.t -> t
val dim : t -> int
val is_empty : t -> bool
val zones : t -> Dbm.t list

val add : t -> Dbm.t -> t
(** [add f z] unions [z] in, dropping it if a stored zone already
    contains it and dropping stored zones that [z] contains.  The
    argument is copied; the federation never aliases caller zones. *)

val mem : t -> int array -> bool
(** Valuation membership (testing oracle). *)

val subsumes : t -> Dbm.t -> bool
(** [subsumes f z] iff some single zone of [f] contains [z] (sound but
    incomplete union inclusion, the standard passed-list test). *)

val size : t -> int
val pp : Format.formatter -> t -> unit
