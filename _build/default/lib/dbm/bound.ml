type t = int

(* Encoding: (c, <=) as [2c + 1], (c, <) as [2c], +oo as [max_int].
   [max_int] is odd, so it must be special-cased before decoding, but the
   integer order on encodings coincides with constraint strength, which
   makes [min]/[compare] free. *)

let infinity = max_int
let le c = (c lsl 1) lor 1
let lt c = c lsl 1
let zero_le = le 0
let value b = b asr 1
let is_strict b = b = max_int || b land 1 = 0
let is_infinity b = b = max_int

let add b1 b2 =
  if b1 = max_int || b2 = max_int then max_int
  else b1 + b2 - ((b1 lor b2) land 1)

let min (b1 : t) (b2 : t) = if b1 < b2 then b1 else b2
let compare (b1 : t) (b2 : t) = Stdlib.compare b1 b2
let lt_bound (b1 : t) (b2 : t) = b1 < b2

let negate_weak b =
  assert (b <> max_int);
  if b land 1 = 1 then lt (-(value b)) else le (-(value b))

let sat d b =
  if b = max_int then true
  else if b land 1 = 1 then d <= value b
  else d < value b

external of_encoded : int -> t = "%identity"

let pp ppf b =
  if b = max_int then Format.pp_print_string ppf "<inf"
  else if b land 1 = 1 then Format.fprintf ppf "<=%d" (value b)
  else Format.fprintf ppf "<%d" (value b)
