lib/dbm/federation.ml: Dbm Format List
