lib/dbm/bound.ml: Format Stdlib
