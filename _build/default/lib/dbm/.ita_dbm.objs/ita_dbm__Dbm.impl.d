lib/dbm/dbm.ml: Array Bound Format Hashtbl
