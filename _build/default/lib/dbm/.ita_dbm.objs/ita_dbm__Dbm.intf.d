lib/dbm/dbm.mli: Bound Format
