lib/dbm/bound.mli: Format
