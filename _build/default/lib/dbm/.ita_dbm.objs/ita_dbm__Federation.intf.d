lib/dbm/federation.mli: Dbm Format
