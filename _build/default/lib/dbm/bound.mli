(** Bounds of difference constraints, i.e. the right-hand sides of
    [x - y <= c] and [x - y < c], plus the absent constraint [+oo].

    Bounds are encoded in a single native [int] so that DBMs are flat
    integer arrays: the encoding of [(c, <=)] is [2c + 1], the encoding of
    [(c, <)] is [2c], and [+oo] is [max_int].  The encoding is monotone:
    the natural integer order on encoded bounds coincides with the
    strength order on constraints ([b1 <= b2] iff the constraint [b1] is
    at least as tight as [b2]). *)

type t = private int

val infinity : t
(** The absent constraint [x - y < +oo]. *)

val le : int -> t
(** [le c] is the non-strict bound [(c, <=)]. *)

val lt : int -> t
(** [lt c] is the strict bound [(c, <)]. *)

val zero_le : t
(** [le 0], the most frequent bound. *)

val value : t -> int
(** [value b] is the finite constant of [b].  Meaningless on
    {!infinity}; callers must check {!is_infinity} first. *)

val is_strict : t -> bool
(** [is_strict b] is [true] on [lt c] bounds.  [infinity] is strict. *)

val is_infinity : t -> bool

val add : t -> t -> t
(** [add b1 b2] is the bound of the composed constraint: constants add,
    and the sum is strict iff either argument is strict.  Adding
    {!infinity} yields {!infinity}. *)

val min : t -> t -> t
(** Tighter of two bounds. *)

val compare : t -> t -> int
(** Strength order; [compare b1 b2 < 0] means [b1] is strictly tighter. *)

val lt_bound : t -> t -> bool
(** [lt_bound b1 b2] is [compare b1 b2 < 0]. *)

val negate_weak : t -> t
(** [negate_weak (c, ~)] is [(-c, ~')] where the strictness flips:
    the complement of [x - y <= c] is [y - x < -c] and vice versa.
    Undefined on {!infinity}. *)

val sat : int -> t -> bool
(** [sat d b] tests whether the concrete difference [d] satisfies the
    constraint [b], i.e. [d < c] or [d <= c]. *)

val pp : Format.formatter -> t -> unit

val of_encoded : int -> t
(** [of_encoded e] reinterprets a raw encoding as a bound.  Only for
    the {!Dbm} implementation, which stores encoded bounds in flat
    [int array]s; not for general use. *)
