type t = { n : int; mutable zs : Dbm.t list }

let empty n = { n = n + 1; zs = [] }

let of_dbm z =
  if Dbm.is_empty z then { n = Dbm.dim z; zs = [] }
  else { n = Dbm.dim z; zs = [ Dbm.copy z ] }

let dim f = f.n - 1
let is_empty f = f.zs = []
let zones f = f.zs

let add f z =
  assert (Dbm.dim z = f.n);
  if Dbm.is_empty z then f
  else if List.exists (fun z' -> Dbm.subset z z') f.zs then f
  else
    {
      f with
      zs = Dbm.copy z :: List.filter (fun z' -> not (Dbm.subset z' z)) f.zs;
    }

let mem f v = List.exists (fun z -> Dbm.satisfies z v) f.zs
let subsumes f z = Dbm.is_empty z || List.exists (Dbm.subset z) f.zs
let size f = List.length f.zs

let pp ppf f =
  if is_empty f then Format.pp_print_string ppf "false"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ || ")
      Dbm.pp ppf f.zs
