bin/tamc.mli:
