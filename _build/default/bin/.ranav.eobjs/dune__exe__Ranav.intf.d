bin/ranav.mli:
