bin/ranav.ml: Analyze Arg Cmd Cmdliner Format Gen Hashtbl Ita_casestudy Ita_core Ita_mc Ita_rtc Ita_sim Ita_symta Ita_ta List Option Printf Resource Scenario Sysmodel Term Units
