bin/tamc.ml: Arg Array Cmd Cmdliner Format Ita_mc Ita_ta Ita_tafmt List Printf Term
